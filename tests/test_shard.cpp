/// Unit pins for the sharded-sweep layer (src/scenario/shard.h): the
/// deterministic shard planner, the NDJSON worker row protocol, the
/// worker execution loop (streaming, per-point failure isolation), and
/// the SweepEngine point-list executor seam. The end-to-end multi-process
/// differential (1 process vs --shards 2 vs --shards 4) is the
/// shard_parity ctest (scripts/shard_parity.sh), which exercises the real
/// popen transport.

#include "src/scenario/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sweep.h"
#include "src/scenario/spec_json.h"
#include "src/util/json.h"
#include "src/workload/tables.h"

namespace floretsim::scenario {
namespace {

namespace experiment = core::experiment;
using experiment::Arch;

core::SweepSpec tiny_spec() {
    core::SweepSpec spec;
    spec.archs = {Arch::kSiamMesh, Arch::kFloret};
    spec.grids = {{6, 6}};
    spec.mixes = {workload::table2().front()};
    auto cfg = experiment::default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;  // keep tests quick
    spec.evals = {cfg};
    spec.greedy_max_gap = 2;
    return spec;
}

// ------------------------------------------------------------- shard planner

TEST(ShardPlan, PartitionIsDisjointCoveringAndBalanced) {
    for (const std::int32_t n_shards : {1, 2, 3, 4, 7}) {
        std::set<std::size_t> seen;
        std::size_t min_size = 100, max_size = 0;
        for (std::int32_t s = 0; s < n_shards; ++s) {
            const auto indices = shard_indices(10, s, n_shards);
            min_size = std::min(min_size, indices.size());
            max_size = std::max(max_size, indices.size());
            for (const auto i : indices) {
                EXPECT_TRUE(seen.insert(i).second)
                    << "index " << i << " owned by two shards";
            }
        }
        EXPECT_EQ(seen.size(), 10u) << n_shards << " shards";
        EXPECT_LE(max_size - min_size, 1u) << n_shards << " shards";
    }
}

TEST(ShardPlan, RoundRobinInterleavesArchMajorExpansion) {
    // Expansion order is arch-major, so a round-robin split must give
    // every shard points from every architecture (a block split would
    // not). 2 archs x 1 grid x 1 mix expands to [siam, floret].
    const auto points = tiny_spec().expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(shard_indices(points.size(), 0, 2), (std::vector<std::size_t>{0}));
    EXPECT_EQ(shard_indices(points.size(), 1, 2), (std::vector<std::size_t>{1}));
    // More shards than points: the tail shards are empty, never invalid.
    EXPECT_TRUE(shard_indices(2, 3, 4).empty());
}

TEST(ShardPlan, ParseShardArg) {
    EXPECT_EQ(parse_shard_arg("0/1"), (std::pair<std::int32_t, std::int32_t>{0, 1}));
    EXPECT_EQ(parse_shard_arg("3/8"), (std::pair<std::int32_t, std::int32_t>{3, 8}));
    for (const char* bad : {"", "3", "/4", "3/", "4/4", "5/4", "-1/4", "a/b",
                            "1/0", "1/-2", "1.5/4"})
        EXPECT_THROW((void)parse_shard_arg(bad), std::invalid_argument) << bad;
}

TEST(ShardPlan, ClampWorkerThreads) {
    std::ostringstream err;
    EXPECT_EQ(clamp_worker_threads(0, 100, err), 0);   // hardware default
    EXPECT_EQ(clamp_worker_threads(4, 100, err), 4);   // in range
    EXPECT_TRUE(err.str().empty());
    EXPECT_EQ(clamp_worker_threads(8, 3, err), 3);     // one thread per point
    EXPECT_NE(err.str().find("clamping"), std::string::npos);
    EXPECT_EQ(clamp_worker_threads(100000, 100000, err), kMaxWorkerThreads);
    EXPECT_THROW((void)clamp_worker_threads(-1, 10, err), std::invalid_argument);
}

// ------------------------------------------------------------ row protocol

TEST(ShardProtocol, WorkerRowLineRoundTrips) {
    core::SweepRow row;
    row.point = tiny_spec().expand().front();
    row.result.total_cycles = 123456.5;
    row.result.flit_hops = 99;
    row.result.all_completed = false;
    row.seconds = 0.125;
    const std::string line = worker_row_line(17, row);
    EXPECT_EQ(line.find('\n'), std::string::npos) << "NDJSON lines are one line";
    const IndexedRow back = worker_row_from_line(line);
    EXPECT_EQ(back.index, 17u);
    EXPECT_EQ(back.row, row);
}

TEST(ShardProtocol, RowLineRejectsMalformedEnvelopes) {
    for (const char* bad : {
             "",                                  // empty
             "{",                                 // truncated
             "[1, 2]",                            // not an object
             "{\"index\": 1}",                    // missing row
             "{\"row\": {}}",                     // missing index
             "{\"index\": -1, \"row\": {}}",      // negative index
             "{\"index\": 1, \"row\": 3}",        // row not an object
             "{\"index\": 1, \"row\": {}, \"extra\": 0}",  // unknown key
         })
        EXPECT_THROW((void)worker_row_from_line(bad), std::invalid_argument) << bad;
}

TEST(ShardProtocol, PointsFromTextRejectsEmptyAndMalformed) {
    EXPECT_THROW((void)points_from_text("[]", "t"), std::invalid_argument);
    EXPECT_THROW((void)points_from_text("", "t"), std::invalid_argument);
    EXPECT_THROW((void)points_from_text("{}", "t"), std::invalid_argument);
    EXPECT_THROW((void)points_from_text("[{\"arch\": \"torus\"}]", "t"),
                 std::invalid_argument);
    const auto points = points_from_text(
        util::json_serialize(to_json(tiny_spec().expand())), "t");
    EXPECT_EQ(points, tiny_spec().expand());
}

// ------------------------------------------------------------- worker loop

TEST(ShardWorker, StreamsEveryPointOnceBitIdenticalToLocalRun) {
    const auto points = tiny_spec().expand();
    core::SweepEngine local(1);
    const auto expect = local.run(points);

    for (const std::int32_t threads : {1, 3}) {
        core::SweepEngine engine(threads);
        std::ostringstream rows_out, err;
        const std::size_t failed = run_worker_points(
            engine, points, shard_indices(points.size(), 0, 1), rows_out, err);
        EXPECT_EQ(failed, 0u);
        EXPECT_TRUE(err.str().empty()) << err.str();

        std::vector<IndexedRow> rows;
        std::istringstream lines(rows_out.str());
        for (std::string line; std::getline(lines, line);)
            rows.push_back(worker_row_from_line(line));
        ASSERT_EQ(rows.size(), points.size());
        std::sort(rows.begin(), rows.end(),
                  [](const IndexedRow& a, const IndexedRow& b) {
                      return a.index < b.index;
                  });
        for (std::size_t i = 0; i < rows.size(); ++i) {
            EXPECT_EQ(rows[i].index, i);
            EXPECT_EQ(rows[i].row.point, expect.rows[i].point);
            // The result must be bit-identical across processes and thread
            // counts; `seconds` is wall-clock and deliberately excluded.
            EXPECT_EQ(rows[i].row.result, expect.rows[i].result);
        }
    }
}

TEST(ShardWorker, FailingPointReportsItsIndexAndSparesTheRest) {
    auto points = tiny_spec().expand();
    // Point 1 carries a mix naming a workload that does not exist; the
    // evaluation throws, the worker records index 1, and point 0 still
    // produces its row.
    points[1].mix.name = "broken";
    points[1].mix.entries = {{"DNN99-no-such-workload", 1}};
    core::SweepEngine engine(2);
    std::ostringstream rows_out, err;
    const std::size_t failed = run_worker_points(
        engine, points, shard_indices(points.size(), 0, 1), rows_out, err);
    EXPECT_EQ(failed, 1u);
    EXPECT_NE(err.str().find("point 1 failed"), std::string::npos) << err.str();

    std::vector<IndexedRow> rows;
    std::istringstream lines(rows_out.str());
    for (std::string line; std::getline(lines, line);)
        rows.push_back(worker_row_from_line(line));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].index, 0u);
}

TEST(ShardWorker, RejectsOutOfRangeIndices) {
    core::SweepEngine engine(1);
    std::ostringstream rows_out, err;
    EXPECT_THROW((void)run_worker_points(engine, tiny_spec().expand(), {7},
                                         rows_out, err),
                 std::invalid_argument);
}

// ---------------------------------------------------------- heartbeats

TEST(ShardHeartbeat, LineRoundTripsThroughStreamParser) {
    Heartbeat hb;
    hb.shard = 2;
    hb.n_shards = 4;
    hb.done = 3;
    hb.total = 9;
    hb.seconds = 1.5;
    const StreamLine parsed = stream_line_from(heartbeat_line(hb));
    ASSERT_TRUE(parsed.hb.has_value());
    EXPECT_FALSE(parsed.row.has_value());
    EXPECT_EQ(*parsed.hb, hb);
}

TEST(ShardHeartbeat, StreamParserStillAcceptsRowLines) {
    const auto points = tiny_spec().expand();
    core::SweepEngine engine(1);
    const auto rows = engine.run(points);
    const StreamLine parsed =
        stream_line_from(worker_row_line(0, rows.rows[0]));
    ASSERT_TRUE(parsed.row.has_value());
    EXPECT_FALSE(parsed.hb.has_value());
    EXPECT_EQ(parsed.row->index, 0u);
}

TEST(ShardHeartbeat, WorkerEmitsMonotoneProgressEndingComplete) {
    const auto points = tiny_spec().expand();
    core::SweepEngine engine(2);
    std::ostringstream rows_out, err, hb_out;
    const std::size_t failed =
        run_worker_points(engine, points, shard_indices(points.size(), 0, 1),
                          rows_out, err, HeartbeatSink{&hb_out, 0, 1});
    EXPECT_EQ(failed, 0u);
    std::vector<Heartbeat> beats;
    std::istringstream lines(hb_out.str());
    for (std::string line; std::getline(lines, line);) {
        const StreamLine parsed = stream_line_from(line);
        ASSERT_TRUE(parsed.hb.has_value()) << line;
        beats.push_back(*parsed.hb);
    }
    // One before the first point, one after each of the N points.
    ASSERT_EQ(beats.size(), points.size() + 1);
    for (std::size_t i = 0; i < beats.size(); ++i) {
        EXPECT_EQ(beats[i].done, i);
        EXPECT_EQ(beats[i].total, points.size());
        EXPECT_EQ(beats[i].shard, 0);
        EXPECT_EQ(beats[i].n_shards, 1);
        if (i > 0) EXPECT_GE(beats[i].seconds, beats[i - 1].seconds);
    }
    EXPECT_EQ(beats.back().done, beats.back().total);
}

TEST(ShardHeartbeat, FailedPointsStillCountAsProgress) {
    auto points = tiny_spec().expand();
    points[1].mix.name = "broken";
    points[1].mix.entries = {{"DNN99-no-such-workload", 1}};
    core::SweepEngine engine(1);
    std::ostringstream rows_out, err, hb_out;
    const std::size_t failed =
        run_worker_points(engine, points, shard_indices(points.size(), 0, 1),
                          rows_out, err, HeartbeatSink{&hb_out, 0, 1});
    EXPECT_EQ(failed, 1u);
    std::vector<Heartbeat> beats;
    std::istringstream lines(hb_out.str());
    for (std::string line; std::getline(lines, line);)
        beats.push_back(*stream_line_from(line).hb);
    ASSERT_EQ(beats.size(), points.size() + 1);
    EXPECT_EQ(beats.back().done, points.size());
}

// ---------------------------------------------------------- executor seam

TEST(ShardExecutor, EngineRunDispatchesThroughThePointExecutor) {
    const auto spec = tiny_spec();
    core::SweepEngine plain(1);
    const auto expect = plain.run(spec);

    core::SweepEngine engine(1);
    std::size_t calls = 0;
    // A stand-in transport: evaluate the handed points on a second engine,
    // exactly what the fork-N-workers executor does across processes.
    engine.set_point_executor(
        [&](const std::vector<core::SweepPoint>& points) {
            ++calls;
            core::SweepEngine inner(2);
            return inner.run(points).rows;
        });
    const auto got = engine.run(spec);
    EXPECT_EQ(calls, 1u);
    ASSERT_EQ(got.rows.size(), expect.rows.size());
    for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].point, expect.rows[i].point);
        EXPECT_EQ(got.rows[i].result, expect.rows[i].result);
    }
    // The executor never touched the coordinator-side cache.
    EXPECT_EQ(engine.cache().misses(), 0);
    // Grid dimensions still index correctly through at().
    EXPECT_EQ(got.at(1, 0, 0).result, expect.at(1, 0, 0).result);
}

TEST(ShardExecutor, ShortRowListIsAnError) {
    core::SweepEngine engine(1);
    engine.set_point_executor(
        [](const std::vector<core::SweepPoint>&) {
            return std::vector<core::SweepRow>{};
        });
    EXPECT_THROW((void)engine.run(tiny_spec()), std::runtime_error);
}

// ------------------------------------------------------- streaming merge

/// Self-deleting scratch directory for row-file tests.
struct TempDir {
    std::string path;
    TempDir() {
        std::string templ =
            (std::filesystem::temp_directory_path() / "floretsim-mergetest-XXXXXX")
                .string();
        if (!mkdtemp(templ.data())) throw std::runtime_error("mkdtemp failed");
        path = templ;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
};

/// A synthetic row whose identity is readable back out of total_cycles.
core::SweepRow tagged_row(std::size_t i) {
    core::SweepRow row;
    row.point = tiny_spec().expand().front();
    row.result.total_cycles = 1000.0 + static_cast<double>(i);
    return row;
}

/// Writes one shard's NDJSON row file: the given global indices in the
/// given (arbitrary) order, a heartbeat line interleaved after each row —
/// exactly what a worker's --rows-out file looks like.
std::string write_row_file(const std::string& dir, std::size_t shard,
                           const std::vector<std::size_t>& indices) {
    const std::string path = dir + "/rows." + std::to_string(shard) + ".ndjson";
    std::ofstream f(path);
    Heartbeat hb;
    hb.total = indices.size();
    for (const auto i : indices) {
        f << worker_row_line(i, tagged_row(i)) << '\n';
        hb.done += 1;
        f << heartbeat_line(hb) << '\n';
    }
    return path;
}

TEST(MergedStream, YieldsPointOrderHoldingOneRowAtATime) {
    TempDir tmp;
    // 6 points round-robined over 2 shards, each file in completion (not
    // point) order, with heartbeat envelopes interleaved.
    const auto f0 = write_row_file(tmp.path, 0, {4, 0, 2});
    const auto f1 = write_row_file(tmp.path, 1, {5, 3, 1});
    MergedRowFileStream stream({f0, f1}, 6);
    EXPECT_EQ(stream.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        const auto row = stream.next();
        ASSERT_TRUE(row.has_value()) << i;
        EXPECT_EQ(row->result.total_cycles, 1000.0 + static_cast<double>(i));
    }
    EXPECT_FALSE(stream.next().has_value());
    // The merge never materializes the row set: one parsed row resident,
    // regardless of row count — the constant-memory coordinator contract.
    EXPECT_EQ(stream.peak_resident_rows(), 1u);
}

TEST(MergedStream, ReleasesItsCleanupOwnerOnDestruction) {
    TempDir tmp;
    const auto f0 = write_row_file(tmp.path, 0, {0, 1});
    bool released = false;
    {
        auto guard = std::shared_ptr<void>(
            nullptr, [&released](void*) { released = true; });
        MergedRowFileStream stream({f0}, 2, [guard] {});
        guard.reset();
        ASSERT_TRUE(stream.next().has_value());
        // Abandoned mid-iteration: the owner must still be released.
        EXPECT_FALSE(released);
    }
    EXPECT_TRUE(released);
}

TEST(MergedStream, ReleasesItsCleanupOwnerWhenConstructionFails) {
    TempDir tmp;
    bool released = false;
    auto guard =
        std::shared_ptr<void>(nullptr, [&released](void*) { released = true; });
    EXPECT_THROW(MergedRowFileStream(
                     {tmp.path + "/no-such-file.ndjson"}, 1,
                     [guard = std::move(guard)] {}),
                 std::runtime_error);
    EXPECT_TRUE(released) << "a failed merge leaked its scratch owner";
}

TEST(MergedStream, IndexScanRejectsBadRowFiles) {
    TempDir tmp;
    // Missing file.
    EXPECT_THROW(MergedRowFileStream({tmp.path + "/missing"}, 1),
                 std::runtime_error);
    // Duplicate point.
    const auto dup = write_row_file(tmp.path, 0, {0, 0});
    EXPECT_THROW(MergedRowFileStream({dup}, 2), std::runtime_error);
    // Out-of-range index.
    const auto range = write_row_file(tmp.path, 1, {7});
    EXPECT_THROW(MergedRowFileStream({range}, 2), std::runtime_error);
    // A point no worker covered.
    const auto gap = write_row_file(tmp.path, 2, {0});
    try {
        MergedRowFileStream stream({gap}, 2);
        FAIL() << "missing point accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("no worker returned a row"),
                  std::string::npos)
            << e.what();
    }
    // Unparseable line.
    const std::string garbled = tmp.path + "/garbled.ndjson";
    std::ofstream(garbled) << "{\"index\": 0, \"row\": \n";
    EXPECT_THROW(MergedRowFileStream({garbled}, 1), std::runtime_error);
}

std::size_t count_shard_scratch_dirs() {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(
             std::filesystem::temp_directory_path())) {
        if (e.path().filename().string().rfind("floretsim-shard-", 0) == 0) ++n;
    }
    return n;
}

TEST(ShardExecutor, DeadWorkerLeavesNoScratchDirectoryBehind) {
    const auto before = count_shard_scratch_dirs();
    ShardOptions opt;
    opt.worker_exe = "/nonexistent/floretsim-worker-binary";
    opt.n_shards = 2;
    EXPECT_THROW((void)run_sharded(opt, tiny_spec().expand()),
                 std::runtime_error);
    EXPECT_EQ(count_shard_scratch_dirs(), before)
        << "a dead worker leaked its coordinator scratch directory";
}

/// Writes an executable stand-in worker script that ignores its argv.
std::string write_worker_script(const TempDir& tmp, const std::string& body) {
    const std::string path = tmp.path + "/worker.sh";
    std::ofstream(path) << "#!/bin/sh\n" << body;
    std::filesystem::permissions(path, std::filesystem::perms::owner_all);
    return path;
}

TEST(ShardExecutor, DeadWorkerStderrIsSurfacedInTheError) {
    TempDir tmp;
    ShardOptions opt;
    opt.worker_exe =
        write_worker_script(tmp, "echo boom-stderr >&2\nexit 3\n");
    opt.n_shards = 2;
    try {
        (void)run_sharded(opt, tiny_spec().expand());
        FAIL() << "failing worker accepted";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("exited with status 3"), std::string::npos) << what;
        EXPECT_NE(what.find("boom-stderr"), std::string::npos)
            << "worker stderr not surfaced: " << what;
    }
}

TEST(ShardExecutor, DescribeWaitStatusNamesExitsAndSignals) {
    // Wait statuses as waitpid/pclose encode them on Linux: exit code in
    // the high byte, terminating signal in the low 7 bits. The
    // signal-death path end to end (a worker really SIGKILLed, its death
    // surfaced with the signal name) is pinned by the fleet suite.
    EXPECT_EQ(describe_wait_status(0), "exited with status 0");
    EXPECT_EQ(describe_wait_status(3 << 8), "exited with status 3");
    EXPECT_EQ(describe_wait_status(127 << 8), "exited with status 127");
    EXPECT_EQ(describe_wait_status(9), "died on signal 9 (Killed)");
    EXPECT_EQ(describe_wait_status(15), "died on signal 15 (Terminated)");
}

TEST(ShardExecutor, RunShardedValidatesItsOptions) {
    ShardOptions opt;
    opt.worker_exe = "";
    EXPECT_THROW((void)run_sharded(opt, tiny_spec().expand()),
                 std::invalid_argument);
    opt.worker_exe = "floretsim_run";
    opt.n_shards = 0;
    EXPECT_THROW((void)run_sharded(opt, tiny_spec().expand()),
                 std::invalid_argument);
    opt.n_shards = 2;
    EXPECT_TRUE(run_sharded(opt, {}).empty());  // no points, no workers
}

}  // namespace
}  // namespace floretsim::scenario
