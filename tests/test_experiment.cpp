#include <gtest/gtest.h>

#include "src/core/experiment.h"

namespace floretsim::core::experiment {
namespace {

EvalConfig fast_cfg() {
    auto cfg = default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;  // keep tests quick
    return cfg;
}

TEST(BuildArch, AllFourArchitecturesAreRoutable) {
    for (const auto a : kAllArchs) {
        auto b = build_arch(a, 6, 6);
        EXPECT_EQ(b.topology().node_count(), 36) << arch_name(a);
        EXPECT_TRUE(b.topology().connected()) << arch_name(a);
        EXPECT_TRUE(b.routes().complete()) << arch_name(a);
        EXPECT_NE(b.mapper, nullptr);
    }
}

TEST(BuildArch, FloretCarriesItsSfcSet) {
    auto b = build_arch(Arch::kFloret, 10, 10);
    EXPECT_EQ(b.sfc().lambda(), default_lambda(10, 10));
    EXPECT_TRUE(b.sfc().covers_grid_exactly_once());
}

TEST(BuildArch, MoveSafety) {
    // The mapper holds references into the heap topology/routes; moving
    // the struct must keep them valid (this was a real bug).
    std::vector<BuiltArch> archs;
    for (const auto a : kAllArchs) archs.push_back(build_arch(a, 6, 6));
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN9"};
    const auto tasks = make_tasks(ids, kParamsPerChipletM, owner);
    for (auto& b : archs) {
        MappingStats stats;
        const auto mapped = b.mapper->map_queue(tasks, &stats);
        EXPECT_EQ(stats.tasks_mapped, 1) << arch_name(b.arch);
        EXPECT_TRUE(mapped.front().mapped);
    }
}

TEST(DefaultLambda, PetalsOfAboutTen) {
    EXPECT_EQ(default_lambda(6, 6), 4);    // 36 -> petals of 9
    EXPECT_EQ(default_lambda(10, 10), 10); // 100 -> petals of 10
    const auto l = default_lambda(12, 12);
    EXPECT_NEAR(144.0 / l, 10.0, 3.0);
}

TEST(TaskComputeNs, PositiveAndMonotoneInDepth) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN9", "DNN10"};  // ResNet18/34 CIFAR
    const auto tasks = make_tasks(ids, kParamsPerChipletM, owner);
    const auto set = generate_sfc_set(10, 10, 10);
    FloretMapper mapper(set);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    pim::ReramConfig rc;
    const double t18 = task_compute_ns(mapped[0], rc);
    const double t34 = task_compute_ns(mapped[1], rc);
    EXPECT_GT(t18, 0.0);
    EXPECT_GT(t34, t18);  // deeper network: more serial layer latency
}

TEST(RunMixDynamic, CompletesTheWholeQueue) {
    auto b = build_arch(Arch::kFloret, 10, 10);
    const auto& mix = workload::table2().front();  // WL1
    const auto res = run_mix_dynamic(b, mix, fast_cfg());
    EXPECT_TRUE(res.all_completed);
    EXPECT_GT(res.rounds, 0);
    // Every task runs 1..3 rounds: task_rounds within those bounds.
    const auto n = mix.total_instances();
    EXPECT_GE(res.task_rounds, n);
    EXPECT_LE(res.task_rounds, 3 * n);
}

TEST(RunMixDynamic, DeterministicForSeed) {
    const auto& mix = workload::table2()[4];  // WL5
    auto b1 = build_arch(Arch::kSiamMesh, 10, 10, 13, 2);
    auto b2 = build_arch(Arch::kSiamMesh, 10, 10, 13, 2);
    const auto r1 = run_mix_dynamic(b1, mix, fast_cfg(), 9);
    const auto r2 = run_mix_dynamic(b2, mix, fast_cfg(), 9);
    EXPECT_DOUBLE_EQ(r1.total_cycles, r2.total_cycles);
    EXPECT_DOUBLE_EQ(r1.total_energy_pj, r2.total_energy_pj);
    EXPECT_EQ(r1.rounds, r2.rounds);
}

TEST(RunMixDynamic, IdenticalWorkAcrossArchitectures) {
    // The per-task durations depend only on the seed, so every
    // architecture must execute the same number of task-rounds.
    const auto& mix = workload::table2()[1];  // WL2
    std::vector<std::int64_t> task_rounds;
    for (const auto a : kAllArchs) {
        auto b = build_arch(a, 10, 10, 13, 2);
        const auto res = run_mix_dynamic(b, mix, fast_cfg());
        EXPECT_TRUE(res.all_completed) << arch_name(a);
        task_rounds.push_back(res.task_rounds);
    }
    for (const auto tr : task_rounds) EXPECT_EQ(tr, task_rounds.front());
}

TEST(RunMixDynamic, StrictGapBurnsMoreRoundsOnSwap) {
    // The Fig. 3 mechanism: fragmentation under the contiguity budget
    // lowers concurrency, so the same work takes more rounds on SWAP than
    // on Floret.
    const auto& mix = workload::table2().front();
    auto swap = build_arch(Arch::kSwap, 10, 10, 13, 2);
    auto floret = build_arch(Arch::kFloret, 10, 10);
    const auto rs = run_mix_dynamic(swap, mix, fast_cfg());
    const auto rf = run_mix_dynamic(floret, mix, fast_cfg());
    EXPECT_GE(rs.rounds, rf.rounds);
    EXPECT_LE(static_cast<double>(rs.task_rounds) / rs.rounds,
              static_cast<double>(rf.task_rounds) / rf.rounds);
}

TEST(RunMixDynamic, RoundEpochCacheIsBitIdentical) {
    // Successive rounds with an unchanged resident set reuse the previous
    // round's NoI evaluation; forcing a fresh simulation every round must
    // produce the exact same DynamicResult on the Table II mixes.
    for (const auto& mix : workload::table2()) {
        auto cached_cfg = fast_cfg();
        cached_cfg.round_epoch_cache = true;
        auto forced_cfg = fast_cfg();
        forced_cfg.round_epoch_cache = false;
        auto b1 = build_arch(Arch::kFloret, 10, 10);
        auto b2 = build_arch(Arch::kFloret, 10, 10);
        const auto cached = run_mix_dynamic(b1, mix, cached_cfg, 7);
        const auto forced = run_mix_dynamic(b2, mix, forced_cfg, 7);
        EXPECT_EQ(cached.total_cycles, forced.total_cycles) << mix.name;
        EXPECT_EQ(cached.total_energy_pj, forced.total_energy_pj) << mix.name;
        EXPECT_EQ(cached.flit_hops, forced.flit_hops) << mix.name;
        EXPECT_EQ(cached.rounds, forced.rounds) << mix.name;
        EXPECT_EQ(cached.task_rounds, forced.task_rounds) << mix.name;
        EXPECT_EQ(cached.all_completed, forced.all_completed) << mix.name;
        // The forced run simulates every round; the cached run splits them
        // between evaluations and epoch hits.
        EXPECT_EQ(forced.noi_evals, forced.rounds) << mix.name;
        EXPECT_EQ(forced.round_epoch_hits, 0) << mix.name;
        EXPECT_EQ(cached.noi_evals + cached.round_epoch_hits, cached.rounds)
            << mix.name;
        EXPECT_LE(cached.noi_evals, forced.noi_evals) << mix.name;
    }
}

TEST(RunMixDynamic, RoundEpochCacheFiresOnUnchangedResidency) {
    // At least one Table II mix must hold a resident set across rounds
    // (tasks run 1..3 rounds, so multi-round residents are common).
    std::int64_t hits = 0;
    for (const auto& mix : workload::table2()) {
        auto b = build_arch(Arch::kFloret, 10, 10);
        hits += run_mix_dynamic(b, mix, fast_cfg(), 7).round_epoch_hits;
    }
    EXPECT_GT(hits, 0);
}

TEST(RunMixDynamic, RelaxationRescuesCorneredHeadTask) {
    // On a tiny system with a tight gap budget, the head task may fail on
    // an idle machine; map_one_relaxed must rescue it so the queue drains.
    const auto& mix = workload::table2()[1];  // WL2 has a 94-chiplet VGG19
    auto b = build_arch(Arch::kSiamMesh, 10, 10, 13, /*greedy_max_gap=*/1);
    const auto res = run_mix_dynamic(b, mix, fast_cfg());
    EXPECT_TRUE(res.all_completed);
}

}  // namespace
}  // namespace floretsim::core::experiment
