#include <gtest/gtest.h>

#include <sstream>

#include "src/dnn/model_zoo.h"
#include "src/pim/partitioner.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace floretsim {
namespace {

TEST(TextTable, PrintsAlignedBox) {
    util::TextTable t({"Name", "Value"});
    t.add_row({"alpha", "1"});
    t.add_row({"bee", "22"});
    std::ostringstream os;
    t.print(os);
    const auto s = os.str();
    // Header, separator lines, and both rows present.
    EXPECT_NE(s.find("| Name"), std::string::npos);
    EXPECT_NE(s.find("| alpha"), std::string::npos);
    EXPECT_NE(s.find("| bee"), std::string::npos);
    // Box corners.
    EXPECT_EQ(s.front(), '+');
    // Every line has the same width (aligned box).
    std::istringstream is(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(TextTable, HandlesRaggedRows) {
    util::TextTable t({"A", "B"});
    t.add_row({"only-one"});
    t.add_row({"x", "y", "extra"});
    std::ostringstream os;
    t.print(os);  // must not throw or misalign
    EXPECT_NE(os.str().find("extra"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
    util::TextTable t({"h1", "h2"});
    t.add_row({"a", "1.5"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "h1,h2\na,1.5\n");
}

TEST(TextTable, FmtPrecision) {
    EXPECT_EQ(util::TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(util::TextTable::fmt(3.14159, 0), "3");
    EXPECT_EQ(util::TextTable::fmt(-1.005, 1), "-1.0");
}

TEST(PipelinePeriod, BottleneckIsTheMaxSegment) {
    const auto net = dnn::build_resnet(18, dnn::Dataset::kImageNet);
    const pim::ReramConfig rc;
    const auto plan = pim::partition_by_params(net, 11.69, 1.0);
    const double period = pim::pipeline_period_ns(net, plan, rc);
    EXPECT_GT(period, 0.0);
    double max_seg = 0.0;
    for (const auto& seg : plan.segments)
        max_seg = std::max(max_seg, pim::layer_compute_latency_ns(
                                        net.layer(seg.layer_id), seg.chiplets(), rc));
    EXPECT_DOUBLE_EQ(period, max_seg);
}

TEST(P2Quantile, ExactForSmallSamples) {
    util::P2Quantile q(0.5);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    q.add(3.0);
    EXPECT_DOUBLE_EQ(q.value(), 3.0);
    q.add(1.0);
    q.add(2.0);
    // Below five samples the estimate is the exact interpolated median.
    EXPECT_DOUBLE_EQ(q.value(), 2.0);
    EXPECT_EQ(q.count(), 3u);
}

TEST(P2Quantile, TracksStreamQuantilesOfUniformNoise) {
    util::Rng rng(77);
    util::P2Quantile p50(0.5), p95(0.95), p99(0.99);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform(0.0, 1000.0);
        samples.push_back(x);
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
    // The sketch tracks the exact order statistics within a few percent of
    // the value range.
    EXPECT_NEAR(p50.value(), util::percentile(samples, 0.50), 25.0);
    EXPECT_NEAR(p95.value(), util::percentile(samples, 0.95), 25.0);
    EXPECT_NEAR(p99.value(), util::percentile(samples, 0.99), 25.0);
    EXPECT_LT(p50.value(), p95.value());
    EXPECT_LT(p95.value(), p99.value());
}

TEST(P2Quantile, DeterministicForIdenticalStreams) {
    util::Rng rng_a(5), rng_b(5);
    util::P2Quantile a(0.9), b(0.9);
    for (int i = 0; i < 1000; ++i) {
        a.add(rng_a.normal(10.0, 2.0));
        b.add(rng_b.normal(10.0, 2.0));
    }
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(a.count(), b.count());
}

TEST(PipelinePeriod, MoreChipletsShortenThePeriod) {
    const auto net = dnn::build_vgg(11, dnn::Dataset::kImageNet);
    const pim::ReramConfig rc;
    // Smaller capacity -> more chiplets per layer -> more parallelism.
    const auto coarse = pim::partition_by_params(net, 132.9, 8.0);
    const auto fine = pim::partition_by_params(net, 132.9, 0.5);
    EXPECT_LE(pim::pipeline_period_ns(net, fine, rc),
              pim::pipeline_period_ns(net, coarse, rc));
}

}  // namespace
}  // namespace floretsim
