#include <gtest/gtest.h>

#include <string>

#include "src/dnn/model_zoo.h"

namespace floretsim::dnn {
namespace {

/// Published torchvision parameter counts (weights + biases + batch-norm).
/// Our builders reconstruct the architectures from shape arithmetic, so
/// totals must land within a small tolerance of the reference counts.
struct Reference {
    const char* model;
    Dataset dataset;
    double params;
    double tol;  // relative
};

class ZooParams : public ::testing::TestWithParam<Reference> {};

TEST_P(ZooParams, MatchesPublishedCount) {
    const auto& ref = GetParam();
    const Network net = build_model(ref.model, ref.dataset);
    const auto params = static_cast<double>(net.total_params());
    EXPECT_NEAR(params / ref.params, 1.0, ref.tol)
        << ref.model << " computed " << params;
}

INSTANTIATE_TEST_SUITE_P(
    ImageNet, ZooParams,
    ::testing::Values(
        Reference{"ResNet18", Dataset::kImageNet, 11.69e6, 0.01},
        Reference{"ResNet34", Dataset::kImageNet, 21.80e6, 0.01},
        Reference{"ResNet50", Dataset::kImageNet, 25.56e6, 0.01},
        Reference{"ResNet101", Dataset::kImageNet, 44.55e6, 0.01},
        Reference{"ResNet152", Dataset::kImageNet, 60.19e6, 0.01},
        Reference{"VGG11", Dataset::kImageNet, 132.86e6, 0.01},
        Reference{"VGG16", Dataset::kImageNet, 138.36e6, 0.01},
        Reference{"VGG19", Dataset::kImageNet, 143.67e6, 0.01},
        Reference{"DenseNet169", Dataset::kImageNet, 14.15e6, 0.015},
        Reference{"GoogLeNet", Dataset::kImageNet, 6.62e6, 0.03}));

TEST(Zoo, ResNet110IsCifarStyle) {
    const Network net = build_resnet(110, Dataset::kCifar10);
    // He et al.: ~1.7M parameters for ResNet-110 on CIFAR-10.
    EXPECT_NEAR(static_cast<double>(net.total_params()), 1.73e6, 0.06e6);
}

TEST(Zoo, Cifar10VariantsShrinkClassifier) {
    const Network imagenet = build_vgg(19, Dataset::kImageNet);
    const Network cifar = build_vgg(19, Dataset::kCifar10);
    EXPECT_GT(imagenet.total_params(), 6 * cifar.total_params());
    // ~20.55M computed vs the paper's Table I value of 20.42M for
    // VGG19@CIFAR-10 — consistent with a compact 512-512 classifier.
    EXPECT_NEAR(static_cast<double>(cifar.total_params()), 20.55e6, 0.5e6);
}

TEST(Zoo, UnknownModelThrows) {
    EXPECT_THROW(build_model("AlexNet", Dataset::kImageNet), std::invalid_argument);
}

TEST(Zoo, AvailableModelsAllBuild) {
    for (const auto& name : available_models()) {
        const Network net = build_model(name, Dataset::kCifar10);
        EXPECT_GT(net.total_params(), 0) << name;
        EXPECT_GT(net.total_macs(), 0) << name;
        EXPECT_GE(net.size(), 10u) << name;
    }
}

TEST(Zoo, ResNet34SkipTrafficShare) {
    // §II of the paper: in ResNet34, skip-connection activations are about
    // 19% of total propagated activations (linear traffic ~4.5x higher).
    const Network net = build_resnet(34, Dataset::kImageNet);
    const auto skip = static_cast<double>(net.skip_edge_activations());
    const auto total = static_cast<double>(net.total_edge_activations());
    const double share = skip / total;
    EXPECT_GT(share, 0.10);
    EXPECT_LT(share, 0.30);
    const double linear_over_skip = (total - skip) / skip;
    EXPECT_GT(linear_over_skip, 2.5);
    EXPECT_LT(linear_over_skip, 8.0);
}

TEST(Zoo, ResNetDepthsOrdered) {
    const auto p18 = build_resnet(18, Dataset::kImageNet).total_params();
    const auto p34 = build_resnet(34, Dataset::kImageNet).total_params();
    const auto p50 = build_resnet(50, Dataset::kImageNet).total_params();
    const auto p101 = build_resnet(101, Dataset::kImageNet).total_params();
    const auto p152 = build_resnet(152, Dataset::kImageNet).total_params();
    EXPECT_LT(p18, p34);
    EXPECT_LT(p34, p50);
    EXPECT_LT(p50, p101);
    EXPECT_LT(p101, p152);
}

TEST(Zoo, DenseNetHasDenseSkipEdges) {
    const Network net = build_densenet169(Dataset::kImageNet);
    std::int64_t skip_edges = 0;
    for (const auto& e : net.edges()) skip_edges += e.skip;
    // Accumulated-streaming representation: every dense layer forwards the
    // running concatenation past its two convs — one skip edge per layer
    // (82 dense layers across the four blocks).
    EXPECT_GE(skip_edges, 80);
    // Dense skips carry a large share of the activation traffic (the
    // accumulated feature map), far above ResNet's ~19%.
    const double share = static_cast<double>(net.skip_edge_activations()) /
                         static_cast<double>(net.total_edge_activations());
    EXPECT_GT(share, 0.25);
}

TEST(Zoo, GoogLeNetInceptionWidths) {
    const Network net = build_googlenet(Dataset::kImageNet);
    // Find the final concat before global pooling: 384+384+128+128 = 1024.
    const auto& layers = net.layers();
    const Layer* gap = nullptr;
    for (const auto& l : layers)
        if (l.kind == LayerKind::kGlobalPool) gap = &l;
    ASSERT_NE(gap, nullptr);
    EXPECT_EQ(gap->in.c, 1024);
}

TEST(Zoo, VggIsPureChain) {
    const Network net = build_vgg(16, Dataset::kImageNet);
    for (const auto& e : net.edges()) EXPECT_FALSE(e.skip);
}

TEST(Zoo, InputShapesFollowDataset) {
    EXPECT_EQ(input_shape(Dataset::kImageNet), (Shape{3, 224, 224}));
    EXPECT_EQ(input_shape(Dataset::kCifar10), (Shape{3, 32, 32}));
    EXPECT_EQ(num_classes(Dataset::kImageNet), 1000);
    EXPECT_EQ(num_classes(Dataset::kCifar10), 10);
}

TEST(Zoo, MacsScaleWithResolution) {
    const auto cifar = build_resnet(18, Dataset::kCifar10).total_macs();
    const auto imagenet = build_resnet(18, Dataset::kImageNet).total_macs();
    EXPECT_GT(imagenet, 10 * cifar);
}

class ZooStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooStructure, GraphInvariants) {
    const Network net = build_model(GetParam(), Dataset::kImageNet);
    // Edges reference valid, forward-ordered layers.
    for (const auto& e : net.edges()) {
        ASSERT_GE(e.src, 0);
        ASSERT_LT(static_cast<std::size_t>(e.dst), net.size());
        EXPECT_LT(e.src, e.dst);
        EXPECT_GT(e.elems, 0);
    }
    // Every non-input layer has at least one incoming edge.
    std::vector<int> indeg(net.size(), 0);
    for (const auto& e : net.edges()) ++indeg[static_cast<std::size_t>(e.dst)];
    for (std::size_t i = 1; i < net.size(); ++i) EXPECT_GT(indeg[i], 0) << i;
    // The final layer is the classifier.
    EXPECT_EQ(net.layers().back().kind, LayerKind::kFc);
    EXPECT_EQ(net.layers().back().out.c, 1000);
}

INSTANTIATE_TEST_SUITE_P(Models, ZooStructure,
                         ::testing::Values("ResNet18", "ResNet50", "ResNet110",
                                           "VGG19", "DenseNet169", "GoogLeNet"));

}  // namespace
}  // namespace floretsim::dnn
