#include <gtest/gtest.h>

#include "src/workload/tables.h"

namespace floretsim::workload {
namespace {

TEST(Table1, ThirteenWorkloads) {
    const auto& t = table1();
    ASSERT_EQ(t.size(), 13u);
    EXPECT_EQ(t.front().id, "DNN1");
    EXPECT_EQ(t.back().id, "DNN13");
}

TEST(Table1, DatasetSplitMatchesPaper) {
    // DNN1-8 on ImageNet, DNN9-13 on CIFAR-10.
    const auto& t = table1();
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(t[i].dataset, dnn::Dataset::kImageNet) << t[i].id;
    for (std::size_t i = 8; i < 13; ++i)
        EXPECT_EQ(t[i].dataset, dnn::Dataset::kCifar10) << t[i].id;
}

TEST(Table1, PaperParamsAsPrinted) {
    EXPECT_DOUBLE_EQ(workload_by_id("DNN1").paper_params_m, 24.76);
    EXPECT_DOUBLE_EQ(workload_by_id("DNN7").paper_params_m, 93.4);
    EXPECT_DOUBLE_EQ(workload_by_id("DNN13").paper_params_m, 6.16);
}

TEST(Table1, AllModelsBuildable) {
    for (const auto& w : table1()) {
        const auto net = dnn::build_model(w.model, w.dataset);
        EXPECT_GT(net.total_params(), 0) << w.id;
    }
}

TEST(Table1, UnknownIdThrows) {
    EXPECT_THROW((void)workload_by_id("DNN99"), std::invalid_argument);
}

TEST(Table2, FiveMixes) {
    const auto& t = table2();
    ASSERT_EQ(t.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(t[i].name, "WL" + std::to_string(i + 1));
}

TEST(Table2, Wl1StructureMatchesPaper) {
    // WL1 = 16xDNN1 -> DNN2 -> 3xDNN3 -> 4xDNN4 -> 2xDNN5 -> DNN6 -> DNN7.
    const auto& wl1 = table2().front();
    ASSERT_EQ(wl1.entries.size(), 7u);
    EXPECT_EQ(wl1.entries[0], (std::pair<std::string, std::int32_t>{"DNN1", 16}));
    EXPECT_EQ(wl1.entries[3], (std::pair<std::string, std::int32_t>{"DNN4", 4}));
    EXPECT_EQ(wl1.total_instances(), 28);
}

TEST(Table2, ExpansionPreservesOrderAndCount) {
    const auto& wl5 = table2().back();
    const auto queue = expand_mix(wl5);
    EXPECT_EQ(static_cast<std::int32_t>(queue.size()), wl5.total_instances());
    EXPECT_EQ(queue.front(), "DNN3");
    EXPECT_EQ(queue.back(), "DNN8");
    // First four after DNN3 are the 3xDNN8 then DNN7 block starts.
    EXPECT_EQ(queue[1], "DNN8");
    EXPECT_EQ(queue[3], "DNN8");
    EXPECT_EQ(queue[4], "DNN7");
}

TEST(Table2, TableParamsSumConsistent) {
    // Sum over entries of Table I params; independent hand check for WL5:
    // 1x25.94 + 3x54.84 + 4x93.4 + 6x36.5 + 4x25.94 + 3x93.4 + 2x54.84.
    const auto& wl5 = table2().back();
    const double expect = 25.94 + 3 * 54.84 + 4 * 93.4 + 6 * 36.5 + 4 * 25.94 +
                          3 * 93.4 + 2 * 54.84;
    EXPECT_NEAR(wl5.table_params_m(), expect, 1e-9);
}

TEST(Table2, PaperTotalsRecorded) {
    EXPECT_DOUBLE_EQ(table2()[0].paper_total_params_b, 1.1);
    EXPECT_DOUBLE_EQ(table2()[2].paper_total_params_b, 8.8);
}

TEST(RandomMix, DeterministicAndSized) {
    util::Rng r1(5);
    util::Rng r2(5);
    const auto a = random_mix(r1, 20);
    const auto b = random_mix(r2, 20);
    EXPECT_EQ(a.total_instances(), 20);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) EXPECT_EQ(a.entries[i], b.entries[i]);
}

TEST(RandomMix, AllIdsValid) {
    util::Rng r(9);
    const auto mix = random_mix(r, 50);
    for (const auto& [id, count] : mix.entries) {
        EXPECT_NO_THROW((void)workload_by_id(id));
        EXPECT_GT(count, 0);
    }
}

}  // namespace
}  // namespace floretsim::workload
