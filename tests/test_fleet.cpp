/// Unit and fault-injection pins for the persistent worker fleet
/// (src/fleet/): the framed NDJSON protocol (strict both directions),
/// the serve_worker loop, and the Coordinator end to end — lease
/// dispatch, fabric affinity, work stealing from deterministic
/// stragglers, dead-worker recovery (SIGKILL mid-lease -> restart +
/// reassign, bit-identical report), bounded retry, and RAII scratch /
/// child-process cleanup.
///
/// This binary is its own fleet worker: `test_fleet --fleet-worker`
/// runs serve_worker over stdin/stdout (see main below), so the
/// Coordinator tests spawn real subprocesses without depending on the
/// floretsim_run driver binary. The full-registry differential against
/// the driver is the fleet_parity ctest (scripts/fleet_parity.sh).

#include "src/fleet/coordinator.h"
#include "src/fleet/pool.h"
#include "src/fleet/protocol.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/sweep.h"
#include "src/scenario/shard.h"
#include "src/scenario/spec_json.h"
#include "src/util/json.h"
#include "src/workload/tables.h"

/// Absolute path of this test binary, captured in main — the worker
/// executable the Coordinator tests spawn.
static std::string g_self_exe;  // NOLINT

namespace floretsim::fleet {
namespace {

namespace experiment = core::experiment;
using experiment::Arch;

/// 2 archs x 1 grid x n_mixes points, sized to finish fast. Two fabric
/// groups (one per arch), so a 2-worker fleet splits cleanly.
core::SweepSpec fleet_spec(std::size_t n_mixes) {
    core::SweepSpec spec;
    spec.archs = {Arch::kSiamMesh, Arch::kFloret};
    spec.grids = {{6, 6}};
    const auto& mixes = workload::table2();
    spec.mixes.assign(mixes.begin(),
                      mixes.begin() + std::min(n_mixes, mixes.size()));
    auto cfg = experiment::default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;  // keep tests quick
    spec.evals = {cfg};
    spec.greedy_max_gap = 2;
    return spec;
}

/// The in-process reference rows for fleet_spec(n_mixes), memoized: the
/// bit-identity target every fleet differential compares against.
const std::vector<core::SweepRow>& expected_rows(std::size_t n_mixes) {
    static std::map<std::size_t, std::vector<core::SweepRow>> cache;
    auto it = cache.find(n_mixes);
    if (it == cache.end()) {
        core::SweepEngine engine(1);
        it = cache.emplace(n_mixes, engine.run(fleet_spec(n_mixes)).rows)
                 .first;
    }
    return it->second;
}

std::vector<core::SweepRow> drain(std::unique_ptr<core::RowStream> stream) {
    std::vector<core::SweepRow> rows;
    while (auto row = stream->next()) rows.push_back(std::move(*row));
    return rows;
}

void expect_rows_bit_identical(const std::vector<core::SweepRow>& got,
                               const std::vector<core::SweepRow>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].point, want[i].point) << "point " << i;
        // `seconds` is wall-clock and deliberately excluded.
        EXPECT_EQ(got[i].result, want[i].result) << "point " << i;
    }
}

/// Self-deleting scratch directory.
struct TempDir {
    std::string path;
    TempDir() {
        std::string templ =
            (std::filesystem::temp_directory_path() / "floretsim-fleettest-XXXXXX")
                .string();
        if (!mkdtemp(templ.data())) throw std::runtime_error("mkdtemp failed");
        path = templ;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
};

/// Clears the fleet fault-injection env vars around every test, so one
/// test's injected fault can never leak into another (or into a later
/// suite run in the same environment).
class FleetEnv : public ::testing::Test {
protected:
    void SetUp() override { clear(); }
    void TearDown() override { clear(); }
    static void clear() {
        unsetenv("FLORETSIM_FLEET_KILL");
        unsetenv("FLORETSIM_FLEET_STALL");
        unsetenv("FLORETSIM_FLEET_PERR");
        unsetenv("FLORETSIM_FLEET_STEAL_AFTER");
    }
};

FleetOptions self_fleet_options(std::int32_t n_workers) {
    FleetOptions opt;
    opt.worker_exe = g_self_exe;
    opt.worker_args = {"--fleet-worker"};
    opt.n_workers = n_workers;
    opt.steal_after_s = 0;  // tests opt in to stealing explicitly via env
    return opt;
}

/// A synthetic row whose identity is readable back out of total_cycles
/// (no dynamic run needed — expand() alone is cheap).
core::SweepRow tagged_row(std::size_t i) {
    core::SweepRow row;
    row.point = fleet_spec(1).expand().front();
    row.result.total_cycles = 1000.0 + static_cast<double>(i);
    return row;
}

// --------------------------------------------------------- frame round trips

TEST(FleetProtocol, WorkerBoundFramesRoundTrip) {
    InitFrame init;
    init.worker = 2;
    init.n_workers = 4;
    init.gen = 3;
    const WorkerBound got_init = worker_bound_from_line(init_line(init));
    ASSERT_TRUE(got_init.init.has_value());
    EXPECT_EQ(*got_init.init, init);

    SweepFrame sweep;
    sweep.id = 17;
    sweep.points_file = "/tmp/points with spaces.json";
    sweep.n_points = 40;
    const WorkerBound got_sweep = worker_bound_from_line(sweep_line(sweep));
    ASSERT_TRUE(got_sweep.sweep.has_value());
    EXPECT_EQ(*got_sweep.sweep, sweep);

    LeaseFrame lease;
    lease.id = 5;
    lease.sweep = 17;
    lease.indices = {7, 0, 39};
    const WorkerBound got_lease = worker_bound_from_line(lease_line(lease));
    ASSERT_TRUE(got_lease.lease.has_value());
    EXPECT_EQ(*got_lease.lease, lease);

    const WorkerBound got_quit = worker_bound_from_line(quit_line());
    EXPECT_TRUE(got_quit.quit);
    EXPECT_FALSE(got_quit.init || got_quit.sweep || got_quit.lease);
}

TEST(FleetProtocol, CoordinatorBoundFramesRoundTrip) {
    ReadyFrame ready;
    ready.worker = 1;
    ready.gen = 2;
    ready.pid = 4242;
    const CoordinatorBound got_ready =
        coordinator_bound_from_line(ready_line(ready));
    ASSERT_TRUE(got_ready.ready.has_value());
    EXPECT_EQ(*got_ready.ready, ready);

    LoadedFrame loaded;
    loaded.sweep = 9;
    loaded.n_points = 12;
    const CoordinatorBound got_loaded =
        coordinator_bound_from_line(loaded_line(loaded));
    ASSERT_TRUE(got_loaded.loaded.has_value());
    EXPECT_EQ(*got_loaded.loaded, loaded);

    DoneFrame done;
    done.lease = 31;
    done.fabric_hits = 100;
    done.fabric_misses = 4;
    const CoordinatorBound got_done =
        coordinator_bound_from_line(done_line(done));
    ASSERT_TRUE(got_done.done.has_value());
    EXPECT_EQ(*got_done.done, done);

    PointErrorFrame perr;
    perr.sweep = 9;
    perr.index = 3;
    perr.what = "no such workload \"DNN99\"";
    const CoordinatorBound got_perr =
        coordinator_bound_from_line(perr_line(perr));
    ASSERT_TRUE(got_perr.perr.has_value());
    EXPECT_EQ(*got_perr.perr, perr);

    FleetRow row;
    row.sweep = 9;
    row.index = 3;
    row.row = tagged_row(3);
    const CoordinatorBound got_row =
        coordinator_bound_from_line(fleet_row_line(row));
    ASSERT_TRUE(got_row.row.has_value());
    EXPECT_EQ(got_row.row->sweep, 9);
    EXPECT_EQ(got_row.row->index, 3u);
    EXPECT_EQ(got_row.row->row, row.row);

    // Heartbeats reuse the PR 7 envelope verbatim.
    scenario::Heartbeat hb;
    hb.shard = 1;
    hb.n_shards = 2;
    hb.done = 3;
    hb.total = 9;
    hb.seconds = 1.5;
    const CoordinatorBound got_hb =
        coordinator_bound_from_line(scenario::heartbeat_line(hb));
    ASSERT_TRUE(got_hb.hb.has_value());
    EXPECT_EQ(*got_hb.hb, hb);
}

// ------------------------------------------------------ adversarial corpus

TEST(FleetProtocol, WorkerBoundRejectsMalformedFrames) {
    for (const char* bad : {
             "",                                    // empty
             "{",                                   // truncated JSON
             "[1, 2]",                              // not an object
             "{}",                                  // no envelope key
             "null",                                // not an object
             "{\"init\": {\"worker\": 0, \"n_workers\": 1, \"gen\": 0}, "
             "\"quit\": {}}",                       // two envelope keys
             "{\"bogus\": {}}",                     // unknown frame
             "{\"init\": 3}",                       // payload not an object
             "{\"init\": {\"worker\": 0, \"n_workers\": 1}}",  // missing gen
             "{\"init\": {\"worker\": 0, \"n_workers\": 1, \"gen\": 0, "
             "\"extra\": 1}}",                      // unknown key
             "{\"init\": {\"worker\": 1, \"n_workers\": 1, \"gen\": 0}}",
             "{\"init\": {\"worker\": -1, \"n_workers\": 2, \"gen\": 0}}",
             "{\"init\": {\"worker\": 0, \"n_workers\": 0, \"gen\": 0}}",
             "{\"init\": {\"worker\": 0, \"n_workers\": 1, \"gen\": -1}}",
             "{\"sweep\": {\"id\": -1, \"points_file\": \"p\", "
             "\"n_points\": 1}}",                   // negative sweep id
             "{\"sweep\": {\"id\": 0, \"points_file\": \"\", "
             "\"n_points\": 1}}",                   // empty points file
             "{\"sweep\": {\"id\": 0, \"points_file\": \"p\", "
             "\"n_points\": 0}}",                   // zero points
             "{\"sweep\": {\"id\": 0, \"points_file\": \"p\", "
             "\"n_points\": -4}}",                  // negative count
             "{\"lease\": {\"id\": 0, \"sweep\": 0, \"indices\": []}}",
             "{\"lease\": {\"id\": -1, \"sweep\": 0, \"indices\": [0]}}",
             "{\"lease\": {\"id\": 0, \"sweep\": -2, \"indices\": [0]}}",
             "{\"lease\": {\"id\": 0, \"sweep\": 0, \"indices\": 3}}",
             "{\"lease\": {\"id\": 0, \"sweep\": 0, \"indices\": [-1]}}",
             "{\"lease\": {\"id\": 0, \"indices\": [0]}}",  // missing sweep
             "{\"quit\": {\"now\": true}}",         // quit carries no payload
         })
        EXPECT_THROW((void)worker_bound_from_line(bad), std::invalid_argument)
            << bad;
}

TEST(FleetProtocol, CoordinatorBoundRejectsMalformedFrames) {
    for (const char* bad : {
             "",                                    // empty
             "{\"ready\": {\"worker\": 0, \"gen\": 0}}",  // missing pid
             "{\"ready\": {\"worker\": 0, \"gen\": 0, \"pid\": 1, "
             "\"x\": 2}}",                          // unknown key
             "{\"ready\": {\"worker\": -1, \"gen\": 0, \"pid\": 1}}",
             "{\"ready\": {\"worker\": 0, \"gen\": -1, \"pid\": 1}}",
             "{\"ready\": {\"worker\": 0, \"gen\": 0, \"pid\": -1}}",
             "{\"loaded\": {\"sweep\": -1, \"n_points\": 1}}",
             "{\"loaded\": {\"sweep\": 0}}",        // missing n_points
             "{\"done\": {\"lease\": 0, \"fabric_hits\": -1, "
             "\"fabric_misses\": 0}}",              // negative counter
             "{\"done\": {\"lease\": 0, \"fabric_hits\": 0}}",
             "{\"perr\": {\"sweep\": 0, \"index\": 0, \"what\": 3}}",
             "{\"perr\": {\"sweep\": 0, \"what\": \"x\"}}",  // missing index
             "{\"sweep\": 0, \"index\": 0}",        // row without a row
             "{\"sweep\": -1, \"index\": 0, \"row\": {}}",
             "{\"sweep\": 0, \"index\": 0, \"row\": {}, \"x\": 1}",
             "{\"hb\": {\"bogus\": 1}}",            // strict hb parse
             "{\"rows\": []}",                      // unknown frame
         })
        EXPECT_THROW((void)coordinator_bound_from_line(bad),
                     std::invalid_argument)
            << bad;
}

// --------------------------------------------------------- serve_worker loop

/// Writes fleet_spec(n_mixes)'s expanded points as a points file, the
/// way the coordinator's run_sweep does.
std::string write_points_file(const TempDir& tmp, std::size_t n_mixes) {
    const std::string path = tmp.path + "/points.json";
    std::ofstream f(path);
    f << util::json_serialize(
        scenario::to_json(fleet_spec(n_mixes).expand()));
    return path;
}

std::string protocol_script(const std::vector<std::string>& lines) {
    std::string text;
    for (const auto& l : lines) {
        text += l;
        text += '\n';
    }
    return text;
}

TEST(FleetServeWorker, ServesInitSweepLeaseQuit) {
    TempDir tmp;
    const auto points = fleet_spec(1).expand();
    ASSERT_EQ(points.size(), 2u);
    InitFrame init;
    init.worker = 0;
    init.n_workers = 1;
    init.gen = 0;
    SweepFrame sweep;
    sweep.id = 7;
    sweep.points_file = write_points_file(tmp, 1);
    sweep.n_points = points.size();
    LeaseFrame lease;
    lease.id = 11;
    lease.sweep = 7;
    lease.indices = {0, 1};
    std::istringstream in(protocol_script({init_line(init), sweep_line(sweep),
                                           lease_line(lease), quit_line()}));
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    EXPECT_EQ(serve_worker(in, out, err, engine), 0);
    EXPECT_TRUE(err.str().empty()) << err.str();

    std::vector<core::SweepRow> rows(points.size());
    std::size_t n_rows = 0, n_hb = 0;
    bool saw_ready = false, saw_loaded = false, saw_done = false;
    std::istringstream lines(out.str());
    for (std::string line; std::getline(lines, line);) {
        const CoordinatorBound frame = coordinator_bound_from_line(line);
        if (frame.ready) {
            EXPECT_FALSE(saw_ready) << "ready emitted twice";
            EXPECT_EQ(frame.ready->worker, 0);
            EXPECT_EQ(frame.ready->gen, 0);
            EXPECT_GT(frame.ready->pid, 0);
            saw_ready = true;
        } else if (frame.loaded) {
            EXPECT_TRUE(saw_ready) << "loaded before ready";
            EXPECT_EQ(frame.loaded->sweep, 7);
            EXPECT_EQ(frame.loaded->n_points, points.size());
            saw_loaded = true;
        } else if (frame.row) {
            EXPECT_EQ(frame.row->sweep, 7);
            ASSERT_LT(frame.row->index, rows.size());
            rows[frame.row->index] = frame.row->row;
            ++n_rows;
        } else if (frame.hb) {
            EXPECT_EQ(frame.hb->shard, 0);
            EXPECT_EQ(frame.hb->n_shards, 1);
            EXPECT_EQ(frame.hb->total, points.size());
            ++n_hb;
        } else if (frame.done) {
            EXPECT_EQ(frame.done->lease, 11);
            // Two points, two fabrics: both were cold in this process.
            EXPECT_EQ(frame.done->fabric_misses, 2);
            saw_done = true;
        } else {
            FAIL() << "unexpected frame: " << line;
        }
    }
    EXPECT_TRUE(saw_ready && saw_loaded && saw_done);
    EXPECT_EQ(n_rows, points.size());
    EXPECT_EQ(n_hb, points.size()) << "one heartbeat per finished point";
    expect_rows_bit_identical(rows, expected_rows(1));
}

TEST(FleetServeWorker, BareEofIsAnOrderlyExit) {
    std::istringstream in("");
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    EXPECT_EQ(serve_worker(in, out, err, engine), 0);
    EXPECT_TRUE(out.str().empty());
}

TEST(FleetServeWorker, MalformedFrameIsAProtocolError) {
    std::istringstream in("this is not a frame\n");
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    EXPECT_EQ(serve_worker(in, out, err, engine), 3);
    EXPECT_NE(err.str().find("fleet frame"), std::string::npos) << err.str();
}

TEST(FleetServeWorker, FrameBeforeInitIsAProtocolError) {
    LeaseFrame lease;
    lease.id = 0;
    lease.sweep = 0;
    lease.indices = {0};
    std::istringstream in(protocol_script({lease_line(lease)}));
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    EXPECT_EQ(serve_worker(in, out, err, engine), 3);
    EXPECT_NE(err.str().find("before init"), std::string::npos) << err.str();
}

TEST(FleetServeWorker, LeaseValidationIsAProtocolError) {
    TempDir tmp;
    InitFrame init;
    SweepFrame sweep;
    sweep.id = 7;
    sweep.points_file = write_points_file(tmp, 1);
    sweep.n_points = 2;
    // A lease targeting the wrong sweep.
    {
        LeaseFrame lease;
        lease.id = 0;
        lease.sweep = 8;
        lease.indices = {0};
        std::istringstream in(protocol_script(
            {init_line(init), sweep_line(sweep), lease_line(lease)}));
        std::ostringstream out, err;
        core::SweepEngine engine(1);
        EXPECT_EQ(serve_worker(in, out, err, engine), 3);
        EXPECT_NE(err.str().find("targets sweep"), std::string::npos)
            << err.str();
    }
    // A lease index past the end of the loaded sweep.
    {
        LeaseFrame lease;
        lease.id = 0;
        lease.sweep = 7;
        lease.indices = {5};
        std::istringstream in(protocol_script(
            {init_line(init), sweep_line(sweep), lease_line(lease)}));
        std::ostringstream out, err;
        core::SweepEngine engine(1);
        EXPECT_EQ(serve_worker(in, out, err, engine), 3);
        EXPECT_NE(err.str().find("out of range"), std::string::npos)
            << err.str();
    }
}

TEST(FleetServeWorker, MissingPointsFileIsAProtocolError) {
    TempDir tmp;
    InitFrame init;
    SweepFrame sweep;
    sweep.id = 1;
    sweep.points_file = tmp.path + "/no-such-points.json";
    sweep.n_points = 2;
    std::istringstream in(
        protocol_script({init_line(init), sweep_line(sweep)}));
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    EXPECT_EQ(serve_worker(in, out, err, engine), 3);
    EXPECT_NE(err.str().find("cannot read points file"), std::string::npos)
        << err.str();
}

TEST_F(FleetEnv, FailingPointEmitsPerrAndKeepsServing) {
    TempDir tmp;
    // The strict points-file parse means a point that *parses* cannot
    // name a bad workload, so the failure is injected: the worker's 2nd
    // evaluation attempt throws instead of evaluating (a single-threaded
    // engine attempts the lease in order, so attempt 2 is index 1).
    setenv("FLORETSIM_FLEET_PERR", "0:0:2", 1);
    InitFrame init;
    SweepFrame sweep;
    sweep.id = 2;
    sweep.points_file = write_points_file(tmp, 1);
    sweep.n_points = 2;
    LeaseFrame lease;
    lease.id = 4;
    lease.sweep = 2;
    lease.indices = {0, 1};
    std::istringstream in(protocol_script({init_line(init), sweep_line(sweep),
                                           lease_line(lease), quit_line()}));
    std::ostringstream out, err;
    core::SweepEngine engine(1);
    // The failing point is reported in-band; the worker itself survives
    // to serve the quit frame (exit 0, not a crash).
    EXPECT_EQ(serve_worker(in, out, err, engine), 0);
    bool saw_row0 = false, saw_perr1 = false, saw_done = false;
    std::istringstream lines(out.str());
    for (std::string line; std::getline(lines, line);) {
        const CoordinatorBound frame = coordinator_bound_from_line(line);
        if (frame.row && frame.row->index == 0) saw_row0 = true;
        if (frame.perr) {
            EXPECT_EQ(frame.perr->index, 1u);
            EXPECT_FALSE(frame.perr->what.empty());
            saw_perr1 = true;
        }
        if (frame.done) saw_done = true;
    }
    EXPECT_TRUE(saw_row0);
    EXPECT_TRUE(saw_perr1);
    EXPECT_TRUE(saw_done) << "a failed point must not swallow the lease ack";
}

// ------------------------------------------------- coordinator end to end

TEST_F(FleetEnv, SweepMatchesInProcessRunAndStaysWarmAcrossSweeps) {
    const auto points = fleet_spec(3).expand();
    ASSERT_EQ(points.size(), 6u);
    Coordinator fleet(self_fleet_options(2));
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().sweeps, 1);
    EXPECT_EQ(fleet.stats().rows, 6);
    EXPECT_EQ(fleet.stats().worker_deaths, 0);
    EXPECT_EQ(fleet.stats().duplicate_rows, 0);
    EXPECT_EQ(fleet.stats().stale_rows, 0);
    // Two fabric groups (one per arch). Which worker adopts which group
    // races with spawn order on a loaded box, but the process-cache
    // invariant is exact: every group is built at least once somewhere,
    // and no worker ever builds the same fabric twice.
    EXPECT_GE(fleet.stats().fleet_fabric_misses, 2);
    EXPECT_LE(fleet.stats().fleet_fabric_misses, 4);

    // Same points again on the now-warm fleet.
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().sweeps, 2);
    EXPECT_EQ(fleet.stats().rows, 12);
    EXPECT_LE(fleet.stats().fleet_fabric_misses, 4)
        << "a worker rebuilt a fabric its ArchCache already had";
    EXPECT_GT(fleet.stats().affinity_hits, 0);
    EXPECT_GT(fleet.stats().leases_issued, 0);
}

TEST_F(FleetEnv, WarmPoolNeverRebuildsAFabric) {
    // Single worker for full determinism: sweep 1 builds each of the two
    // fabrics exactly once; sweep 2 runs entirely against the persistent
    // process's warm ArchCache — zero new misses, all affinity hits.
    const auto points = fleet_spec(3).expand();
    Coordinator fleet(self_fleet_options(1));
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().fleet_fabric_misses, 2);
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().fleet_fabric_misses, 2)
        << "the warm pool rebuilt a fabric";
    EXPECT_GT(fleet.stats().fleet_fabric_hits, 0);
    EXPECT_GT(fleet.stats().affinity_hits, 0);
}

TEST_F(FleetEnv, KilledWorkerIsRestartedAndReportIsBitIdentical) {
    // Worker 1's first incarnation SIGKILLs itself right after its 2nd
    // row: the coordinator must reap it, surface the death, restart it,
    // reassign the un-acked remainder of its lease(s), and still produce
    // the exact in-process rows.
    setenv("FLORETSIM_FLEET_KILL", "1:0:2", 1);
    const auto points = fleet_spec(3).expand();
    std::ostringstream progress;
    auto opt = self_fleet_options(2);
    opt.progress = &progress;
    Coordinator fleet(opt);
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().worker_deaths, 1);
    EXPECT_EQ(fleet.stats().worker_restarts, 1);
    EXPECT_GE(fleet.stats().points_reassigned, 1);
    EXPECT_EQ(fleet.stats().rows, 6);
    EXPECT_NE(progress.str().find("died on signal 9"), std::string::npos)
        << progress.str();
    EXPECT_NE(progress.str().find("restarted (gen 1)"), std::string::npos)
        << progress.str();

    // The restarted worker rejoins for the next sweep as a full peer.
    unsetenv("FLORETSIM_FLEET_KILL");
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_EQ(fleet.stats().worker_deaths, 1) << "the gen-1 worker died too";
}

TEST_F(FleetEnv, PointFailureFailsTheSweepNamingThePoint) {
    // A perr frame is a point-level failure, not a worker death: the
    // coordinator must fail the sweep with the point's message instead
    // of retrying (a deterministic throw would fail everywhere).
    setenv("FLORETSIM_FLEET_PERR", "0:-1:1", 1);
    Coordinator fleet(self_fleet_options(1));
    try {
        (void)fleet.run_sweep(fleet_spec(1).expand());
        FAIL() << "a failing point completed the sweep";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("failed"), std::string::npos) << what;
        EXPECT_NE(what.find("injected fleet fault"), std::string::npos) << what;
    }
    EXPECT_EQ(fleet.stats().worker_deaths, 0);
}

TEST_F(FleetEnv, IdleWorkerStealsFromDeterministicStraggler) {
    // Worker 1 stalls 6s before its 2nd row while holding more leased
    // work; with the steal threshold forced to 50ms, worker 0 goes idle
    // after its own group and must steal the straggler's outstanding
    // points. First ack wins, so the report stays bit-identical.
    setenv("FLORETSIM_FLEET_STALL", "1:0:2:6000", 1);
    setenv("FLORETSIM_FLEET_STEAL_AFTER", "0.05", 1);
    const auto points = fleet_spec(3).expand();
    std::ostringstream progress;
    auto opt = self_fleet_options(2);
    opt.progress = &progress;
    Coordinator fleet(opt);
    expect_rows_bit_identical(drain(fleet.run_sweep(points)),
                              expected_rows(3));
    EXPECT_GE(fleet.stats().leases_stolen, 1) << progress.str();
    EXPECT_EQ(fleet.stats().worker_deaths, 0)
        << "a straggler is slow, not dead";
    EXPECT_NE(progress.str().find("stealing"), std::string::npos)
        << progress.str();
}

TEST_F(FleetEnv, UnspawnableWorkerExeFailsTheSweep) {
    auto opt = self_fleet_options(1);
    opt.worker_exe = "/nonexistent/floretsim-fleet-worker";
    opt.max_restarts_per_worker = 1;  // fail fast
    Coordinator fleet(opt);
    EXPECT_THROW((void)fleet.run_sweep(fleet_spec(1).expand()),
                 std::runtime_error);
}

TEST_F(FleetEnv, RestartBudgetIsBounded) {
    // Every incarnation of the only worker dies after one row (gen -1
    // matches all generations): after max_restarts the coordinator must
    // give up with an error instead of respawning forever.
    setenv("FLORETSIM_FLEET_KILL", "0:-1:1", 1);
    auto opt = self_fleet_options(1);
    opt.max_restarts_per_worker = 1;
    Coordinator fleet(opt);
    try {
        (void)fleet.run_sweep(fleet_spec(3).expand());
        FAIL() << "a perpetually dying fleet completed a sweep";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("fleet"), std::string::npos)
            << e.what();
    }
    EXPECT_EQ(fleet.stats().worker_restarts, 1);
    EXPECT_EQ(fleet.stats().worker_deaths, 2);
}

TEST_F(FleetEnv, ShutdownReapsWorkersAndRemovesScratch) {
    std::vector<pid_t> pids;
    std::string scratch;
    {
        Coordinator fleet(self_fleet_options(2));
        expect_rows_bit_identical(drain(fleet.run_sweep(fleet_spec(1).expand())),
                                  expected_rows(1));
        scratch = fleet.scratch_dir();
        ASSERT_FALSE(scratch.empty());
        EXPECT_TRUE(std::filesystem::exists(scratch));
        for (std::int32_t w = 0; w < fleet.n_workers(); ++w) {
            const pid_t pid = fleet.worker_pid(static_cast<std::size_t>(w));
            ASSERT_GT(pid, 0);
            pids.push_back(pid);
        }
        fleet.shutdown();
        EXPECT_TRUE(fleet.scratch_dir().empty());
        // A shut-down coordinator refuses new sweeps instead of silently
        // respawning the fleet.
        EXPECT_THROW((void)fleet.run_sweep(fleet_spec(1).expand()),
                     std::logic_error);
    }
    EXPECT_FALSE(std::filesystem::exists(scratch))
        << "fleet scratch leaked: " << scratch;
    for (const pid_t pid : pids) {
        // Reaped means waited on: the pid is no longer any process of
        // ours (ESRCH), not a zombie.
        errno = 0;
        EXPECT_NE(::kill(pid, 0), 0) << "worker " << pid << " still exists";
        EXPECT_EQ(errno, ESRCH);
    }
}

TEST_F(FleetEnv, EmptySweepNeedsNoFleet) {
    Coordinator fleet(self_fleet_options(2));
    auto stream = fleet.run_sweep({});
    EXPECT_EQ(stream->size(), 0u);
    EXPECT_FALSE(stream->next().has_value());
    EXPECT_TRUE(fleet.scratch_dir().empty()) << "an empty sweep spawned workers";
}

TEST(FleetPool, ValidatesItsOptions) {
    PoolOptions opt;
    opt.exe = "";
    EXPECT_THROW(WorkerPool{opt}, std::invalid_argument);
    opt.exe = "/bin/true";
    opt.n_workers = 0;
    EXPECT_THROW(WorkerPool{opt}, std::invalid_argument);
    opt.n_workers = 2;
    opt.per_worker_args = {{"--x"}};  // 1 arg set for 2 workers
    EXPECT_THROW(WorkerPool{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace floretsim::fleet

/// In worker mode this binary IS the fleet worker (serve_worker over
/// stdin/stdout) — the Coordinator tests spawn it with --fleet-worker.
/// Otherwise: plain gtest main (this file links gtest, not gtest_main).
int main(int argc, char** argv) {
    if (argc > 1 && std::string_view(argv[1]) == "--fleet-worker") {
        floretsim::core::SweepEngine engine(1);
        return floretsim::fleet::serve_worker(std::cin, std::cout, std::cerr,
                                              engine);
    }
    g_self_exe = floretsim::scenario::self_exe_path(argv[0]);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
