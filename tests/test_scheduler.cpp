#include <gtest/gtest.h>

#include "src/core/scheduler.h"

namespace floretsim::core {
namespace {

SchedulerConfig quick_cfg() {
    SchedulerConfig cfg;
    cfg.slots = 800;
    return cfg;
}

TEST(Scheduler, DeterministicForSeed) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto a = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    const auto b = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_DOUBLE_EQ(a.mean_utilization, b.mean_utilization);
}

TEST(Scheduler, CountsAreConsistent) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto s = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    EXPECT_EQ(s.arrived, s.accepted + s.rejected);
    EXPECT_GT(s.arrived, 0);
    EXPECT_GE(s.acceptance_rate(), 0.0);
    EXPECT_LE(s.acceptance_rate(), 1.0);
}

TEST(Scheduler, UtilizationWithinBounds) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto s = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    EXPECT_GT(s.mean_utilization, 0.05);
    EXPECT_LT(s.mean_utilization, 1.0);
}

TEST(Scheduler, SfcPolicyKeepsAllocationsMoreContiguous) {
    // The dataflow-aware first-fit along the SFC order fragments far less
    // than scattered allocation — this is the redundancy/reassignment
    // claim of Section II.
    const auto set = generate_sfc_set(10, 10, 4);
    const auto sfc = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    const auto scat = simulate_dynamic(set, AllocationPolicy::kScattered, quick_cfg());
    EXPECT_LT(sfc.mean_fragments_per_task, scat.mean_fragments_per_task);
    EXPECT_LT(sfc.mean_intra_task_gap, scat.mean_intra_task_gap);
}

TEST(Scheduler, AcceptanceSimilarAcrossPolicies) {
    // Both policies accept a task iff enough chiplets are free, so
    // acceptance rates should be identical for identical arrivals.
    const auto set = generate_sfc_set(10, 10, 4);
    const auto sfc = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, quick_cfg());
    const auto scat = simulate_dynamic(set, AllocationPolicy::kScattered, quick_cfg());
    EXPECT_EQ(sfc.arrived, scat.arrived);
    EXPECT_EQ(sfc.accepted, scat.accepted);
}

TEST(Scheduler, HigherLoadLowersAcceptance) {
    const auto set = generate_sfc_set(10, 10, 4);
    SchedulerConfig light = quick_cfg();
    light.arrival_prob = 0.1;
    SchedulerConfig heavy = quick_cfg();
    heavy.arrival_prob = 0.9;
    heavy.min_chiplets = 20;
    heavy.max_chiplets = 40;
    const auto l = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, light);
    const auto h = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, heavy);
    EXPECT_GT(l.acceptance_rate(), h.acceptance_rate());
    EXPECT_GT(h.mean_utilization, l.mean_utilization);
}

TEST(Scheduler, NoChipletLeakAfterRetirement) {
    // Every retirement must return exactly the chiplets it held: at the end
    // of the run the busy count equals the footprint of the still-resident
    // tasks, under both policies and across load levels.
    const auto set = generate_sfc_set(10, 10, 4);
    for (const auto policy :
         {AllocationPolicy::kSfcFirstFit, AllocationPolicy::kScattered}) {
        for (const double load : {0.1, 0.4, 0.8}) {
            SchedulerConfig cfg = quick_cfg();
            cfg.arrival_prob = load;
            const auto s = simulate_dynamic(set, policy, cfg);
            EXPECT_EQ(s.final_busy_chiplets, s.final_resident_footprint)
                << "policy " << static_cast<int>(policy) << " load " << load;
            EXPECT_LE(s.final_busy_chiplets, 100);
        }
    }
}

TEST(Scheduler, AcceptanceRateMonotoneInArrivalProb) {
    // More offered load can only depress the acceptance rate: the ladder
    // must be non-increasing (long runs keep the comparison out of noise).
    const auto set = generate_sfc_set(10, 10, 4);
    double prev = 1.0;
    for (const double load : {0.05, 0.2, 0.5, 0.9}) {
        SchedulerConfig cfg = quick_cfg();
        cfg.slots = 4000;
        cfg.arrival_prob = load;
        const auto s = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, cfg);
        EXPECT_LE(s.acceptance_rate(), prev + 1e-12) << "load " << load;
        prev = s.acceptance_rate();
    }
}

TEST(Scheduler, SfcFragmentationNeverWorseAcrossSeedsAndLoads) {
    // The Section II ordering claim, swept instead of spot-checked: at
    // every (seed, load) cell the SFC first-fit allocation is at least as
    // contiguous as scattered allocation on the identical arrival stream.
    const auto set = generate_sfc_set(10, 10, 4);
    for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
        for (const double load : {0.2, 0.5, 0.8}) {
            SchedulerConfig cfg = quick_cfg();
            cfg.seed = seed;
            cfg.arrival_prob = load;
            const auto sfc =
                simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, cfg);
            const auto scat =
                simulate_dynamic(set, AllocationPolicy::kScattered, cfg);
            EXPECT_LE(sfc.mean_fragments_per_task, scat.mean_fragments_per_task)
                << "seed " << seed << " load " << load;
            EXPECT_LE(sfc.mean_intra_task_gap, scat.mean_intra_task_gap)
                << "seed " << seed << " load " << load;
        }
    }
}

TEST(Scheduler, TasksEventuallyRelease) {
    // With arrivals stopped after a while (short run, short durations),
    // utilization stays bounded away from saturation.
    const auto set = generate_sfc_set(6, 6, 6);
    SchedulerConfig cfg = quick_cfg();
    cfg.min_chiplets = 2;
    cfg.max_chiplets = 6;
    cfg.min_duration = 5;
    cfg.max_duration = 10;
    cfg.arrival_prob = 0.2;
    const auto s = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, cfg);
    EXPECT_LT(s.mean_utilization, 0.8);
    EXPECT_GT(s.acceptance_rate(), 0.9);
}

}  // namespace
}  // namespace floretsim::core
