#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/floret.h"
#include "src/core/mapper.h"
#include "src/core/sfc.h"
#include "src/topo/mesh.h"
#include "src/workload/tables.h"

namespace floretsim::core {
namespace {

std::vector<TaskSpec> wl_tasks(const std::string& mix_name, double params_per_chiplet,
                               std::vector<std::unique_ptr<dnn::Network>>& owner) {
    for (const auto& mix : workload::table2()) {
        if (mix.name == mix_name) {
            const auto queue = workload::expand_mix(mix);
            return make_tasks(queue, params_per_chiplet, owner);
        }
    }
    throw std::invalid_argument("unknown mix " + mix_name);
}

TEST(FloretMapper, ContiguousAllocationAlongSfcOrder) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto order = set.concatenated_order();
    std::map<topo::NodeId, std::size_t> pos;
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL1", 8.0, owner);
    FloretMapper mapper(set);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);

    std::size_t expected_next = 0;
    for (const auto& m : mapped) {
        if (!m.mapped) continue;
        for (const auto n : m.nodes) {
            EXPECT_EQ(pos.at(n), expected_next) << "non-contiguous allocation";
            ++expected_next;
        }
    }
    EXPECT_EQ(stats.nodes_used, static_cast<std::int32_t>(expected_next));
}

TEST(FloretMapper, NoChipletAssignedTwice) {
    const auto set = generate_sfc_set(10, 10, 4);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL2", 8.0, owner);
    FloretMapper mapper(set);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    std::set<topo::NodeId> used;
    for (const auto& m : mapped) {
        for (const auto n : m.nodes) {
            EXPECT_TRUE(used.insert(n).second) << "chiplet " << n << " double-assigned";
        }
    }
}

TEST(FloretMapper, FullUtilizationUnderOverload) {
    // WL3 demands far more than 100 chiplets; Floret must consume the
    // entire grid before failing tasks (the paper's full-utilization claim).
    const auto set = generate_sfc_set(10, 10, 4);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL3", 8.0, owner);
    FloretMapper mapper(set);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    EXPECT_GT(stats.tasks_failed, 0);
    // Everything that fits was placed: remaining gap is smaller than the
    // smallest failed task.
    std::int32_t smallest_failed = 1000;
    for (const auto& m : mapped)
        if (!m.mapped) smallest_failed = std::min(smallest_failed, m.plan.total_chiplets);
    EXPECT_GT(smallest_failed + stats.nodes_used, stats.nodes_total);
}

TEST(FloretMapper, QueueOrderRespected) {
    const auto set = generate_sfc_set(10, 10, 4);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL1", 8.0, owner);
    FloretMapper mapper(set);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    ASSERT_EQ(mapped.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) EXPECT_EQ(mapped[i].name, tasks[i].name);
}

TEST(FloretMapper, LayerNodesCoverEveryLayerOfMappedTasks) {
    const auto set = generate_sfc_set(10, 10, 4);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL5", 8.0, owner);
    FloretMapper mapper(set);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    for (const auto& m : mapped) {
        if (!m.mapped) continue;
        ASSERT_EQ(m.layer_nodes.size(), m.net->size());
        for (const auto& nodes : m.layer_nodes) EXPECT_FALSE(nodes.empty());
    }
}

TEST(GreedyMapper, UnboundedMapsEverythingThatFits) {
    const auto mesh = topo::make_mesh(10, 10);
    const auto rt = noc::RouteTable::build(mesh, noc::RoutingPolicy::kShortestPath);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL1", 8.0, owner);
    GreedyMapper mapper(mesh, rt, /*max_gap_hops=*/-1);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    std::int32_t total_demand = 0;
    for (const auto& t : tasks) total_demand += t.plan.total_chiplets;
    if (total_demand <= 100) {
        EXPECT_EQ(stats.tasks_failed, 0);
        EXPECT_EQ(stats.nodes_used, total_demand);
    }
}

TEST(GreedyMapper, StrictGapStrandsChiplets) {
    // With a tight hop constraint, fragmentation strands free chiplets
    // (Fig. 4's NM chiplets): utilization drops below Floret's.
    const auto mesh = topo::make_mesh(10, 10);
    const auto rt = noc::RouteTable::build(mesh, noc::RoutingPolicy::kShortestPath);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL3", 8.0, owner);  // overload

    GreedyMapper strict(mesh, rt, /*max_gap_hops=*/1);
    MappingStats strict_stats;
    (void)strict.map_queue(tasks, &strict_stats);

    const auto set = generate_sfc_set(10, 10, 4);
    FloretMapper floret(set);
    MappingStats floret_stats;
    (void)floret.map_queue(tasks, &floret_stats);

    EXPECT_LE(strict_stats.utilization(), floret_stats.utilization());
}

TEST(GreedyMapper, ChipletsNeverDoubleAssigned) {
    const auto mesh = topo::make_mesh(10, 10);
    const auto rt = noc::RouteTable::build(mesh, noc::RoutingPolicy::kShortestPath);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL4", 8.0, owner);
    GreedyMapper mapper(mesh, rt, -1);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    std::set<topo::NodeId> used;
    for (const auto& m : mapped)
        for (const auto n : m.nodes) EXPECT_TRUE(used.insert(n).second);
}

TEST(GreedyMapper, FailedTasksConsumeNothing) {
    const auto mesh = topo::make_mesh(4, 4);  // tiny system
    const auto rt = noc::RouteTable::build(mesh, noc::RoutingPolicy::kShortestPath);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto tasks = wl_tasks("WL1", 8.0, owner);  // far too big for 16
    GreedyMapper mapper(mesh, rt, -1);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    EXPECT_GT(stats.tasks_failed, 0);
    for (const auto& m : mapped) {
        if (!m.mapped) {
            EXPECT_TRUE(m.nodes.empty());
        }
    }
    EXPECT_LE(stats.nodes_used, 16);
}

TEST(MakeTasks, SharesNetworksAcrossInstances) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN1", "DNN1", "DNN3", "DNN1"};
    const auto tasks = make_tasks(ids, 8.0, owner);
    ASSERT_EQ(tasks.size(), 4u);
    EXPECT_EQ(owner.size(), 2u);  // one network per distinct id
    EXPECT_EQ(tasks[0].net, tasks[1].net);
    EXPECT_EQ(tasks[0].net, tasks[3].net);
    EXPECT_NE(tasks[0].net, tasks[2].net);
}

TEST(MakeTasks, ChipletDemandTracksPaperParams) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN7"};  // VGG19, 93.4M
    const auto tasks = make_tasks(ids, 8.0, owner);
    EXPECT_GE(tasks[0].plan.total_chiplets, 12);  // ceil(93.4/8)
    EXPECT_LE(tasks[0].plan.total_chiplets, 15);
}

TEST(MappingStats, UtilizationFormula) {
    MappingStats s;
    s.nodes_total = 100;
    s.nodes_used = 73;
    EXPECT_DOUBLE_EQ(s.utilization(), 0.73);
    MappingStats zero;
    EXPECT_DOUBLE_EQ(zero.utilization(), 0.0);
}

}  // namespace
}  // namespace floretsim::core
