/// topo::make_region_map is the seam the regional simulator core (and any
/// future intra-simulation parallelism) stands on, so its contract gets
/// its own suite: every node lands in exactly one region, ids are dense
/// and deterministic, generator hints (Floret petals) are respected, a
/// forced target produces roughly that many spatial tiles, and cut_links
/// is exactly the set of links whose endpoints disagree.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/topo/mesh.h"
#include "src/topo/topology.h"

namespace floretsim::topo {
namespace {

/// Partition validity shared by every case: dense ids in [0, count), every
/// node assigned, cut_links = links crossing regions and nothing else.
void expect_valid(const Topology& t, const RegionMap& m) {
    ASSERT_EQ(static_cast<std::int32_t>(m.region_of.size()), t.node_count());
    EXPECT_GE(m.count, 1);
    EXPECT_LE(m.count, t.node_count());
    std::set<std::int32_t> used;
    for (const auto r : m.region_of) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, m.count);
        used.insert(r);
    }
    EXPECT_EQ(static_cast<std::int32_t>(used.size()), m.count)
        << "region ids must be dense";
    std::vector<LinkId> expected_cut;
    for (const auto& l : t.links())
        if (m.region_of[static_cast<std::size_t>(l.a)] !=
            m.region_of[static_cast<std::size_t>(l.b)])
            expected_cut.push_back(l.id);
    EXPECT_EQ(m.cut_links, expected_cut);
}

TEST(RegionMap, AutoTilingCoversMeshes) {
    for (const auto [w, h] : {std::pair{4, 4}, {10, 10}, {1, 7}, {16, 2}}) {
        const auto t = make_mesh(w, h);
        const auto m = make_region_map(t);
        expect_valid(t, m);
        // Auto mode aims at ~8-node tiles, capped at 64 regions.
        EXPECT_LE(m.count, 64) << w << "x" << h;
        if (t.node_count() >= 16) EXPECT_GT(m.count, 1) << w << "x" << h;
    }
}

TEST(RegionMap, ForcedTargetIsApproximatelyHonored) {
    const auto t = make_mesh(10, 10);
    for (const std::int32_t target : {1, 2, 5, 7, 12, 100}) {
        const auto m = make_region_map(t, target);
        expect_valid(t, m);
        // Tiling rounds to a grid of tiles, so the count lands near the
        // target without exceeding the node count.
        EXPECT_GE(m.count, std::min(target, t.node_count()) / 4) << target;
        EXPECT_LE(m.count, t.node_count()) << target;
    }
    EXPECT_EQ(make_region_map(t, 1).count, 1);
}

TEST(RegionMap, DeterministicAcrossCalls) {
    const auto t = make_mesh(7, 5);
    const auto a = make_region_map(t, 6);
    const auto b = make_region_map(t, 6);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.region_of, b.region_of);
    EXPECT_EQ(a.cut_links, b.cut_links);
}

TEST(RegionMap, GeneratorHintWinsOverTiling) {
    Topology t("hinted", 4.0);
    for (std::int32_t i = 0; i < 6; ++i) t.add_node({i, 0});
    for (std::int32_t i = 0; i + 1 < 6; ++i) t.add_link(i, i + 1);
    // Interleaved hint ids, deliberately not spatial and not dense in
    // first-seen order (2 appears before 0): densification must preserve
    // groupings, not raw ids.
    t.set_region_hint({2, 0, 2, 0, 1, 1});
    const auto m = make_region_map(t);
    expect_valid(t, m);
    EXPECT_EQ(m.count, 3);
    EXPECT_EQ(m.region_of[0], m.region_of[2]);
    EXPECT_EQ(m.region_of[1], m.region_of[3]);
    EXPECT_EQ(m.region_of[4], m.region_of[5]);
    EXPECT_EQ(m.region_of[0], 0) << "first-seen hint takes id 0";
    // A forced target still overrides the hint.
    EXPECT_EQ(make_region_map(t, 1).count, 1);
}

TEST(RegionMap, HintValidationRejectsBadInput) {
    Topology t("bad", 4.0);
    t.add_node({0, 0});
    t.add_node({1, 0});
    EXPECT_THROW(t.set_region_hint({0}), std::invalid_argument);
    EXPECT_THROW(t.set_region_hint({0, -1}), std::invalid_argument);
}

TEST(RegionMap, FloretPetalsBecomeRegions) {
    const auto set = core::generate_sfc_set(8, 8, 4);
    const auto t = core::make_floret(set);
    const auto m = make_region_map(t);
    expect_valid(t, m);
    EXPECT_EQ(m.count, static_cast<std::int32_t>(set.sfcs.size()))
        << "one region per petal";
    // Petals are contiguous SFC paths: most links stay inside a petal and
    // only the express/boundary links cross.
    EXPECT_LT(static_cast<std::int32_t>(m.cut_links.size()), t.link_count());
}

}  // namespace
}  // namespace floretsim::topo
