#include <gtest/gtest.h>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/cost/models.h"
#include "src/noc/simulator.h"
#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"

namespace floretsim::cost {
namespace {

TEST(CostModel, RouterAreaGrowsWithPorts) {
    CostParams p;
    topo::Topology two("two");
    two.add_node({0, 0});
    two.add_node({1, 0});
    two.add_link(0, 1);
    const double area2 = router_area_mm2(two, p);  // two 1-port routers

    topo::Topology star("star");
    for (int i = 0; i < 5; ++i) star.add_node({i, 0});
    for (int i = 1; i < 5; ++i) star.add_link(0, i);
    const double area_star = router_area_mm2(star, p);
    EXPECT_GT(area_star / 5.0, area2 / 2.0);  // higher mean radix
}

TEST(CostModel, LinkAreaProportionalToLength) {
    CostParams p;
    topo::Topology t("t");
    t.add_node({0, 0});
    t.add_node({1, 0});
    t.add_node({5, 0});
    t.add_link(0, 1, 4.0);
    t.add_link(0, 2, 20.0);
    EXPECT_DOUBLE_EQ(link_area_mm2(t, p), p.link_area_per_mm_mm2 * 24.0);
}

TEST(CostModel, YieldDecaysExponentially) {
    CostParams p;
    EXPECT_DOUBLE_EQ(yield(0.0, p), 1.0);
    EXPECT_GT(yield(100.0, p), yield(200.0, p));
    EXPECT_NEAR(yield(100.0, p) * yield(100.0, p), yield(200.0, p), 1e-12);
}

TEST(CostModel, Eq5RelativeCostIdentity) {
    // Eq. 5: C_a / C_b == exp(D0 * (A_a - A_b)) — relative_cost must agree
    // with the ratio of Eq. 2 fabrication costs at equal chiplet count.
    CostParams p;
    const auto mesh = topo::make_mesh(10, 10);
    const auto kite = topo::make_kite(10, 10);
    const double direct = relative_cost(kite, mesh, p);
    const double via_eq2 = fabrication_cost(kite, p) / fabrication_cost(mesh, p);
    EXPECT_NEAR(direct, via_eq2, 1e-9);
    EXPECT_GT(direct, 1.0);  // Kite's NoI is bigger than the mesh's
}

TEST(CostModel, FloretCheapestAmongTheFourNois) {
    CostParams p;
    util::Rng rng(13);
    const auto mesh = topo::make_mesh(10, 10);
    const auto kite = topo::make_kite(10, 10);
    const auto swap = topo::make_swap(10, 10, rng);
    const auto floret = core::make_floret(core::generate_sfc_set(10, 10, 10));
    const double cf = fabrication_cost(floret, p);
    EXPECT_LT(cf, fabrication_cost(swap, p));
    EXPECT_LT(cf, fabrication_cost(mesh, p));
    EXPECT_LT(cf, fabrication_cost(kite, p));
}

TEST(CostModel, NoiAreaOrderingMatchesPaper) {
    // Fig. 2 structure implies area ordering Kite > SIAM(mesh) > SWAP >
    // Floret for 100 chiplets.
    CostParams p;
    util::Rng rng(13);
    const double a_kite = noi_area_mm2(topo::make_kite(10, 10), p);
    const double a_mesh = noi_area_mm2(topo::make_mesh(10, 10), p);
    const double a_swap = noi_area_mm2(topo::make_swap(10, 10, rng), p);
    const double a_floret =
        noi_area_mm2(core::make_floret(core::generate_sfc_set(10, 10, 10)), p);
    EXPECT_GT(a_kite, a_mesh);
    EXPECT_GT(a_mesh, a_swap);
    EXPECT_GT(a_swap, a_floret);
}

TEST(CostModel, MoreChipletsLowerPerSystemCostScale) {
    CostParams p;
    const auto small = topo::make_mesh(8, 8);   // 64 = reference count
    const auto large = topo::make_mesh(10, 10);
    // The (N_ref / N) prefactor favors larger systems per chiplet.
    const double c_small = fabrication_cost(small, p);
    const double c_large = fabrication_cost(large, p);
    EXPECT_GT(c_small * 100.0 / 64.0 * 2.0, c_large);  // sanity band
}

TEST(CostModel, EnergyAccountingMatchesManualSum) {
    CostParams p;
    const auto t = topo::make_mesh(2, 2);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kShortestPath);
    noc::SimConfig cfg;
    noc::Simulator sim(t, rt, cfg);
    sim.add_demand({0, 3, 80});  // 10 flits, 2 hops each
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    const double e = noi_energy_pj(t, res, p);
    double manual = 0.0;
    for (const auto& n : t.nodes())
        manual += (p.router_energy_base_pj + p.router_energy_per_port_pj * t.ports(n.id)) *
                  static_cast<double>(res.router_flits[static_cast<std::size_t>(n.id)]);
    for (const auto& l : t.links())
        manual += p.link_energy_per_mm_pj * l.length_mm *
                  static_cast<double>(res.link_flits[static_cast<std::size_t>(l.id)]);
    EXPECT_NEAR(e, manual, 1e-9);
    EXPECT_GT(e, 0.0);
}

TEST(CostModel, EnergyRejectsMismatchedResult) {
    CostParams p;
    const auto t = topo::make_mesh(2, 2);
    noc::SimResult bogus;
    bogus.router_flits.assign(3, 0);
    bogus.link_flits.assign(4, 0);
    EXPECT_THROW((void)noi_energy_pj(t, bogus, p), std::invalid_argument);
}

TEST(CostModel, LeakageOrderingFavorsSmallRouters) {
    // Fig. 5's energy advantage is leakage-dominated: big-radix NoIs burn
    // more static power. Kite/SIAM (4-port heavy) > SWAP (2-3) > Floret.
    CostParams p;
    util::Rng rng(13);
    const double kite = noi_leakage_mw(topo::make_kite(10, 10), p);
    const double mesh = noi_leakage_mw(topo::make_mesh(10, 10), p);
    const double swap = noi_leakage_mw(topo::make_swap(10, 10, rng), p);
    const double floret =
        noi_leakage_mw(core::make_floret(core::generate_sfc_set(10, 10, 10)), p);
    EXPECT_GT(kite, mesh);   // longer links leak more
    EXPECT_GT(mesh, swap);
    EXPECT_GT(swap, floret);
    EXPECT_GT(floret, 0.0);
}

TEST(CostModel, LeakageMatchesManualFormula) {
    CostParams p;
    topo::Topology t("pair");
    t.add_node({0, 0});
    t.add_node({1, 0});
    t.add_link(0, 1, 4.0);
    // Two routers with 1 network port (+1 NI) and one 4 mm link.
    const double expect = 2 * (p.router_leakage_base_mw +
                               p.router_leakage_per_port2_mw * 4.0) +
                          p.link_leakage_per_mm_mw * 4.0;
    EXPECT_NEAR(noi_leakage_mw(t, p), expect, 1e-12);
}

TEST(CostModel, PaperCostRatiosInBand) {
    // The paper: Floret reduces fabrication cost ~2.8x vs Kite, ~2.1x vs
    // SIAM, ~1.89x vs SWAP (100 chiplets). Our reproduction must get the
    // ordering right and land within a factor-of-two band of each ratio.
    CostParams p;
    util::Rng rng(13);
    const auto kite = topo::make_kite(10, 10);
    const auto mesh = topo::make_mesh(10, 10);
    const auto swap = topo::make_swap(10, 10, rng);
    const auto floret = core::make_floret(core::generate_sfc_set(10, 10, 10));
    const double r_kite = relative_cost(kite, floret, p);
    const double r_mesh = relative_cost(mesh, floret, p);
    const double r_swap = relative_cost(swap, floret, p);
    EXPECT_GT(r_kite, r_mesh);
    EXPECT_GT(r_mesh, r_swap);
    EXPECT_GT(r_swap, 1.0);
    EXPECT_NEAR(r_kite, 2.8, 1.5);
    EXPECT_NEAR(r_mesh, 2.1, 1.1);
    EXPECT_NEAR(r_swap, 1.89, 1.0);
}

}  // namespace
}  // namespace floretsim::cost
