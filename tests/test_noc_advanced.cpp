#include <gtest/gtest.h>

#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/butterfly.h"
#include "src/topo/mesh.h"
#include "src/util/rng.h"

namespace floretsim::noc {
namespace {

SimConfig cfg_with(std::int32_t buffers, double rate = 1.0) {
    SimConfig cfg;
    cfg.input_buffer_flits = buffers;
    cfg.injection_rate = rate;
    cfg.max_cycles = 3'000'000;
    return cfg;
}

TEST(WormholeSemantics, PacketsArriveInPerFlowOrder) {
    // Two packets of the same flow must eject in injection order (same
    // route, wormhole locking, FIFO buffers).
    const auto t = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, cfg_with(4));
    sim.add_demand({0, 15, 8 * 16 * 3});  // three full packets
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 3);
    // Latencies are measured per packet against a shared inject schedule;
    // with in-order delivery the spread stays near the serialization time.
    EXPECT_LT(res.packet_latency.max() - res.packet_latency.min(), 200.0);
}

TEST(WormholeSemantics, ContentionSerializesSharedLink) {
    // Two flows share the final link into the sink: makespan must be at
    // least the sum of their flit counts (one flit per cycle on the link).
    const auto t = topo::make_mesh(3, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, cfg_with(8, 10.0));
    sim.add_demand({0, 2, 8 * 64});
    sim.add_demand({1, 2, 8 * 64});
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GE(res.cycles, 128);  // 128 flits over the 1->2 link
}

TEST(WormholeSemantics, DisjointFlowsRunInParallel) {
    const auto t = topo::make_mesh(4, 2);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    // Flow A on the top row, flow B on the bottom row: no shared links.
    Simulator both(t, rt, cfg_with(8, 10.0));
    both.add_demand({0, 3, 8 * 64});
    both.add_demand({4, 7, 8 * 64});
    const auto res_both = both.run();

    Simulator one(t, rt, cfg_with(8, 10.0));
    one.add_demand({0, 3, 8 * 64});
    const auto res_one = one.run();

    ASSERT_TRUE(res_both.completed);
    ASSERT_TRUE(res_one.completed);
    // Two disjoint flows should take about as long as one.
    EXPECT_LT(res_both.cycles, res_one.cycles + res_one.cycles / 4);
}

TEST(CreditFlow, SingleBufferStillMakesProgress) {
    const auto t = topo::make_mesh(6, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, cfg_with(1));
    sim.add_demand({0, 5, 8 * 32});
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.flits, 32);
}

TEST(CreditFlow, ThroughputImprovesWithBuffering) {
    const auto t = topo::make_mesh(8, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    auto run_with = [&](std::int32_t buffers) {
        Simulator sim(t, rt, cfg_with(buffers, 10.0));
        sim.add_demand({0, 7, 8 * 256});
        const auto res = sim.run();
        EXPECT_TRUE(res.completed);
        return res.cycles;
    };
    EXPECT_LE(run_with(8), run_with(1));
}

TEST(FastForward, SparseInjectionsDoNotScanIdleCycles) {
    // Two packets separated by a huge injection gap: the simulator's
    // fast-forward must jump the gap (cycles ~ gap, runtime tiny).
    const auto t = topo::make_mesh(2, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = cfg_with(4);
    cfg.injection_rate = 1e-5;  // one flit every 100k cycles
    cfg.max_cycles = 100'000'000;
    Simulator sim(t, rt, cfg);
    sim.add_demand({0, 1, 16});  // two single-flit... 2 flits -> 1 packet
    sim.add_demand({0, 1, 8});
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.cycles, 100'000);  // the schedule gap was honored
}

TEST(RouterCounters, PerNodeFlitCountsMatchRoute) {
    const auto t = topo::make_mesh(4, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, cfg_with(8));
    sim.add_demand({0, 3, 8 * 10});  // 10 flits, route 0-1-2-3
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    // Forwarding routers: flits leave nodes 0, 1 and 2 (3 only ejects).
    EXPECT_EQ(res.router_flits[0], 10);
    EXPECT_EQ(res.router_flits[1], 10);
    EXPECT_EQ(res.router_flits[2], 10);
    EXPECT_EQ(res.router_flits[3], 0);
}

TEST(RouterCounters, LinkCountsSymmetricFlows) {
    const auto t = topo::make_mesh(2, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, cfg_with(8));
    sim.add_demand({0, 1, 8 * 5});
    sim.add_demand({1, 0, 8 * 7});
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    // Both directions share the single physical link's counter.
    EXPECT_EQ(res.link_flits[0], 12);
}

TEST(Saturation, ThinChainSlowerThanMeshUnderCrossTraffic) {
    // Structural sanity behind Fig. 3: the same all-to-one traffic drains
    // slower on a 1D chain (bisection 1) than on a mesh.
    topo::Topology chain("chain", 4.0);
    for (int i = 0; i < 16; ++i) chain.add_node({i % 4, i / 4});
    // Serpentine chain over the 4x4 grid.
    const std::vector<topo::NodeId> order{0, 1, 2,  3,  7,  6,  5,  4,
                                          8, 9, 10, 11, 15, 14, 13, 12};
    for (std::size_t i = 1; i < order.size(); ++i)
        chain.add_link(order[i - 1], order[i]);
    const auto mesh = topo::make_mesh(4, 4);

    auto drain = [&](const topo::Topology& t) {
        const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
        Simulator sim(t, rt, cfg_with(8, 10.0));
        util::Rng rng(3);
        for (int i = 0; i < 60; ++i) {
            const auto s = static_cast<topo::NodeId>(rng.below(16));
            const auto d = static_cast<topo::NodeId>(rng.below(16));
            if (s != d) sim.add_demand({s, d, 160});
        }
        const auto res = sim.run();
        EXPECT_TRUE(res.completed);
        return res.cycles;
    };
    EXPECT_GT(drain(chain), drain(mesh));
}

TEST(ButterflyTopologies, SimulateCleanly) {
    for (const auto& t : {topo::make_butter_donut(6, 6), topo::make_double_butterfly(6, 6)}) {
        const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
        Simulator sim(t, rt, cfg_with(4));
        util::Rng rng(8);
        for (int i = 0; i < 100; ++i) {
            const auto s = static_cast<topo::NodeId>(rng.below(36));
            const auto d = static_cast<topo::NodeId>(rng.below(36));
            if (s != d) sim.add_demand({s, d, 80});
        }
        const auto res = sim.run();
        EXPECT_TRUE(res.completed) << t.name();
    }
}

TEST(Determinism, IdenticalRunsBitExact) {
    const auto t = topo::make_mesh(5, 5);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    auto run_once = [&] {
        Simulator sim(t, rt, cfg_with(4, 0.7));
        util::Rng rng(12);
        for (int i = 0; i < 150; ++i) {
            const auto s = static_cast<topo::NodeId>(rng.below(25));
            const auto d = static_cast<topo::NodeId>(rng.below(25));
            if (s != d) sim.add_demand({s, d, 200});
        }
        return sim.run();
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.flit_hops, b.flit_hops);
    EXPECT_DOUBLE_EQ(a.packet_latency.mean(), b.packet_latency.mean());
}

}  // namespace
}  // namespace floretsim::noc
