#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "src/core/sweep.h"
#include "src/util/thread_pool.h"

namespace floretsim::core {
namespace {

using experiment::Arch;
using experiment::kAllArchs;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask) {
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
    for (const std::int32_t threads : {1, 2, 8}) {
        util::ThreadPool pool(threads);
        std::vector<std::atomic<int>> seen(257);
        pool.parallel_for(seen.size(),
                          [&](std::size_t i) { ++seen[i]; });
        for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
    util::ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       if (i == 5) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(4, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
    util::ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1);
}

// ----------------------------------------------------------------- ArchCache

TEST(ArchCache, SameKeyReturnsSameFabric) {
    experiment::ArchCache cache;
    const auto a = cache.get(Arch::kFloret, 6, 6);
    const auto b = cache.get(Arch::kFloret, 6, 6);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);
}

TEST(ArchCache, DistinctKeysBuildDistinctFabrics) {
    experiment::ArchCache cache;
    const auto a = cache.get(Arch::kSiamMesh, 6, 6);
    const auto b = cache.get(Arch::kSiamMesh, 8, 8);
    const auto c = cache.get(Arch::kSwap, 6, 6, /*swap_seed=*/1);
    const auto d = cache.get(Arch::kSwap, 6, 6, /*swap_seed=*/2);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(c.get(), d.get());
    EXPECT_EQ(cache.misses(), 4);
    EXPECT_EQ(cache.hits(), 0);
}

TEST(ArchCache, ConcurrentGetsBuildOnce) {
    experiment::ArchCache cache;
    util::ThreadPool pool(8);
    std::vector<std::shared_ptr<const experiment::ArchFabric>> fabrics(16);
    pool.parallel_for(fabrics.size(), [&](std::size_t i) {
        fabrics[i] = cache.get(Arch::kFloret, 8, 8);
    });
    for (const auto& f : fabrics) EXPECT_EQ(f.get(), fabrics.front().get());
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 15);
}

TEST(ArchCache, FailedBuildPropagatesAndDoesNotWedgeTheKey) {
    // A fabric whose construction throws (lambda cannot tile a 0x0 grid)
    // must rethrow to every caller and leave the key retryable instead of
    // parking later get()s on a never-published entry.
    experiment::ArchCache cache;
    EXPECT_ANY_THROW((void)cache.get(Arch::kFloret, 0, 0));
    EXPECT_ANY_THROW((void)cache.get(Arch::kFloret, 0, 0));  // no hang, no stale entry
    // A valid key still works afterwards.
    EXPECT_NE(cache.get(Arch::kFloret, 6, 6), nullptr);
}

TEST(ArchCache, CachedBuildArchMatchesUncached) {
    experiment::ArchCache cache;
    auto cached = experiment::build_arch(cache, Arch::kFloret, 6, 6);
    auto fresh = experiment::build_arch(Arch::kFloret, 6, 6);
    EXPECT_EQ(cached.topology().node_count(), fresh.topology().node_count());
    EXPECT_EQ(cached.topology().link_count(), fresh.topology().link_count());
    EXPECT_EQ(cached.sfc().lambda(), fresh.sfc().lambda());
    EXPECT_NE(cached.mapper, nullptr);
}

// --------------------------------------------------------------- SweepEngine

SweepSpec small_spec() {
    SweepSpec spec;
    spec.archs = {Arch::kSiamMesh, Arch::kFloret};
    spec.grids = {{6, 6}};
    spec.mixes = {workload::table2().front()};
    auto cfg = experiment::default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;  // keep tests quick
    spec.evals = {cfg};
    spec.greedy_max_gap = 2;
    return spec;
}

TEST(SweepEngine, ExpansionOrderIsArchMajor) {
    auto spec = small_spec();
    spec.grids = {{6, 6}, {8, 8}};
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].arch, Arch::kSiamMesh);
    EXPECT_EQ(points[0].width, 6);
    EXPECT_EQ(points[1].width, 8);
    EXPECT_EQ(points[2].arch, Arch::kFloret);
}

TEST(SweepEngine, EmptyEvalListUsesDefaultConfig) {
    SweepSpec spec;
    spec.archs = {Arch::kFloret};
    spec.mixes = {workload::table2().front()};
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_DOUBLE_EQ(points[0].eval.traffic_scale,
                     experiment::default_eval_config().traffic_scale);
}

TEST(SweepEngine, ResultsAreBitIdenticalAcrossThreadCounts) {
    const auto spec = small_spec();
    std::vector<SweepResult> runs;
    for (const std::int32_t threads : {1, 2, 8}) {
        SweepEngine engine(threads);
        runs.push_back(engine.run(spec));
    }
    const auto& ref = runs.front();
    ASSERT_EQ(ref.rows.size(), 2u);
    for (const auto& run : runs) {
        ASSERT_EQ(run.rows.size(), ref.rows.size());
        for (std::size_t i = 0; i < ref.rows.size(); ++i) {
            EXPECT_EQ(run.rows[i].point.arch, ref.rows[i].point.arch);
            EXPECT_EQ(run.rows[i].result.total_cycles, ref.rows[i].result.total_cycles);
            EXPECT_EQ(run.rows[i].result.total_energy_pj,
                      ref.rows[i].result.total_energy_pj);
            EXPECT_EQ(run.rows[i].result.flit_hops, ref.rows[i].result.flit_hops);
            EXPECT_EQ(run.rows[i].result.rounds, ref.rows[i].result.rounds);
            EXPECT_EQ(run.rows[i].result.task_rounds, ref.rows[i].result.task_rounds);
        }
    }
}

TEST(SweepEngine, MatchesDirectSerialEvaluation) {
    const auto spec = small_spec();
    SweepEngine engine(4);
    const auto sweep = engine.run(spec);
    for (const auto& row : sweep.rows) {
        auto b = experiment::build_arch(row.point.arch, row.point.width,
                                        row.point.height, row.point.swap_seed,
                                        row.point.greedy_max_gap);
        const auto direct = experiment::run_mix_dynamic(b, row.point.mix,
                                                        row.point.eval,
                                                        row.point.run_seed);
        EXPECT_EQ(direct.total_cycles, row.result.total_cycles);
        EXPECT_EQ(direct.total_energy_pj, row.result.total_energy_pj);
        EXPECT_EQ(direct.rounds, row.result.rounds);
    }
}

TEST(SweepEngine, RowsCarryPerPointTiming) {
    SweepEngine engine(2);
    const auto sweep = engine.run(small_spec());
    double total = 0.0;
    for (const auto& row : sweep.rows) {
        EXPECT_GE(row.seconds, 0.0);
        total += row.seconds;
    }
    // The points did real work, so at least one row saw the clock move.
    EXPECT_GT(total, 0.0);
    EXPECT_GT(sweep.wall_seconds, 0.0);
}

TEST(SweepEngine, FabricCacheIsSharedAcrossPoints) {
    auto spec = small_spec();
    spec.mixes = workload::table2();  // 5 mixes x 2 archs, but only 2 fabrics
    SweepEngine engine(4);
    const auto sweep = engine.run(spec);
    EXPECT_EQ(sweep.rows.size(), 10u);
    EXPECT_EQ(sweep.fabric_cache_misses, 2);
    EXPECT_EQ(sweep.fabric_cache_hits, 8);
}

TEST(SweepEngine, AtIndexesTheGrid) {
    auto spec = small_spec();
    spec.mixes = {workload::table2()[0], workload::table2()[1]};
    SweepEngine engine(2);
    const auto sweep = engine.run(spec);
    ASSERT_EQ(sweep.rows.size(), 4u);
    EXPECT_EQ(sweep.at(0, 0, 1).point.arch, Arch::kSiamMesh);
    EXPECT_EQ(sweep.at(0, 0, 1).point.mix.name, workload::table2()[1].name);
    EXPECT_EQ(sweep.at(1, 0, 0).point.arch, Arch::kFloret);
}

TEST(SweepEngine, MapPreservesInputOrder) {
    SweepEngine engine(8);
    const auto out = engine.map(64, [](std::size_t i) {
        return static_cast<std::int64_t>(i * i);
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
}

// ------------------------------------------------- evaluator traffic clamp

TEST(EvaluateNoi, TinyTrafficScaleStillInjectsEveryFlow) {
    // A mapped multi-chiplet task evaluated at an absurdly small sampling
    // scale: before the 1-flit clamp its flows truncated to zero bytes and
    // the demand list went empty (zero packets, zero energy).
    const auto set = generate_sfc_set(6, 6, 6);
    const auto topo = make_floret(set);
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);

    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN9"};
    const auto tasks = make_tasks(ids, /*params_per_chiplet_m=*/1.0, owner);
    FloretMapper mapper(set);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    ASSERT_TRUE(mapped.front().mapped);
    ASSERT_FALSE(pipeline_flows(mapped.front(), 1).empty());

    EvalConfig cfg;
    cfg.traffic_scale = 1e-12;
    const auto res = evaluate_noi(topo, routes, mapped, cfg);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.packets, 0);
    EXPECT_GT(res.energy_pj, 0.0);
}

}  // namespace
}  // namespace floretsim::core
