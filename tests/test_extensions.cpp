#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/hetero.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/butterfly.h"
#include "src/topo/mesh.h"
#include "src/util/rng.h"

namespace floretsim {
namespace {

// ---------------------------------------------------------------------------
// Butter Donut / Double Butterfly (the symmetric topologies §II says the
// Floret methodology extends to).
// ---------------------------------------------------------------------------

TEST(ButterDonut, ConnectedWithExpressRows) {
    const auto t = topo::make_butter_donut(8, 8);
    EXPECT_TRUE(t.connected());
    // Express row links exist alongside the single-hop chain.
    const auto spans = t.link_span_histogram();
    EXPECT_GT(spans.at(2), 0u);
    EXPECT_GT(spans.at(1), 0u);
}

TEST(ButterDonut, ColumnWrapPresent) {
    const auto t = topo::make_butter_donut(6, 6);
    EXPECT_TRUE(t.has_link(0, 30));  // (0,0) <-> (0,5)
}

TEST(ButterDonut, SmallerDiameterThanMesh) {
    const auto donut = topo::make_butter_donut(8, 8);
    const auto mesh = topo::make_mesh(8, 8);
    auto diameter = [](const topo::Topology& t) {
        std::int32_t d = 0;
        for (topo::NodeId n = 0; n < t.node_count(); ++n)
            for (const auto h : t.hop_distances(n)) d = std::max(d, h);
        return d;
    };
    EXPECT_LT(diameter(donut), diameter(mesh));
}

TEST(DoubleButterfly, ConnectedWithHalfRowJumps) {
    const auto t = topo::make_double_butterfly(8, 8);
    EXPECT_TRUE(t.connected());
    EXPECT_TRUE(t.has_link(0, 4));  // (0,0) <-> (4,0), half-row jump
    const auto spans = t.link_span_histogram();
    EXPECT_GT(spans.at(4), 0u);
}

TEST(DoubleButterfly, RoutableWithUpDown) {
    const auto t = topo::make_double_butterfly(6, 6);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kUpDown);
    EXPECT_TRUE(rt.complete());
}

// ---------------------------------------------------------------------------
// XY (dimension-order) routing.
// ---------------------------------------------------------------------------

TEST(XyRouting, MinimalOnMesh) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kXY);
    ASSERT_TRUE(rt.complete());
    for (topo::NodeId s = 0; s < t.node_count(); ++s)
        for (topo::NodeId d = 0; d < t.node_count(); ++d)
            EXPECT_EQ(rt.hops(s, d), util::manhattan(t.node(s).pos, t.node(d).pos));
}

TEST(XyRouting, XBeforeY) {
    const auto t = topo::make_mesh(5, 5);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kXY);
    // Route (0,0) -> (3,2): x moves first.
    const auto& route = rt.route(0, 2 * 5 + 3);
    ASSERT_EQ(route.size(), 6u);
    EXPECT_EQ(route[1], 1);  // (1,0)
    EXPECT_EQ(route[2], 2);  // (2,0)
    EXPECT_EQ(route[3], 3);  // (3,0)
    EXPECT_EQ(route[4], 8);  // (3,1)
}

TEST(XyRouting, WorksOn3dMesh) {
    const auto t = topo::make_mesh3d(4, 4, 3);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kXY);
    EXPECT_TRUE(rt.complete());
    // X, then Y, then tier.
    EXPECT_EQ(rt.hops(0, t.node_count() - 1), 3 + 3 + 2);
}

TEST(XyRouting, RejectsIrregularTopology) {
    topo::Topology t("broken");
    t.add_node({0, 0});
    t.add_node({1, 0});
    t.add_node({2, 0});
    t.add_link(0, 2, 8.0);  // skip link only; no (0,0)-(1,0) link
    t.add_link(1, 2);
    EXPECT_THROW(noc::RouteTable::build(t, noc::RoutingPolicy::kXY),
                 std::invalid_argument);
}

TEST(XyRouting, SimulatesDeadlockFreeOnMesh) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kXY);
    noc::SimConfig cfg;
    cfg.input_buffer_flits = 2;
    noc::Simulator sim(t, rt, cfg);
    util::Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const auto s = static_cast<topo::NodeId>(rng.below(36));
        const auto d = static_cast<topo::NodeId>(rng.below(36));
        if (s != d) sim.add_demand(noc::Demand{s, d, 240});
    }
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
}

// ---------------------------------------------------------------------------
// Section IV heterogeneous integration.
// ---------------------------------------------------------------------------

core::HeteroConfig small_hetero() {
    core::HeteroConfig cfg;
    cfg.macro_width = 6;
    cfg.macro_height = 6;
    cfg.lambda = 6;
    cfg.attention_modules = 2;
    return cfg;
}

TEST(Hetero, SystemStructure) {
    const auto cfg = small_hetero();
    const auto sys = core::build_hetero_system(cfg);
    EXPECT_EQ(sys.topology.node_count(), 36 + 2);
    EXPECT_TRUE(sys.topology.connected());
    EXPECT_EQ(sys.attention_nodes.size(), 2u);
    EXPECT_EQ(sys.macro_order.size(), 36u);
}

TEST(Hetero, StaticKernelsOnMacroDynamicOnModules) {
    const auto cfg = small_hetero();
    const auto sys = core::build_hetero_system(cfg);
    const auto mapping = core::map_transformer(sys, dnn::bert_tiny(), cfg, false);
    ASSERT_TRUE(mapping.fits);
    for (const auto& p : mapping.placements) {
        if (p.cls == dnn::KernelClass::kDynamicMatrix) {
            ASSERT_EQ(p.nodes.size(), 1u);
            EXPECT_TRUE(std::find(sys.attention_nodes.begin(), sys.attention_nodes.end(),
                                  p.nodes.front()) != sys.attention_nodes.end());
            EXPECT_DOUBLE_EQ(p.write_ns, 0.0);
        }
        if (p.cls == dnn::KernelClass::kStaticWeight) {
            for (const auto n : p.nodes)
                EXPECT_TRUE(std::find(sys.attention_nodes.begin(),
                                      sys.attention_nodes.end(),
                                      n) == sys.attention_nodes.end());
        }
    }
}

TEST(Hetero, AllPimPaysWriteStalls) {
    const auto cfg = small_hetero();
    const auto sys = core::build_hetero_system(cfg);
    const auto model = dnn::bert_tiny();
    const auto hetero = core::map_transformer(sys, model, cfg, false);
    const auto all_pim = core::map_transformer(sys, model, cfg, true);
    ASSERT_TRUE(hetero.fits);
    ASSERT_TRUE(all_pim.fits);
    const auto ev_h = core::evaluate_hetero(sys, hetero, model);
    const auto ev_p = core::evaluate_hetero(sys, all_pim, model);
    EXPECT_DOUBLE_EQ(ev_h.write_ns, 0.0);
    EXPECT_GT(ev_p.write_ns, 0.0);
    EXPECT_GT(ev_p.latency_ns, ev_h.latency_ns);
}

TEST(Hetero, BertBaseOverflowsSmallMacro) {
    // §IV: intermediate matrices cannot be stored "within the reticle
    // limit" — BERT-Base in all-PIM mode must overflow a modest macro.
    const auto cfg = small_hetero();
    const auto sys = core::build_hetero_system(cfg);
    const auto mapping = core::map_transformer(sys, dnn::bert_base(), cfg, true);
    EXPECT_FALSE(mapping.fits);
}

TEST(Hetero, StaticWeightsPackContiguously) {
    const auto cfg = small_hetero();
    const auto sys = core::build_hetero_system(cfg);
    const auto mapping = core::map_transformer(sys, dnn::bert_tiny(), cfg, false);
    ASSERT_TRUE(mapping.fits);
    // Successive static kernels occupy non-decreasing SFC positions.
    std::map<topo::NodeId, std::size_t> pos;
    for (std::size_t i = 0; i < sys.macro_order.size(); ++i)
        pos[sys.macro_order[i]] = i;
    std::size_t last = 0;
    for (const auto& p : mapping.placements) {
        if (p.cls != dnn::KernelClass::kStaticWeight) continue;
        EXPECT_GE(pos.at(p.nodes.front()), last > 0 ? last - 1 : 0);
        last = pos.at(p.nodes.back());
    }
}

TEST(Hetero, RejectsZeroModules) {
    auto cfg = small_hetero();
    cfg.attention_modules = 0;
    EXPECT_THROW(core::build_hetero_system(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace floretsim
