#include <gtest/gtest.h>

#include "src/dnn/model_zoo.h"

namespace floretsim::dnn {
namespace {

/// Finds the first layer whose name contains `needle`.
const Layer* find_layer(const Network& net, const std::string& needle) {
    for (const auto& l : net.layers())
        if (l.name.find(needle) != std::string::npos) return &l;
    return nullptr;
}

TEST(ResNetShapes, ImageNetStemProgression) {
    const auto net = build_resnet(50, Dataset::kImageNet);
    const auto* stem = find_layer(net, "stem.conv");
    ASSERT_NE(stem, nullptr);
    EXPECT_EQ(stem->out, (Shape{64, 112, 112}));
    const auto* pool = find_layer(net, "stem.pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->out, (Shape{64, 56, 56}));
}

TEST(ResNetShapes, StageSpatialHalving) {
    const auto net = build_resnet(18, Dataset::kImageNet);
    EXPECT_EQ(find_layer(net, "stage1.block1.conv1")->out.h, 56);
    EXPECT_EQ(find_layer(net, "stage2.block1.conv1")->out.h, 28);
    EXPECT_EQ(find_layer(net, "stage3.block1.conv1")->out.h, 14);
    EXPECT_EQ(find_layer(net, "stage4.block1.conv1")->out.h, 7);
}

TEST(ResNetShapes, BottleneckExpansion) {
    const auto net = build_resnet(50, Dataset::kImageNet);
    // Stage 1 bottleneck: 64 -> 64 -> 256 channels.
    EXPECT_EQ(find_layer(net, "stage1.block1.conv1")->out.c, 64);
    EXPECT_EQ(find_layer(net, "stage1.block1.conv3")->out.c, 256);
    // Final stage ends at 2048 channels.
    EXPECT_EQ(find_layer(net, "stage4.block1.conv3")->out.c, 2048);
}

TEST(ResNetShapes, DownsampleShortcutsOnlyAtStageBoundaries) {
    const auto net = build_resnet(34, Dataset::kImageNet);
    EXPECT_NE(find_layer(net, "stage2.block1.down"), nullptr);
    EXPECT_EQ(find_layer(net, "stage2.block2.down"), nullptr);
    EXPECT_NE(find_layer(net, "stage3.block1.down"), nullptr);
    EXPECT_EQ(find_layer(net, "stage1.block1.down"), nullptr);  // 64 == 64
}

TEST(ResNetShapes, Cifar110ThinStem) {
    const auto net = build_resnet(110, Dataset::kCifar10);
    const auto* stem = find_layer(net, "stem.conv");
    ASSERT_NE(stem, nullptr);
    EXPECT_EQ(stem->out, (Shape{16, 32, 32}));
    // 3 stages x 18 blocks x 2 convs + stem + downsample shortcuts + fc.
    std::int32_t convs = 0;
    for (const auto& l : net.layers())
        if (l.kind == LayerKind::kConv) ++convs;
    EXPECT_EQ(convs, 1 + 108 + 2);  // stem + block convs + 2 projections
}

TEST(ResNetMacs, MatchPublishedGMacs) {
    // Published multiply-add counts (torchvision, 224x224): ResNet-18
    // 1.82 G, ResNet-34 3.68 G, ResNet-50 4.12 G.
    EXPECT_NEAR(static_cast<double>(build_resnet(18, Dataset::kImageNet).total_macs()),
                1.82e9, 0.05e9);
    EXPECT_NEAR(static_cast<double>(build_resnet(34, Dataset::kImageNet).total_macs()),
                3.68e9, 0.08e9);
    EXPECT_NEAR(static_cast<double>(build_resnet(50, Dataset::kImageNet).total_macs()),
                4.12e9, 0.12e9);
}

TEST(VggShapes, ChannelDoublingPerStage) {
    const auto net = build_vgg(16, Dataset::kImageNet);
    EXPECT_EQ(find_layer(net, "stage1.conv1")->out.c, 64);
    EXPECT_EQ(find_layer(net, "stage2.conv1")->out.c, 128);
    EXPECT_EQ(find_layer(net, "stage3.conv1")->out.c, 256);
    EXPECT_EQ(find_layer(net, "stage4.conv1")->out.c, 512);
    EXPECT_EQ(find_layer(net, "stage5.conv1")->out.c, 512);
}

TEST(VggShapes, ClassifierDominatesParams) {
    // The famous VGG property: fc1 (25088 x 4096) alone holds ~100M of the
    // 138M parameters.
    const auto net = build_vgg(16, Dataset::kImageNet);
    const auto* fc1 = find_layer(net, "fc1");
    ASSERT_NE(fc1, nullptr);
    EXPECT_EQ(fc1->weight_params(), 25088LL * 4096 + 4096);
    EXPECT_GT(static_cast<double>(fc1->weight_params()),
              0.7 * static_cast<double>(net.total_params()) * 0.99 -
                  static_cast<double>(net.total_params()) * 0.0);
    EXPECT_GT(fc1->weight_params(), net.total_params() / 2);
}

TEST(VggShapes, MacsMatchPublished) {
    // VGG-16: ~15.5 G multiply-adds at 224x224.
    EXPECT_NEAR(static_cast<double>(build_vgg(16, Dataset::kImageNet).total_macs()),
                15.5e9, 0.4e9);
}

TEST(DenseNetShapes, TransitionChannelArithmetic) {
    const auto net = build_densenet169(Dataset::kImageNet);
    // After block1 (6 layers x growth 32 on 64): 256 -> transition halves
    // to 128; block2 (+12x32=384+...): 512 -> 256.
    EXPECT_EQ(find_layer(net, "trans1.conv")->out.c, 128);
    EXPECT_EQ(find_layer(net, "trans2.conv")->out.c, 256);
    EXPECT_EQ(find_layer(net, "trans3.conv")->out.c, 640);
    // Final feature count entering the classifier: 1664.
    const auto* fc = find_layer(net, "fc");
    ASSERT_NE(fc, nullptr);
    EXPECT_EQ(fc->in.c, 1664);
}

TEST(DenseNetShapes, BottleneckWidths) {
    const auto net = build_densenet169(Dataset::kImageNet);
    EXPECT_EQ(find_layer(net, "block1.layer1.conv1")->out.c, 128);  // 4 x growth
    EXPECT_EQ(find_layer(net, "block1.layer1.conv2")->out.c, 32);   // growth
}

TEST(GoogLeNetShapes, InceptionOutputWidths) {
    const auto net = build_googlenet(Dataset::kImageNet);
    // Published concat widths: 3a=256, 3b=480, 4a=512, 4e=832, 5b=1024.
    EXPECT_EQ(find_layer(net, "inc3a.cat")->out.c, 256);
    EXPECT_EQ(find_layer(net, "inc3b.cat")->out.c, 480);
    EXPECT_EQ(find_layer(net, "inc4a.cat")->out.c, 512);
    EXPECT_EQ(find_layer(net, "inc4e.cat")->out.c, 832);
    EXPECT_EQ(find_layer(net, "inc5b.cat")->out.c, 1024);
}

TEST(GoogLeNetShapes, PoolBranchKeepsSpatial) {
    const auto net = build_googlenet(Dataset::kImageNet);
    const auto* pool = find_layer(net, "inc3a.b4pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->in.h, pool->out.h);
    EXPECT_EQ(pool->in.w, pool->out.w);
}

TEST(ActivationVolumes, DecreaseThroughTheNetwork) {
    // Total activation volume early in the network far exceeds the tail —
    // the basis of the paper's "initial layers process more activations"
    // power argument.
    const auto net = build_resnet(34, Dataset::kImageNet);
    const auto& layers = net.layers();
    std::int64_t first_quarter = 0;
    std::int64_t last_quarter = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (i < layers.size() / 4) first_quarter += layers[i].output_activations();
        if (i >= 3 * layers.size() / 4) last_quarter += layers[i].output_activations();
    }
    EXPECT_GT(first_quarter, 4 * last_quarter);
}

class AllModelsShapes : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsShapes, SpatialDimsNeverCollapsePrematurely) {
    const auto net = build_model(GetParam(), Dataset::kImageNet);
    for (const auto& l : net.layers()) {
        EXPECT_GT(l.out.c, 0) << l.name;
        EXPECT_GT(l.out.h, 0) << l.name;
        EXPECT_GT(l.out.w, 0) << l.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllModelsShapes,
                         ::testing::Values("ResNet18", "ResNet34", "ResNet50",
                                           "ResNet101", "ResNet110", "ResNet152",
                                           "VGG11", "VGG16", "VGG19", "DenseNet169",
                                           "GoogLeNet"));

}  // namespace
}  // namespace floretsim::dnn
