#include <gtest/gtest.h>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"
#include "src/util/rng.h"

namespace floretsim::noc {
namespace {

SimConfig fast_cfg() {
    SimConfig cfg;
    cfg.max_cycles = 2'000'000;
    return cfg;
}

TEST(Simulator, SinglePacketUncontendedLatency) {
    const auto t = topo::make_mesh(4, 1, 4.0);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 1.0;
    Simulator sim(t, rt, cfg);
    sim.add_demand({0, 3, 8});  // exactly one flit
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 1);
    EXPECT_EQ(res.flits, 1);
    EXPECT_EQ(res.flit_hops, 3);
    // 3 hops x (1 link cycle + 2 router cycles) plus arbitration cycles:
    // latency must be close to the pipeline lower bound.
    EXPECT_GE(res.packet_latency.mean(), 9.0);
    EXPECT_LE(res.packet_latency.mean(), 14.0);
}

TEST(Simulator, MultiFlitPacketSerialization) {
    const auto t = topo::make_mesh(2, 1, 4.0);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 1.0;
    Simulator sim(t, rt, cfg);
    sim.add_demand({0, 1, 64});  // 8 flits, one packet
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 1);
    EXPECT_EQ(res.flits, 8);
    EXPECT_EQ(res.flit_hops, 8);
}

TEST(Simulator, LargeDemandSegmentsIntoPackets) {
    const auto t = topo::make_mesh(2, 1);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    Simulator sim(t, rt, cfg);
    sim.add_demand({0, 1, 8 * 16 * 5});  // 5 max-size packets
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 5);
    EXPECT_EQ(res.flits, 80);
}

TEST(Simulator, LocalAndEmptyDemandsIgnored) {
    const auto t = topo::make_mesh(2, 2);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, fast_cfg());
    sim.add_demand({1, 1, 100});
    sim.add_demand({0, 1, 0});
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 0);
    EXPECT_EQ(res.cycles, 0);
}

TEST(Simulator, RejectsOutOfRangeEndpoints) {
    const auto t = topo::make_mesh(2, 2);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, fast_cfg());
    EXPECT_THROW(sim.add_demand({0, 9, 10}), std::out_of_range);
    EXPECT_THROW(sim.add_demand({-1, 0, 10}), std::out_of_range);
}

TEST(Simulator, ConservationUnderRandomTraffic) {
    const auto t = topo::make_mesh(5, 5);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, fast_cfg());
    util::Rng rng(3);
    std::int64_t expect_packets = 0;
    for (int i = 0; i < 200; ++i) {
        const auto s = static_cast<topo::NodeId>(rng.below(25));
        const auto d = static_cast<topo::NodeId>(rng.below(25));
        if (s == d) continue;
        const std::int64_t bytes = 8 * (1 + static_cast<std::int64_t>(rng.below(40)));
        expect_packets += (bytes / 8 + 15) / 16;
        sim.add_demand({s, d, bytes});
    }
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, expect_packets);
}

TEST(Simulator, FlitHopCountersConsistent) {
    const auto t = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, fast_cfg());
    sim.add_demand({0, 15, 800});
    const auto res = sim.run();
    ASSERT_TRUE(res.completed);
    std::int64_t router_total = 0;
    for (const auto f : res.router_flits) router_total += f;
    std::int64_t link_total = 0;
    for (const auto f : res.link_flits) link_total += f;
    EXPECT_EQ(router_total, res.flit_hops);
    EXPECT_EQ(link_total, res.flit_hops);
    // 100 flits x 6 hops.
    EXPECT_EQ(res.flit_hops, 600);
}

TEST(Simulator, BackpressureWithTinyBuffersStillDrains) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    SimConfig cfg = fast_cfg();
    cfg.input_buffer_flits = 1;  // stress credit flow control
    Simulator sim(t, rt, cfg);
    util::Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const auto s = static_cast<topo::NodeId>(rng.below(36));
        const auto d = static_cast<topo::NodeId>(rng.below(36));
        if (s != d) sim.add_demand({s, d, 160});
    }
    const auto res = sim.run();
    EXPECT_TRUE(res.completed) << "deadlock or starvation with 1-flit buffers";
}

TEST(Simulator, HotspotContentionSlowsDelivery) {
    const auto t = topo::make_mesh(5, 5);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    // All nodes send to node 12 (center) -> serialization at its inputs.
    SimConfig cfg = fast_cfg();
    Simulator hot(t, rt, cfg);
    for (topo::NodeId n = 0; n < 25; ++n)
        if (n != 12) hot.add_demand({n, 12, 400});
    const auto res_hot = hot.run();

    // Same volume as neighbor-to-neighbor traffic drains much faster.
    Simulator cool(t, rt, cfg);
    for (topo::NodeId n = 0; n + 1 < 25; ++n) cool.add_demand({n, n + 1, 400});
    const auto res_cool = cool.run();

    ASSERT_TRUE(res_hot.completed);
    ASSERT_TRUE(res_cool.completed);
    EXPECT_GT(res_hot.packet_latency.mean(), 1.5 * res_cool.packet_latency.mean());
}

TEST(Simulator, LongLinksIncreaseLatency) {
    // Two-node topologies with 4mm vs 20mm links.
    topo::Topology short_t("short", 4.0);
    short_t.add_node({0, 0});
    short_t.add_node({1, 0});
    short_t.add_link(0, 1, 4.0);
    topo::Topology long_t("long", 4.0);
    long_t.add_node({0, 0});
    long_t.add_node({1, 0});
    long_t.add_link(0, 1, 20.0);

    for (const auto* t : {&short_t, &long_t}) {
        const auto rt = RouteTable::build(*t, RoutingPolicy::kShortestPath);
        Simulator sim(*t, rt, fast_cfg());
        sim.add_demand({0, 1, 8});
        const auto res = sim.run();
        ASSERT_TRUE(res.completed);
    }
    const auto rts = RouteTable::build(short_t, RoutingPolicy::kShortestPath);
    Simulator s1(short_t, rts, fast_cfg());
    s1.add_demand({0, 1, 8});
    const auto r1 = s1.run();
    const auto rtl = RouteTable::build(long_t, RoutingPolicy::kShortestPath);
    Simulator s2(long_t, rtl, fast_cfg());
    s2.add_demand({0, 1, 8});
    const auto r2 = s2.run();
    EXPECT_GT(r2.packet_latency.mean(), r1.packet_latency.mean());
}

TEST(Simulator, DeadlockFreeOnIrregularTopologiesWithUpDown) {
    util::Rng rng(31);
    const auto swap = topo::make_swap(8, 8, rng);
    const auto floret = core::make_floret(core::generate_sfc_set(8, 8, 4));
    for (const auto* t : {&swap, &floret}) {
        const auto rt = RouteTable::build(*t, RoutingPolicy::kUpDown);
        SimConfig cfg = fast_cfg();
        cfg.input_buffer_flits = 2;
        Simulator sim(*t, rt, cfg);
        util::Rng traffic_rng(7);
        for (int i = 0; i < 300; ++i) {
            const auto s = static_cast<topo::NodeId>(traffic_rng.below(64));
            const auto d = static_cast<topo::NodeId>(traffic_rng.below(64));
            if (s != d) sim.add_demand({s, d, 320});
        }
        const auto res = sim.run();
        EXPECT_TRUE(res.completed) << t->name() << " failed to drain (deadlock?)";
    }
}

TEST(Simulator, ReusableAfterRun) {
    const auto t = topo::make_mesh(3, 3);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, fast_cfg());
    sim.add_demand({0, 8, 80});
    const auto r1 = sim.run();
    EXPECT_TRUE(r1.completed);
    sim.add_demand({8, 0, 80});
    const auto r2 = sim.run();
    EXPECT_TRUE(r2.completed);
    EXPECT_EQ(r2.packets, r1.packets);
}

/// Runs the same demand set on the reference cycle loop and the
/// event-horizon core and requires bit-identical SimResults — every
/// skipped cycle must be a no-op. (tests/test_noc_event_horizon.cpp runs
/// the full randomized differential matrix.)
void expect_skip_ahead_equivalent(const topo::Topology& t, const RouteTable& rt,
                                  const std::vector<Demand>& demands,
                                  SimConfig cfg) {
    cfg.core = SimCore::kReference;
    Simulator ref_sim(t, rt, cfg);
    ref_sim.add_demands(demands);
    const auto ref = ref_sim.run();

    cfg.core = SimCore::kEventHorizon;
    Simulator fast_sim(t, rt, cfg);
    fast_sim.add_demands(demands);
    const auto fast = fast_sim.run();

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.packets, ref.packets);
    EXPECT_EQ(fast.flits, ref.flits);
    EXPECT_EQ(fast.flit_hops, ref.flit_hops);
    EXPECT_EQ(fast.completed, ref.completed);
    EXPECT_EQ(fast.packet_latency.count(), ref.packet_latency.count());
    EXPECT_EQ(fast.packet_latency.mean(), ref.packet_latency.mean());
    EXPECT_EQ(fast.packet_latency.max(), ref.packet_latency.max());
    EXPECT_EQ(fast.router_flits, ref.router_flits);
    EXPECT_EQ(fast.link_flits, ref.link_flits);
}

std::vector<Demand> sparse_demands(std::int32_t nodes, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Demand> ds;
    for (int i = 0; i < 40; ++i) {
        const auto s = static_cast<topo::NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
        const auto d = static_cast<topo::NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
        if (s != d) ds.push_back({s, d, 8 * (1 + static_cast<std::int64_t>(rng.below(24)))});
    }
    return ds;
}

TEST(Simulator, SkipAheadMatchesReferenceOnMeshSparse) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 0.002;  // long idle gaps between packet waves
    expect_skip_ahead_equivalent(t, rt, sparse_demands(36, 11), cfg);
}

TEST(Simulator, SkipAheadMatchesReferenceOnMeshDense) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 1.0;
    cfg.input_buffer_flits = 2;  // heavy backpressure
    expect_skip_ahead_equivalent(t, rt, sparse_demands(36, 23), cfg);
}

TEST(Simulator, SkipAheadMatchesReferenceOnFloret) {
    const auto floret = core::make_floret(core::generate_sfc_set(8, 8, 4));
    const auto rt = RouteTable::build(floret, RoutingPolicy::kUpDown);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 0.01;
    expect_skip_ahead_equivalent(floret, rt, sparse_demands(64, 7), cfg);
}

TEST(Simulator, SkipAheadMatchesReferenceOnLongLinks) {
    // Long links mean deep pipelines: many cycles where every in-flight
    // flit is mid-link — exactly the window the fast path jumps across.
    topo::Topology t("long", 4.0);
    t.add_node({0, 0});
    t.add_node({8, 0});
    t.add_node({16, 0});
    t.add_link(0, 1, 32.0);
    t.add_link(1, 2, 32.0);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 0.05;
    expect_skip_ahead_equivalent(t, rt, {{0, 2, 160}, {2, 0, 80}, {1, 2, 8}}, cfg);
}

TEST(Simulator, SkipAheadMatchesReferenceWhenCycleCapped) {
    const auto t = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg = fast_cfg();
    cfg.injection_rate = 1e-4;   // schedule stretches far beyond the cap
    cfg.max_cycles = 5'000;
    expect_skip_ahead_equivalent(t, rt, sparse_demands(16, 3), cfg);
}

TEST(Simulator, EventHorizonCoreIsOnByDefault) {
    EXPECT_EQ(SimConfig{}.core, SimCore::kEventHorizon);
}

TEST(Simulator, IdleFastForwardClampsCappedRuns) {
    // An idle gap whose next injection lies beyond max_cycles: the idle
    // fast-forward must clamp to the cap, never report cycles > max_cycles
    // (this was a real bug — the jump used to land on the injection cycle
    // itself, so a capped run reported a makespan past its own cap).
    const auto t = topo::make_mesh(4, 1, 4.0);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg;
    cfg.injection_rate = 1e-6;  // second packet schedules ~1e7 cycles out
    cfg.max_cycles = 1'000;
    for (const auto core :
         {SimCore::kReference, SimCore::kEventHorizon, SimCore::kRegional}) {
        cfg.core = core;
        Simulator sim(t, rt, cfg);
        sim.add_demand({0, 3, 8});  // delivered almost immediately
        sim.add_demand({0, 3, 8});  // injects far beyond the cap
        const auto res = sim.run();
        EXPECT_FALSE(res.completed) << sim_core_name(core);
        EXPECT_EQ(res.packets, 1) << sim_core_name(core);
        EXPECT_EQ(res.cycles, cfg.max_cycles) << sim_core_name(core);
    }
}

TEST(Simulator, InjectionRateThrottlesMakespan) {
    const auto t = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig slow = fast_cfg();
    slow.injection_rate = 0.01;
    SimConfig fast = fast_cfg();
    fast.injection_rate = 0.5;
    Simulator sim_slow(t, rt, slow);
    Simulator sim_fast(t, rt, fast);
    for (topo::NodeId n = 0; n < 16; ++n) {
        if (n != 5) {
            sim_slow.add_demand({n, 5, 160});
            sim_fast.add_demand({n, 5, 160});
        }
    }
    const auto rs = sim_slow.run();
    const auto rf = sim_fast.run();
    ASSERT_TRUE(rs.completed);
    ASSERT_TRUE(rf.completed);
    EXPECT_GT(rs.cycles, rf.cycles);
}

}  // namespace
}  // namespace floretsim::noc
