#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "src/util/geometry.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace floretsim::util {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowNeverReachesBound) {
    Rng r(99);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
    Rng r(5);
    std::vector<int> seen(7, 0);
    for (int i = 0; i < 7000; ++i) ++seen[r.below(7)];
    for (const int c : seen) EXPECT_GT(c, 700);
}

TEST(Rng, RangeInclusive) {
    Rng r(11);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        hit_lo |= (v == -2);
        hit_hi |= (v == 2);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng r(3);
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(r.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
    Rng r(4);
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
    Rng r(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    Rng r(1);
    std::uniform_int_distribution<int> dist(0, 9);
    for (int i = 0; i < 100; ++i) {
        const int v = dist(r);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 9);
    }
}

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats a;
    RunningStats b;
    RunningStats all;
    Rng r(21);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(-5, 5);
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, EdgesAndMedian) {
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, UnsortedInput) {
    EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(Histogram, AddAndQuery) {
    Histogram h;
    h.add(2);
    h.add(2);
    h.add(4, 3);
    EXPECT_EQ(h.at(2), 2u);
    EXPECT_EQ(h.at(4), 3u);
    EXPECT_EQ(h.at(0), 0u);
    EXPECT_EQ(h.at(99), 0u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.size(), 5u);
}

TEST(Geometry, Manhattan2d) {
    EXPECT_EQ(manhattan(Point2{0, 0}, Point2{3, 4}), 7);
    EXPECT_EQ(manhattan(Point2{-1, -1}, Point2{1, 1}), 4);
    EXPECT_EQ(manhattan(Point2{2, 2}, Point2{2, 2}), 0);
}

TEST(Geometry, Manhattan3d) {
    EXPECT_EQ(manhattan(Point3{0, 0, 0}, Point3{1, 2, 3}), 6);
}

TEST(Geometry, Euclidean) {
    EXPECT_DOUBLE_EQ(euclidean(Point2{0, 0}, Point2{3, 4}), 5.0);
}

class IndexRoundTrip : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(IndexRoundTrip, ToFromIndexInverse) {
    const std::int32_t width = GetParam();
    for (std::int32_t y = 0; y < 7; ++y) {
        for (std::int32_t x = 0; x < width; ++x) {
            const Point2 p{x, y};
            EXPECT_EQ(from_index(to_index(p, width), width), p);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, IndexRoundTrip, ::testing::Values(1, 2, 5, 10, 13));

}  // namespace
}  // namespace floretsim::util
