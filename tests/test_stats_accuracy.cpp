/// Accuracy pins for util::P2Quantile against exact sorted quantiles on
/// deterministic RNG streams. The P² sketch backs the serving layer's
/// p50/p95/p99 SLA tails, so its error must stay bounded on the
/// distribution shapes request latencies actually take: uniform (easy),
/// bimodal (cache hit vs miss), and heavy-tail (queueing under load —
/// the shape that breaks naive sketches). Everything is seeded, so these
/// are exact regression pins, not flaky statistical tests; the bounds
/// have headroom over the observed error but fail on a real regression.

#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace floretsim::util {
namespace {

constexpr std::size_t kSamples = 20000;

/// Relative error of the P² estimate against the exact (sorted,
/// interpolated) quantile of the same stream.
double p2_rel_error(const std::vector<double>& stream, double q) {
    P2Quantile sketch(q);
    for (const double x : stream) sketch.add(x);
    const double exact = percentile(stream, q);
    EXPECT_NE(exact, 0.0);
    return std::abs(sketch.value() - exact) / std::abs(exact);
}

std::vector<double> uniform_stream(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i) xs.push_back(rng.uniform(1.0, 2.0));
    return xs;
}

/// 70% fast mode around 10, 30% slow mode around 100 — a resident-set
/// cache hit vs a full NoI re-evaluation.
std::vector<double> bimodal_stream(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i)
        xs.push_back(rng.chance(0.3) ? rng.normal(100.0, 5.0)
                                     : rng.normal(10.0, 1.0));
    return xs;
}

/// Pareto(alpha = 1.5): finite mean, infinite variance — queueing-tail
/// shaped. x = (1 - u)^(-1/alpha) >= 1.
std::vector<double> heavy_tail_stream(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i)
        xs.push_back(std::pow(1.0 - rng.uniform(), -1.0 / 1.5));
    return xs;
}

TEST(P2Accuracy, UniformStream) {
    const auto xs = uniform_stream(7);
    EXPECT_LT(p2_rel_error(xs, 0.50), 0.01);
    EXPECT_LT(p2_rel_error(xs, 0.95), 0.01);
    EXPECT_LT(p2_rel_error(xs, 0.99), 0.01);
}

TEST(P2Accuracy, BimodalStream) {
    const auto xs = bimodal_stream(21);
    // p50 sits inside the fast mode, p95/p99 inside the slow mode; the
    // sketch must not blend the modes.
    EXPECT_LT(p2_rel_error(xs, 0.50), 0.05);
    EXPECT_LT(p2_rel_error(xs, 0.95), 0.02);
    EXPECT_LT(p2_rel_error(xs, 0.99), 0.02);
}

TEST(P2Accuracy, HeavyTailStream) {
    const auto xs = heavy_tail_stream(35);
    EXPECT_LT(p2_rel_error(xs, 0.50), 0.02);
    EXPECT_LT(p2_rel_error(xs, 0.95), 0.08);
    // The extreme tail of an infinite-variance stream is the hardest
    // case; the marker interpolation stays within ~10%.
    EXPECT_LT(p2_rel_error(xs, 0.99), 0.10);
}

TEST(P2Accuracy, ExactWhileFewerThanFiveSamples) {
    P2Quantile p50(0.5);
    for (const double x : {5.0, 1.0, 3.0}) p50.add(x);
    EXPECT_DOUBLE_EQ(p50.value(), percentile({5.0, 1.0, 3.0}, 0.5));
}

TEST(P2Accuracy, SeedsGiveIndependentStreamsSameBounds) {
    // The bounds are not tuned to one lucky seed.
    for (const std::uint64_t seed : {101, 202, 303}) {
        EXPECT_LT(p2_rel_error(uniform_stream(seed), 0.99), 0.01) << seed;
        EXPECT_LT(p2_rel_error(heavy_tail_stream(seed), 0.95), 0.10) << seed;
    }
}

}  // namespace
}  // namespace floretsim::util
