#include <gtest/gtest.h>

#include "src/dnn/transformer.h"

namespace floretsim::dnn {
namespace {

TEST(Transformer, BertBaseEncoderWeights) {
    const auto cfg = bert_base();
    const auto s = analyze_storage(cfg);
    // 12 encoders x ~7.09M params each = ~85M encoder weights.
    EXPECT_NEAR(static_cast<double>(s.weight_params), 85.0e6, 1.5e6);
    // Embeddings: 30522*768 + 512*768 ~ 23.8M.
    EXPECT_NEAR(static_cast<double>(s.embedding_params), 23.8e6, 0.5e6);
}

TEST(Transformer, IntermediatesScaleWithBatch) {
    auto cfg = bert_tiny();
    cfg.batch = 1;
    const auto s1 = analyze_storage(cfg);
    cfg.batch = 4;
    const auto s4 = analyze_storage(cfg);
    EXPECT_EQ(s4.intermediate_elems, 4 * s1.intermediate_elems);
    EXPECT_EQ(s4.weight_params, s1.weight_params);  // weights are static
}

TEST(Transformer, IntermediateOverWeightRatioBands) {
    // §IV: BERT-Base intermediate matrices reach ~8.98x the weight storage,
    // BERT-Tiny ~2.06x. Our storage model reproduces those bands at
    // moderate batch sizes (see EXPERIMENTS.md for the calibration).
    auto base = bert_base();
    base.batch = 6;
    const double rb = analyze_storage(base).intermediate_over_weights();
    EXPECT_GT(rb, 7.0);
    EXPECT_LT(rb, 11.0);

    auto tiny = bert_tiny();
    tiny.batch = 2;
    const double rt = analyze_storage(tiny).intermediate_over_weights();
    EXPECT_GT(rt, 1.5);
    EXPECT_LT(rt, 3.2);
}

TEST(Transformer, BaseRatioExceedsTinyRatio) {
    auto base = bert_base();
    auto tiny = bert_tiny();
    base.batch = tiny.batch = 2;
    EXPECT_GT(analyze_storage(base).intermediate_over_weights(),
              analyze_storage(tiny).intermediate_over_weights());
}

TEST(Transformer, KernelWalkStructure) {
    const auto cfg = bert_base();
    const auto ks = kernel_walk(cfg);
    ASSERT_EQ(ks.size(), 12u * 7u);
    // Per encoder: 4 static-weight kernels, 2 dynamic, 1 elementwise.
    int stat = 0;
    int dyn = 0;
    int elem = 0;
    for (std::size_t i = 0; i < 7; ++i) {
        switch (ks[i].cls) {
            case KernelClass::kStaticWeight: ++stat; break;
            case KernelClass::kDynamicMatrix: ++dyn; break;
            case KernelClass::kElementwise: ++elem; break;
        }
    }
    EXPECT_EQ(stat, 4);
    EXPECT_EQ(dyn, 2);
    EXPECT_EQ(elem, 1);
}

TEST(Transformer, DynamicKernelsHaveNoWeights) {
    for (const auto& k : kernel_walk(bert_tiny())) {
        if (k.cls == KernelClass::kDynamicMatrix) {
            EXPECT_EQ(k.weight_params, 0) << k.name;
            EXPECT_GT(k.work_macs, 0) << k.name;
        }
        if (k.cls == KernelClass::kStaticWeight) {
            EXPECT_GT(k.weight_params, 0) << k.name;
        }
    }
}

TEST(Transformer, StaticWeightTotalMatchesAnalysis) {
    const auto cfg = bert_base();
    std::int64_t walk_weights = 0;
    for (const auto& k : kernel_walk(cfg)) walk_weights += k.weight_params;
    const auto s = analyze_storage(cfg);
    // The walk counts only the projection/FF matrices (no biases/LN), so
    // it must come in slightly below the full encoder weight count.
    EXPECT_LT(walk_weights, s.weight_params);
    EXPECT_GT(static_cast<double>(walk_weights),
              0.98 * static_cast<double>(s.weight_params) - 1e6);
}

}  // namespace
}  // namespace floretsim::dnn
