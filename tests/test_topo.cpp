#include <gtest/gtest.h>

#include <tuple>

#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"
#include "src/topo/topology.h"

namespace floretsim::topo {
namespace {

TEST(Topology, AddNodeAndLink) {
    Topology t("t", 4.0);
    const auto a = t.add_node({0, 0});
    const auto b = t.add_node({1, 0});
    const auto l = t.add_link(a, b);
    EXPECT_EQ(t.node_count(), 2);
    EXPECT_EQ(t.link_count(), 1);
    EXPECT_TRUE(t.has_link(a, b));
    EXPECT_TRUE(t.has_link(b, a));
    EXPECT_DOUBLE_EQ(t.link(l).length_mm, 4.0);
    EXPECT_EQ(t.link(l).hop_span, 1);
}

TEST(Topology, RejectsSelfLoopAndDuplicates) {
    Topology t("t");
    const auto a = t.add_node({0, 0});
    const auto b = t.add_node({1, 0});
    EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
    t.add_link(a, b);
    EXPECT_THROW(t.add_link(b, a), std::invalid_argument);
    EXPECT_THROW(t.add_link(a, static_cast<NodeId>(5)), std::out_of_range);
}

TEST(Topology, PortsExcludeLocalNi) {
    const Topology t = make_mesh(3, 3);
    // Corner router: 2 network ports; edge: 3; center: 4.
    EXPECT_EQ(t.ports(0), 2);
    EXPECT_EQ(t.ports(1), 3);
    EXPECT_EQ(t.ports(4), 4);
}

TEST(Topology, HopDistancesOnPath) {
    Topology t("chain");
    for (int i = 0; i < 5; ++i) t.add_node({i, 0});
    for (int i = 0; i + 1 < 5; ++i) t.add_link(i, i + 1);
    const auto d = t.hop_distances(0);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(Mesh, CountsAndConnectivity) {
    const Topology t = make_mesh(10, 10);
    EXPECT_EQ(t.node_count(), 100);
    EXPECT_EQ(t.link_count(), 180);  // 2*w*h - w - h
    EXPECT_TRUE(t.connected());
    const auto ports = t.port_histogram();
    EXPECT_EQ(ports.at(2), 4u);    // corners
    EXPECT_EQ(ports.at(3), 32u);   // edges
    EXPECT_EQ(ports.at(4), 64u);   // interior
}

TEST(Mesh, AllLinksSingleHop) {
    const Topology t = make_mesh(6, 6);
    for (const auto& l : t.links()) EXPECT_EQ(l.hop_span, 1);
}

TEST(Torus, WrapLinksExist) {
    const Topology t = make_torus(5, 5);
    EXPECT_EQ(t.node_count(), 25);
    EXPECT_EQ(t.link_count(), 50);  // 2 per node on a torus
    EXPECT_TRUE(t.connected());
    // All routers are 4-ported on a torus.
    EXPECT_EQ(t.port_histogram().at(4), 25u);
    EXPECT_TRUE(t.has_link(0, 4));  // row wrap
    EXPECT_TRUE(t.has_link(0, 20));  // column wrap
}

TEST(Torus, FoldedWrapLength) {
    const Topology t = make_torus(5, 5, 4.0);
    for (const auto& l : t.links()) {
        if (l.hop_span > 1) {
            EXPECT_DOUBLE_EQ(l.length_mm, 8.0);
        }
    }
}

TEST(Kite, MostlyFourPortRoutersAndTwoHopLinks) {
    const Topology t = make_kite(10, 10);
    EXPECT_TRUE(t.connected());
    const auto ports = t.port_histogram();
    // Fig. 2(a): four-port routers are the most frequent with Kite.
    std::size_t mode = 0;
    for (std::size_t p = 1; p < ports.size(); ++p)
        if (ports.at(p) > ports.at(mode)) mode = p;
    EXPECT_EQ(mode, 4u);
    // Fig. 2(b): mainly two-hop links.
    const auto spans = t.link_span_histogram();
    EXPECT_GT(spans.at(2), spans.at(1));
}

TEST(Kite, SmallGridsConnected) {
    for (const int n : {3, 4, 5, 7}) {
        const Topology t = make_kite(n, n);
        EXPECT_TRUE(t.connected()) << n;
    }
}

TEST(Swap, RespectsDegreeBudgetMostly) {
    util::Rng rng(17);
    const Topology t = make_swap(10, 10, rng);
    EXPECT_TRUE(t.connected());
    const auto ports = t.port_histogram();
    // SWAP profile: 2-3 port routers dominate (serpentine backbone plus a
    // bounded number of shortcuts).
    EXPECT_GT(ports.at(2) + ports.at(3), 80u);
    for (const auto& n : t.nodes()) EXPECT_LE(t.ports(n.id), 4);
}

TEST(Swap, HasSomeLongLinks) {
    util::Rng rng(17);
    const Topology t = make_swap(10, 10, rng);
    std::int32_t longest = 0;
    for (const auto& l : t.links()) longest = std::max(longest, l.hop_span);
    EXPECT_GE(longest, 3);  // the paper notes 4-5 hop links; at least long-range
}

TEST(Swap, FewerLinksThanMesh) {
    util::Rng rng(7);
    const Topology swap = make_swap(10, 10, rng);
    const Topology mesh = make_mesh(10, 10);
    EXPECT_LT(swap.link_count(), mesh.link_count());
}

TEST(Swap, DeterministicForSeed) {
    util::Rng r1(42);
    util::Rng r2(42);
    const Topology a = make_swap(8, 8, r1);
    const Topology b = make_swap(8, 8, r2);
    ASSERT_EQ(a.link_count(), b.link_count());
    for (std::int32_t i = 0; i < a.link_count(); ++i) {
        EXPECT_EQ(a.link(i).a, b.link(i).a);
        EXPECT_EQ(a.link(i).b, b.link(i).b);
    }
}

TEST(Mesh3d, StructureAndVerticalLinks) {
    const Topology t = make_mesh3d(5, 5, 4);
    EXPECT_EQ(t.node_count(), 100);
    EXPECT_TRUE(t.connected());
    // links: per tier 2*5*5-5-5=40, x4 tiers = 160; vertical 25*3 = 75.
    EXPECT_EQ(t.link_count(), 235);
    // Vertical links are much shorter than lateral ones (MIV/TSV).
    std::int32_t vertical = 0;
    for (const auto& l : t.links()) {
        if (t.node(l.a).tier != t.node(l.b).tier) {
            ++vertical;
            EXPECT_LT(l.length_mm, 0.1);
        }
    }
    EXPECT_EQ(vertical, 75);
}

TEST(PathTopology, BuildsChainsAndExpress) {
    const std::vector<std::vector<NodeId>> paths{{0, 1, 2}, {3, 4, 5}};
    const std::vector<std::pair<NodeId, NodeId>> express{{2, 3}};
    const Topology t = make_path_topology("p", 3, 2, paths, express);
    EXPECT_EQ(t.node_count(), 6);
    EXPECT_EQ(t.link_count(), 5);
    EXPECT_TRUE(t.connected());
}

TEST(PathTopology, DeduplicatesSharedEdges) {
    const std::vector<std::vector<NodeId>> paths{{0, 1, 2}, {2, 1}};
    const Topology t = make_path_topology("p", 3, 1, paths, {});
    EXPECT_EQ(t.link_count(), 2);
}

class MeshSizes : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {};

TEST_P(MeshSizes, LinkCountFormulaAndConnectivity) {
    const auto [w, h] = GetParam();
    const Topology t = make_mesh(w, h);
    EXPECT_EQ(t.link_count(), 2 * w * h - w - h);
    EXPECT_TRUE(t.connected());
    for (const auto& n : t.nodes()) {
        EXPECT_GE(t.ports(n.id), (w == 1 || h == 1) ? 1 : 2);
        EXPECT_LE(t.ports(n.id), 4);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{3, 5},
                                           std::tuple{6, 6}, std::tuple{10, 10},
                                           std::tuple{12, 8}, std::tuple{1, 7}));

class SwapSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwapSeeds, AlwaysConnectedWithinBudget) {
    util::Rng rng(GetParam());
    SwapConfig cfg;
    cfg.sa_iters = 50;  // keep the sweep fast
    const Topology t = make_swap(8, 8, rng, cfg);
    EXPECT_TRUE(t.connected());
    EXPECT_LT(t.link_count(), 2 * 64 - 16);  // fewer links than the mesh
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapSeeds, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace floretsim::topo
