#include <gtest/gtest.h>

#include <array>

#include "src/dnn/network.h"
#include "src/dnn/traffic.h"

namespace floretsim::dnn {
namespace {

Network tiny() {
    Network net("tiny");
    const auto in = net.add_input({3, 8, 8});
    const auto c1 = net.add_conv(in, 4, 3, 1, 1, /*bias=*/true, /*bn=*/false);
    const auto p = net.add_pool(c1, 2, 2);
    const auto c2 = net.add_conv(p, 8, 3, 1, 1, true, false);
    const auto g = net.add_global_pool(c2);
    net.add_fc(g, 10);
    return net;
}

TEST(Network, ConvShapeArithmetic) {
    Network net("n");
    const auto in = net.add_input({3, 224, 224});
    const auto c = net.add_conv(in, 64, 7, 2, 3, false, true);
    EXPECT_EQ(net.layer(c).out, (Shape{64, 112, 112}));
    const auto p = net.add_pool(c, 3, 2, 1);
    EXPECT_EQ(net.layer(p).out, (Shape{64, 56, 56}));
}

TEST(Network, ConvParamCount) {
    Network net("n");
    const auto in = net.add_input({3, 32, 32});
    const auto c = net.add_conv(in, 16, 3, 1, 1, /*bias=*/true, /*bn=*/false);
    // 3*3*3*16 + 16 bias = 448.
    EXPECT_EQ(net.layer(c).weight_params(), 448);
}

TEST(Network, ConvWithBnParams) {
    Network net("n");
    const auto in = net.add_input({3, 32, 32});
    const auto c = net.add_conv(in, 16, 3, 1, 1, /*bias=*/false, /*bn=*/true);
    // 432 weights + 2*16 folded BN.
    EXPECT_EQ(net.layer(c).weight_params(), 464);
}

TEST(Network, GroupedConvParams) {
    Network net("n");
    const auto in = net.add_input({8, 16, 16});
    const auto c = net.add_conv(in, 8, 3, 1, 1, false, false, /*groups=*/8);
    EXPECT_EQ(net.layer(c).weight_params(), 3 * 3 * 1 * 8);
}

TEST(Network, FcParamsAndMacs) {
    Network net("n");
    const auto in = net.add_input({512, 1, 1});
    const auto f = net.add_fc(in, 1000);
    EXPECT_EQ(net.layer(f).weight_params(), 512 * 1000 + 1000);
    EXPECT_EQ(net.layer(f).macs(), 512 * 1000);
}

TEST(Network, ConvMacs) {
    Network net("n");
    const auto in = net.add_input({3, 8, 8});
    const auto c = net.add_conv(in, 4, 3, 1, 1, false, false);
    EXPECT_EQ(net.layer(c).macs(), 8LL * 8 * 4 * 3 * 3 * 3);
}

TEST(Network, InputMustComeFirst) {
    Network net("n");
    net.add_input({3, 4, 4});
    EXPECT_THROW(net.add_input({3, 4, 4}), std::logic_error);
}

TEST(Network, AddRequiresMatchingShapes) {
    Network net("n");
    const auto in = net.add_input({3, 8, 8});
    const auto a = net.add_conv(in, 4, 3, 1, 1, false, false);
    const auto b = net.add_conv(in, 8, 3, 1, 1, false, false);
    EXPECT_THROW(net.add_add(a, b), std::invalid_argument);
}

TEST(Network, ResidualAddMarksSkipEdge) {
    Network net("n");
    const auto in = net.add_input({4, 8, 8});
    const auto c1 = net.add_conv(in, 4, 3, 1, 1, false, false);
    const auto c2 = net.add_conv(c1, 4, 3, 1, 1, false, false);
    const auto add = net.add_add(c2, in);
    bool found_skip = false;
    for (const auto& e : net.edges()) {
        if (e.src == in && e.dst == add) {
            EXPECT_TRUE(e.skip);
            found_skip = true;
        }
        if (e.src == c2 && e.dst == add) {
            EXPECT_FALSE(e.skip);
        }
    }
    EXPECT_TRUE(found_skip);
}

TEST(Network, ConcatSumsChannels) {
    Network net("n");
    const auto in = net.add_input({4, 8, 8});
    const auto a = net.add_conv(in, 6, 1, 1, 0, false, false);
    const auto b = net.add_conv(in, 10, 3, 1, 1, false, false);
    const std::array<std::int32_t, 2> branches{a, b};
    const auto cat = net.add_concat(branches);
    EXPECT_EQ(net.layer(cat).out, (Shape{16, 8, 8}));
}

TEST(Network, ConcatRejectsMismatchedSpatial) {
    Network net("n");
    const auto in = net.add_input({4, 8, 8});
    const auto a = net.add_conv(in, 6, 1, 1, 0, false, false);
    const auto b = net.add_conv(in, 6, 3, 2, 1, false, false);
    const std::array<std::int32_t, 2> branches{a, b};
    EXPECT_THROW(net.add_concat(branches), std::invalid_argument);
}

TEST(Network, EdgeVolumesMatchProducerActivations) {
    const Network net = tiny();
    for (const auto& e : net.edges())
        EXPECT_EQ(e.elems, net.layer(e.src).output_activations());
}

TEST(Network, WeightLayerIdsInTopoOrder) {
    const Network net = tiny();
    const auto ids = net.weight_layer_ids();
    ASSERT_EQ(ids.size(), 3u);  // two convs + fc
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    for (const auto id : ids) {
        const auto k = net.layer(id).kind;
        EXPECT_TRUE(k == LayerKind::kConv || k == LayerKind::kFc);
    }
}

TEST(Network, TotalsAreSums) {
    const Network net = tiny();
    std::int64_t params = 0;
    std::int64_t macs = 0;
    for (const auto& l : net.layers()) {
        params += l.weight_params();
        macs += l.macs();
    }
    EXPECT_EQ(net.total_params(), params);
    EXPECT_EQ(net.total_macs(), macs);
}

TEST(Network, CollapsedSpatialThrows) {
    Network net("n");
    const auto in = net.add_input({3, 4, 4});
    EXPECT_THROW(net.add_conv(in, 8, 7, 1, 0, false, false), std::invalid_argument);
}

TEST(Traffic, FlowsSplitAcrossNodes) {
    Network net("n");
    const auto in = net.add_input({1, 4, 4});  // 16 elems
    const auto c = net.add_conv(in, 1, 3, 1, 1, false, false);
    net.add_global_pool(c);
    // input on node 0; conv split over nodes 1,2; gap inherits node 2.
    std::vector<std::vector<std::int32_t>> nodes{{0}, {1, 2}, {2}};
    const auto flows = extract_flows(net, nodes, 1);
    // edge input->conv: 16 bytes over pairs (0,1),(0,2) -> 8 each.
    // edge conv->gap: 16 bytes over pairs (1,2),(2,2); the latter is local.
    std::int64_t total = 0;
    for (const auto& f : flows) {
        EXPECT_NE(f.src, f.dst);
        total += f.bytes;
    }
    EXPECT_EQ(total, 8 + 8 + 8);
}

TEST(Traffic, RejectsBadAssignment) {
    Network net("n");
    const auto in = net.add_input({1, 4, 4});
    net.add_conv(in, 1, 3, 1, 1, false, false);
    std::vector<std::vector<std::int32_t>> too_short{{0}};
    EXPECT_THROW(extract_flows(net, too_short, 1), std::invalid_argument);
    std::vector<std::vector<std::int32_t>> empty_entry{{0}, {}};
    EXPECT_THROW(extract_flows(net, empty_entry, 1), std::invalid_argument);
}

}  // namespace
}  // namespace floretsim::dnn
