/// Differential suite for the fast simulator cores (credit-aware global
/// event horizon and the per-region-clock engine): across random
/// topologies, seeds, buffer depths of 1-4 flits, sparse and saturating
/// injection rates, saturated single-sink drains, corner-to-corner bursts,
/// and max_cycles-capped runs, every fast engine must produce a
/// bit-identical SimResult (cycles, packets, flits, flit_hops,
/// per-router/per-link counters, latency stats) to the reference cycle
/// loop. The engine-work statistics are the only fields allowed to differ
/// — and they must prove the fast path is both accounted (global
/// stepped + skipped == cycles; per-region stepped + skipped ==
/// regions * cycles) and not slower than the reference in executed cycles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"
#include "src/util/rng.h"

namespace floretsim::noc {
namespace {

std::vector<Demand> random_demands(std::int32_t nodes, std::uint64_t seed,
                                   int count, std::int64_t max_bytes) {
    util::Rng rng(seed);
    std::vector<Demand> ds;
    for (int i = 0; i < count; ++i) {
        const auto s =
            static_cast<topo::NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
        const auto d =
            static_cast<topo::NodeId>(rng.below(static_cast<std::uint64_t>(nodes)));
        if (s == d) continue;
        const auto bytes =
            8 * (1 + static_cast<std::int64_t>(rng.below(
                         static_cast<std::uint64_t>(max_bytes / 8))));
        ds.push_back({s, d, bytes});
    }
    return ds;
}

SimResult run_with(const topo::Topology& t, const RouteTable& rt,
                   const std::vector<Demand>& demands, SimConfig cfg,
                   SimCore core) {
    cfg.core = core;
    Simulator sim(t, rt, cfg);
    sim.add_demands(demands);
    return sim.run();
}

/// Accounting every core must satisfy regardless of which engine ran:
/// global cycles split exactly into stepped + skipped, and the per-region
/// totals are conserved — each region either participates in a stepped
/// cycle or its local clock leaps it, so the region totals sum to
/// regions * cycles and the hottest region bounds the extremes.
void expect_conserved(const SimResult& r, const std::string& label) {
    EXPECT_EQ(r.cycles_stepped + r.cycles_skipped, r.cycles) << label;
    EXPECT_GE(r.regions, 1) << label;
    EXPECT_EQ(r.region_cycles_stepped + r.region_cycles_skipped,
              r.regions * r.cycles)
        << label;
    EXPECT_LE(r.region_stepped_min, r.region_stepped_max) << label;
    EXPECT_LE(r.region_stepped_max, r.cycles_stepped) << label;
    EXPECT_GE(r.region_stepped_min, 0) << label;
    EXPECT_LE(r.region_cycles_stepped, r.regions * r.cycles_stepped) << label;
    // Every globally stepped cycle had at least one participating region.
    EXPECT_GE(r.region_cycles_stepped, r.cycles_stepped) << label;
}

/// The differential contract: semantic fields bit-identical across every
/// core, engine-work statistics internally consistent and no worse than
/// the reference.
void expect_equivalent(const topo::Topology& t, const RouteTable& rt,
                       const std::vector<Demand>& demands, const SimConfig& cfg,
                       const std::string& label) {
    const auto ref = run_with(t, rt, demands, cfg, SimCore::kReference);
    expect_conserved(ref, label + " [reference]");
    // The single-clock cores report one region spanning the fabric.
    EXPECT_EQ(ref.regions, 1) << label;
    EXPECT_EQ(ref.region_cycles_stepped, ref.cycles_stepped) << label;

    for (const auto core : {SimCore::kEventHorizon, SimCore::kRegional}) {
        const std::string tag =
            label + " [" + sim_core_name(core) + "]";
        const auto fast = run_with(t, rt, demands, cfg, core);

        EXPECT_EQ(fast.cycles, ref.cycles) << tag;
        EXPECT_EQ(fast.packets, ref.packets) << tag;
        EXPECT_EQ(fast.flits, ref.flits) << tag;
        EXPECT_EQ(fast.flit_hops, ref.flit_hops) << tag;
        EXPECT_EQ(fast.completed, ref.completed) << tag;
        EXPECT_EQ(fast.packet_latency.count(), ref.packet_latency.count())
            << tag;
        EXPECT_EQ(fast.packet_latency.mean(), ref.packet_latency.mean()) << tag;
        EXPECT_EQ(fast.packet_latency.variance(), ref.packet_latency.variance())
            << tag;
        EXPECT_EQ(fast.packet_latency.min(), ref.packet_latency.min()) << tag;
        EXPECT_EQ(fast.packet_latency.max(), ref.packet_latency.max()) << tag;
        EXPECT_EQ(fast.router_flits, ref.router_flits) << tag;
        EXPECT_EQ(fast.link_flits, ref.link_flits) << tag;

        expect_conserved(fast, tag);
        // The fast cores' no-op proofs subsume the reference's
        // idle-gap-only rule, so they can never execute more cycles.
        EXPECT_LE(fast.cycles_stepped, ref.cycles_stepped) << tag;
        if (core == SimCore::kEventHorizon)
            EXPECT_EQ(fast.regions, 1) << tag;
    }
}

TEST(EventHorizon, DifferentialMatrixOnMesh) {
    const auto t = topo::make_mesh(5, 5);
    for (const auto policy :
         {RoutingPolicy::kShortestPath, RoutingPolicy::kUpDown}) {
        const auto rt = RouteTable::build(t, policy);
        for (std::int32_t depth = 1; depth <= 4; ++depth) {
            for (const std::uint64_t seed : {3u, 17u}) {
                for (const double rate : {0.005, 8.0}) {
                    SimConfig cfg;
                    cfg.max_cycles = 2'000'000;
                    cfg.input_buffer_flits = depth;
                    cfg.injection_rate = rate;
                    expect_equivalent(
                        t, rt, random_demands(25, seed, 60, 320), cfg,
                        "mesh policy=" + std::to_string(static_cast<int>(policy)) +
                            " depth=" + std::to_string(depth) + " seed=" +
                            std::to_string(seed) + " rate=" + std::to_string(rate));
                }
            }
        }
    }
}

TEST(EventHorizon, DifferentialOnIrregularTopologies) {
    util::Rng swap_rng(31);
    const auto swap = topo::make_swap(6, 6, swap_rng);
    const auto floret = core::make_floret(core::generate_sfc_set(8, 8, 4));
    struct Case {
        const topo::Topology* t;
        std::int32_t nodes;
    };
    for (const auto& c : {Case{&swap, 36}, Case{&floret, 64}}) {
        const auto rt = RouteTable::build(*c.t, RoutingPolicy::kUpDown);
        for (std::int32_t depth = 1; depth <= 4; ++depth) {
            SimConfig cfg;
            cfg.max_cycles = 2'000'000;
            cfg.input_buffer_flits = depth;
            cfg.injection_rate = depth % 2 == 0 ? 8.0 : 0.01;
            expect_equivalent(*c.t, rt, random_demands(c.nodes, 7 + depth, 80, 480),
                              cfg,
                              c.t->name() + " depth=" + std::to_string(depth));
        }
    }
}

TEST(EventHorizon, DifferentialOnDeepPipelines) {
    // Long links: many cycles where every flit is mid-pipe or stalled on a
    // credit that only a far-away arrival can free — the window the
    // credit-aware horizon jumps and the old FIFO-empty rule could not.
    topo::Topology t("longline", 4.0);
    for (std::int32_t i = 0; i < 5; ++i) t.add_node({8 * i, 0});
    for (int i = 0; i + 1 < 5; ++i) t.add_link(i, i + 1, 32.0);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    for (std::int32_t depth = 1; depth <= 4; ++depth) {
        SimConfig cfg;
        cfg.max_cycles = 2'000'000;
        cfg.input_buffer_flits = depth;
        cfg.injection_rate = 1.0;
        const auto demands = random_demands(5, 41 + depth, 30, 640);
        expect_equivalent(t, rt, demands, cfg, "longline depth=" +
                                                   std::to_string(depth));
        // Congested drains on deep pipes are exactly where the credit-aware
        // proof must beat cycle stepping outright.
        const auto fast = run_with(t, rt, demands, cfg, SimCore::kEventHorizon);
        EXPECT_GT(fast.cycles_skipped, 0) << depth;
        EXPECT_LT(fast.cycles_stepped, fast.cycles) << depth;
    }
}

TEST(EventHorizon, DifferentialOnCappedRuns) {
    const auto t = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    for (const std::int64_t cap : {100, 2'000, 50'000}) {
        for (const double rate : {1e-4, 0.05, 8.0}) {
            SimConfig cfg;
            cfg.max_cycles = cap;
            cfg.injection_rate = rate;
            cfg.input_buffer_flits = 2;
            expect_equivalent(t, rt, random_demands(16, 5, 40, 320), cfg,
                              "cap=" + std::to_string(cap) +
                                  " rate=" + std::to_string(rate));
        }
    }
}

TEST(EventHorizon, SkipsCreditBlockedWindows) {
    // Hotspot: every node floods one sink, so head flits pile up blocked on
    // zero-credit outputs while the sink ejects one flit per port per
    // cycle. The FIFO-empty rule never fires here; the credit-aware proof
    // must still find jumps.
    const auto t = topo::make_mesh(5, 5);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg;
    cfg.max_cycles = 2'000'000;
    cfg.input_buffer_flits = 1;  // maximum backpressure
    cfg.injection_rate = 8.0;
    std::vector<Demand> demands;
    for (topo::NodeId n = 0; n < 25; ++n)
        if (n != 12) demands.push_back({n, 12, 400});
    expect_equivalent(t, rt, demands, cfg, "hotspot");
    const auto fast = run_with(t, rt, demands, cfg, SimCore::kEventHorizon);
    EXPECT_GT(fast.horizon_jumps, 0);
}

TEST(EventHorizon, SaturatedDrainSleepsColdRegions) {
    // One corner port ejecting, the rest of the fabric quiescent: a few
    // scattered sources flood node 0 while the other 95 nodes stay silent.
    // Something moves near the sink every cycle, so the global quiet proof
    // almost never fires — but the regional core's off-path tiles prove
    // local fixed points and leap, which is the entire point of per-region
    // clocks; path tiles wake for passing flits and jump back to sleep.
    const auto t = topo::make_mesh(10, 10);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg;
    cfg.max_cycles = 2'000'000;
    cfg.input_buffer_flits = 2;
    cfg.injection_rate = 8.0;
    std::vector<Demand> demands;
    for (const topo::NodeId src : {9, 44, 55, 90, 99})
        demands.push_back({src, 0, 8 * 1024});
    expect_equivalent(t, rt, demands, cfg, "saturated drain");

    const auto regional = run_with(t, rt, demands, cfg, SimCore::kRegional);
    EXPECT_GT(regional.regions, 1);
    EXPECT_GT(regional.region_cycles_skipped, 0);
    EXPECT_GT(regional.region_horizon_jumps, 0);
    // The drain concentrates work: the sink's region steps nearly every
    // cycle while the far corner sleeps through most of the run.
    EXPECT_LT(regional.region_stepped_min, regional.region_stepped_max);
    // Strict superset of the global core's skipping on this pattern: the
    // per-region totals must beat what one global clock can prove.
    const auto global = run_with(t, rt, demands, cfg, SimCore::kEventHorizon);
    EXPECT_GT(regional.region_cycles_skipped,
              global.cycles_skipped * global.regions);
}

TEST(EventHorizon, CornerToCornerBurstHotspot) {
    // A single corner-to-corner burst: one long diagonal of busy links,
    // everything off-path idle. Both fast cores must stay bit-identical;
    // the regional core must additionally prove off-path tiles asleep.
    const auto t = topo::make_mesh(8, 8);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    SimConfig cfg;
    cfg.max_cycles = 2'000'000;
    cfg.input_buffer_flits = 1;  // maximum backpressure along the path
    cfg.injection_rate = 8.0;
    const std::vector<Demand> demands{{0, 63, 16 * 1024}};
    expect_equivalent(t, rt, demands, cfg, "corner burst");

    const auto regional = run_with(t, rt, demands, cfg, SimCore::kRegional);
    EXPECT_GT(regional.regions, 1);
    EXPECT_GT(regional.region_cycles_skipped, 0);
}

TEST(EventHorizon, ForcedRegionCountsPreserveResults) {
    // cfg.regions is a scheduling knob, never a semantic one: any forced
    // tiling — including one region (the global core's shape) and counts
    // that do not divide the mesh — must reproduce the reference bits.
    const auto t = topo::make_mesh(6, 6);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    const auto demands = random_demands(36, 23, 60, 400);
    const auto ref = [&] {
        SimConfig cfg;
        cfg.max_cycles = 2'000'000;
        cfg.injection_rate = 0.05;
        return run_with(t, rt, demands, cfg, SimCore::kReference);
    }();
    for (const std::int32_t regions : {1, 2, 5, 7}) {
        SimConfig cfg;
        cfg.max_cycles = 2'000'000;
        cfg.injection_rate = 0.05;
        cfg.regions = regions;
        const auto r = run_with(t, rt, demands, cfg, SimCore::kRegional);
        const std::string tag = "forced regions=" + std::to_string(regions);
        EXPECT_EQ(r.cycles, ref.cycles) << tag;
        EXPECT_EQ(r.packets, ref.packets) << tag;
        EXPECT_EQ(r.flit_hops, ref.flit_hops) << tag;
        EXPECT_EQ(r.packet_latency.mean(), ref.packet_latency.mean()) << tag;
        EXPECT_EQ(r.router_flits, ref.router_flits) << tag;
        EXPECT_EQ(r.link_flits, ref.link_flits) << tag;
        expect_conserved(r, tag);
        EXPECT_LE(r.cycles_stepped, ref.cycles_stepped) << tag;
    }
}

TEST(EventHorizon, StatisticsAreZeroWorkOnEmptyRun) {
    const auto t = topo::make_mesh(2, 2);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    Simulator sim(t, rt, SimConfig{});
    const auto res = sim.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.cycles_stepped, 0);
    EXPECT_EQ(res.cycles_skipped, 0);
    EXPECT_EQ(res.horizon_jumps, 0);
}

TEST(EventHorizon, CoreNamesAreStable) {
    EXPECT_STREQ(sim_core_name(SimCore::kReference), "reference");
    EXPECT_STREQ(sim_core_name(SimCore::kEventHorizon), "event-horizon");
    EXPECT_STREQ(sim_core_name(SimCore::kRegional), "regional");
    for (const auto core :
         {SimCore::kReference, SimCore::kEventHorizon, SimCore::kRegional}) {
        const auto parsed = sim_core_from_name(sim_core_name(core));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, core);
    }
    EXPECT_EQ(sim_core_from_name("event_horizon"), SimCore::kEventHorizon);
    EXPECT_FALSE(sim_core_from_name("warp").has_value());
    EXPECT_FALSE(sim_core_from_name("").has_value());
}

}  // namespace
}  // namespace floretsim::noc
