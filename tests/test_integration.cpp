#include <gtest/gtest.h>

#include <memory>

#include "src/core/evaluator.h"
#include "src/core/floret.h"
#include "src/core/mapper.h"
#include "src/core/sfc.h"
#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/workload/tables.h"

namespace floretsim::core {
namespace {

/// Shared end-to-end harness: map a mix on an architecture and run the
/// flit simulator. Mirrors what the Fig. 3/5 benches do at smaller scale.
EvalResult run_arch(const topo::Topology& topo, Mapper& mapper,
                    std::span<const TaskSpec> tasks) {
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
    const auto mapped = mapper.map_queue(tasks, nullptr);
    EvalConfig cfg;
    // Fast but not degenerate: with the one-flit clamp, sampling must stay
    // coarse enough that real flow volumes (not the clamp floor) dominate.
    cfg.traffic_scale = 1.0 / 512.0;
    cfg.sim.max_cycles = 5'000'000;
    return evaluate_noi(topo, routes, mapped, cfg);
}

TEST(Integration, FloretBeatsKiteOnEnergyAndMatchesMeshLatency) {
    // The headline 2.5D claim at reduced scale: a 36-chiplet system running
    // a queue of small DNNs. Floret's 2-port routers must beat the
    // radix-heavy Kite on NoI energy (the paper's headline 2.8x target),
    // and its drain latency must stay within 1.3x of the greedy-mapped
    // mesh. (The energy target used to be the mesh, but that pass depended
    // on sub-flit flows silently truncating to zero — the exact sampling
    // artifact the evaluator's one-flit clamp now prevents; at this static
    // 36-chiplet scale mesh and Floret are energy-comparable, and the
    // mesh-energy win only appears in the 100-chiplet dynamic runs that
    // bench_fig5_energy exercises.)
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> queue{"DNN9", "DNN10", "DNN11", "DNN13"};
    const auto tasks = make_tasks(queue, 1.2, owner);

    const auto set = generate_sfc_set(6, 6, 6);
    const auto floret = make_floret(set);
    FloretMapper floret_mapper(set);
    const auto floret_res = run_arch(floret, floret_mapper, tasks);

    const auto kite = topo::make_kite(6, 6);
    const auto kite_routes = noc::RouteTable::build(kite, noc::RoutingPolicy::kUpDown);
    GreedyMapper kite_mapper(kite, kite_routes, -1);
    const auto kite_res = run_arch(kite, kite_mapper, tasks);

    const auto mesh = topo::make_mesh(6, 6);
    const auto mesh_routes = noc::RouteTable::build(mesh, noc::RoutingPolicy::kUpDown);
    GreedyMapper mesh_mapper(mesh, mesh_routes, -1);
    const auto mesh_res = run_arch(mesh, mesh_mapper, tasks);

    ASSERT_TRUE(floret_res.completed);
    ASSERT_TRUE(kite_res.completed);
    ASSERT_TRUE(mesh_res.completed);
    EXPECT_LT(floret_res.energy_pj, kite_res.energy_pj);
    EXPECT_LT(floret_res.latency_cycles, 1.3 * mesh_res.latency_cycles);
}

TEST(Integration, ContiguousMappingShortensFlitHops) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> queue{"DNN9", "DNN12"};
    const auto tasks = make_tasks(queue, 1.2, owner);

    const auto set = generate_sfc_set(6, 6, 6);
    const auto floret = make_floret(set);
    FloretMapper fm(set);
    const auto fr = run_arch(floret, fm, tasks);

    const auto kite = topo::make_kite(6, 6);
    const auto kite_routes = noc::RouteTable::build(kite, noc::RoutingPolicy::kUpDown);
    GreedyMapper km(kite, kite_routes, -1);
    const auto kr = run_arch(kite, km, tasks);

    ASSERT_TRUE(fr.completed);
    ASSERT_TRUE(kr.completed);
    // Most Floret traffic rides single-hop SFC links.
    EXPECT_LT(fr.flit_hops, kr.flit_hops * 2);
    EXPECT_GT(fr.packets, 0);
}

TEST(Integration, EvaluatorSkipsUnmappedTasks) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    // Overload a tiny system so later tasks fail to map.
    const std::vector<std::string> queue{"DNN7", "DNN7", "DNN7", "DNN7"};
    const auto tasks = make_tasks(queue, 8.0, owner);
    const auto set = generate_sfc_set(4, 4, 4);
    const auto floret = make_floret(set);
    FloretMapper mapper(set);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    EXPECT_GT(stats.tasks_failed, 0);
    const auto routes = noc::RouteTable::build(floret, noc::RoutingPolicy::kUpDown);
    EvalConfig cfg;
    cfg.traffic_scale = 1.0 / 4096.0;
    const auto res = evaluate_noi(floret, routes, mapped, cfg);
    EXPECT_TRUE(res.completed);  // the mapped prefix still simulates
}

TEST(Integration, Table2MixMapsOn100Chiplets) {
    // WL1 at the calibrated chiplet capacity fits a 100-chiplet Floret
    // (the paper's headline configuration).
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto queue = workload::expand_mix(workload::table2().front());
    const auto tasks = make_tasks(queue, 10.0, owner);
    const auto set = generate_sfc_set(10, 10, 10);
    FloretMapper mapper(set);
    MappingStats stats;
    const auto mapped = mapper.map_queue(tasks, &stats);
    EXPECT_EQ(stats.tasks_failed, 0) << "WL1 must fit at 10M params/chiplet";
    EXPECT_GT(stats.utilization(), 0.80);
}

TEST(Integration, EndToEndDeterminism) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> queue{"DNN9", "DNN13"};
    const auto tasks = make_tasks(queue, 1.2, owner);
    const auto set = generate_sfc_set(6, 6, 6);
    const auto floret = make_floret(set);
    FloretMapper m1(set);
    FloretMapper m2(set);
    const auto r1 = run_arch(floret, m1, tasks);
    const auto r2 = run_arch(floret, m2, tasks);
    EXPECT_EQ(r1.latency_cycles, r2.latency_cycles);
    EXPECT_DOUBLE_EQ(r1.energy_pj, r2.energy_pj);
    EXPECT_EQ(r1.flit_hops, r2.flit_hops);
}

}  // namespace
}  // namespace floretsim::core
