#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/evaluator.h"
#include "src/core/floret.h"
#include "src/core/mapper.h"
#include "src/core/sfc.h"
#include "src/topo/mesh.h"

namespace floretsim::core {
namespace {

/// A pure chain network (conv -> conv -> conv -> fc) for flow checks.
dnn::Network chain_net() {
    dnn::Network net("chain");
    const auto in = net.add_input({3, 16, 16});
    const auto c1 = net.add_conv(in, 8, 3, 1, 1, false, true);
    const auto c2 = net.add_conv(c1, 8, 3, 1, 1, false, true);
    const auto c3 = net.add_conv(c2, 16, 3, 2, 1, false, true);
    const auto g = net.add_global_pool(c3);
    net.add_fc(g, 10);
    return net;
}

MappedTask map_on_floret(const dnn::Network& net, const SfcSet& set,
                         double params_per_chiplet_m) {
    TaskSpec spec;
    spec.name = "t";
    spec.net = &net;
    spec.plan = pim::partition_by_params(
        net, static_cast<double>(net.total_params()) / 1e6, params_per_chiplet_m);
    FloretMapper mapper(set);
    auto mapped = mapper.map_queue(std::span<const TaskSpec>(&spec, 1), nullptr);
    return std::move(mapped.front());
}

TEST(PipelineFlows, UnmappedTaskHasNoFlows) {
    const auto net = chain_net();
    MappedTask task;
    task.net = &net;
    task.mapped = false;
    EXPECT_TRUE(pipeline_flows(task, 1).empty());
}

TEST(PipelineFlows, ChainOnFloretIsAllSingleHop) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    const auto topo = make_floret(set);
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
    // Force multiple chiplets: tiny capacity.
    const auto task = map_on_floret(net, set, 0.0005);
    ASSERT_TRUE(task.mapped);
    ASSERT_GT(task.nodes.size(), 3u);
    const auto flows = pipeline_flows(task, 1);
    ASSERT_FALSE(flows.empty());
    for (const auto& f : flows) {
        EXPECT_LE(routes.hops(f.src, f.dst), 2)
            << "pipeline flow " << f.src << "->" << f.dst << " is long-range";
    }
}

TEST(PipelineFlows, SharedChipletProducesNoTraffic) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    // Huge capacity: the whole net packs onto one chiplet.
    const auto task = map_on_floret(net, set, 1000.0);
    ASSERT_TRUE(task.mapped);
    EXPECT_EQ(task.plan.total_chiplets, 1);
    EXPECT_TRUE(pipeline_flows(task, 1).empty());
}

TEST(PipelineFlows, InterLayerVolumeIsFullEdgeVolume) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    const auto task = map_on_floret(net, set, 0.0005);
    ASSERT_TRUE(task.mapped);
    const auto flows = pipeline_flows(task, /*bytes_per_elem=*/2);
    // Find the flow for the c1 -> c2 edge: its bytes must equal
    // c1's output activations x bytes_per_elem (not split across pairs).
    const auto& c1 = net.layer(net.weight_layer_ids()[0]);
    bool found = false;
    for (const auto& f : flows) {
        if (f.bytes == 2 * c1.output_activations()) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(PipelineFlows, SkipEdgesMarked) {
    dnn::Network net("res");
    const auto in = net.add_input({8, 8, 8});
    const auto c1 = net.add_conv(in, 8, 3, 1, 1, false, true);
    const auto c2 = net.add_conv(c1, 8, 3, 1, 1, false, true);
    net.add_add(c2, in);
    const auto set = generate_sfc_set(6, 6, 6);
    const auto task = map_on_floret(net, set, 0.0002);
    ASSERT_TRUE(task.mapped);
    bool has_skip = false;
    for (const auto& f : pipeline_flows(task, 1)) has_skip |= f.skip;
    EXPECT_TRUE(has_skip);
}

TEST(PipelineFlows, BytesScaleWithElementWidth) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    const auto task = map_on_floret(net, set, 0.0005);
    const auto f1 = pipeline_flows(task, 1);
    const auto f4 = pipeline_flows(task, 4);
    ASSERT_EQ(f1.size(), f4.size());
    for (std::size_t i = 0; i < f1.size(); ++i) EXPECT_EQ(4 * f1[i].bytes, f4[i].bytes);
}

TEST(EvaluateNoi, EmptyTaskListIsFreeAndComplete) {
    const auto set = generate_sfc_set(4, 4, 2);
    const auto topo = make_floret(set);
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
    const std::vector<MappedTask> none;
    const auto res = evaluate_noi(topo, routes, none, EvalConfig{});
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.packets, 0);
    EXPECT_DOUBLE_EQ(res.energy_pj, 0.0);
}

TEST(EvaluateNoi, MoreTrafficScaleMeansMoreEnergy) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    const auto topo = make_floret(set);
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
    const auto task = map_on_floret(net, set, 0.0005);
    std::vector<MappedTask> tasks{task};
    EvalConfig lo;
    lo.traffic_scale = 1.0 / 64.0;
    EvalConfig hi;
    hi.traffic_scale = 1.0 / 8.0;
    const auto rl = evaluate_noi(topo, routes, tasks, lo);
    const auto rh = evaluate_noi(topo, routes, tasks, hi);
    ASSERT_TRUE(rl.completed);
    ASSERT_TRUE(rh.completed);
    EXPECT_GT(rh.energy_pj, rl.energy_pj);
    EXPECT_GT(rh.packets, rl.packets);
}

TEST(EvaluateNoi, WeightLoadAddsTraffic) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    const auto topo = make_floret(set);
    const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
    const auto task = map_on_floret(net, set, 0.0005);
    std::vector<MappedTask> tasks{task};
    EvalConfig off;
    off.traffic_scale = 1.0 / 16.0;
    EvalConfig on = off;
    on.include_weight_load = true;
    const auto r_off = evaluate_noi(topo, routes, tasks, off);
    const auto r_on = evaluate_noi(topo, routes, tasks, on);
    ASSERT_TRUE(r_off.completed);
    ASSERT_TRUE(r_on.completed);
    EXPECT_GT(r_on.packets, r_off.packets);
    EXPECT_GT(r_on.energy_pj, r_off.energy_pj);
}

TEST(EvaluateNoi, WeightLoadOffByDefault) {
    EvalConfig cfg;
    EXPECT_FALSE(cfg.include_weight_load);
}

TEST(EvaluateNoi, MapperReleaseAllowsRemapping) {
    // The dynamic scenario's core loop: map, release, map again — the
    // second mapping reuses the freed chiplets.
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    FloretMapper mapper(set);
    TaskSpec spec;
    spec.name = "t";
    spec.net = &net;
    spec.plan = pim::partition_by_params(
        net, static_cast<double>(net.total_params()) / 1e6, 0.0005);
    auto first = mapper.map_queue(std::span<const TaskSpec>(&spec, 1), nullptr);
    ASSERT_TRUE(first.front().mapped);
    mapper.release(first.front());
    auto second = mapper.map_queue(std::span<const TaskSpec>(&spec, 1), nullptr);
    ASSERT_TRUE(second.front().mapped);
    EXPECT_EQ(first.front().nodes, second.front().nodes);
}

TEST(EvaluateNoi, WithoutReleaseSecondMappingMovesOn) {
    const auto net = chain_net();
    const auto set = generate_sfc_set(6, 6, 6);
    FloretMapper mapper(set);
    TaskSpec spec;
    spec.name = "t";
    spec.net = &net;
    spec.plan = pim::partition_by_params(
        net, static_cast<double>(net.total_params()) / 1e6, 0.0005);
    auto first = mapper.map_queue(std::span<const TaskSpec>(&spec, 1), nullptr);
    auto second = mapper.map_queue(std::span<const TaskSpec>(&spec, 1), nullptr);
    ASSERT_TRUE(first.front().mapped);
    ASSERT_TRUE(second.front().mapped);
    EXPECT_NE(first.front().nodes.front(), second.front().nodes.front());
}

}  // namespace
}  // namespace floretsim::core
