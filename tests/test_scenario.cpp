/// Scenario registry, CLI overrides, and scenario-file loading.

#include "src/scenario/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/experiment.h"
#include "src/util/json.h"

namespace floretsim::scenario {
namespace {

namespace experiment = core::experiment;
using experiment::Arch;

TEST(Registry, BuiltinScenariosAreRegistered) {
    const Registry& reg = Registry::builtin();
    // Every paper figure/table runs through the registry — no bespoke
    // bench mains remain outside it.
    for (const char* name :
         {"fig2", "fig3", "fig4", "fig5", "table2", "serving", "fig6", "fig7",
          "m3d_vs_tsv", "hetero_transformer", "transformer_storage",
          "ablation_scaling", "cluster"}) {
        const Scenario* s = reg.find(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_TRUE(s->report) << name;
        EXPECT_FALSE(s->summary.empty()) << name;
    }
    EXPECT_EQ(reg.scenarios().size(), 13u);
    EXPECT_EQ(reg.find("fig99"), nullptr);
    EXPECT_THROW((void)reg.at("fig99"), std::invalid_argument);
    // fig4 is mapping-only: eval-affecting --set keys must not count as
    // applied to it (the driver consults uses_eval for its typo guard).
    EXPECT_FALSE(reg.at("fig4").uses_eval);
    EXPECT_TRUE(reg.at("fig3").uses_eval);
    EXPECT_TRUE(is_eval_override_key("sim_core"));
    EXPECT_TRUE(is_eval_override_key("traffic_scale"));
    EXPECT_FALSE(is_eval_override_key("archs"));
}

TEST(Registry, Fig3AndFig5ShareTheirSweepSpec) {
    // The duplicate-sweep pair the shared fabric cache deduplicates: both
    // figures must keep sweeping the identical grid or the cache win (and
    // the scenario_parity assertion of 0 fig5 misses) silently evaporates.
    const Registry& reg = Registry::builtin();
    EXPECT_EQ(std::get<core::SweepSpec>(reg.at("fig3").spec),
              std::get<core::SweepSpec>(reg.at("fig5").spec));
}

TEST(Registry, SpecsSerializeAndRoundTrip) {
    for (const auto& s : Registry::builtin().scenarios()) {
        const util::Json j = to_json(s.spec);
        const SpecVariant back =
            spec_from_json(util::json_parse(util::json_serialize(j)),
                           spec_kind_name(s.spec));
        EXPECT_EQ(back == s.spec, true) << s.name;
    }
}

TEST(Registry, RejectsDuplicatesAndMissingReport) {
    Registry reg;
    reg.add({"a", "first", core::SweepSpec{},
             [](const SpecVariant&, RunContext&) { return JsonReport("a"); }});
    EXPECT_THROW(reg.add({"a", "again", core::SweepSpec{},
                          [](const SpecVariant&, RunContext&) {
                              return JsonReport("a");
                          }}),
                 std::invalid_argument);
    EXPECT_THROW(reg.add({"b", "no report", core::SweepSpec{}, nullptr}),
                 std::invalid_argument);
}

TEST(Overrides, ApplyToSweepSpecs) {
    SpecVariant spec = std::get<core::SweepSpec>(
        Registry::builtin().at("fig3").spec);
    EXPECT_TRUE(apply_override(spec, "grid", "12x12"));
    EXPECT_TRUE(apply_override(spec, "archs", "floret,kite"));
    EXPECT_TRUE(apply_override(spec, "mixes", "WL1,WL3"));
    EXPECT_TRUE(apply_override(spec, "traffic_scale", "1/128"));
    EXPECT_TRUE(apply_override(spec, "seed", "77"));
    const auto& s = std::get<core::SweepSpec>(spec);
    EXPECT_EQ(s.grids,
              (std::vector<std::pair<std::int32_t, std::int32_t>>{{12, 12}}));
    EXPECT_EQ(s.archs, (std::vector<Arch>{Arch::kFloret, Arch::kKite}));
    ASSERT_EQ(s.mixes.size(), 2u);
    EXPECT_EQ(s.mixes[1].name, "WL3");
    ASSERT_FALSE(s.evals.empty());
    EXPECT_DOUBLE_EQ(s.evals.front().traffic_scale, 1.0 / 128.0);
    EXPECT_EQ(s.run_seed, 77u);
    // Serve-only keys are recognized but inapplicable: false, not a throw.
    EXPECT_FALSE(apply_override(spec, "max_requests", "10"));
    EXPECT_FALSE(apply_override(spec, "loads", "100"));
    // Unknown keys and malformed values always throw.
    EXPECT_THROW((void)apply_override(spec, "gird", "12x12"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "grid", "12by12"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "traffic_scale", "1/0"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "archs", "torus"),
                 std::invalid_argument);
}

TEST(Overrides, TrafficScaleMaterializesDefaultEvals) {
    // An empty eval list means "default at expand()" — the override has to
    // materialize it or the setting would be silently dropped.
    SpecVariant spec = core::SweepSpec{};
    ASSERT_TRUE(std::get<core::SweepSpec>(spec).evals.empty());
    EXPECT_TRUE(apply_override(spec, "traffic_scale", "0.25"));
    const auto& s = std::get<core::SweepSpec>(spec);
    ASSERT_EQ(s.evals.size(), 1u);
    EXPECT_DOUBLE_EQ(s.evals.front().traffic_scale, 0.25);
    // Everything else matches the experiment default the empty list meant.
    auto expected = experiment::default_eval_config();
    expected.traffic_scale = 0.25;
    EXPECT_EQ(s.evals.front(), expected);
}

TEST(Overrides, ApplyToServeGridSpecs) {
    SpecVariant spec = std::get<ServeGridSpec>(
        Registry::builtin().at("serving").spec);
    EXPECT_TRUE(apply_override(spec, "grid", "8x8"));
    EXPECT_TRUE(apply_override(spec, "archs", "swap,floret"));
    EXPECT_TRUE(apply_override(spec, "max_requests", "24"));
    EXPECT_TRUE(apply_override(spec, "replications", "3"));
    EXPECT_TRUE(apply_override(spec, "loads", "100,900"));
    EXPECT_TRUE(apply_override(spec, "seed", "5"));
    const auto& g = std::get<ServeGridSpec>(spec);
    EXPECT_EQ(g.base.width, 8);
    EXPECT_EQ(g.base.height, 8);
    EXPECT_EQ(g.archs, (std::vector<Arch>{Arch::kSwap, Arch::kFloret}));
    EXPECT_EQ(g.base.config.arrivals.max_requests, 24);
    EXPECT_EQ(g.base.replications, 3);
    EXPECT_EQ(g.loads_per_mcycle, (std::vector<double>{100.0, 900.0}));
    EXPECT_EQ(g.base.base_seed, 5u);
    // Sweep-only key on a serving spec: recognized but inapplicable.
    EXPECT_FALSE(apply_override(spec, "mixes", "WL1"));
}

TEST(Overrides, ApplyToClusterSpecs) {
    SpecVariant spec = std::get<ClusterSpec>(
        Registry::builtin().at("cluster").spec);
    EXPECT_TRUE(apply_override(spec, "grid", "8x8"));
    EXPECT_TRUE(apply_override(spec, "archs", "kite"));
    EXPECT_TRUE(apply_override(spec, "fabrics", "1,3"));
    EXPECT_TRUE(apply_override(spec, "max_batch", "2,8"));
    EXPECT_TRUE(apply_override(spec, "balance", "least-loaded"));
    EXPECT_TRUE(apply_override(spec, "loads", "250,2500"));
    EXPECT_TRUE(apply_override(spec, "max_requests", "40"));
    EXPECT_TRUE(apply_override(spec, "replications", "1"));
    EXPECT_TRUE(apply_override(spec, "seed", "9"));
    const auto& c = std::get<ClusterSpec>(spec);
    EXPECT_EQ(c.base.width, 8);
    EXPECT_EQ(c.base.height, 8);
    EXPECT_EQ(c.base.arch, Arch::kKite);
    EXPECT_EQ(c.cluster_sizes, (std::vector<std::int32_t>{1, 3}));
    EXPECT_EQ(c.batch_caps, (std::vector<std::int32_t>{2, 8}));
    EXPECT_EQ(c.balance, serve::BalancePolicy::kLeastLoaded);
    EXPECT_EQ(c.loads_per_mcycle, (std::vector<double>{250.0, 2500.0}));
    EXPECT_EQ(c.base.config.arrivals.max_requests, 40);
    EXPECT_EQ(c.base.replications, 1);
    EXPECT_EQ(c.base.base_seed, 9u);
    // Sweep-only keys stay inapplicable; malformed values still throw.
    EXPECT_FALSE(apply_override(spec, "mixes", "WL1"));
    EXPECT_FALSE(apply_override(spec, "iterations", "5"));
    EXPECT_THROW((void)apply_override(spec, "fabrics", "0"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "max_batch", "-1"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "balance", "roundrobin"),
                 std::invalid_argument);
    EXPECT_THROW((void)apply_override(spec, "loads", "0"),
                 std::invalid_argument);
    // The cluster replicates one architecture across its fabrics.
    EXPECT_THROW((void)apply_override(spec, "archs", "kite,floret"),
                 std::invalid_argument);
}

TEST(Scenario, Fig4RunsThroughTheRegistry) {
    // fig4 is mapping-only (no NoC simulation), so it is cheap enough to
    // execute end to end in a unit test: report function + engine + JSON.
    const Scenario& sc = Registry::builtin().at("fig4");
    core::SweepEngine engine(1);
    std::ostringstream out;
    RunContext ctx{engine, out};
    const JsonReport report = sc.report(sc.spec, ctx);
    const util::Json doc = util::json_parse(report.to_json());
    ASSERT_NE(doc.find("tables")->find("utilization"), nullptr);
    const auto& spec = std::get<core::SweepSpec>(sc.spec);
    EXPECT_EQ(doc.find("tables")->find("utilization")->find("rows")
                  ->as_array().size(),
              spec.archs.size() * spec.mixes.size());
    EXPECT_NE(out.str().find("Fig. 4"), std::string::npos);
}

TEST(Scenario, ReportFunctionsRejectTheWrongSpecKind) {
    const Registry& reg = Registry::builtin();
    core::SweepEngine engine(1);
    std::ostringstream out;
    RunContext ctx{engine, out};
    EXPECT_THROW((void)reg.at("fig3").report(SpecVariant{ServeGridSpec{}}, ctx),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)reg.at("serving").report(SpecVariant{core::SweepSpec{}}, ctx),
        std::invalid_argument);
}

// ---- Scenario files ---------------------------------------------------------

class ScenarioFile : public ::testing::Test {
protected:
    std::string write_file(const std::string& content) {
        path_ = ::testing::TempDir() + "scenario_file_test.json";
        std::ofstream f(path_);
        f << content;
        return path_;
    }
    void TearDown() override {
        if (!path_.empty()) std::remove(path_.c_str());
    }
    std::string path_;
};

TEST_F(ScenarioFile, LoadsARegisteredScenarioWithReplacementSpec) {
    const auto path = write_file(
        R"({"scenario": "fig3", "name": "fig3-small",
            "spec": {"archs": ["floret", "kite"], "mixes": ["WL1"]}})");
    const Scenario s = load_scenario_file(path, Registry::builtin());
    EXPECT_EQ(s.name, "fig3-small");
    const auto& spec = std::get<core::SweepSpec>(s.spec);
    EXPECT_EQ(spec.archs, (std::vector<Arch>{Arch::kFloret, Arch::kKite}));
    ASSERT_TRUE(s.report);
}

TEST_F(ScenarioFile, LoadsABareSpecWithTheGenericReport) {
    const auto path = write_file(
        R"({"kind": "sweep",
            "spec": {"archs": ["floret"], "mixes": ["WL1"], "grids": ["6x6"]}})");
    const Scenario s = load_scenario_file(path, Registry::builtin());
    EXPECT_EQ(s.name, "custom");
    EXPECT_EQ(std::get<core::SweepSpec>(s.spec).grids.front(),
              (std::pair<std::int32_t, std::int32_t>{6, 6}));
    ASSERT_TRUE(s.report);
}

TEST_F(ScenarioFile, RejectsBadFiles) {
    EXPECT_THROW((void)load_scenario_file(
                     write_file(R"({"scenario": "fig99"})"), Registry::builtin()),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)load_scenario_file(write_file(R"({"spec": {}})"),
                                 Registry::builtin()),
        std::invalid_argument);
    EXPECT_THROW((void)load_scenario_file(
                     write_file(R"({"kind": "sweep", "spec": {}, "x": 1})"),
                     Registry::builtin()),
                 std::invalid_argument);
    EXPECT_THROW((void)load_scenario_file(
                     write_file(R"({"scenario": "fig3", "kind": "serve_grid"})"),
                     Registry::builtin()),
                 std::invalid_argument);
    EXPECT_THROW((void)load_scenario_file(write_file("{"), Registry::builtin()),
                 std::invalid_argument);
    EXPECT_THROW((void)load_scenario_file("/nonexistent/path.json",
                                          Registry::builtin()),
                 std::runtime_error);
}

TEST(SeedHelper, PointsEverySpecKindAtTheSeed) {
    SpecVariant sweep = core::SweepSpec{};
    set_seed(sweep, 42);
    EXPECT_EQ(std::get<core::SweepSpec>(sweep).run_seed, 42u);
    SpecVariant grid = ServeGridSpec{};
    set_seed(grid, 42);
    EXPECT_EQ(std::get<ServeGridSpec>(grid).base.base_seed, 42u);
}

}  // namespace
}  // namespace floretsim::scenario
