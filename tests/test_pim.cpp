#include <gtest/gtest.h>

#include "src/dnn/model_zoo.h"
#include "src/pim/accuracy.h"
#include "src/pim/partitioner.h"
#include "src/pim/reram.h"

namespace floretsim::pim {
namespace {

dnn::Network small_net() {
    dnn::Network net("small");
    const auto in = net.add_input({3, 16, 16});
    const auto c1 = net.add_conv(in, 16, 3, 1, 1, false, true);
    const auto p = net.add_pool(c1, 2, 2);
    const auto c2 = net.add_conv(p, 32, 3, 1, 1, false, true);
    const auto g = net.add_global_pool(c2);
    net.add_fc(g, 10);
    return net;
}

TEST(Reram, CellAndCapacityMath) {
    ReramConfig cfg;
    EXPECT_EQ(cfg.cells_per_weight(), 4);        // 8-bit weights, 2 bits/cell
    EXPECT_EQ(cfg.weights_per_xbar(), 128 * 32); // 4096
    EXPECT_EQ(cfg.xbars_per_chiplet(), 256);
    EXPECT_EQ(cfg.weights_per_chiplet(), 4096 * 256);
}

TEST(Reram, XbarsForConvLayer) {
    ReramConfig cfg;
    dnn::Network net("n");
    const auto in = net.add_input({64, 28, 28});
    const auto c = net.add_conv(in, 64, 3, 1, 1, false, false);
    // Unrolled matrix: rows 3*3*64 = 576 -> 5 row tiles; cols 64 -> 2 col
    // tiles (32 weights/col-tile) -> 10 crossbars.
    EXPECT_EQ(xbars_for_layer(net.layer(c), cfg), 10);
}

TEST(Reram, XbarsForFcLayer) {
    ReramConfig cfg;
    dnn::Network net("n");
    const auto in = net.add_input({512, 1, 1});
    const auto f = net.add_fc(in, 1000);
    // rows 512 -> 4 tiles; cols 1000/32 -> 32 tiles -> 128 crossbars.
    EXPECT_EQ(xbars_for_layer(net.layer(f), cfg), 128);
}

TEST(Reram, WeightlessLayersNeedNothing) {
    ReramConfig cfg;
    const auto net = small_net();
    for (const auto& l : net.layers()) {
        if (l.kind == dnn::LayerKind::kPool || l.kind == dnn::LayerKind::kInput ||
            l.kind == dnn::LayerKind::kGlobalPool) {
            EXPECT_EQ(xbars_for_layer(l, cfg), 0);
            EXPECT_EQ(chiplets_for_layer(l, cfg), 0);
        }
    }
}

TEST(Reram, LatencyDropsWithMoreChiplets) {
    ReramConfig cfg;
    dnn::Network net("n");
    const auto in = net.add_input({256, 56, 56});
    const auto c = net.add_conv(in, 256, 3, 1, 1, false, false);
    const auto& layer = net.layer(c);
    const double l1 = layer_compute_latency_ns(layer, 1, cfg);
    const double l4 = layer_compute_latency_ns(layer, 4, cfg);
    EXPECT_GT(l1, 0.0);
    EXPECT_LE(l4, l1);
}

TEST(Reram, EnergyIndependentOfSpread) {
    ReramConfig cfg;
    dnn::Network net("n");
    const auto in = net.add_input({64, 28, 28});
    const auto c = net.add_conv(in, 64, 3, 1, 1, false, false);
    EXPECT_GT(layer_compute_energy_pj(net.layer(c), cfg), 0.0);
}

TEST(Partitioner, ExactPlanCoversWeightLayers) {
    ReramConfig cfg;
    const auto net = small_net();
    const auto plan = partition_network(net, cfg);
    ASSERT_EQ(plan.segments.size(), 3u);  // conv, conv, fc
    std::int32_t cursor = 0;
    for (const auto& seg : plan.segments) {
        EXPECT_EQ(seg.first, cursor);       // exclusive allocation
        EXPECT_GE(seg.chiplets(), 1);
        cursor = seg.last + 1;
    }
    EXPECT_EQ(plan.total_chiplets, cursor);
}

TEST(Partitioner, PackedPlanSharesChiplets) {
    const auto net = dnn::build_resnet(110, dnn::Dataset::kImageNet);
    // 110 weight layers packed onto ~90 chiplets: sharing must occur.
    const auto plan = partition_by_params(net, 43.6, 43.6 / 90.0);
    EXPECT_LE(plan.total_chiplets, 100);
    EXPECT_GE(plan.total_chiplets, 60);
    bool shared = false;
    for (std::size_t i = 1; i < plan.segments.size(); ++i)
        if (plan.segments[i].first <= plan.segments[i - 1].last) shared = true;
    EXPECT_TRUE(shared);
}

TEST(Partitioner, PackedPlanMatchesBudget) {
    const auto net = dnn::build_vgg(19, dnn::Dataset::kImageNet);
    const auto plan = partition_by_params(net, 93.4, 8.0);
    // ceil(93.4 / 8) = 12 chiplets, plus packing slack of at most a few.
    EXPECT_GE(plan.total_chiplets, 12);
    EXPECT_LE(plan.total_chiplets, 15);
}

TEST(Partitioner, SegmentsAreMonotone) {
    const auto net = dnn::build_resnet(18, dnn::Dataset::kImageNet);
    const auto plan = partition_by_params(net, 24.76, 1.0);
    for (std::size_t i = 1; i < plan.segments.size(); ++i) {
        EXPECT_GE(plan.segments[i].first, plan.segments[i - 1].first);
        EXPECT_GE(plan.segments[i].last, plan.segments[i - 1].last - 0);
        EXPECT_LE(plan.segments[i].first, plan.segments[i].last);
    }
}

TEST(Partitioner, BadCapacityThrows) {
    const auto net = small_net();
    EXPECT_THROW(partition_by_params(net, 10.0, 0.0), std::invalid_argument);
    EXPECT_THROW(partition_by_params(net, 10.0, -1.0), std::invalid_argument);
}

TEST(Partitioner, AssignLayersCoversEveryLayer) {
    ReramConfig cfg;
    const auto net = small_net();
    const auto plan = partition_network(net, cfg);
    std::vector<std::int32_t> seq(static_cast<std::size_t>(plan.total_chiplets));
    for (std::size_t i = 0; i < seq.size(); ++i) seq[i] = static_cast<std::int32_t>(i) + 100;
    const auto assign = assign_layers(net, plan, seq);
    ASSERT_EQ(assign.size(), net.size());
    for (std::size_t i = 0; i < assign.size(); ++i)
        EXPECT_FALSE(assign[i].empty()) << "layer " << i << " unassigned";
}

TEST(Partitioner, WeightlessLayersInheritPredecessor) {
    ReramConfig cfg;
    const auto net = small_net();
    const auto plan = partition_network(net, cfg);
    std::vector<std::int32_t> seq(static_cast<std::size_t>(plan.total_chiplets));
    for (std::size_t i = 0; i < seq.size(); ++i) seq[i] = static_cast<std::int32_t>(i);
    const auto assign = assign_layers(net, plan, seq);
    // The pool (layer 2) inherits the last chiplet of conv1 (layer 1).
    EXPECT_EQ(assign[2].size(), 1u);
    EXPECT_EQ(assign[2].front(), assign[1].back());
}

TEST(Partitioner, ShortSequenceThrows) {
    ReramConfig cfg;
    const auto net = small_net();
    const auto plan = partition_network(net, cfg);
    std::vector<std::int32_t> seq(static_cast<std::size_t>(plan.total_chiplets - 1));
    EXPECT_THROW(assign_layers(net, plan, seq), std::length_error);
}

TEST(Accuracy, WindowIsOneBelowThreshold) {
    ThermalAccuracyModel m;
    EXPECT_DOUBLE_EQ(m.conductance_window(300.0), 1.0);
    EXPECT_DOUBLE_EQ(m.conductance_window(330.0), 1.0);
}

TEST(Accuracy, WindowShrinksExponentially) {
    ThermalAccuracyModel m;
    const double w340 = m.conductance_window(340.0);
    const double w350 = m.conductance_window(350.0);
    EXPECT_LT(w340, 1.0);
    EXPECT_LT(w350, w340);
    EXPECT_NEAR(w350 / w340, m.conductance_window(340.0) / 1.0, 1e-9);  // memoryless
}

TEST(Accuracy, DropWeightedByStoredWeights) {
    ThermalAccuracyModel m;
    const std::vector<double> temps{320.0, 350.0};
    const std::vector<double> all_cool{1.0, 0.0};
    const std::vector<double> all_hot{0.0, 1.0};
    EXPECT_DOUBLE_EQ(m.accuracy_drop(temps, all_cool), 0.0);
    EXPECT_GT(m.accuracy_drop(temps, all_hot), 0.05);
}

TEST(Accuracy, DropBounded) {
    ThermalAccuracyModel m;
    const std::vector<double> temps{500.0};
    const std::vector<double> w{1.0};
    const double drop = m.accuracy_drop(temps, w);
    EXPECT_LE(drop, m.degradation_at_zero_window);
    EXPECT_GT(drop, 0.9 * m.degradation_at_zero_window);
}

TEST(Accuracy, MismatchedSpansThrow) {
    ThermalAccuracyModel m;
    const std::vector<double> temps{320.0, 330.0};
    const std::vector<double> w{1.0};
    EXPECT_THROW((void)m.accuracy_drop(temps, w), std::invalid_argument);
}

TEST(Accuracy, PaperBandElevenPercentNearFiftyDegreesExcess) {
    // The paper reports up to 11% accuracy degradation for the
    // performance-only 3D mapping whose hotspots reach ~345-350 K.
    ThermalAccuracyModel m;
    const std::vector<double> temps{347.0};
    const std::vector<double> w{1.0};
    const double drop = m.accuracy_drop(temps, w);
    EXPECT_GT(drop, 0.08);
    EXPECT_LT(drop, 0.14);
}

}  // namespace
}  // namespace floretsim::pim
