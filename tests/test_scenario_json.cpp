/// Scenario-layer serialization contract: strict round-trip
/// (from_json(to_json(x)) == x) for every spec type, partial specs keep
/// defaults, unknown keys are rejected, and workload mixes serialize by
/// Table II / Table I name rather than inlined.

#include "src/scenario/spec_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "src/core/experiment.h"
#include "src/scenario/report.h"
#include "src/util/json.h"

namespace floretsim::scenario {
namespace {

namespace experiment = core::experiment;
using util::Json;
using util::json_parse;
using util::json_serialize;

/// Round-trips x through text, not just through the Json tree, so the
/// serializer's number formatting is part of the contract.
template <typename T, typename FromJson>
T round_trip(const T& x, FromJson&& from_json) {
    return from_json(json_parse(json_serialize(to_json(x))));
}

TEST(ScenarioJson, SimConfigRoundTrip) {
    noc::SimConfig c;
    c.flit_bytes = 16;
    c.max_packet_flits = 4;
    c.input_buffer_flits = 2;
    c.router_delay_cycles = 3;
    c.mm_per_cycle = 2.5;
    c.max_cycles = 123456789012345;  // needs 64-bit round-trip
    c.injection_rate = 0.125;
    c.core = noc::SimCore::kReference;
    EXPECT_EQ(round_trip(c, sim_config_from_json), c);
    c.core = noc::SimCore::kRegional;
    c.regions = 5;
    EXPECT_EQ(round_trip(c, sim_config_from_json), c);
    EXPECT_EQ(round_trip(noc::SimConfig{}, sim_config_from_json),
              noc::SimConfig{});
}

TEST(ScenarioJson, CostParamsRoundTrip) {
    cost::CostParams c;
    c.router_energy_base_pj = 0.375;
    c.defect_density_per_mm2 = 0.002;
    c.ref_chiplets = 128;
    EXPECT_EQ(round_trip(c, cost_params_from_json), c);
}

TEST(ScenarioJson, EvalConfigRoundTrip) {
    core::EvalConfig c = experiment::default_eval_config();
    c.traffic_scale = 1.0 / 128.0;
    c.include_weight_load = true;
    c.io_node = 7;
    c.round_epoch_cache = false;
    EXPECT_EQ(round_trip(c, eval_config_from_json), c);
    EXPECT_EQ(round_trip(core::EvalConfig{}, eval_config_from_json),
              core::EvalConfig{});
}

TEST(ScenarioJson, EnumsRejectUnknownNames) {
    EXPECT_THROW((void)arch_from_string("torus"), std::invalid_argument);
    EXPECT_THROW((void)sim_core_from_json(Json("warp")), std::invalid_argument);
    EXPECT_EQ(sim_core_from_json(Json("regional")), noc::SimCore::kRegional);
    EXPECT_THROW((void)admission_policy_from_json(Json("lifo")),
                 std::invalid_argument);
    EXPECT_THROW((void)arrival_process_from_json(Json("pareto")),
                 std::invalid_argument);
    // Case-insensitive + historical spellings are accepted.
    EXPECT_EQ(arch_from_string("FLORET"), experiment::Arch::kFloret);
    EXPECT_EQ(arch_from_string("siam-mesh"), experiment::Arch::kSiamMesh);
}

TEST(ScenarioJson, MixesSerializeByTableName) {
    // A canonical Table II mix serializes as its bare name...
    const auto& wl2 = workload::table2()[1];
    const Json j = to_json(wl2);
    ASSERT_EQ(j.kind(), Json::Kind::kString);
    EXPECT_EQ(j.as_string(), wl2.name);
    EXPECT_EQ(mix_from_json(j), wl2);
    // ...an unknown name is rejected...
    EXPECT_THROW((void)mix_from_json(Json("WL9")), std::invalid_argument);
    // ...and a custom mix references Table I ids, which are validated.
    workload::ConcurrentMix custom;
    custom.name = "CUSTOM";
    custom.entries = {{"DNN1", 2}, {"DNN13", 1}};
    const workload::ConcurrentMix back = round_trip(custom, mix_from_json);
    EXPECT_EQ(back, custom);
    EXPECT_THROW(
        (void)mix_from_json(json_parse(
            R"({"name": "X", "entries": [["DNN99", 1]]})")),
        std::invalid_argument);
}

TEST(ScenarioJson, SweepSpecRoundTrip) {
    core::SweepSpec s;
    s.archs = {experiment::Arch::kFloret, experiment::Arch::kKite};
    s.grids = {{10, 10}, {12, 12}};
    s.mixes = {workload::table2().front(), workload::table2().back()};
    s.evals = {experiment::default_eval_config()};
    s.swap_seed = 99;
    s.greedy_max_gap = 2;
    s.run_seed = 1234567890123456789ull;
    EXPECT_EQ(round_trip(s, sweep_spec_from_json), s);
    EXPECT_EQ(round_trip(core::SweepSpec{}, sweep_spec_from_json),
              core::SweepSpec{});
}

TEST(ScenarioJson, SweepSpecPartialKeepsDefaults) {
    const auto s = sweep_spec_from_json(
        json_parse(R"({"archs": ["floret"], "mixes": ["WL1"]})"));
    EXPECT_EQ(s.archs, std::vector<experiment::Arch>{experiment::Arch::kFloret});
    ASSERT_EQ(s.mixes.size(), 1u);
    EXPECT_EQ(s.mixes.front(), workload::table2().front());
    EXPECT_EQ(s.grids, (core::SweepSpec{}.grids));  // untouched default
    EXPECT_EQ(s.swap_seed, core::SweepSpec{}.swap_seed);
}

TEST(ScenarioJson, GridsAcceptBothSpellings) {
    const auto s = sweep_spec_from_json(
        json_parse(R"({"grids": ["8x6", [4, 4]]})"));
    ASSERT_EQ(s.grids.size(), 2u);
    EXPECT_EQ(s.grids[0], (std::pair<std::int32_t, std::int32_t>{8, 6}));
    EXPECT_EQ(s.grids[1], (std::pair<std::int32_t, std::int32_t>{4, 4}));
    EXPECT_THROW((void)sweep_spec_from_json(json_parse(R"({"grids": ["8by6"]})")),
                 std::invalid_argument);
    EXPECT_THROW((void)sweep_spec_from_json(json_parse(R"({"grids": ["0x6"]})")),
                 std::invalid_argument);
    // Out-of-int32-range sides must fail loudly, never wrap into a
    // silently-different grid ([4294967297, 10] is NOT 1x10).
    EXPECT_THROW((void)sweep_spec_from_json(
                     json_parse(R"({"grids": [[4294967297, 10]]})")),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)sweep_spec_from_json(json_parse(R"({"grids": ["4294967297x10"]})")),
        std::invalid_argument);
}

TEST(ScenarioJson, SweepPointListIsAWireFormat) {
    core::SweepSpec s;
    s.archs = {experiment::Arch::kSwap, experiment::Arch::kFloret};
    s.mixes = {workload::table2()[2]};
    s.evals = {experiment::default_eval_config()};
    s.greedy_max_gap = 2;
    const auto points = s.expand();
    const auto back = sweep_points_from_json(
        json_parse(json_serialize(to_json(points))));
    EXPECT_EQ(back, points);  // a remote runner gets the identical work
}

TEST(ScenarioJson, DynamicResultRoundTrip) {
    experiment::DynamicResult r;
    r.total_cycles = 123456.75;
    r.total_energy_pj = 9.5e8;
    r.flit_hops = 1234567890123;  // needs 64-bit round-trip
    r.rounds = 44;
    r.task_rounds = 131;
    r.all_completed = false;
    r.noi_evals = 31;
    r.round_epoch_hits = 13;
    r.sim_cycles_stepped = 9876;
    r.sim_cycles_skipped = 54321;
    r.sim_horizon_jumps = 17;
    r.sim_region_cycles_stepped = 111222333444;
    r.sim_region_cycles_skipped = 555666777888;
    r.sim_region_horizon_jumps = 23;
    r.sim_region_stepped_max = 9000;
    r.sim_region_stepped_min = 12;
    EXPECT_EQ(round_trip(r, dynamic_result_from_json), r);
    EXPECT_EQ(round_trip(experiment::DynamicResult{}, dynamic_result_from_json),
              experiment::DynamicResult{});
}

TEST(ScenarioJson, SweepRowListIsTheReturnWireFormat) {
    // The mirror of SweepPointListIsAWireFormat: a worker's finished rows
    // serialize, cross a process boundary, and come back equal — seconds
    // included, because doubles round-trip bit-exactly.
    core::SweepSpec s;
    s.archs = {experiment::Arch::kKite, experiment::Arch::kFloret};
    s.mixes = {workload::table2()[1]};
    s.evals = {experiment::default_eval_config()};
    std::vector<core::SweepRow> rows;
    for (const auto& p : s.expand()) {
        core::SweepRow r;
        r.point = p;
        r.result.total_cycles = 1000.5 + static_cast<double>(rows.size());
        r.result.flit_hops = 7 + static_cast<std::int64_t>(rows.size());
        r.result.all_completed = rows.empty();
        r.seconds = 0.25 / (1.0 + static_cast<double>(rows.size()));
        rows.push_back(std::move(r));
    }
    const auto back =
        sweep_rows_from_json(json_parse(json_serialize(to_json(rows))));
    EXPECT_EQ(back, rows);
}

TEST(ScenarioJson, SweepRowRejectsUnknownKeys) {
    EXPECT_THROW((void)sweep_row_from_json(json_parse(R"({"sekonds": 1.0})")),
                 std::invalid_argument);
    EXPECT_THROW((void)dynamic_result_from_json(
                     json_parse(R"({"total_cycle": 1.0})")),
                 std::invalid_argument);
    // Partial rows keep defaults, like every other spec type.
    const core::SweepRow r =
        sweep_row_from_json(json_parse(R"({"seconds": 2.5})"));
    EXPECT_EQ(r.point, core::SweepPoint{});
    EXPECT_EQ(r.result, experiment::DynamicResult{});
    EXPECT_DOUBLE_EQ(r.seconds, 2.5);
}

TEST(ScenarioJson, RequestClassAndArrivalsRoundTrip) {
    serve::RequestClass c{"interactive", {"DNN9", "DNN11"}, 0.75, 50'000.0};
    EXPECT_EQ(round_trip(c, request_class_from_json), c);
    EXPECT_THROW((void)request_class_from_json(
                     json_parse(R"({"name": "x", "workload_ids": ["DNN99"]})")),
                 std::invalid_argument);

    serve::ArrivalConfig a;
    a.process = serve::ArrivalProcess::kTrace;
    a.trace_cycles = {0.0, 100.5, 3000.25};
    a.max_requests = 17;
    a.min_rounds = 2;
    a.max_rounds = 5;
    EXPECT_EQ(round_trip(a, arrival_config_from_json), a);
    EXPECT_EQ(round_trip(serve::ArrivalConfig{}, arrival_config_from_json),
              serve::ArrivalConfig{});
}

TEST(ScenarioJson, ServeSpecRoundTrip) {
    serve::ServeSpec s;
    s.arch = experiment::Arch::kKite;
    s.width = 8;
    s.height = 12;
    s.greedy_max_gap = 3;
    s.config = serve::default_serve_config();
    s.config.admission = serve::AdmissionPolicy::kRejectOnFull;
    s.config.max_queue = 16;
    s.config.classes = serve::default_request_classes();
    s.config.arrivals.process = serve::ArrivalProcess::kMmpp;
    s.replications = 4;
    s.base_seed = 21;
    EXPECT_EQ(round_trip(s, serve_spec_from_json), s);
    EXPECT_EQ(round_trip(serve::ServeSpec{}, serve_spec_from_json),
              serve::ServeSpec{});
}

TEST(ScenarioJson, ServeGridSpecRoundTrip) {
    ServeGridSpec s;
    s.base.config.arrivals.max_requests = 80;
    s.archs = {experiment::Arch::kFloret, experiment::Arch::kSwap};
    s.loads_per_mcycle = {50.0, 500.0};
    EXPECT_EQ(round_trip(s, serve_grid_spec_from_json), s);
    EXPECT_EQ(round_trip(ServeGridSpec{}, serve_grid_spec_from_json),
              ServeGridSpec{});
}

TEST(ScenarioJson, ClusterSpecRoundTrip) {
    ClusterSpec s;
    s.base.arch = experiment::Arch::kKite;
    s.base.config.admission = serve::AdmissionPolicy::kEdfEvict;
    s.base.config.max_batch = 8;
    s.base.config.batch_traffic_alpha = 0.5;
    s.base.replications = 3;
    s.base.base_seed = 77;
    s.cluster_sizes = {1, 2, 4};
    s.batch_caps = {1, 8};
    s.loads_per_mcycle = {100.0, 1000.0};
    s.balance = serve::BalancePolicy::kLeastLoaded;
    EXPECT_EQ(round_trip(s, cluster_spec_from_json), s);
    EXPECT_EQ(round_trip(ClusterSpec{}, cluster_spec_from_json),
              ClusterSpec{});
}

TEST(ScenarioJson, BalanceAndAdmissionSpellings) {
    EXPECT_EQ(balance_policy_from_json(Json("least-loaded")),
              serve::BalancePolicy::kLeastLoaded);
    EXPECT_EQ(balance_policy_from_json(Json("model-affinity")),
              serve::BalancePolicy::kModelAffinity);
    // Shorthand accepted on input; output always uses the full name.
    EXPECT_EQ(balance_policy_from_json(Json("affinity")),
              serve::BalancePolicy::kModelAffinity);
    EXPECT_THROW((void)balance_policy_from_json(Json("round-robin")),
                 std::invalid_argument);
    EXPECT_EQ(admission_policy_from_json(Json("edf-evict")),
              serve::AdmissionPolicy::kEdfEvict);
    EXPECT_EQ(round_trip(serve::BalancePolicy::kModelAffinity,
                         balance_policy_from_json),
              serve::BalancePolicy::kModelAffinity);
    EXPECT_EQ(round_trip(serve::AdmissionPolicy::kEdfEvict,
                         admission_policy_from_json),
              serve::AdmissionPolicy::kEdfEvict);
}

TEST(ScenarioJson, ClusterSpecAdversarialCorpus) {
    // Unknown keys at both levels.
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"fabric_count": 2})")),
                 std::invalid_argument);
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"base": {"widht": 6}})")),
                 std::invalid_argument);
    // Zero fabrics: the empty list and the K=0 entry are both rejected.
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"cluster_sizes": []})")),
                 std::invalid_argument);
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"cluster_sizes": [1, 0]})")),
                 std::invalid_argument);
    // Negative / zero batch caps.
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"batch_caps": [-4]})")),
                 std::invalid_argument);
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"batch_caps": []})")),
                 std::invalid_argument);
    // Loads must be positive.
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"loads_per_mcycle": [500, 0]})")),
                 std::invalid_argument);
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"loads_per_mcycle": []})")),
                 std::invalid_argument);
    // Bad balance spelling and type mismatch.
    EXPECT_THROW((void)cluster_spec_from_json(
                     json_parse(R"({"balance": "roundrobin"})")),
                 std::invalid_argument);
    EXPECT_THROW((void)cluster_spec_from_json(json_parse(R"(["k1"])")),
                 std::invalid_argument);
}

TEST(ScenarioJson, ServeConfigAdversarialCorpus) {
    // A serving batch cap below 1 can never admit anything.
    EXPECT_THROW((void)serve_config_from_json(
                     json_parse(R"({"max_batch": 0})")),
                 std::invalid_argument);
    EXPECT_THROW((void)serve_config_from_json(
                     json_parse(R"({"max_batch": -3})")),
                 std::invalid_argument);
    // Negative batching cost would make bigger batches finish sooner.
    EXPECT_THROW((void)serve_config_from_json(
                     json_parse(R"({"batch_traffic_alpha": -0.25})")),
                 std::invalid_argument);
    // Duplicate tenant class names would make per-class accounting
    // ambiguous; the message names the offender.
    try {
        (void)serve_config_from_json(json_parse(R"({"classes": [
            {"name": "interactive", "workload_ids": ["DNN11"]},
            {"name": "interactive", "workload_ids": ["DNN1"]}
        ]})"));
        FAIL() << "expected duplicate class-name rejection";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("interactive"),
                  std::string::npos)
            << e.what();
    }
    // The new fields still reject unknown-key typos.
    EXPECT_THROW((void)serve_config_from_json(
                     json_parse(R"({"max_bach": 4})")),
                 std::invalid_argument);
}

TEST(ScenarioJson, UnknownKeysAreRejectedAtEveryLevel) {
    EXPECT_THROW((void)sim_config_from_json(json_parse(R"({"flitbytes": 8})")),
                 std::invalid_argument);
    EXPECT_THROW((void)eval_config_from_json(
                     json_parse(R"({"sim": {"warp_speed": 9}})")),
                 std::invalid_argument);
    EXPECT_THROW((void)sweep_spec_from_json(json_parse(R"({"seeds": [1]})")),
                 std::invalid_argument);
    EXPECT_THROW((void)serve_spec_from_json(
                     json_parse(R"({"config": {"arrivals": {"rate": 5}}})")),
                 std::invalid_argument);
    EXPECT_THROW((void)serve_grid_spec_from_json(json_parse(R"({"loads": [1]})")),
                 std::invalid_argument);
    // The offending context is named in the message.
    try {
        (void)eval_config_from_json(json_parse(R"({"sim": {"warp_speed": 9}})"));
        FAIL() << "expected unknown-key rejection";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("warp_speed"), std::string::npos)
            << e.what();
    }
}

TEST(ScenarioJson, TypeMismatchesAreRejected) {
    EXPECT_THROW((void)sim_config_from_json(json_parse(R"({"flit_bytes": "8"})")),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)sim_config_from_json(json_parse(R"({"injection_rate": []})")),
        std::invalid_argument);
    EXPECT_THROW((void)sweep_spec_from_json(json_parse(R"([1, 2, 3])")),
                 std::invalid_argument);
}

// ---- JsonReport (satellite bugfix pins) -------------------------------------

TEST(JsonReportContract, NonFiniteMetricsEmitNull) {
    JsonReport report("nan_test");
    report.add_metric("fine", 1.5);
    report.add_metric("broken", std::nan(""));
    report.add_metric("hot", std::numeric_limits<double>::infinity());
    // The document must stay parseable JSON (raw nan/inf literals are not).
    const Json doc = json_parse(report.to_json());
    EXPECT_DOUBLE_EQ(doc.find("metrics")->find("fine")->as_double(), 1.5);
    EXPECT_TRUE(doc.find("metrics")->find("broken")->is_null());
    EXPECT_TRUE(doc.find("metrics")->find("hot")->is_null());
}

TEST(JsonReportContract, PointTimingGuardsDegenerateSweeps) {
    // Empty sweep: no timing metrics at all (not NaN ones).
    JsonReport empty("empty");
    add_point_timing(empty, std::span<const double>{});
    EXPECT_EQ(json_parse(empty.to_json()).find("metrics")->find("point_imbalance"),
              nullptr);

    // All-zero timings (degenerate but non-empty): imbalance pins to 1.0
    // instead of dividing by the zero mean.
    JsonReport zeros("zeros");
    const std::vector<double> z{0.0, 0.0, 0.0};
    add_point_timing(zeros, z);
    const Json doc = json_parse(zeros.to_json());
    EXPECT_DOUBLE_EQ(doc.find("metrics")->find("point_imbalance")->as_double(),
                     1.0);
    EXPECT_DOUBLE_EQ(doc.find("metrics")->find("point_seconds_max")->as_double(),
                     0.0);
}

}  // namespace
}  // namespace floretsim::scenario
