#include <gtest/gtest.h>

#include "src/core/floret.h"
#include "src/core/sfc.h"

namespace floretsim::core {
namespace {

TEST(FloretTopo, ConnectedAndCoversGrid) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto t = make_floret(set);
    EXPECT_EQ(t.node_count(), 100);
    EXPECT_TRUE(t.connected());
}

TEST(FloretTopo, MostRoutersAreTwoPort) {
    // The paper: "all the routers in Floret except the heads and tails
    // have only two ports."
    const auto set = generate_sfc_set(10, 10, 4);
    const auto t = make_floret(set);
    const auto ports = t.port_histogram();
    std::uint64_t le2 = ports.at(1) + ports.at(2);
    EXPECT_GE(le2, 85u);
}

TEST(FloretTopo, FarFewerLinksThanMesh) {
    const auto set = generate_sfc_set(10, 10, 4);
    const auto t = make_floret(set);
    // Mesh has 180; Floret: 96 intra-SFC + a handful of express links.
    EXPECT_LT(t.link_count(), 120);
    EXPECT_GE(t.link_count(), 99);  // at least a spanning structure
}

TEST(FloretTopo, IntraSfcLinksAreSingleHop) {
    const auto set = generate_sfc_set(12, 12, 6);
    const auto t = make_floret(set);
    for (const auto& sfc : set.sfcs)
        for (std::size_t i = 1; i < sfc.path.size(); ++i)
            EXPECT_TRUE(t.has_link(sfc.path[i - 1], sfc.path[i]));
}

TEST(FloretTopo, ExpressLinksRespectSpanLimitOnEvenRegions) {
    // 8x8 split into 4x4 quadrants: U-comb petals put heads and tails on
    // the center-facing sides, so every express link honors the 3-hop cap.
    const auto set = generate_sfc_set(8, 8, 4);
    FloretOptions opts;
    opts.max_tail_head_span = 3;
    const auto t = make_floret(set, opts);
    for (const auto& l : t.links()) EXPECT_LE(l.hop_span, 3);
}

TEST(FloretTopo, EveryTailHasASpilloverLink) {
    // The mapping algorithm requires a tail -> next-head path for every
    // SFC; make_floret guarantees one even when the span limit is tight.
    for (const auto& [w, h, lambda] :
         {std::tuple{10, 10, 4}, std::tuple{8, 8, 4}, std::tuple{6, 6, 6}}) {
        const auto set = generate_sfc_set(w, h, lambda);
        const auto t = make_floret(set);
        for (const auto& si : set.sfcs) {
            bool has_express = false;
            for (const auto& sj : set.sfcs) {
                if (&si == &sj) continue;
                if (t.has_link(si.tail(), sj.head())) has_express = true;
            }
            EXPECT_TRUE(has_express) << w << "x" << h << " l" << lambda;
        }
    }
}

TEST(FloretTopo, UCombPetalsTightenEq1Distance) {
    // With even quadrants the optimizer should find the petal layout whose
    // tails sit within a few hops of the other heads.
    const auto set = generate_sfc_set(8, 8, 4);
    EXPECT_LE(set.tail_head_distance(), 4.0);
    const auto naive =
        generate_sfc_set(8, 8, 4, {.optimize_placement = false});
    EXPECT_LT(set.tail_head_distance(), naive.tail_head_distance());
}

TEST(FloretTopo, Fig1ThirtySixChipletSystem) {
    const auto set = generate_sfc_set(6, 6, 6);
    const auto t = make_floret(set);
    EXPECT_EQ(t.node_count(), 36);
    EXPECT_TRUE(t.connected());
    // 6 petals x 5 chain links = 30 intra-SFC links; express links on top.
    EXPECT_GE(t.link_count(), 35);
    EXPECT_LE(t.link_count(), 60);
}

TEST(FloretTopo, DegradedLayoutStillConnected) {
    // Stripes with distant heads force the connectivity-repair path.
    const auto set = generate_sfc_set(16, 2, 2, {.optimize_placement = false});
    FloretOptions opts;
    opts.max_tail_head_span = 1;  // too tight: bridges kick in
    const auto t = make_floret(set, opts);
    EXPECT_TRUE(t.connected());
}

class FloretSizes
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(FloretSizes, AlwaysConnectedTwoPortDominated) {
    const auto [w, h, lambda] = GetParam();
    const auto set = generate_sfc_set(w, h, lambda);
    const auto t = make_floret(set);
    EXPECT_TRUE(t.connected());
    const auto ports = t.port_histogram();
    const double frac_le2 =
        static_cast<double>(ports.at(1) + ports.at(2)) / t.node_count();
    EXPECT_GT(frac_le2, 0.6) << w << "x" << h << " l" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FloretSizes,
                         ::testing::Values(std::tuple{6, 6, 6}, std::tuple{8, 8, 4},
                                           std::tuple{10, 10, 4}, std::tuple{10, 10, 5},
                                           std::tuple{12, 12, 6}, std::tuple{12, 12, 9},
                                           std::tuple{16, 16, 8}));

}  // namespace
}  // namespace floretsim::core
