#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "src/serve/cluster.h"
#include "src/serve/sweep.h"
#include "src/util/stats.h"

namespace floretsim::serve {
namespace {

using core::experiment::Arch;

/// Small, fast serving scenario: CIFAR-class models on a 6x6 fabric,
/// loaded hard enough to queue.
ServeConfig quick_cfg() {
    ServeConfig cfg = default_serve_config();
    cfg.eval.traffic_scale = 1.0 / 256.0;  // keep tests quick
    cfg.classes = {
        {"tight", {"DNN11", "DNN13"}, 0.5, 30'000.0},
        {"loose", {"DNN9", "DNN10"}, 0.5, 200'000.0},
    };
    cfg.arrivals.rate_per_mcycle = 600.0;
    cfg.arrivals.max_requests = 25;
    cfg.seed = 5;
    return cfg;
}

void expect_identical(const ServeStats& a, const ServeStats& b) {
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.sla_violations, b.sla_violations);
    EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
    EXPECT_EQ(a.throughput_per_mcycle, b.throughput_per_mcycle);
    EXPECT_EQ(a.mean_utilization, b.mean_utilization);
    EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
    EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
    EXPECT_EQ(a.mean_wait_cycles, b.mean_wait_cycles);
    EXPECT_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
    EXPECT_EQ(a.p50_latency_cycles, b.p50_latency_cycles);
    EXPECT_EQ(a.p95_latency_cycles, b.p95_latency_cycles);
    EXPECT_EQ(a.p99_latency_cycles, b.p99_latency_cycles);
    EXPECT_EQ(a.noi_rounds, b.noi_rounds);
    EXPECT_EQ(a.noi_cache_hits, b.noi_cache_hits);
    EXPECT_EQ(a.batched_requests, b.batched_requests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.sim_cycles_stepped, b.sim_cycles_stepped);
    EXPECT_EQ(a.sim_cycles_skipped, b.sim_cycles_skipped);
    EXPECT_EQ(a.sim_horizon_jumps, b.sim_horizon_jumps);
    EXPECT_EQ(a.sim_region_cycles_stepped, b.sim_region_cycles_stepped);
    EXPECT_EQ(a.sim_region_cycles_skipped, b.sim_region_cycles_skipped);
    EXPECT_EQ(a.sim_region_horizon_jumps, b.sim_region_horizon_jumps);
    EXPECT_EQ(a.sim_region_stepped_max, b.sim_region_stepped_max);
    EXPECT_EQ(a.sim_region_stepped_min, b.sim_region_stepped_min);
    ASSERT_EQ(a.per_class.size(), b.per_class.size());
    for (std::size_t c = 0; c < a.per_class.size(); ++c) {
        EXPECT_EQ(a.per_class[c].arrived, b.per_class[c].arrived);
        EXPECT_EQ(a.per_class[c].completed, b.per_class[c].completed);
        EXPECT_EQ(a.per_class[c].violations, b.per_class[c].violations);
    }
}

/// quick_cfg slammed hard enough that admissions contend: the queue grows,
/// EDF ordering matters, and batching/eviction have real work to do.
ServeConfig slam_cfg() {
    ServeConfig cfg = quick_cfg();
    cfg.arrivals.rate_per_mcycle = 50'000.0;
    cfg.arrivals.min_rounds = 2;
    cfg.arrivals.max_rounds = 3;
    return cfg;
}

/// The serving-side conservation laws and orderings that must hold for
/// every drained run, whatever the policy, batch cap, or seed.
void expect_invariants(const ServeStats& s) {
    EXPECT_TRUE(s.drained);
    EXPECT_EQ(s.arrived, s.completed + s.rejected);
    // Preempted members go back to the queue and are admitted again, so
    // admissions exceed completions by exactly the preemption count.
    EXPECT_EQ(s.admitted, s.completed + s.preemptions);
    EXPECT_GE(s.preemptions, s.evictions);  // every eviction preempts >= 1
    EXPECT_GE(s.noi_rounds, s.noi_cache_hits);
    EXPECT_GE(s.mean_utilization, 0.0);
    EXPECT_LE(s.mean_utilization, 1.0);
    EXPECT_GE(s.makespan_cycles, 0.0);
    if (s.completed > 0) {
        // The P2 percentile estimators are maintained independently, so
        // adjacent quantiles can cross by a sliver on small samples;
        // require ordering only up to 1% slack.
        EXPECT_LE(s.p50_latency_cycles, s.p95_latency_cycles * 1.01 + 1e-9);
        EXPECT_LE(s.p95_latency_cycles, s.p99_latency_cycles * 1.01 + 1e-9);
        EXPECT_GE(s.mean_latency_cycles, s.mean_wait_cycles);
    }
    std::int64_t cls_arrived = 0, cls_completed = 0, cls_violations = 0;
    for (const auto& c : s.per_class) {
        cls_arrived += c.arrived;
        cls_completed += c.completed;
        cls_violations += c.violations;
    }
    EXPECT_EQ(cls_arrived, s.arrived);
    EXPECT_EQ(cls_completed, s.completed);
    // Rejections and late completions both count as violations, in the
    // total and in their class.
    EXPECT_EQ(cls_violations, s.sla_violations);
    EXPECT_GE(s.sla_violations, s.rejected);
}

// ------------------------------------------------------------------ arrivals

TEST(Arrivals, DeterministicAndSorted) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.max_requests = 50;
    const auto a = generate_requests(cfg, classes, 9);
    const auto b = generate_requests(cfg, classes, 9);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
        EXPECT_EQ(a[i].workload_id, b[i].workload_id);
        EXPECT_EQ(a[i].rounds, b[i].rounds);
        if (i) EXPECT_GE(a[i].arrival_cycle, a[i - 1].arrival_cycle);
        EXPECT_GT(a[i].deadline_cycle, a[i].arrival_cycle);
    }
    const auto c = generate_requests(cfg, classes, 10);
    EXPECT_NE(a.front().arrival_cycle, c.front().arrival_cycle);
}

TEST(Arrivals, MmppIsSortedAndBurstier) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.max_requests = 400;
    ArrivalConfig mmpp = cfg;
    mmpp.process = ArrivalProcess::kMmpp;
    const auto poisson = generate_requests(cfg, classes, 3);
    const auto bursty = generate_requests(mmpp, classes, 3);
    ASSERT_EQ(bursty.size(), 400u);
    EXPECT_TRUE(std::is_sorted(bursty.begin(), bursty.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival_cycle < b.arrival_cycle;
                               }));
    // Squared-coefficient-of-variation of the gaps: MMPP > Poisson.
    const auto scv = [](const std::vector<Request>& rs) {
        util::RunningStats gaps;
        for (std::size_t i = 1; i < rs.size(); ++i)
            gaps.add(rs[i].arrival_cycle - rs[i - 1].arrival_cycle);
        return gaps.variance() / (gaps.mean() * gaps.mean());
    };
    EXPECT_GT(scv(bursty), scv(poisson));
}

TEST(Arrivals, TraceReplaysGivenCycles) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.process = ArrivalProcess::kTrace;
    cfg.trace_cycles = {10.0, 250.0, 250.0, 4000.0};
    cfg.max_requests = 3;  // caps the replay
    const auto reqs = generate_requests(cfg, classes, 1);
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_EQ(reqs[0].arrival_cycle, 10.0);
    EXPECT_EQ(reqs[1].arrival_cycle, 250.0);
    EXPECT_EQ(reqs[2].arrival_cycle, 250.0);
}

TEST(Arrivals, RejectsInvalidConfigs) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    EXPECT_THROW((void)generate_requests(cfg, {}, 1), std::invalid_argument);
    cfg.rate_per_mcycle = 0.0;
    EXPECT_THROW((void)generate_requests(cfg, classes, 1), std::invalid_argument);
    cfg.rate_per_mcycle = 10.0;
    cfg.trace_cycles = {5.0, 1.0};
    EXPECT_THROW((void)generate_requests(cfg, classes, 1), std::invalid_argument);
}

// ----------------------------------------------------------------- simulator

TEST(Serve, EveryRequestCompletesOrBounces) {
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, quick_cfg());
    EXPECT_TRUE(s.drained);
    EXPECT_EQ(s.arrived, 25);
    EXPECT_EQ(s.arrived, s.completed + s.rejected);
    EXPECT_EQ(s.admitted, s.completed);
    EXPECT_GT(s.mean_utilization, 0.0);
    EXPECT_LE(s.mean_utilization, 1.0);
    EXPECT_LE(s.p50_latency_cycles, s.p95_latency_cycles);
    EXPECT_LE(s.p95_latency_cycles, s.p99_latency_cycles);
    EXPECT_GT(s.makespan_cycles, 0.0);
    std::int64_t class_completed = 0;
    for (const auto& c : s.per_class) class_completed += c.completed;
    EXPECT_EQ(class_completed, s.completed);
}

TEST(Serve, RepeatedRunsWithSameSeedAreIdentical) {
    const auto cfg = quick_cfg();
    auto arch_a = core::experiment::build_arch(Arch::kFloret, 6, 6);
    auto arch_b = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto a = serve_requests(arch_a, cfg);
    const auto b = serve_requests(arch_b, cfg);
    expect_identical(a, b);
    // And a reused arch: serve_requests resets the mapper first.
    const auto c = serve_requests(arch_a, cfg);
    expect_identical(a, c);
}

TEST(Serve, ResidentSetCacheFiresOnRepeatedRounds) {
    auto cfg = quick_cfg();
    cfg.arrivals.min_rounds = 2;
    cfg.arrivals.max_rounds = 3;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    EXPECT_GT(s.noi_rounds, 0);
    EXPECT_GT(s.noi_cache_hits, 0);
    EXPECT_LT(s.noi_cache_hits, s.noi_rounds);
}

TEST(Serve, AdmissionBurstCostsOneNoiEvaluation) {
    // A 94-chiplet VGG19 holds the fabric while four 10-chiplet VGG11
    // requests queue behind it; its completion drains all four in a single
    // try_admit burst. The round schedule is deferred until the burst
    // completes, so the whole wave costs exactly one evaluate_noi and
    // every admit's round_done is computed against the final resident set
    // (the old code evaluated once per admission, each against a stale
    // intermediate set).
    ServeConfig cfg = default_serve_config();
    cfg.eval.traffic_scale = 1.0 / 256.0;
    cfg.classes = {
        {"big", {"DNN7"}, 0.35, 500'000.0},
        {"small", {"DNN11"}, 0.65, 500'000.0},
    };
    cfg.arrivals.process = ArrivalProcess::kTrace;
    cfg.arrivals.trace_cycles = {10.0, 20.0, 30.0, 40.0, 50.0};
    cfg.arrivals.max_requests = 5;
    cfg.arrivals.min_rounds = 1;
    cfg.arrivals.max_rounds = 1;
    cfg.seed = 2;  // chosen so the stream is DNN7 then 4x DNN11 (checked)
    const auto stream =
        generate_requests(cfg.arrivals, cfg.classes, cfg.seed);
    ASSERT_EQ(stream.size(), 5u);
    ASSERT_EQ(stream[0].workload_id, "DNN7");
    for (std::size_t i = 1; i < 5; ++i)
        ASSERT_EQ(stream[i].workload_id, "DNN11") << i;

    auto arch = core::experiment::build_arch(Arch::kFloret, 10, 10);
    const auto s = serve_requests(arch, cfg);
    ASSERT_TRUE(s.drained);
    ASSERT_EQ(s.admitted, 5);
    EXPECT_EQ(s.noi_rounds, 5);  // one round per request
    // Two wormhole simulations in total: one for the VGG19's solo round,
    // one for the burst of four VGG11s; the burst's other three rounds
    // reuse its residency epoch.
    EXPECT_EQ(s.noi_rounds - s.noi_cache_hits, 2);
}

TEST(Serve, RejectOnFullBoundsTheQueue) {
    auto cfg = quick_cfg();
    cfg.arrivals.rate_per_mcycle = 50'000.0;  // slam the queue
    cfg.arrivals.min_rounds = 2;
    cfg.admission = AdmissionPolicy::kRejectOnFull;
    cfg.max_queue = 2;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    EXPECT_GT(s.rejected, 0);
    EXPECT_LE(s.peak_queue_depth, 2);
    EXPECT_EQ(s.arrived, s.completed + s.rejected);
    // Same stream, unbounded FIFO: nothing bounces, the queue grows past
    // the bound, and every rejection above was an SLA violation.
    cfg.admission = AdmissionPolicy::kFifo;
    auto arch2 = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto f = serve_requests(arch2, cfg);
    EXPECT_EQ(f.rejected, 0);
    EXPECT_EQ(f.completed, f.arrived);
    EXPECT_GT(f.peak_queue_depth, 2);
    EXPECT_GE(s.sla_violations, s.rejected);
}

TEST(Serve, EarliestDeadlineFavorsTheTightClass) {
    // Under overload, serving tight-SLO requests first must not violate
    // *more* of them than arrival-order admission does on the same stream.
    auto cfg = quick_cfg();
    cfg.arrivals.rate_per_mcycle = 2000.0;
    cfg.arrivals.max_requests = 30;
    auto arch_fifo = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto fifo = serve_requests(arch_fifo, cfg);
    cfg.admission = AdmissionPolicy::kEarliestDeadline;
    auto arch_edf = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto edf = serve_requests(arch_edf, cfg);
    EXPECT_EQ(fifo.arrived, edf.arrived);
    EXPECT_EQ(fifo.per_class[0].arrived, edf.per_class[0].arrived);
    EXPECT_LE(edf.per_class[0].violations, fifo.per_class[0].violations);
}

// ----------------------------------------------------- differential pin
// Exact-value goldens captured from the pre-cluster serving simulator.
// With max_batch == 1, no eviction policy, and a single fabric, the
// cluster front-end must reproduce the legacy serve_requests() results
// bit for bit — any drift here is a behavior change, not a refactor.

TEST(DifferentialPin, QuickConfigMatchesPreClusterGoldens) {
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, quick_cfg());
    EXPECT_EQ(s.arrived, 25);
    EXPECT_EQ(s.admitted, 25);
    EXPECT_EQ(s.completed, 25);
    EXPECT_EQ(s.rejected, 0);
    EXPECT_EQ(s.sla_violations, 0);
    EXPECT_EQ(s.makespan_cycles, 50305.302946324504);
    EXPECT_EQ(s.throughput_per_mcycle, 496.96549937637525);
    EXPECT_EQ(s.mean_utilization, 0.017448890076767188);
    EXPECT_EQ(s.mean_queue_depth, 0.0);
    EXPECT_EQ(s.peak_queue_depth, 1);
    EXPECT_EQ(s.mean_wait_cycles, 0.0);
    EXPECT_EQ(s.mean_latency_cycles, 91.296874999999986);
    EXPECT_EQ(s.p50_latency_cycles, 88.3127192212864);
    EXPECT_EQ(s.p95_latency_cycles, 151.57355375744046);
    EXPECT_EQ(s.p99_latency_cycles, 151.57355375744046);
    EXPECT_EQ(s.noi_rounds, 48);
    EXPECT_EQ(s.noi_cache_hits, 44);
    // The legacy path never batches, preempts, or evicts.
    EXPECT_EQ(s.batched_requests, 0);
    EXPECT_EQ(s.preemptions, 0);
    EXPECT_EQ(s.evictions, 0);
    EXPECT_TRUE(s.drained);
}

TEST(DifferentialPin, GoldensHoldAcrossSimCores) {
    // All three cycle engines must agree on every serve-visible stat
    // (only the stepped/skipped accounting differs), and that accounting
    // itself is pinned.
    auto ref_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    auto base = quick_cfg();
    base.eval.sim.core = noc::SimCore::kReference;
    const auto ref = serve_requests(ref_arch, base);
    EXPECT_EQ(ref.makespan_cycles, 50305.302946324504);
    EXPECT_EQ(ref.sim_cycles_stepped, 70);
    EXPECT_EQ(ref.sim_cycles_skipped, 0);
    EXPECT_EQ(ref.sim_horizon_jumps, 0);
    for (const auto core :
         {noc::SimCore::kEventHorizon, noc::SimCore::kRegional}) {
        auto cfg = quick_cfg();
        cfg.eval.sim.core = core;
        auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
        const auto s = serve_requests(arch, cfg);
        EXPECT_EQ(s.makespan_cycles, ref.makespan_cycles);
        EXPECT_EQ(s.p99_latency_cycles, ref.p99_latency_cycles);
        EXPECT_EQ(s.throughput_per_mcycle, ref.throughput_per_mcycle);
        EXPECT_EQ(s.noi_rounds, ref.noi_rounds);
        EXPECT_EQ(s.noi_cache_hits, ref.noi_cache_hits);
        EXPECT_EQ(s.sim_cycles_stepped, 59);
        EXPECT_EQ(s.sim_cycles_skipped, 11);
        EXPECT_EQ(s.sim_horizon_jumps, 10);
    }
}

TEST(DifferentialPin, SlamGoldensAcrossAdmissionPolicies) {
    auto fifo_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto fifo = serve_requests(fifo_arch, slam_cfg());
    EXPECT_EQ(fifo.arrived, 25);
    EXPECT_EQ(fifo.completed, 25);
    EXPECT_EQ(fifo.rejected, 0);
    EXPECT_EQ(fifo.makespan_cycles, 1564.8363520416287);
    EXPECT_EQ(fifo.throughput_per_mcycle, 15976.111474776715);
    EXPECT_EQ(fifo.mean_utilization, 0.81455840796123069);
    EXPECT_EQ(fifo.mean_queue_depth, 6.3890183177526438);
    EXPECT_EQ(fifo.peak_queue_depth, 15);
    EXPECT_EQ(fifo.mean_wait_cycles, 399.9107246991677);
    EXPECT_EQ(fifo.mean_latency_cycles, 545.84322469916765);
    EXPECT_EQ(fifo.p50_latency_cycles, 656.4320656154714);
    EXPECT_EQ(fifo.p95_latency_cycles, 863.48875676678995);
    EXPECT_EQ(fifo.p99_latency_cycles, 863.51780651973024);
    EXPECT_EQ(fifo.noi_rounds, 65);
    EXPECT_EQ(fifo.noi_cache_hits, 41);
    ASSERT_EQ(fifo.per_class.size(), 2u);
    EXPECT_EQ(fifo.per_class[0].arrived, 13);
    EXPECT_EQ(fifo.per_class[0].completed, 13);
    EXPECT_EQ(fifo.per_class[0].violations, 0);
    EXPECT_EQ(fifo.per_class[1].arrived, 12);
    EXPECT_EQ(fifo.per_class[1].completed, 12);
    EXPECT_EQ(fifo.per_class[1].violations, 0);

    auto edf_cfg = slam_cfg();
    edf_cfg.admission = AdmissionPolicy::kEarliestDeadline;
    auto edf_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto edf = serve_requests(edf_arch, edf_cfg);
    EXPECT_EQ(edf.makespan_cycles, 1748.5600133140658);
    EXPECT_EQ(edf.throughput_per_mcycle, 14297.478959625305);
    EXPECT_EQ(edf.mean_utilization, 0.77416752934377386);
    EXPECT_EQ(edf.mean_queue_depth, 4.6861950323861556);
    EXPECT_EQ(edf.peak_queue_depth, 12);
    EXPECT_EQ(edf.mean_wait_cycles, 327.7637299288578);
    EXPECT_EQ(edf.mean_latency_cycles, 484.33622992885785);
    EXPECT_EQ(edf.p50_latency_cycles, 396.0568357321402);
    EXPECT_EQ(edf.p95_latency_cycles, 1035.7609238352654);
    EXPECT_EQ(edf.p99_latency_cycles, 1036.1607526425837);
    EXPECT_EQ(edf.noi_rounds, 65);
    EXPECT_EQ(edf.noi_cache_hits, 41);

    auto rof_cfg = slam_cfg();
    rof_cfg.admission = AdmissionPolicy::kRejectOnFull;
    rof_cfg.max_queue = 2;
    auto rof_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto rof = serve_requests(rof_arch, rof_cfg);
    EXPECT_EQ(rof.arrived, 25);
    EXPECT_EQ(rof.admitted, 13);
    EXPECT_EQ(rof.completed, 13);
    EXPECT_EQ(rof.rejected, 12);
    EXPECT_EQ(rof.sla_violations, 12);
    EXPECT_EQ(rof.makespan_cycles, 904.85197704162874);
    EXPECT_EQ(rof.throughput_per_mcycle, 14366.990767377105);
    EXPECT_EQ(rof.mean_utilization, 0.7970610006072204);
    EXPECT_EQ(rof.mean_queue_depth, 0.94265856653312563);
    EXPECT_EQ(rof.peak_queue_depth, 2);
    EXPECT_EQ(rof.mean_wait_cycles, 65.612805200209735);
    EXPECT_EQ(rof.mean_latency_cycles, 217.10078596944052);
    EXPECT_EQ(rof.p50_latency_cycles, 233.95535692748402);
    EXPECT_EQ(rof.p95_latency_cycles, 274.91084383622672);
    EXPECT_EQ(rof.p99_latency_cycles, 274.91084383622672);
    EXPECT_EQ(rof.noi_rounds, 33);
    EXPECT_EQ(rof.noi_cache_hits, 20);
    ASSERT_EQ(rof.per_class.size(), 2u);
    EXPECT_EQ(rof.per_class[0].completed, 5);
    EXPECT_EQ(rof.per_class[0].violations, 8);
    EXPECT_EQ(rof.per_class[1].completed, 8);
    EXPECT_EQ(rof.per_class[1].violations, 4);
}

TEST(DifferentialPin, BatchAlphaIsInertAtBatchCapOne) {
    // batch_traffic_alpha only scales rounds with m > 1 members; with
    // max_batch == 1 even an absurd alpha must leave the goldens intact.
    auto cfg = quick_cfg();
    cfg.max_batch = 1;
    cfg.batch_traffic_alpha = 9.75;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    EXPECT_EQ(s.makespan_cycles, 50305.302946324504);
    EXPECT_EQ(s.p99_latency_cycles, 151.57355375744046);
    EXPECT_EQ(s.batched_requests, 0);
}

TEST(DifferentialPin, SingleFabricClusterMatchesServeRequests) {
    // serve_requests is a K=1 cluster by construction; pin the wrapper and
    // the fabric-level accounting it implies.
    const auto cfg = slam_cfg();
    auto direct_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto direct = serve_requests(direct_arch, cfg);
    std::vector<core::experiment::BuiltArch> fabrics;
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    const auto cluster =
        serve_cluster(std::span(fabrics), cfg, BalancePolicy::kLeastLoaded);
    expect_identical(direct, cluster.serve);
    ASSERT_EQ(cluster.fabric_arrivals.size(), 1u);
    EXPECT_EQ(cluster.fabric_arrivals[0], direct.arrived);
    EXPECT_EQ(cluster.fabric_completed[0], direct.completed);
}

TEST(DifferentialPin, ThreadCountsPreserveGoldens) {
    // The engine-replication path at any thread count must land on the
    // same bits as the direct golden run (seed 5 == quick_cfg's seed).
    ServeSpec spec;
    spec.arch = Arch::kFloret;
    spec.width = 6;
    spec.height = 6;
    spec.config = quick_cfg();
    spec.replications = 1;
    spec.base_seed = 5;
    for (const std::int32_t threads : {1, 3, 8}) {
        core::SweepEngine engine(threads);
        const auto runs = run_replications(engine, spec);
        ASSERT_EQ(runs.size(), 1u);
        EXPECT_EQ(runs[0].makespan_cycles, 50305.302946324504);
        EXPECT_EQ(runs[0].p95_latency_cycles, 151.57355375744046);
        EXPECT_EQ(runs[0].noi_rounds, 48);
    }
}

// ------------------------------------------------------------------ batching

TEST(Batching, CoalescesSameModelRequestsAndSavesRounds) {
    auto cfg = slam_cfg();
    auto solo_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto solo = serve_requests(solo_arch, cfg);
    cfg.max_batch = 4;
    auto batch_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto batched = serve_requests(batch_arch, cfg);
    expect_invariants(batched);
    EXPECT_EQ(batched.arrived, solo.arrived);
    EXPECT_EQ(batched.completed, solo.completed);
    EXPECT_EQ(batched.batched_requests, 12);
    // Coalesced members ride the leader's rounds: strictly fewer NoI
    // rounds and a shorter makespan than the serial run of this stream.
    EXPECT_EQ(batched.noi_rounds, 36);
    EXPECT_LT(batched.noi_rounds, solo.noi_rounds);
    EXPECT_LT(batched.makespan_cycles, solo.makespan_cycles);
}

TEST(Batching, BatchCapBoundsCoalescing) {
    // Cap 2 batches fewer requests than cap 4 on the same stream, and a
    // member only ever joins a residency for its own workload.
    auto cfg = slam_cfg();
    cfg.max_batch = 2;
    auto arch2 = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto cap2 = serve_requests(arch2, cfg);
    expect_invariants(cap2);
    cfg.max_batch = 4;
    auto arch4 = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto cap4 = serve_requests(arch4, cfg);
    EXPECT_GT(cap2.batched_requests, 0);
    EXPECT_LE(cap2.batched_requests, cap4.batched_requests);
    EXPECT_GE(cap2.noi_rounds, cap4.noi_rounds);
}

TEST(Batching, AlphaStretchesBatchedRounds) {
    // alpha scales the compute term of multi-member rounds, so a costlier
    // alpha serves the same stream no faster. (Round timing shifts which
    // arrivals find a joinable residency, so batch counts may differ —
    // both runs must still obey the conservation laws.)
    auto cfg = slam_cfg();
    cfg.max_batch = 4;
    cfg.batch_traffic_alpha = 0.0;
    auto free_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto free_rounds = serve_requests(free_arch, cfg);
    cfg.batch_traffic_alpha = 2.0;
    auto costly_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto costly = serve_requests(costly_arch, cfg);
    expect_invariants(free_rounds);
    expect_invariants(costly);
    EXPECT_GT(free_rounds.batched_requests, 0);
    EXPECT_GT(costly.batched_requests, 0);
    EXPECT_LE(free_rounds.makespan_cycles, costly.makespan_cycles);
}

// ------------------------------------------------------------------ eviction

TEST(Eviction, PreemptsForTighterDeadlinesAndConserves) {
    auto cfg = slam_cfg();
    cfg.admission = AdmissionPolicy::kEdfEvict;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    expect_invariants(s);
    EXPECT_EQ(s.arrived, 25);
    EXPECT_EQ(s.completed, 25);  // preempted work is re-queued, not lost
    EXPECT_EQ(s.rejected, 0);
    EXPECT_EQ(s.evictions, 2);
    EXPECT_EQ(s.preemptions, 2);
    EXPECT_EQ(s.admitted, 27);  // 25 requests + 2 re-admissions
}

TEST(Eviction, ComposesWithBatching) {
    // An evicted residency preempts every member riding it.
    auto cfg = slam_cfg();
    cfg.admission = AdmissionPolicy::kEdfEvict;
    cfg.max_batch = 4;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    expect_invariants(s);
    EXPECT_EQ(s.completed, 25);
    EXPECT_EQ(s.evictions, 2);
    EXPECT_EQ(s.preemptions, 4);
    EXPECT_EQ(s.admitted, 29);
    EXPECT_GT(s.batched_requests, 0);
}

TEST(Eviction, MapperFullyReleasedAfterEvictionRuns) {
    // If an eviction leaked chiplets, a second run on the same arch would
    // map differently (or fail to drain). Bit-identical reruns prove the
    // busy/footprint ledger returns to empty.
    auto cfg = slam_cfg();
    cfg.admission = AdmissionPolicy::kEdfEvict;
    cfg.max_batch = 4;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto first = serve_requests(arch, cfg);
    ASSERT_GT(first.evictions, 0);
    const auto second = serve_requests(arch, cfg);
    expect_identical(first, second);
}

TEST(Eviction, DoesNotHurtTheTightClass) {
    // Eviction exists to rescue tight deadlines: under overload the tight
    // class must violate no more than it does under plain EDF admission.
    auto cfg = slam_cfg();
    cfg.arrivals.max_requests = 30;
    cfg.admission = AdmissionPolicy::kEarliestDeadline;
    auto edf_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto edf = serve_requests(edf_arch, cfg);
    cfg.admission = AdmissionPolicy::kEdfEvict;
    auto evict_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto evict = serve_requests(evict_arch, cfg);
    EXPECT_EQ(edf.per_class[0].arrived, evict.per_class[0].arrived);
    EXPECT_LE(evict.per_class[0].violations, edf.per_class[0].violations);
}

// ------------------------------------------------------- invariant sweep

TEST(ServeProperty, InvariantsHoldAcrossSeedsPoliciesAndBatchCaps) {
    // Seeded random arrival streams across the policy x batch-cap grid:
    // every drained run obeys the conservation laws, and the features
    // that should be off really are off.
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
        for (const auto policy :
             {AdmissionPolicy::kFifo, AdmissionPolicy::kEarliestDeadline,
              AdmissionPolicy::kRejectOnFull, AdmissionPolicy::kEdfEvict}) {
            for (const std::int32_t cap : {1, 3}) {
                auto cfg = slam_cfg();
                cfg.seed = seed;
                cfg.admission = policy;
                cfg.max_batch = cap;
                if (policy == AdmissionPolicy::kRejectOnFull)
                    cfg.max_queue = 3;
                auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
                const auto s = serve_requests(arch, cfg);
                SCOPED_TRACE(testing::Message()
                             << "seed=" << seed << " policy="
                             << admission_policy_name(policy)
                             << " cap=" << cap);
                expect_invariants(s);
                EXPECT_EQ(s.arrived, 25);
                if (cap == 1) EXPECT_EQ(s.batched_requests, 0);
                if (policy != AdmissionPolicy::kEdfEvict) {
                    EXPECT_EQ(s.preemptions, 0);
                    EXPECT_EQ(s.evictions, 0);
                }
                if (policy != AdmissionPolicy::kRejectOnFull)
                    EXPECT_EQ(s.rejected, 0);
            }
        }
    }
}

TEST(ServeProperty, MmppAndTraceStreamsDrainUnderEviction) {
    // The bursty and replayed arrival processes exercise the same laws.
    auto cfg = slam_cfg();
    cfg.admission = AdmissionPolicy::kEdfEvict;
    cfg.max_batch = 3;
    cfg.arrivals.process = ArrivalProcess::kMmpp;
    auto mmpp_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    expect_invariants(serve_requests(mmpp_arch, cfg));
    cfg.arrivals.process = ArrivalProcess::kTrace;
    cfg.arrivals.trace_cycles = {10.0, 10.0, 15.0, 200.0, 201.0,
                                 202.0, 500.0, 2000.0};
    cfg.arrivals.max_requests = 8;
    auto trace_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto t = serve_requests(trace_arch, cfg);
    expect_invariants(t);
    EXPECT_EQ(t.arrived, 8);
}

// ------------------------------------------------------------------- cluster

TEST(Cluster, TwoFabricsConserveAndSplitLoad) {
    const auto cfg = slam_cfg();
    std::vector<core::experiment::BuiltArch> fabrics;
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    const auto c =
        serve_cluster(std::span(fabrics), cfg, BalancePolicy::kLeastLoaded);
    expect_invariants(c.serve);
    ASSERT_EQ(c.fabric_arrivals.size(), 2u);
    ASSERT_EQ(c.fabric_completed.size(), 2u);
    EXPECT_EQ(c.fabric_arrivals[0] + c.fabric_arrivals[1], c.serve.arrived);
    EXPECT_EQ(c.fabric_completed[0] + c.fabric_completed[1],
              c.serve.completed);
    // Least-loaded actually spreads this stream across both fabrics.
    EXPECT_EQ(c.fabric_arrivals[0], 12);
    EXPECT_EQ(c.fabric_arrivals[1], 13);
    // Scale-out serves the stream faster than one fabric.
    auto solo_arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto solo = serve_requests(solo_arch, cfg);
    EXPECT_LT(c.serve.makespan_cycles, solo.makespan_cycles);
}

TEST(Cluster, ModelAffinityRoutesOntoWarmFabrics) {
    const auto cfg = slam_cfg();
    std::vector<core::experiment::BuiltArch> fabrics;
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    const auto c =
        serve_cluster(std::span(fabrics), cfg, BalancePolicy::kModelAffinity);
    expect_invariants(c.serve);
    EXPECT_EQ(c.fabric_arrivals[0], 11);
    EXPECT_EQ(c.fabric_arrivals[1], 14);
    EXPECT_EQ(c.affinity_hits, 18);
    EXPECT_EQ(c.fabric_arrivals[0] + c.fabric_arrivals[1], c.serve.arrived);
}

TEST(Cluster, RepeatedRunsAreIdentical) {
    auto cfg = slam_cfg();
    cfg.admission = AdmissionPolicy::kEdfEvict;
    cfg.max_batch = 4;
    std::vector<core::experiment::BuiltArch> fabrics;
    fabrics.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    fabrics.push_back(core::experiment::build_arch(Arch::kSiamMesh, 6, 6));
    const auto a =
        serve_cluster(std::span(fabrics), cfg, BalancePolicy::kModelAffinity);
    const auto b =
        serve_cluster(std::span(fabrics), cfg, BalancePolicy::kModelAffinity);
    expect_identical(a.serve, b.serve);
    EXPECT_EQ(a.fabric_arrivals, b.fabric_arrivals);
    EXPECT_EQ(a.fabric_completed, b.fabric_completed);
    EXPECT_EQ(a.affinity_hits, b.affinity_hits);
}

TEST(Cluster, RejectsDegenerateInputs) {
    auto cfg = quick_cfg();
    std::vector<core::experiment::BuiltArch> none;
    EXPECT_THROW((void)serve_cluster(std::span(none), cfg,
                                     BalancePolicy::kLeastLoaded),
                 std::invalid_argument);
    cfg.max_batch = 0;
    std::vector<core::experiment::BuiltArch> one;
    one.push_back(core::experiment::build_arch(Arch::kFloret, 6, 6));
    EXPECT_THROW((void)serve_cluster(std::span(one), cfg,
                                     BalancePolicy::kLeastLoaded),
                 std::invalid_argument);
}

TEST(Cluster, PolicyNamesAreStable) {
    EXPECT_STREQ(balance_policy_name(BalancePolicy::kLeastLoaded),
                 "least-loaded");
    EXPECT_STREQ(balance_policy_name(BalancePolicy::kModelAffinity),
                 "model-affinity");
    EXPECT_STREQ(admission_policy_name(AdmissionPolicy::kEdfEvict),
                 "EDF-evict");
}

// -------------------------------------------------------- engine replication

TEST(ServeSweep, BitIdenticalAcrossThreadCounts) {
    ServeSpec spec;
    spec.arch = Arch::kFloret;
    spec.width = 6;
    spec.height = 6;
    spec.config = quick_cfg();
    spec.replications = 4;
    spec.base_seed = 11;

    std::vector<std::vector<ServeStats>> runs;
    for (const std::int32_t threads : {1, 2, 8}) {
        core::SweepEngine engine(threads);
        runs.push_back(run_replications(engine, spec));
    }
    const auto& ref = runs.front();
    ASSERT_EQ(ref.size(), 4u);
    for (const auto& run : runs) {
        ASSERT_EQ(run.size(), ref.size());
        for (std::size_t r = 0; r < ref.size(); ++r)
            expect_identical(run[r], ref[r]);
    }
    // Replications use distinct seeds, so they are genuinely different runs.
    EXPECT_NE(ref[0].makespan_cycles, ref[1].makespan_cycles);
}

TEST(ServeSweep, ReplicationsMatchDirectCalls) {
    ServeSpec spec;
    spec.arch = Arch::kSiamMesh;
    spec.width = 6;
    spec.height = 6;
    spec.config = quick_cfg();
    spec.replications = 2;
    spec.base_seed = 3;
    core::SweepEngine engine(4);
    const auto runs = run_replications(engine, spec);
    ASSERT_EQ(runs.size(), 2u);
    for (std::size_t r = 0; r < runs.size(); ++r) {
        auto arch = core::experiment::build_arch(Arch::kSiamMesh, 6, 6);
        ServeConfig cfg = spec.config;
        cfg.seed = spec.base_seed + r;
        const auto direct = serve_requests(arch, cfg);
        expect_identical(direct, runs[r]);
    }
}

TEST(ServeSweep, AggregateWeighsReplications) {
    ServeStats a;
    a.arrived = 10;
    a.completed = 10;
    a.p95_latency_cycles = 100.0;
    a.throughput_per_mcycle = 50.0;
    a.sim_region_cycles_stepped = 40;
    a.sim_region_cycles_skipped = 60;
    a.sim_region_horizon_jumps = 4;
    ServeStats b;
    b.arrived = 10;
    b.completed = 8;
    b.rejected = 2;
    b.sla_violations = 2;
    b.p95_latency_cycles = 300.0;
    b.throughput_per_mcycle = 30.0;
    b.sim_region_cycles_stepped = 10;
    b.sim_region_cycles_skipped = 30;
    b.sim_region_horizon_jumps = 3;
    const std::vector<ServeStats> runs{a, b};
    const auto agg = aggregate(runs);
    EXPECT_EQ(agg.arrived, 20);
    EXPECT_EQ(agg.completed, 18);
    EXPECT_DOUBLE_EQ(agg.p95_latency_cycles, 200.0);
    EXPECT_DOUBLE_EQ(agg.mean_throughput_per_mcycle, 40.0);
    EXPECT_DOUBLE_EQ(agg.sla_violation_rate(), 0.1);
    EXPECT_EQ(agg.sim_region_cycles_stepped, 50);
    EXPECT_EQ(agg.sim_region_cycles_skipped, 90);
    EXPECT_EQ(agg.sim_region_horizon_jumps, 7);
}

}  // namespace
}  // namespace floretsim::serve
