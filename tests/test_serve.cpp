#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/serve/sweep.h"
#include "src/util/stats.h"

namespace floretsim::serve {
namespace {

using core::experiment::Arch;

/// Small, fast serving scenario: CIFAR-class models on a 6x6 fabric,
/// loaded hard enough to queue.
ServeConfig quick_cfg() {
    ServeConfig cfg = default_serve_config();
    cfg.eval.traffic_scale = 1.0 / 256.0;  // keep tests quick
    cfg.classes = {
        {"tight", {"DNN11", "DNN13"}, 0.5, 30'000.0},
        {"loose", {"DNN9", "DNN10"}, 0.5, 200'000.0},
    };
    cfg.arrivals.rate_per_mcycle = 600.0;
    cfg.arrivals.max_requests = 25;
    cfg.seed = 5;
    return cfg;
}

void expect_identical(const ServeStats& a, const ServeStats& b) {
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.sla_violations, b.sla_violations);
    EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
    EXPECT_EQ(a.throughput_per_mcycle, b.throughput_per_mcycle);
    EXPECT_EQ(a.mean_utilization, b.mean_utilization);
    EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
    EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
    EXPECT_EQ(a.mean_wait_cycles, b.mean_wait_cycles);
    EXPECT_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
    EXPECT_EQ(a.p50_latency_cycles, b.p50_latency_cycles);
    EXPECT_EQ(a.p95_latency_cycles, b.p95_latency_cycles);
    EXPECT_EQ(a.p99_latency_cycles, b.p99_latency_cycles);
    EXPECT_EQ(a.noi_rounds, b.noi_rounds);
    EXPECT_EQ(a.noi_cache_hits, b.noi_cache_hits);
    EXPECT_EQ(a.sim_cycles_stepped, b.sim_cycles_stepped);
    EXPECT_EQ(a.sim_cycles_skipped, b.sim_cycles_skipped);
    EXPECT_EQ(a.sim_horizon_jumps, b.sim_horizon_jumps);
    EXPECT_EQ(a.sim_region_cycles_stepped, b.sim_region_cycles_stepped);
    EXPECT_EQ(a.sim_region_cycles_skipped, b.sim_region_cycles_skipped);
    EXPECT_EQ(a.sim_region_horizon_jumps, b.sim_region_horizon_jumps);
    EXPECT_EQ(a.sim_region_stepped_max, b.sim_region_stepped_max);
    EXPECT_EQ(a.sim_region_stepped_min, b.sim_region_stepped_min);
    ASSERT_EQ(a.per_class.size(), b.per_class.size());
    for (std::size_t c = 0; c < a.per_class.size(); ++c) {
        EXPECT_EQ(a.per_class[c].arrived, b.per_class[c].arrived);
        EXPECT_EQ(a.per_class[c].completed, b.per_class[c].completed);
        EXPECT_EQ(a.per_class[c].violations, b.per_class[c].violations);
    }
}

// ------------------------------------------------------------------ arrivals

TEST(Arrivals, DeterministicAndSorted) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.max_requests = 50;
    const auto a = generate_requests(cfg, classes, 9);
    const auto b = generate_requests(cfg, classes, 9);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
        EXPECT_EQ(a[i].workload_id, b[i].workload_id);
        EXPECT_EQ(a[i].rounds, b[i].rounds);
        if (i) EXPECT_GE(a[i].arrival_cycle, a[i - 1].arrival_cycle);
        EXPECT_GT(a[i].deadline_cycle, a[i].arrival_cycle);
    }
    const auto c = generate_requests(cfg, classes, 10);
    EXPECT_NE(a.front().arrival_cycle, c.front().arrival_cycle);
}

TEST(Arrivals, MmppIsSortedAndBurstier) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.max_requests = 400;
    ArrivalConfig mmpp = cfg;
    mmpp.process = ArrivalProcess::kMmpp;
    const auto poisson = generate_requests(cfg, classes, 3);
    const auto bursty = generate_requests(mmpp, classes, 3);
    ASSERT_EQ(bursty.size(), 400u);
    EXPECT_TRUE(std::is_sorted(bursty.begin(), bursty.end(),
                               [](const Request& a, const Request& b) {
                                   return a.arrival_cycle < b.arrival_cycle;
                               }));
    // Squared-coefficient-of-variation of the gaps: MMPP > Poisson.
    const auto scv = [](const std::vector<Request>& rs) {
        util::RunningStats gaps;
        for (std::size_t i = 1; i < rs.size(); ++i)
            gaps.add(rs[i].arrival_cycle - rs[i - 1].arrival_cycle);
        return gaps.variance() / (gaps.mean() * gaps.mean());
    };
    EXPECT_GT(scv(bursty), scv(poisson));
}

TEST(Arrivals, TraceReplaysGivenCycles) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    cfg.process = ArrivalProcess::kTrace;
    cfg.trace_cycles = {10.0, 250.0, 250.0, 4000.0};
    cfg.max_requests = 3;  // caps the replay
    const auto reqs = generate_requests(cfg, classes, 1);
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_EQ(reqs[0].arrival_cycle, 10.0);
    EXPECT_EQ(reqs[1].arrival_cycle, 250.0);
    EXPECT_EQ(reqs[2].arrival_cycle, 250.0);
}

TEST(Arrivals, RejectsInvalidConfigs) {
    const auto classes = default_request_classes();
    ArrivalConfig cfg;
    EXPECT_THROW((void)generate_requests(cfg, {}, 1), std::invalid_argument);
    cfg.rate_per_mcycle = 0.0;
    EXPECT_THROW((void)generate_requests(cfg, classes, 1), std::invalid_argument);
    cfg.rate_per_mcycle = 10.0;
    cfg.trace_cycles = {5.0, 1.0};
    EXPECT_THROW((void)generate_requests(cfg, classes, 1), std::invalid_argument);
}

// ----------------------------------------------------------------- simulator

TEST(Serve, EveryRequestCompletesOrBounces) {
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, quick_cfg());
    EXPECT_TRUE(s.drained);
    EXPECT_EQ(s.arrived, 25);
    EXPECT_EQ(s.arrived, s.completed + s.rejected);
    EXPECT_EQ(s.admitted, s.completed);
    EXPECT_GT(s.mean_utilization, 0.0);
    EXPECT_LE(s.mean_utilization, 1.0);
    EXPECT_LE(s.p50_latency_cycles, s.p95_latency_cycles);
    EXPECT_LE(s.p95_latency_cycles, s.p99_latency_cycles);
    EXPECT_GT(s.makespan_cycles, 0.0);
    std::int64_t class_completed = 0;
    for (const auto& c : s.per_class) class_completed += c.completed;
    EXPECT_EQ(class_completed, s.completed);
}

TEST(Serve, RepeatedRunsWithSameSeedAreIdentical) {
    const auto cfg = quick_cfg();
    auto arch_a = core::experiment::build_arch(Arch::kFloret, 6, 6);
    auto arch_b = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto a = serve_requests(arch_a, cfg);
    const auto b = serve_requests(arch_b, cfg);
    expect_identical(a, b);
    // And a reused arch: serve_requests resets the mapper first.
    const auto c = serve_requests(arch_a, cfg);
    expect_identical(a, c);
}

TEST(Serve, ResidentSetCacheFiresOnRepeatedRounds) {
    auto cfg = quick_cfg();
    cfg.arrivals.min_rounds = 2;
    cfg.arrivals.max_rounds = 3;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    EXPECT_GT(s.noi_rounds, 0);
    EXPECT_GT(s.noi_cache_hits, 0);
    EXPECT_LT(s.noi_cache_hits, s.noi_rounds);
}

TEST(Serve, AdmissionBurstCostsOneNoiEvaluation) {
    // A 94-chiplet VGG19 holds the fabric while four 10-chiplet VGG11
    // requests queue behind it; its completion drains all four in a single
    // try_admit burst. The round schedule is deferred until the burst
    // completes, so the whole wave costs exactly one evaluate_noi and
    // every admit's round_done is computed against the final resident set
    // (the old code evaluated once per admission, each against a stale
    // intermediate set).
    ServeConfig cfg = default_serve_config();
    cfg.eval.traffic_scale = 1.0 / 256.0;
    cfg.classes = {
        {"big", {"DNN7"}, 0.35, 500'000.0},
        {"small", {"DNN11"}, 0.65, 500'000.0},
    };
    cfg.arrivals.process = ArrivalProcess::kTrace;
    cfg.arrivals.trace_cycles = {10.0, 20.0, 30.0, 40.0, 50.0};
    cfg.arrivals.max_requests = 5;
    cfg.arrivals.min_rounds = 1;
    cfg.arrivals.max_rounds = 1;
    cfg.seed = 2;  // chosen so the stream is DNN7 then 4x DNN11 (checked)
    const auto stream =
        generate_requests(cfg.arrivals, cfg.classes, cfg.seed);
    ASSERT_EQ(stream.size(), 5u);
    ASSERT_EQ(stream[0].workload_id, "DNN7");
    for (std::size_t i = 1; i < 5; ++i)
        ASSERT_EQ(stream[i].workload_id, "DNN11") << i;

    auto arch = core::experiment::build_arch(Arch::kFloret, 10, 10);
    const auto s = serve_requests(arch, cfg);
    ASSERT_TRUE(s.drained);
    ASSERT_EQ(s.admitted, 5);
    EXPECT_EQ(s.noi_rounds, 5);  // one round per request
    // Two wormhole simulations in total: one for the VGG19's solo round,
    // one for the burst of four VGG11s; the burst's other three rounds
    // reuse its residency epoch.
    EXPECT_EQ(s.noi_rounds - s.noi_cache_hits, 2);
}

TEST(Serve, RejectOnFullBoundsTheQueue) {
    auto cfg = quick_cfg();
    cfg.arrivals.rate_per_mcycle = 50'000.0;  // slam the queue
    cfg.arrivals.min_rounds = 2;
    cfg.admission = AdmissionPolicy::kRejectOnFull;
    cfg.max_queue = 2;
    auto arch = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto s = serve_requests(arch, cfg);
    EXPECT_GT(s.rejected, 0);
    EXPECT_LE(s.peak_queue_depth, 2);
    EXPECT_EQ(s.arrived, s.completed + s.rejected);
    // Same stream, unbounded FIFO: nothing bounces, the queue grows past
    // the bound, and every rejection above was an SLA violation.
    cfg.admission = AdmissionPolicy::kFifo;
    auto arch2 = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto f = serve_requests(arch2, cfg);
    EXPECT_EQ(f.rejected, 0);
    EXPECT_EQ(f.completed, f.arrived);
    EXPECT_GT(f.peak_queue_depth, 2);
    EXPECT_GE(s.sla_violations, s.rejected);
}

TEST(Serve, EarliestDeadlineFavorsTheTightClass) {
    // Under overload, serving tight-SLO requests first must not violate
    // *more* of them than arrival-order admission does on the same stream.
    auto cfg = quick_cfg();
    cfg.arrivals.rate_per_mcycle = 2000.0;
    cfg.arrivals.max_requests = 30;
    auto arch_fifo = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto fifo = serve_requests(arch_fifo, cfg);
    cfg.admission = AdmissionPolicy::kEarliestDeadline;
    auto arch_edf = core::experiment::build_arch(Arch::kFloret, 6, 6);
    const auto edf = serve_requests(arch_edf, cfg);
    EXPECT_EQ(fifo.arrived, edf.arrived);
    EXPECT_EQ(fifo.per_class[0].arrived, edf.per_class[0].arrived);
    EXPECT_LE(edf.per_class[0].violations, fifo.per_class[0].violations);
}

// -------------------------------------------------------- engine replication

TEST(ServeSweep, BitIdenticalAcrossThreadCounts) {
    ServeSpec spec;
    spec.arch = Arch::kFloret;
    spec.width = 6;
    spec.height = 6;
    spec.config = quick_cfg();
    spec.replications = 4;
    spec.base_seed = 11;

    std::vector<std::vector<ServeStats>> runs;
    for (const std::int32_t threads : {1, 2, 8}) {
        core::SweepEngine engine(threads);
        runs.push_back(run_replications(engine, spec));
    }
    const auto& ref = runs.front();
    ASSERT_EQ(ref.size(), 4u);
    for (const auto& run : runs) {
        ASSERT_EQ(run.size(), ref.size());
        for (std::size_t r = 0; r < ref.size(); ++r)
            expect_identical(run[r], ref[r]);
    }
    // Replications use distinct seeds, so they are genuinely different runs.
    EXPECT_NE(ref[0].makespan_cycles, ref[1].makespan_cycles);
}

TEST(ServeSweep, ReplicationsMatchDirectCalls) {
    ServeSpec spec;
    spec.arch = Arch::kSiamMesh;
    spec.width = 6;
    spec.height = 6;
    spec.config = quick_cfg();
    spec.replications = 2;
    spec.base_seed = 3;
    core::SweepEngine engine(4);
    const auto runs = run_replications(engine, spec);
    ASSERT_EQ(runs.size(), 2u);
    for (std::size_t r = 0; r < runs.size(); ++r) {
        auto arch = core::experiment::build_arch(Arch::kSiamMesh, 6, 6);
        ServeConfig cfg = spec.config;
        cfg.seed = spec.base_seed + r;
        const auto direct = serve_requests(arch, cfg);
        expect_identical(direct, runs[r]);
    }
}

TEST(ServeSweep, AggregateWeighsReplications) {
    ServeStats a;
    a.arrived = 10;
    a.completed = 10;
    a.p95_latency_cycles = 100.0;
    a.throughput_per_mcycle = 50.0;
    a.sim_region_cycles_stepped = 40;
    a.sim_region_cycles_skipped = 60;
    a.sim_region_horizon_jumps = 4;
    ServeStats b;
    b.arrived = 10;
    b.completed = 8;
    b.rejected = 2;
    b.sla_violations = 2;
    b.p95_latency_cycles = 300.0;
    b.throughput_per_mcycle = 30.0;
    b.sim_region_cycles_stepped = 10;
    b.sim_region_cycles_skipped = 30;
    b.sim_region_horizon_jumps = 3;
    const std::vector<ServeStats> runs{a, b};
    const auto agg = aggregate(runs);
    EXPECT_EQ(agg.arrived, 20);
    EXPECT_EQ(agg.completed, 18);
    EXPECT_DOUBLE_EQ(agg.p95_latency_cycles, 200.0);
    EXPECT_DOUBLE_EQ(agg.mean_throughput_per_mcycle, 40.0);
    EXPECT_DOUBLE_EQ(agg.sla_violation_rate(), 0.1);
    EXPECT_EQ(agg.sim_region_cycles_stepped, 50);
    EXPECT_EQ(agg.sim_region_cycles_skipped, 90);
    EXPECT_EQ(agg.sim_region_horizon_jumps, 7);
}

}  // namespace
}  // namespace floretsim::serve
