#include <gtest/gtest.h>

#include <set>

#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/topo/mesh.h"

namespace floretsim::core {
namespace {

struct Fixture {
    // The Fig. 6/7 configuration: ResNet34 on ImageNet over a 5x5x4 stack,
    // with the pipeline-period power model so the thermal objective is
    // meaningful.
    dnn::Network net = dnn::build_resnet(34, dnn::Dataset::kImageNet);
    pim::PartitionPlan plan = pim::partition_by_params(net, 36.5, 36.5 / 88.0);
    topo::Topology topo = topo::make_mesh3d(5, 5, 4);
    noc::RouteTable routes =
        noc::RouteTable::build(topo, noc::RoutingPolicy::kShortestPath);
    thermal::ThermalConfig tcfg{};
    thermal::PowerParams pcfg{};
    pim::ReramConfig rcfg{};
    pim::ThermalAccuracyModel acc{};
    PerfParams perf{};

    Fixture() { pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg); }
};

TEST(Sfc3d, OrderIsHamiltonianAndContiguous) {
    const auto order = sfc3d_order(5, 5, 4);
    ASSERT_EQ(order.size(), 100u);
    std::set<topo::NodeId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 100u);
    // Consecutive PEs differ by one grid step (incl. vertical).
    auto coords = [](topo::NodeId n) {
        return std::tuple{n % 5, (n / 5) % 5, n / 25};
    };
    for (std::size_t i = 1; i < order.size(); ++i) {
        const auto [x1, y1, z1] = coords(order[i - 1]);
        const auto [x2, y2, z2] = coords(order[i]);
        EXPECT_EQ(std::abs(x1 - x2) + std::abs(y1 - y2) + std::abs(z1 - z2), 1)
            << "gap at position " << i;
    }
}

TEST(Sfc3d, StartsAtBottomTier) {
    const auto order = sfc3d_order(5, 5, 4);
    EXPECT_LT(order.front(), 25);            // z = 0
    EXPECT_GE(order.back(), 75);             // z = 3
}

TEST(EvaluatePlacement, ProducesFiniteSaneMetrics) {
    Fixture f;
    const auto order = sfc3d_order(5, 5, 4);
    const auto ev = evaluate_placement(f.net, f.plan, order, f.routes, f.tcfg, f.pcfg,
                                       f.rcfg, f.acc, f.perf);
    EXPECT_GT(ev.comm_cycles, 0.0);
    EXPECT_GT(ev.compute_ns, 0.0);
    EXPECT_GT(ev.energy_pj, 0.0);
    EXPECT_GT(ev.edp, 0.0);
    EXPECT_GT(ev.peak_k, f.tcfg.t_ambient_k);
    EXPECT_GE(ev.accuracy_drop, 0.0);
    EXPECT_LT(ev.accuracy_drop, f.acc.degradation_at_zero_window);
}

TEST(EvaluatePlacement, ScatteredPlacementHasWorseCommCost) {
    Fixture f;
    const auto sfc = sfc3d_order(5, 5, 4);
    // Adversarial placement: random shuffle scatters consecutive layers
    // across the stack.
    auto scattered = sfc;
    util::Rng rng(17);
    std::shuffle(scattered.begin(), scattered.end(), rng);
    const auto ev_sfc = evaluate_placement(f.net, f.plan, sfc, f.routes, f.tcfg, f.pcfg,
                                           f.rcfg, f.acc, f.perf);
    const auto ev_scat = evaluate_placement(f.net, f.plan, scattered, f.routes, f.tcfg,
                                            f.pcfg, f.rcfg, f.acc, f.perf);
    EXPECT_LT(ev_sfc.comm_cycles, ev_scat.comm_cycles);
    EXPECT_LT(ev_sfc.edp, ev_scat.edp);
}

TEST(OptimizeJoint, ReducesPeakTemperature) {
    Fixture f;
    MooConfig cfg;
    cfg.iterations = 1500;
    cfg.seed = 3;
    const auto order = sfc3d_order(5, 5, 4);
    const auto base = evaluate_placement(f.net, f.plan, order, f.routes, f.tcfg, f.pcfg,
                                         f.rcfg, f.acc, f.perf);
    const auto res = optimize_joint(f.net, f.plan, f.routes, f.tcfg, f.pcfg, f.rcfg,
                                    f.acc, f.perf, cfg);
    EXPECT_GT(res.accepted_moves, 0);
    EXPECT_LT(res.eval.peak_k, base.peak_k);
}

TEST(OptimizeJoint, PerfOnlyBaselineKeepsBetterEdp) {
    // Fig. 6(a): the Floret (performance-only) mapping has ~9% better EDP;
    // the joint optimum trades EDP for temperature. With matched move
    // budgets the perf-only run must end at EDP no worse than the joint
    // run, while the joint run must end cooler.
    Fixture f;
    MooConfig cfg;
    cfg.iterations = 1500;
    cfg.seed = 3;
    const auto perf_only = optimize_perf_only(f.net, f.plan, f.routes, f.tcfg, f.pcfg,
                                              f.rcfg, f.acc, f.perf, cfg);
    const auto joint = optimize_joint(f.net, f.plan, f.routes, f.tcfg, f.pcfg, f.rcfg,
                                      f.acc, f.perf, cfg);
    EXPECT_LE(perf_only.eval.edp, joint.eval.edp * 1.02);
    EXPECT_GT(perf_only.eval.peak_k, joint.eval.peak_k);
}

TEST(OptimizeJoint, ResultIsValidPermutation) {
    Fixture f;
    MooConfig cfg;
    cfg.iterations = 200;
    const auto res = optimize_joint(f.net, f.plan, f.routes, f.tcfg, f.pcfg, f.rcfg,
                                    f.acc, f.perf, cfg);
    std::set<topo::NodeId> unique(res.pe_order.begin(), res.pe_order.end());
    EXPECT_EQ(unique.size(), 100u);
}

TEST(OptimizeJoint, DeterministicForSeed) {
    Fixture f;
    MooConfig cfg;
    cfg.iterations = 150;
    cfg.seed = 11;
    const auto a = optimize_joint(f.net, f.plan, f.routes, f.tcfg, f.pcfg, f.rcfg,
                                  f.acc, f.perf, cfg);
    const auto b = optimize_joint(f.net, f.plan, f.routes, f.tcfg, f.pcfg, f.rcfg,
                                  f.acc, f.perf, cfg);
    EXPECT_EQ(a.pe_order, b.pe_order);
    EXPECT_DOUBLE_EQ(a.eval.edp, b.eval.edp);
}

}  // namespace
}  // namespace floretsim::core
