#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "src/core/floret.h"
#include "src/core/scheduler.h"
#include "src/core/sfc.h"

namespace floretsim::core {
namespace {

/// Walk validity: every consecutive pair is a grid 4-neighbor.
bool is_hamiltonian_walk(const std::vector<topo::NodeId>& path, std::int32_t width) {
    std::set<topo::NodeId> seen(path.begin(), path.end());
    if (seen.size() != path.size()) return false;
    for (std::size_t i = 1; i < path.size(); ++i) {
        if (util::manhattan(util::from_index(path[i - 1], width),
                            util::from_index(path[i], width)) != 1)
            return false;
    }
    return true;
}

TEST(UCombPetals, EvenHeightRegionsPutEndpointsOnOneSide) {
    // 6x6 lambda=6 -> 3x2 regions (height 2): U-comb walks exist, and the
    // optimizer should exploit them: head and tail of each petal end up in
    // the same column band (the side facing the grid center).
    const auto set = generate_sfc_set(6, 6, 6);
    for (const auto& s : set.sfcs) {
        const auto h = set.pos(s.head());
        const auto t = set.pos(s.tail());
        EXPECT_LE(std::abs(h.x - t.x), 1) << "petal endpoints far apart in x";
        EXPECT_LE(util::manhattan(h, t), 2);
    }
}

TEST(UCombPetals, WalksAreHamiltonianForAllParities) {
    // Regions with even width, even height, and mixed parities.
    for (const auto& [w, h, l] :
         {std::tuple{8, 8, 4}, std::tuple{8, 6, 4}, std::tuple{6, 8, 4},
          std::tuple{9, 8, 4}, std::tuple{8, 9, 4}, std::tuple{10, 4, 4}}) {
        const auto set = generate_sfc_set(w, h, l);
        for (const auto& s : set.sfcs)
            EXPECT_TRUE(is_hamiltonian_walk(s.path, w))
                << w << "x" << h << " lambda " << l;
    }
}

TEST(PlacementOptimizer, MatchesBruteForceOnTinyGrid) {
    // 4x4 lambda=2: two 2x4 regions, few candidates each — check the
    // coordinate-descent result against exhaustive search over the same
    // candidate space by verifying it attains the minimum d.
    const auto opt = generate_sfc_set(4, 4, 2);
    // Exhaustive floor: two 4x2 regions with U-comb endpoints on one side.
    // One tail can sit adjacent to the other head (distance 1), but the
    // return pair then spans the stripe height (distance 3): d* = 2.
    EXPECT_LE(opt.tail_head_distance(), 2.0 + 1e-9);
}

TEST(PlacementOptimizer, DeterministicOutput) {
    const auto a = generate_sfc_set(10, 10, 10);
    const auto b = generate_sfc_set(10, 10, 10);
    ASSERT_EQ(a.sfcs.size(), b.sfcs.size());
    for (std::size_t i = 0; i < a.sfcs.size(); ++i)
        EXPECT_EQ(a.sfcs[i].path, b.sfcs[i].path);
}

TEST(ConcatenatedOrder, ConsecutiveJumpsAreShort) {
    // The spillover chain: each SFC boundary in the consumption order
    // should jump at most a few hops (tails link to nearby heads).
    const auto set = generate_sfc_set(10, 10, 10);
    const auto order = set.concatenated_order();
    std::int32_t worst_jump = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        const auto d = util::manhattan(set.pos(order[i - 1]), set.pos(order[i]));
        if (d > 1) worst_jump = std::max(worst_jump, d);
    }
    // The greedy chain's late jumps (few heads left) stay bounded well
    // below the grid diameter (18 on 10x10).
    EXPECT_LE(worst_jump, 6);
}

TEST(ConcatenatedOrder, VisitsEverySfcExactlyOnce) {
    const auto set = generate_sfc_set(12, 12, 9);
    const auto order = set.concatenated_order();
    // Identify which SFC each position belongs to; transitions must be
    // exactly lambda - 1.
    std::map<topo::NodeId, std::size_t> sfc_of;
    for (std::size_t s = 0; s < set.sfcs.size(); ++s)
        for (const auto n : set.sfcs[s].path) sfc_of[n] = s;
    std::int32_t transitions = 0;
    for (std::size_t i = 1; i < order.size(); ++i)
        if (sfc_of[order[i]] != sfc_of[order[i - 1]]) ++transitions;
    EXPECT_EQ(transitions, set.lambda() - 1);
}

TEST(FloretExpress, HeadTailRoutersStaySmall) {
    // With the per-tail express cap, even lambda=20 keeps every router at
    // a bounded port count (the paper's "small routers" claim).
    const auto set = generate_sfc_set(10, 10, 20);
    const auto t = make_floret(set);
    for (const auto& n : t.nodes()) EXPECT_LE(t.ports(n.id), 7);
}

TEST(FloretExpress, TighterCapMeansFewerLinks) {
    const auto set = generate_sfc_set(10, 10, 10);
    FloretOptions one;
    one.max_express_per_tail = 1;
    FloretOptions three;
    three.max_express_per_tail = 3;
    EXPECT_LT(make_floret(set, one).link_count(),
              make_floret(set, three).link_count());
}

TEST(Eq1Metric, InvariantUnderSfcRelabeling) {
    auto set = generate_sfc_set(8, 8, 4);
    const double d1 = set.tail_head_distance();
    std::swap(set.sfcs[0], set.sfcs[3]);
    EXPECT_DOUBLE_EQ(set.tail_head_distance(), d1);
}

TEST(Eq1Metric, StripeDecompositionForPrimeLambda) {
    // lambda = 7 on a 14x10 grid can only tile as 7x1 stripes.
    const auto set = generate_sfc_set(14, 10, 7);
    EXPECT_TRUE(set.covers_grid_exactly_once());
    EXPECT_TRUE(set.paths_are_contiguous());
    // Stripes are 2 columns wide.
    for (const auto& s : set.sfcs) EXPECT_EQ(s.path.size(), 20u);
}

TEST(Scheduler, ReleasedRunsAreReusedFrontFirst) {
    // After heavy churn the first-fit allocator should still be issuing
    // from the earliest free positions: utilization concentrates at the
    // head of the SFC order.
    const auto set = generate_sfc_set(10, 10, 10);
    SchedulerConfig cfg;
    cfg.slots = 1500;
    cfg.arrival_prob = 0.5;
    const auto sfc = simulate_dynamic(set, AllocationPolicy::kSfcFirstFit, cfg);
    EXPECT_GT(sfc.mean_utilization, 0.3);
    EXPECT_LT(sfc.mean_fragments_per_task, 6.0);
}

}  // namespace
}  // namespace floretsim::core
