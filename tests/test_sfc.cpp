#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/core/sfc.h"

namespace floretsim::core {
namespace {

TEST(SfcSet, Fig1LayoutSixPetalsOn6x6) {
    const SfcSet set = generate_sfc_set(6, 6, 6);
    ASSERT_EQ(set.lambda(), 6);
    EXPECT_TRUE(set.covers_grid_exactly_once());
    EXPECT_TRUE(set.paths_are_contiguous());
    // Each petal of the 36-chiplet system holds 6 chiplets (Fig. 1).
    for (const auto& s : set.sfcs) EXPECT_EQ(s.path.size(), 6u);
}

TEST(SfcSet, SingleSfcIsFullSerpentine) {
    const SfcSet set = generate_sfc_set(5, 4, 1);
    ASSERT_EQ(set.lambda(), 1);
    EXPECT_EQ(set.sfcs.front().path.size(), 20u);
    EXPECT_TRUE(set.paths_are_contiguous());
    EXPECT_DOUBLE_EQ(set.tail_head_distance(), 0.0);  // no other SFCs
}

TEST(SfcSet, InvalidLambdaThrows) {
    EXPECT_THROW(generate_sfc_set(4, 4, 0), std::invalid_argument);
    EXPECT_THROW(generate_sfc_set(4, 4, 17), std::invalid_argument);
    EXPECT_THROW(generate_sfc_set(0, 4, 2), std::invalid_argument);
    // 5 does not factor into a <= 4 columns x b <= 4 rows of regions.
    EXPECT_THROW(generate_sfc_set(4, 4, 5), std::invalid_argument);
}

TEST(SfcSet, OptimizedPlacementNoWorseThanNaive) {
    for (const auto& [w, h, l] : {std::tuple{6, 6, 6}, std::tuple{10, 10, 4},
                                  std::tuple{8, 8, 4}, std::tuple{12, 6, 6}}) {
        const SfcSet opt = generate_sfc_set(w, h, l, {.optimize_placement = true});
        const SfcSet naive = generate_sfc_set(w, h, l, {.optimize_placement = false});
        EXPECT_LE(opt.tail_head_distance(), naive.tail_head_distance() + 1e-9)
            << w << "x" << h << " lambda=" << l;
    }
}

TEST(SfcSet, ConcatenatedOrderIsAPermutation) {
    const SfcSet set = generate_sfc_set(10, 10, 4);
    const auto order = set.concatenated_order();
    ASSERT_EQ(order.size(), 100u);
    std::set<topo::NodeId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 100u);
    EXPECT_EQ(*unique.begin(), 0);
    EXPECT_EQ(*unique.rbegin(), 99);
}

TEST(SfcSet, ConcatenatedOrderStartsNearCenter) {
    const SfcSet set = generate_sfc_set(10, 10, 4);
    const auto order = set.concatenated_order();
    const auto start = set.pos(order.front());
    // The first consumed chiplet is a head pulled toward the grid center.
    EXPECT_GE(start.x, 2);
    EXPECT_LE(start.x, 7);
    EXPECT_GE(start.y, 2);
    EXPECT_LE(start.y, 7);
}

TEST(SfcSet, RenderMarksHeadsAndTails) {
    const SfcSet set = generate_sfc_set(6, 6, 6);
    const std::string art = set.render();
    std::size_t heads = 0;
    std::size_t tails = 0;
    for (std::size_t i = 0; i + 1 < art.size(); ++i) {
        if (art[i] == 'H') ++heads;
        if (art[i] == 'T') ++tails;
    }
    EXPECT_EQ(heads, 6u);
    EXPECT_EQ(tails, 6u);
}

TEST(SfcEq1, MatchesHandComputedLayout) {
    // Two vertical stripes on a 2x2 grid: SFC0 = column x=0 (path (0,0)->
    // (0,1)), SFC1 = column x=1. d = mean over (t0,h1) and (t1,h0).
    SfcSet set;
    set.width = 2;
    set.height = 2;
    set.sfcs.push_back(Sfc{{0, 2}});  // head (0,0), tail (0,1)
    set.sfcs.push_back(Sfc{{1, 3}});  // head (1,0), tail (1,1)
    // manhattan((0,1),(1,0)) = 2 and manhattan((1,1),(0,0)) = 2 -> d = 2.
    EXPECT_DOUBLE_EQ(set.tail_head_distance(), 2.0);
}

TEST(SfcEq1, HeadTailIdentity) {
    const SfcSet set = generate_sfc_set(6, 6, 6);
    for (const auto& s : set.sfcs) {
        EXPECT_EQ(s.head(), s.path.front());
        EXPECT_EQ(s.tail(), s.path.back());
    }
}

// Property sweep: every (grid, lambda) combination yields a partition of
// the grid into contiguous Hamiltonian petals.
class SfcProperty
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(SfcProperty, PartitionIsExactAndContiguous) {
    const auto [w, h, lambda] = GetParam();
    const SfcSet set = generate_sfc_set(w, h, lambda);
    EXPECT_EQ(set.lambda(), lambda);
    EXPECT_TRUE(set.covers_grid_exactly_once()) << w << "x" << h << " l" << lambda;
    EXPECT_TRUE(set.paths_are_contiguous()) << w << "x" << h << " l" << lambda;
    const auto order = set.concatenated_order();
    EXPECT_EQ(order.size(), static_cast<std::size_t>(w) * h);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SfcProperty,
    ::testing::Values(std::tuple{4, 4, 2}, std::tuple{4, 4, 4}, std::tuple{6, 6, 2},
                      std::tuple{6, 6, 3}, std::tuple{6, 6, 6}, std::tuple{6, 6, 9},
                      std::tuple{8, 8, 4}, std::tuple{10, 10, 1}, std::tuple{10, 10, 2},
                      std::tuple{10, 10, 4}, std::tuple{10, 10, 5}, std::tuple{10, 10, 10},
                      std::tuple{12, 12, 6}, std::tuple{12, 12, 9}, std::tuple{7, 5, 1},
                      std::tuple{9, 6, 6}, std::tuple{5, 9, 3}, std::tuple{16, 16, 8},
                      std::tuple{3, 3, 3}, std::tuple{2, 2, 2}));

TEST(SfcEq1, MoreSfcsChangeDistanceSensibly) {
    // With everything optimized, a 10x10 grid split into more petals keeps
    // d bounded by the grid diameter.
    for (const std::int32_t lambda : {2, 4, 5, 10}) {
        const SfcSet set = generate_sfc_set(10, 10, lambda);
        EXPECT_GT(set.tail_head_distance(), 0.0);
        EXPECT_LE(set.tail_head_distance(), 18.0);
    }
}

}  // namespace
}  // namespace floretsim::core
