#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace floretsim::util {
namespace {

TEST(Json, ScalarRoundTrip) {
    EXPECT_EQ(json_parse("null"), Json());
    EXPECT_EQ(json_parse("true"), Json(true));
    EXPECT_EQ(json_parse("false"), Json(false));
    EXPECT_EQ(json_parse("42").as_int(), 42);
    EXPECT_EQ(json_parse("-7").as_int(), -7);
    EXPECT_DOUBLE_EQ(json_parse("0.5").as_double(), 0.5);
    EXPECT_DOUBLE_EQ(json_parse("1e3").as_double(), 1000.0);
    EXPECT_EQ(json_parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, SixtyFourBitIntegersSurviveExactly) {
    // Seeds and cycle caps are 64-bit; doubles would corrupt them.
    const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
    const Json j(big);
    EXPECT_EQ(json_parse(json_serialize(j)).as_uint(), big);
    const std::int64_t negative = std::numeric_limits<std::int64_t>::min();
    EXPECT_EQ(json_parse(json_serialize(Json(negative))).as_int(), negative);
}

TEST(Json, DoublesRoundTripBitExactly) {
    for (const double v : {1.0 / 3.0, 0.1, 6.02214076e23, 5e-324,
                           1.0 / 256.0}) {
        const Json parsed = json_parse(json_serialize(Json(v)));
        EXPECT_DOUBLE_EQ(parsed.as_double(), v);
    }
}

TEST(Json, NonFiniteSerializesAsNull) {
    EXPECT_EQ(json_serialize(Json(std::nan(""))), "null\n");
    EXPECT_EQ(json_serialize(Json(std::numeric_limits<double>::infinity())),
              "null\n");
}

TEST(Json, NestedStructuresRoundTrip) {
    Json obj = Json::object();
    obj.set("name", "fig3");
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    arr.push_back(Json());
    obj.set("items", std::move(arr));
    Json inner = Json::object();
    inner.set("deep", true);
    obj.set("nested", std::move(inner));
    EXPECT_EQ(json_parse(json_serialize(obj)), obj);
}

TEST(Json, NumericEqualityIsCrossKind) {
    EXPECT_EQ(json_parse("1"), Json(1.0));  // int vs double, same value
    EXPECT_NE(json_parse("1"), json_parse("2"));
    EXPECT_NE(json_parse("1"), Json("1"));  // number vs string
}

TEST(Json, RejectsMalformedDocuments) {
    EXPECT_THROW((void)json_parse(""), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("[1,]"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{\"a\": 1,}"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("nul"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("01x"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("\"unterminated"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{} trailing"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{\"a\":1 \"b\":2}"), std::invalid_argument);
}

TEST(Json, RejectsLeadingZeros) {
    // RFC 8259 strictness: python3 -m json.tool (the smoke validator)
    // rejects these, so the parser must too.
    EXPECT_THROW((void)json_parse("0123"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("-0123"), std::invalid_argument);
    EXPECT_NO_THROW((void)json_parse("0"));
    EXPECT_NO_THROW((void)json_parse("-0"));
    EXPECT_NO_THROW((void)json_parse("0.5"));
}

TEST(Json, RejectsDuplicateKeys) {
    EXPECT_THROW((void)json_parse("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
    try {
        (void)json_parse("{\n  \"a\": nope\n}");
        FAIL() << "expected a parse error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
    }
}

TEST(Json, UnicodeEscapes) {
    EXPECT_EQ(json_parse("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(json_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
    // Surrogate pair: U+1F600.
    EXPECT_EQ(json_parse("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
    EXPECT_THROW((void)json_parse("\"\\ud83d\""), std::invalid_argument);
}

TEST(Json, CheckedAccessorsRejectWrongKinds) {
    EXPECT_THROW((void)json_parse("\"s\"").as_int(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("1.5").as_int(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("-1").as_uint(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("[]").as_object(), std::invalid_argument);
    EXPECT_NO_THROW((void)json_parse("8.0").as_int());  // integral double: ok
}

TEST(Json, ObjectFindAndOrder) {
    const Json obj = json_parse("{\"b\": 1, \"a\": 2}");
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_EQ(obj.find("a")->as_int(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
    // Insertion order is preserved (reports rely on it for readability).
    EXPECT_EQ(obj.as_object().front().first, "b");
}

}  // namespace
}  // namespace floretsim::util
