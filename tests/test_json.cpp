#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "src/scenario/shard.h"
#include "src/scenario/spec_json.h"

namespace floretsim::util {
namespace {

TEST(Json, ScalarRoundTrip) {
    EXPECT_EQ(json_parse("null"), Json());
    EXPECT_EQ(json_parse("true"), Json(true));
    EXPECT_EQ(json_parse("false"), Json(false));
    EXPECT_EQ(json_parse("42").as_int(), 42);
    EXPECT_EQ(json_parse("-7").as_int(), -7);
    EXPECT_DOUBLE_EQ(json_parse("0.5").as_double(), 0.5);
    EXPECT_DOUBLE_EQ(json_parse("1e3").as_double(), 1000.0);
    EXPECT_EQ(json_parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, SixtyFourBitIntegersSurviveExactly) {
    // Seeds and cycle caps are 64-bit; doubles would corrupt them.
    const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
    const Json j(big);
    EXPECT_EQ(json_parse(json_serialize(j)).as_uint(), big);
    const std::int64_t negative = std::numeric_limits<std::int64_t>::min();
    EXPECT_EQ(json_parse(json_serialize(Json(negative))).as_int(), negative);
}

TEST(Json, DoublesRoundTripBitExactly) {
    for (const double v : {1.0 / 3.0, 0.1, 6.02214076e23, 5e-324,
                           1.0 / 256.0}) {
        const Json parsed = json_parse(json_serialize(Json(v)));
        EXPECT_DOUBLE_EQ(parsed.as_double(), v);
    }
}

TEST(Json, NonFiniteSerializesAsNull) {
    EXPECT_EQ(json_serialize(Json(std::nan(""))), "null\n");
    EXPECT_EQ(json_serialize(Json(std::numeric_limits<double>::infinity())),
              "null\n");
}

TEST(Json, NestedStructuresRoundTrip) {
    Json obj = Json::object();
    obj.set("name", "fig3");
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    arr.push_back(Json());
    obj.set("items", std::move(arr));
    Json inner = Json::object();
    inner.set("deep", true);
    obj.set("nested", std::move(inner));
    EXPECT_EQ(json_parse(json_serialize(obj)), obj);
}

TEST(Json, NumericEqualityIsCrossKind) {
    EXPECT_EQ(json_parse("1"), Json(1.0));  // int vs double, same value
    EXPECT_NE(json_parse("1"), json_parse("2"));
    EXPECT_NE(json_parse("1"), Json("1"));  // number vs string
}

TEST(Json, RejectsMalformedDocuments) {
    EXPECT_THROW((void)json_parse(""), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("[1,]"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{\"a\": 1,}"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("nul"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("01x"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("\"unterminated"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{} trailing"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("{\"a\":1 \"b\":2}"), std::invalid_argument);
}

TEST(Json, RejectsLeadingZeros) {
    // RFC 8259 strictness: python3 -m json.tool (the smoke validator)
    // rejects these, so the parser must too.
    EXPECT_THROW((void)json_parse("0123"), std::invalid_argument);
    EXPECT_THROW((void)json_parse("-0123"), std::invalid_argument);
    EXPECT_NO_THROW((void)json_parse("0"));
    EXPECT_NO_THROW((void)json_parse("-0"));
    EXPECT_NO_THROW((void)json_parse("0.5"));
}

TEST(Json, RejectsDuplicateKeys) {
    EXPECT_THROW((void)json_parse("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
    try {
        (void)json_parse("{\n  \"a\": nope\n}");
        FAIL() << "expected a parse error";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
    }
}

TEST(Json, UnicodeEscapes) {
    EXPECT_EQ(json_parse("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(json_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
    // Surrogate pair: U+1F600.
    EXPECT_EQ(json_parse("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
    EXPECT_THROW((void)json_parse("\"\\ud83d\""), std::invalid_argument);
}

TEST(Json, CheckedAccessorsRejectWrongKinds) {
    EXPECT_THROW((void)json_parse("\"s\"").as_int(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("1.5").as_int(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("-1").as_uint(), std::invalid_argument);
    EXPECT_THROW((void)json_parse("[]").as_object(), std::invalid_argument);
    EXPECT_NO_THROW((void)json_parse("8.0").as_int());  // integral double: ok
}

TEST(Json, ObjectFindAndOrder) {
    const Json obj = json_parse("{\"b\": 1, \"a\": 2}");
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_EQ(obj.find("a")->as_int(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
    // Insertion order is preserved (reports rely on it for readability).
    EXPECT_EQ(obj.as_object().front().first, "b");
}

TEST(Json, CompactSerializationParsesBackEqual) {
    const Json doc = json_parse(
        R"({"a": [1, 2.5, "x\n", null, true], "b": {"c": -7}, "d": []})");
    const std::string compact = json_serialize_compact(doc);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    EXPECT_EQ(compact.find(' '), std::string::npos);
    EXPECT_EQ(json_parse(compact), doc);
    // Numbers format identically in both forms.
    EXPECT_EQ(json_serialize_compact(Json(1.0 / 3.0)) + "\n",
              json_serialize(Json(1.0 / 3.0)));
}

// ---- Adversarial corpus -----------------------------------------------------
//
// The sharded-sweep wire formats (SweepPoint request lists, SweepRow
// return streams) consume bytes from other processes; every malformed
// shape must surface as a clean std::invalid_argument — no crash, no
// partially-populated value (the from_json functions return by value and
// throw before anything escapes). Table-driven so new attack shapes are
// one line each.

enum class Target { kParse, kPoint, kPointList, kRow, kRowList };

struct AdversarialCase {
    const char* label;
    Target target;
    const char* text;
};

void feed(Target target, const std::string& text) {
    switch (target) {
        case Target::kParse: (void)json_parse(text); break;
        case Target::kPoint:
            (void)scenario::sweep_point_from_json(json_parse(text));
            break;
        case Target::kPointList:
            (void)scenario::sweep_points_from_json(json_parse(text));
            break;
        case Target::kRow:
            (void)scenario::sweep_row_from_json(json_parse(text));
            break;
        case Target::kRowList:
            (void)scenario::sweep_rows_from_json(json_parse(text));
            break;
    }
}

TEST(JsonAdversarial, MalformedWireInputsAllThrowCleanly) {
    const AdversarialCase corpus[] = {
        // Truncated input (every prefix should die in the parser).
        {"truncated object", Target::kParse, "{\"arch\": \"flo"},
        {"truncated array", Target::kParse, "[{\"grid\": \"6x6\"},"},
        {"truncated escape", Target::kParse, "\"\\u00"},
        {"truncated point", Target::kPoint, "{\"arch\""},
        // Duplicate keys (strict parser rejects before from_json runs).
        {"duplicate key", Target::kParse, "{\"a\": 1, \"a\": 2}"},
        {"duplicate point key", Target::kPoint,
         "{\"run_seed\": 1, \"run_seed\": 2}"},
        // Overflow / out-of-range integers.
        {"int32 overflow", Target::kPoint, "{\"greedy_max_gap\": 99999999999}"},
        {"negative uint", Target::kPoint, "{\"swap_seed\": -1}"},
        {"uint64 overflow", Target::kPoint,
         "{\"swap_seed\": 99999999999999999999999999}"},
        {"grid side overflow", Target::kPoint, "{\"grid\": [99999999999, 4]}"},
        // Wrong-typed fields.
        {"bool grid", Target::kPoint, "{\"grid\": true}"},
        {"string seed", Target::kPoint, "{\"run_seed\": \"one\"}"},
        {"fractional seed", Target::kPoint, "{\"run_seed\": 1.5}"},
        {"object where list", Target::kPointList, "{\"points\": []}"},
        {"number where point", Target::kPointList, "[42]"},
        {"string hops", Target::kRow, "{\"result\": {\"flit_hops\": \"many\"}}"},
        {"int completed", Target::kRow, "{\"result\": {\"all_completed\": 3}}"},
        {"array where row", Target::kRowList, "[[]]"},
        // Unknown keys (a typoed knob must never silently run defaults).
        {"unknown point key", Target::kPoint, "{\"run_sed\": 1}"},
        {"unknown result key", Target::kRow, "{\"result\": {\"cycles\": 1}}"},
        {"unknown row key", Target::kRow, "{\"second\": 0.5}"},
        // Domain validation.
        {"unknown arch", Target::kPoint, "{\"arch\": \"torus\"}"},
        {"unknown mix", Target::kPoint, "{\"mix\": \"WL99\"}"},
        {"zero grid", Target::kPoint, "{\"grid\": \"0x4\"}"},
    };
    for (const auto& c : corpus) {
        EXPECT_THROW(feed(c.target, c.text), std::invalid_argument) << c.label;
    }
    // No partial state: after the whole corpus, a good document still
    // parses to exactly the expected value.
    EXPECT_EQ(scenario::sweep_point_from_json(json_parse("{}")),
              floretsim::core::SweepPoint{});
}

TEST(JsonAdversarial, MalformedHeartbeatEnvelopesAllThrowCleanly) {
    // The worker stream now interleaves {"hb": {...}} envelopes with the
    // row lines; stream_line_from is the coordinator-side boundary and
    // must reject every malformed shape as cleanly as the row parsers do.
    const char* corpus[] = {
        // Truncated / not an object.
        "{\"hb\": {\"shard\": 0",
        "{\"hb\": 3}",
        "{\"hb\": [1, 2]}",
        "[{\"hb\": {}}]",
        // Missing and unknown fields.
        "{\"hb\": {}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":0,\"total\":1}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":0,\"total\":1,"
        "\"seconds\":0,\"extra\":1}}",
        // Heartbeat must be the only top-level key.
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":0,\"total\":1,"
        "\"seconds\":0}, \"index\": 0}",
        // Wrong-typed fields.
        "{\"hb\": {\"shard\":\"zero\",\"n_shards\":1,\"done\":0,\"total\":1,"
        "\"seconds\":0}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":-1,\"total\":1,"
        "\"seconds\":0}}",
        // Domain validation: shard range, done <= total, finite seconds.
        "{\"hb\": {\"shard\":4,\"n_shards\":4,\"done\":0,\"total\":1,"
        "\"seconds\":0}}",
        "{\"hb\": {\"shard\":-1,\"n_shards\":4,\"done\":0,\"total\":1,"
        "\"seconds\":0}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":0,\"done\":0,\"total\":1,"
        "\"seconds\":0}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":5,\"total\":1,"
        "\"seconds\":0}}",
        "{\"hb\": {\"shard\":0,\"n_shards\":1,\"done\":0,\"total\":1,"
        "\"seconds\":-0.5}}",
    };
    for (const char* text : corpus) {
        EXPECT_THROW((void)scenario::stream_line_from(text),
                     std::invalid_argument)
            << text;
    }
    // After the whole corpus, a good heartbeat still parses.
    const auto good = scenario::stream_line_from(
        "{\"hb\": {\"shard\":1,\"n_shards\":2,\"done\":3,\"total\":4,"
        "\"seconds\":0.25}}");
    ASSERT_TRUE(good.hb.has_value());
    EXPECT_EQ(good.hb->done, 4u - 1u);
}

TEST(JsonAdversarial, EmptyPointListIsRejectedAtTheWorkerBoundary) {
    // "[]" is valid JSON and a valid (empty) list for the pure API...
    EXPECT_TRUE(scenario::sweep_points_from_json(json_parse("[]")).empty());
    EXPECT_TRUE(scenario::sweep_rows_from_json(json_parse("[]")).empty());
    // ...but a worker handed an empty work order must fail loudly:
    // scenario::points_from_text is the boundary every worker goes
    // through.
    EXPECT_THROW((void)scenario::points_from_text("[]", "pts.json"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace floretsim::util
