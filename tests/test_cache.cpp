/// Unit pins for the result-cache layer: the spec/point hash identity
/// (stable canonical serialization, invariant under user-side JSON key
/// order and whitespace, sensitive to every semantic field) and the
/// on-disk ResultCache (store/lookup round trips, atomic counters, and
/// the adversarial corrupt-entry corpus — a damaged cache must fall back
/// to recompute, never crash or serve bad rows). The end-to-end
/// cold/warm/sharded-warm differential is the cache_parity ctest
/// (scripts/cache_parity.sh).

#include "src/scenario/cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sweep.h"
#include "src/scenario/registry.h"
#include "src/util/json.h"
#include "src/workload/tables.h"

namespace floretsim::scenario {
namespace {

namespace experiment = core::experiment;
using experiment::Arch;

core::SweepSpec tiny_spec() {
    core::SweepSpec spec;
    spec.archs = {Arch::kSiamMesh, Arch::kFloret};
    spec.grids = {{6, 6}};
    spec.mixes = {workload::table2().front()};
    auto cfg = experiment::default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;  // keep tests quick
    spec.evals = {cfg};
    spec.greedy_max_gap = 2;
    return spec;
}

/// Self-deleting scratch directory for cache tests.
struct TempDir {
    std::string path;
    TempDir() {
        std::string templ =
            (std::filesystem::temp_directory_path() / "floretsim-cachetest-XXXXXX")
                .string();
        if (!mkdtemp(templ.data())) throw std::runtime_error("mkdtemp failed");
        path = templ;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
};

void write_file(const std::string& path, const std::string& text) {
    std::ofstream f(path, std::ios::binary);
    f << text;
    ASSERT_TRUE(f.good()) << path;
}

// ----------------------------------------------------------- hash identity

/// Recursively reverses every object's member order — a different but
/// semantically identical user-side representation of the same document.
util::Json reorder_keys(const util::Json& j) {
    if (j.kind() == util::Json::Kind::kObject) {
        auto members = j.as_object();
        std::reverse(members.begin(), members.end());
        auto out = util::Json::object();
        for (auto& [k, v] : members) out.set(k, reorder_keys(v));
        return out;
    }
    if (j.kind() == util::Json::Kind::kArray) {
        auto out = util::Json::array();
        for (const auto& v : j.as_array()) out.push_back(reorder_keys(v));
        return out;
    }
    return j;
}

TEST(SpecHash, InvariantUnderJsonKeyOrderAndWhitespace) {
    for (const auto& scenario : Registry::builtin().scenarios()) {
        const std::string kind = spec_kind_name(scenario.spec);
        const auto canonical = to_json(scenario.spec);

        // Key order: reverse every object, round-trip through text.
        const auto reordered = util::json_parse(
            util::json_serialize_compact(reorder_keys(canonical)));
        const auto from_reordered = spec_from_json(reordered, kind);
        EXPECT_EQ(spec_hash(from_reordered), spec_hash(scenario.spec))
            << scenario.name << ": hash depends on user-side key order";

        // Whitespace: the pretty and compact serializations parse equal.
        const auto pretty = spec_from_json(
            util::json_parse(util::json_serialize(canonical)), kind);
        EXPECT_EQ(spec_hash(pretty), spec_hash(scenario.spec))
            << scenario.name << ": hash depends on whitespace";
    }
}

TEST(SpecHash, RoundTripsThroughJson) {
    for (const auto& scenario : Registry::builtin().scenarios()) {
        const auto back = spec_from_json(to_json(scenario.spec),
                                         spec_kind_name(scenario.spec));
        EXPECT_EQ(spec_hash(back), spec_hash(scenario.spec)) << scenario.name;
    }
}

TEST(SpecHash, ChangesOnEverySemanticField) {
    const auto base = SpecVariant{tiny_spec()};
    const auto h0 = spec_hash(base);

    auto archs = tiny_spec();
    archs.archs = {Arch::kFloret};
    auto grids = tiny_spec();
    grids.grids = {{8, 8}};
    auto traffic = tiny_spec();
    traffic.evals.front().traffic_scale *= 2.0;
    auto swap = tiny_spec();
    swap.swap_seed += 1;
    auto gap = tiny_spec();
    gap.greedy_max_gap += 1;
    for (const auto& changed :
         {SpecVariant{archs}, SpecVariant{grids}, SpecVariant{traffic},
          SpecVariant{swap}, SpecVariant{gap}})
        EXPECT_NE(spec_hash(changed), h0);
}

TEST(SpecHash, DistinguishesRegisteredScenarios) {
    // fig3/fig5/table2 deliberately share one sweep spec (and so one
    // hash); every other registered spec must hash distinctly.
    const auto& reg = Registry::builtin();
    const auto shared = spec_hash(reg.at("fig3").spec);
    EXPECT_EQ(spec_hash(reg.at("fig5").spec), shared);
    EXPECT_EQ(spec_hash(reg.at("table2").spec), shared);

    std::vector<std::uint64_t> rest;
    for (const auto& s : reg.scenarios())
        if (s.name != "fig5" && s.name != "table2")
            rest.push_back(spec_hash(s.spec));
    std::sort(rest.begin(), rest.end());
    EXPECT_EQ(std::adjacent_find(rest.begin(), rest.end()), rest.end())
        << "two registered scenarios with different specs hash equal";
}

TEST(PointHash, StableForEqualPointsSensitiveToEveryField) {
    const auto points = tiny_spec().expand();
    ASSERT_GE(points.size(), 2u);
    EXPECT_EQ(point_hash(points[0]), point_hash(points[0]));
    EXPECT_NE(point_hash(points[0]), point_hash(points[1]));

    auto p = points[0];
    p.swap_seed += 1;
    EXPECT_NE(point_hash(p), point_hash(points[0]));
    p = points[0];
    p.width += 1;
    EXPECT_NE(point_hash(p), point_hash(points[0]));
    p = points[0];
    p.eval.traffic_scale *= 2.0;
    EXPECT_NE(point_hash(p), point_hash(points[0]));
}

// --------------------------------------------------------- on-disk cache

TEST(ResultCache, StoreLookupRoundTripsWithCounters) {
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    const auto points = tiny_spec().expand();

    EXPECT_FALSE(cache.probe(points[0]));
    EXPECT_EQ(cache.misses(), 1);

    core::SweepEngine engine(1);
    const auto rows = engine.run(points);
    cache.store(points[0], rows.rows[0]);
    EXPECT_EQ(cache.stores(), 1);
    EXPECT_TRUE(cache.probe(points[0]));
    EXPECT_TRUE(cache.contains_hash(point_hash(points[0])));
    EXPECT_FALSE(cache.contains_hash(point_hash(points[1])));

    const auto back = cache.lookup(points[0]);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->point, rows.rows[0].point);
    EXPECT_EQ(back->result, rows.rows[0].result);
    EXPECT_GE(cache.hits(), 1);
    EXPECT_EQ(cache.evictions(), 0);

    // A second cache on the same directory sees the entry (persistence).
    ResultCache reopened(cache.dir());
    EXPECT_TRUE(reopened.lookup(points[0]).has_value());
}

TEST(ResultCache, ThrowsOnUnwritableDirectory) {
    EXPECT_THROW(ResultCache("/dev/null/cannot-be-a-directory"),
                 std::runtime_error);
}

TEST(ResultCache, CorruptEntriesEvictToRecomputeNeverServe) {
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    const auto points = tiny_spec().expand();
    core::SweepEngine engine(1);
    const auto rows = engine.run(points);

    const std::string valid =
        util::json_serialize(to_json(rows.rows[0]));  // a well-formed entry
    const std::vector<std::string> corpus = {
        "",                                  // empty file
        "{",                                 // truncated JSON
        "[1, 2, 3]",                         // wrong shape: array
        "{}",                                // wrong shape: empty object
        "{\"point\": {}}",                   // missing row fields
        "not json at all \x01\x02\xff",      // binary garbage
        valid.substr(0, valid.size() / 2),   // truncated mid-document
        std::string(4096, '\0'),             // NUL padding (torn write)
    };

    const auto path = cache.entry_path(point_hash(points[0]));
    std::int64_t evictions = 0;
    for (const auto& text : corpus) {
        write_file(path, text);
        const auto got = cache.lookup(points[0]);
        EXPECT_FALSE(got.has_value()) << "served a corrupt entry: " << text;
        EXPECT_FALSE(std::filesystem::exists(path))
            << "corrupt entry not evicted: " << text;
        EXPECT_EQ(cache.evictions(), ++evictions);
        // The cache stays usable: recompute-and-store round-trips.
        cache.store(points[0], rows.rows[0]);
        EXPECT_TRUE(cache.lookup(points[0]).has_value());
        std::filesystem::remove(path);
    }
}

TEST(ResultCache, MismatchedPointEntryEvictsAsCollisionGuard) {
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    const auto points = tiny_spec().expand();
    core::SweepEngine engine(1);
    const auto rows = engine.run(points);

    // A well-formed entry for point 1 planted under point 0's hash: the
    // stored-point validation must reject it rather than return a row
    // computed for a different point.
    write_file(cache.entry_path(point_hash(points[0])),
               util::json_serialize(to_json(rows.rows[1])));
    EXPECT_FALSE(cache.lookup(points[0]).has_value());
    EXPECT_EQ(cache.evictions(), 1);
}

// ------------------------------------------------------- the engine seam

TEST(ResultCache, WarmEngineRunDispatchesNothing) {
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    const auto spec = tiny_spec();

    core::SweepEngine cold(1);
    cold.set_result_cache(&cache);
    const auto expect = cold.run(spec);
    EXPECT_EQ(cache.stores(),
              static_cast<std::int64_t>(expect.rows.size()));

    // A fully warm cache must satisfy the run before dispatch: the point
    // executor (the seam the shard coordinator sits behind) never fires.
    core::SweepEngine warm(1);
    warm.set_result_cache(&cache);
    warm.set_point_executor(
        [](const std::vector<core::SweepPoint>&)
            -> std::vector<core::SweepRow> {
            throw std::logic_error("executor invoked on a fully warm cache");
        });
    const auto got = warm.run(spec);
    ASSERT_EQ(got.rows.size(), expect.rows.size());
    for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].point, expect.rows[i].point);
        EXPECT_EQ(got.rows[i].result, expect.rows[i].result);
    }
    EXPECT_EQ(warm.cache().misses(), 0) << "warm run built fabrics";
}

TEST(ResultCache, PartialWarmDispatchesOnlyTheMisses) {
    TempDir tmp;
    ResultCache cache(tmp.path + "/cache");
    const auto points = tiny_spec().expand();
    ASSERT_EQ(points.size(), 2u);

    core::SweepEngine ref(1);
    const auto expect = ref.run(points);
    cache.store(points[0], expect.rows[0]);

    core::SweepEngine engine(1);
    engine.set_result_cache(&cache);
    std::vector<core::SweepPoint> dispatched;
    engine.set_point_executor(
        [&](const std::vector<core::SweepPoint>& missed) {
            dispatched = missed;
            core::SweepEngine inner(1);
            return inner.run(missed).rows;
        });
    const auto got = engine.run(points);
    ASSERT_EQ(dispatched.size(), 1u) << "cached point was dispatched";
    EXPECT_EQ(dispatched[0], points[1]);
    ASSERT_EQ(got.rows.size(), 2u);
    for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].point, expect.rows[i].point);
        EXPECT_EQ(got.rows[i].result, expect.rows[i].result);
    }
    // The computed miss was stored back: a rerun is now fully warm.
    EXPECT_TRUE(cache.probe(points[1]));
}

}  // namespace
}  // namespace floretsim::scenario
