#include <gtest/gtest.h>

#include <numeric>

#include "src/dnn/model_zoo.h"
#include "src/pim/partitioner.h"
#include "src/thermal/grid_solver.h"
#include "src/thermal/power.h"

namespace floretsim::thermal {
namespace {

ThermalConfig small_cfg() {
    ThermalConfig cfg;
    cfg.width = 5;
    cfg.height = 5;
    cfg.depth = 4;
    return cfg;
}

TEST(ThermalSolver, ConvergesOnUniformPower) {
    const auto cfg = small_cfg();
    const std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.8);
    const auto res = solve_steady_state(cfg, power);
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.iterations, 0);
}

TEST(ThermalSolver, ZeroPowerIsAmbient) {
    const auto cfg = small_cfg();
    const std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.0);
    const auto res = solve_steady_state(cfg, power);
    ASSERT_TRUE(res.converged);
    for (const double t : res.temp_k) EXPECT_NEAR(t, cfg.t_ambient_k, 1e-6);
}

TEST(ThermalSolver, EnergyBalanceAtSink) {
    // In steady state all generated heat leaves through the sink:
    // sum_topcells G_sink * (T - T_amb) == total power.
    const auto cfg = small_cfg();
    std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.0);
    power[0] = 2.0;
    power[37] = 1.5;
    power[99] = 0.5;
    const auto res = solve_steady_state(cfg, power);
    ASSERT_TRUE(res.converged);
    double sink_flux = 0.0;
    for (std::int32_t y = 0; y < cfg.height; ++y)
        for (std::int32_t x = 0; x < cfg.width; ++x)
            sink_flux += cfg.g_sink_w_per_k *
                         (res.temp_k[static_cast<std::size_t>(
                              cfg.index(x, y, cfg.depth - 1))] -
                          cfg.t_ambient_k);
    EXPECT_NEAR(sink_flux, 4.0, 1e-4);
}

TEST(ThermalSolver, BottomTierHotterThanTop) {
    // The bottom tier (z=0) is farthest from the sink — the paper's Fig. 7
    // shows its hotspots.
    const auto cfg = small_cfg();
    const std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.8);
    const auto res = solve_steady_state(cfg, power);
    EXPECT_GT(res.tier_peak_k(0), res.tier_peak_k(cfg.depth - 1) + 2.0);
}

TEST(ThermalSolver, MonotoneInPower) {
    const auto cfg = small_cfg();
    std::vector<double> lo(static_cast<std::size_t>(cfg.cells()), 0.5);
    std::vector<double> hi(static_cast<std::size_t>(cfg.cells()), 1.0);
    const auto rl = solve_steady_state(cfg, lo);
    const auto rh = solve_steady_state(cfg, hi);
    for (std::size_t i = 0; i < rl.temp_k.size(); ++i)
        EXPECT_LT(rl.temp_k[i], rh.temp_k[i]);
}

TEST(ThermalSolver, SymmetricPowerGivesSymmetricField) {
    const auto cfg = small_cfg();
    std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.3);
    const auto res = solve_steady_state(cfg, power);
    ASSERT_TRUE(res.converged);
    // Uniform power on a symmetric grid: mirror symmetry in x and y.
    for (std::int32_t z = 0; z < cfg.depth; ++z) {
        for (std::int32_t y = 0; y < cfg.height; ++y) {
            for (std::int32_t x = 0; x < cfg.width; ++x) {
                const auto a = res.temp_k[static_cast<std::size_t>(cfg.index(x, y, z))];
                const auto b = res.temp_k[static_cast<std::size_t>(
                    cfg.index(cfg.width - 1 - x, y, z))];
                EXPECT_NEAR(a, b, 1e-5);
            }
        }
    }
}

TEST(ThermalSolver, HotspotNearConcentratedPower) {
    const auto cfg = small_cfg();
    std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.2);
    power[static_cast<std::size_t>(cfg.index(2, 2, 0))] += 3.0;
    const auto res = solve_steady_state(cfg, power);
    double peak = 0.0;
    std::int32_t px = -1, py = -1, pz = -1;
    for (std::int32_t z = 0; z < cfg.depth; ++z)
        for (std::int32_t y = 0; y < cfg.height; ++y)
            for (std::int32_t x = 0; x < cfg.width; ++x) {
                const auto t = res.temp_k[static_cast<std::size_t>(cfg.index(x, y, z))];
                if (t > peak) {
                    peak = t;
                    px = x; py = y; pz = z;
                }
            }
    EXPECT_EQ(px, 2);
    EXPECT_EQ(py, 2);
    EXPECT_EQ(pz, 0);
}

TEST(ThermalSolver, RealisticPowerInReramCriticalRange) {
    // ~0.8 W per PE on a 100-PE stack should land in the 330-360 K band
    // where the paper's accuracy discussion happens.
    const auto cfg = small_cfg();
    const std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.8);
    const auto res = solve_steady_state(cfg, power);
    EXPECT_GT(res.peak_k(), 330.0);
    EXPECT_LT(res.peak_k(), 370.0);
}

TEST(ThermalSolver, RejectsBadInput) {
    const auto cfg = small_cfg();
    EXPECT_THROW(solve_steady_state(cfg, std::vector<double>(3, 1.0)),
                 std::invalid_argument);
    std::vector<double> neg(static_cast<std::size_t>(cfg.cells()), 0.1);
    neg[5] = -1.0;
    EXPECT_THROW(solve_steady_state(cfg, neg), std::invalid_argument);
}

TEST(ThermalSolver, HotspotCountThreshold) {
    const auto cfg = small_cfg();
    std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.2);
    power[static_cast<std::size_t>(cfg.index(0, 0, 0))] += 2.0;
    const auto res = solve_steady_state(cfg, power);
    EXPECT_GE(res.hotspot_count(0, res.tier_peak_k(0) - 0.5), 1);
    EXPECT_EQ(res.hotspot_count(0, res.peak_k() + 1.0), 0);
}

TEST(ThermalSolver, RenderProducesGrid) {
    const auto cfg = small_cfg();
    const std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.5);
    const auto res = solve_steady_state(cfg, power);
    const auto art = render_tier(res, 0);
    EXPECT_NE(art.find("tier z=0"), std::string::npos);
    // 5 rows of glyphs plus header.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 6);
}

TEST(PowerMap, LeakageFloorAndComputeShare) {
    const auto net = dnn::build_resnet(18, dnn::Dataset::kCifar10);
    const auto plan = pim::partition_by_params(net, 11.22, 11.22 / 80.0);
    ASSERT_LE(plan.total_chiplets, 100);
    std::vector<std::int32_t> order(100);
    std::iota(order.begin(), order.end(), 0);
    const auto assign = pim::assign_layers(net, plan, order);
    PowerParams params;
    const auto power = pe_power_map(net, assign, 100, params);
    ASSERT_EQ(power.size(), 100u);
    for (const double p : power) EXPECT_GE(p, params.leakage_w - 1e-12);
    const double total = std::accumulate(power.begin(), power.end(), 0.0);
    EXPECT_GT(total, 100 * params.leakage_w);  // compute adds real power
}

TEST(PowerMap, EarlyLayersDrawMorePower) {
    // The paper: PEs executing the initial neural layers consume more
    // power as they process more activations.
    const auto net = dnn::build_vgg(11, dnn::Dataset::kImageNet);
    const auto plan = pim::partition_by_params(net, 132.9, 132.9 / 90.0);
    std::vector<std::int32_t> order(100);
    std::iota(order.begin(), order.end(), 0);
    const auto assign = pim::assign_layers(net, plan, order);
    const auto power = pe_power_map(net, assign, 100, PowerParams{});
    // Mean power of the first 10 PEs (early convs) exceeds the last 10
    // (classifier FCs).
    double early = 0.0;
    double late = 0.0;
    for (int i = 0; i < 10; ++i) early += power[static_cast<std::size_t>(i)];
    for (int i = 0; i < 10; ++i)
        late += power[static_cast<std::size_t>(plan.total_chiplets - 1 - i)];
    EXPECT_GT(early, 2.0 * late);
}

TEST(PowerMap, RejectsIncompleteAssignment) {
    const auto net = dnn::build_resnet(18, dnn::Dataset::kCifar10);
    std::vector<std::vector<std::int32_t>> bad(3);
    EXPECT_THROW(pe_power_map(net, bad, 10, PowerParams{}), std::invalid_argument);
}

}  // namespace
}  // namespace floretsim::thermal
