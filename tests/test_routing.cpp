#include <gtest/gtest.h>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"

namespace floretsim::noc {
namespace {

using topo::NodeId;

/// A route must be a walk along existing links from src to dst.
void expect_valid_route(const topo::Topology& t, const std::vector<NodeId>& route,
                        NodeId src, NodeId dst) {
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front(), src);
    EXPECT_EQ(route.back(), dst);
    for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_TRUE(t.has_link(route[i - 1], route[i]))
            << route[i - 1] << "->" << route[i];
}

TEST(Routing, ShortestPathOnMeshMatchesManhattan) {
    const auto t = topo::make_mesh(6, 6);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    ASSERT_TRUE(rt.complete());
    for (NodeId s = 0; s < t.node_count(); ++s) {
        for (NodeId d = 0; d < t.node_count(); ++d) {
            const auto hops = rt.hops(s, d);
            const auto expect = util::manhattan(t.node(s).pos, t.node(d).pos);
            EXPECT_EQ(hops, expect) << s << "->" << d;
        }
    }
}

TEST(Routing, RoutesAreValidWalks) {
    const auto t = topo::make_mesh(5, 5);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    for (NodeId s = 0; s < t.node_count(); ++s)
        for (NodeId d = 0; d < t.node_count(); ++d)
            if (s != d) expect_valid_route(t, rt.route(s, d), s, d);
}

TEST(Routing, SelfRouteIsTrivial) {
    const auto t = topo::make_mesh(3, 3);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    for (NodeId n = 0; n < t.node_count(); ++n) {
        EXPECT_EQ(rt.route(n, n).size(), 1u);
        EXPECT_EQ(rt.hops(n, n), 0);
    }
}

TEST(Routing, UpDownCompleteOnIrregularGraphs) {
    util::Rng rng(5);
    const auto swap = topo::make_swap(8, 8, rng);
    const auto rt = RouteTable::build(swap, RoutingPolicy::kUpDown);
    EXPECT_TRUE(rt.complete());
    for (NodeId s = 0; s < swap.node_count(); s += 7)
        for (NodeId d = 0; d < swap.node_count(); d += 5)
            if (s != d) expect_valid_route(swap, rt.route(s, d), s, d);
}

TEST(Routing, UpDownNeverTurnsBackUp) {
    // Validate the up*/down* invariant: once a route takes a "down" move
    // (toward higher BFS level from the root), it never goes "up" again.
    const auto t = topo::make_kite(8, 8);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown, /*root=*/0);
    const auto level = t.hop_distances(0);
    for (NodeId s = 0; s < t.node_count(); ++s) {
        for (NodeId d = 0; d < t.node_count(); ++d) {
            const auto& route = rt.route(s, d);
            bool went_down = false;
            for (std::size_t i = 1; i < route.size(); ++i) {
                const auto from = route[i - 1];
                const auto to = route[i];
                const bool up =
                    level[static_cast<std::size_t>(to)] < level[static_cast<std::size_t>(from)] ||
                    (level[static_cast<std::size_t>(to)] == level[static_cast<std::size_t>(from)] &&
                     to < from);
                if (up) {
                    EXPECT_FALSE(went_down) << "up after down " << s << "->" << d;
                } else {
                    went_down = true;
                }
            }
        }
    }
}

TEST(Routing, UpDownAtMostModeratelyLongerThanShortest) {
    const auto t = topo::make_mesh(8, 8);
    const auto sp = RouteTable::build(t, RoutingPolicy::kShortestPath);
    const auto ud = RouteTable::build(t, RoutingPolicy::kUpDown);
    EXPECT_GE(ud.mean_hops(), sp.mean_hops());
    EXPECT_LT(ud.mean_hops(), 1.8 * sp.mean_hops());
}

TEST(Routing, MeanHopsReasonableOnMesh) {
    const auto t = topo::make_mesh(10, 10);
    const auto rt = RouteTable::build(t, RoutingPolicy::kShortestPath);
    // Mean Manhattan distance on a 10x10 grid = 2*(n^2-1)/(3n) = 6.6.
    EXPECT_NEAR(rt.mean_hops(), 6.6667, 0.05);
}

TEST(Routing, FloretRoutesComplete) {
    const auto set = core::generate_sfc_set(10, 10, 4);
    const auto t = core::make_floret(set);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    EXPECT_TRUE(rt.complete());
    for (NodeId s = 0; s < t.node_count(); s += 9)
        for (NodeId d = 0; d < t.node_count(); d += 11)
            if (s != d) expect_valid_route(t, rt.route(s, d), s, d);
}

TEST(Routing, FloretConsecutiveSfcNodesAreOneHop) {
    const auto set = core::generate_sfc_set(10, 10, 4);
    const auto t = core::make_floret(set);
    const auto rt = RouteTable::build(t, RoutingPolicy::kUpDown);
    for (const auto& sfc : set.sfcs)
        for (std::size_t i = 1; i < sfc.path.size(); ++i)
            EXPECT_EQ(rt.hops(sfc.path[i - 1], sfc.path[i]), 1);
}

TEST(Routing, MismatchedTopologyRejectedBySimulator) {
    const auto t1 = topo::make_mesh(3, 3);
    const auto t2 = topo::make_mesh(4, 4);
    const auto rt = RouteTable::build(t1, RoutingPolicy::kShortestPath);
    EXPECT_THROW(Simulator(t2, rt, SimConfig{}), std::invalid_argument);
}

class RoutingBothPolicies : public ::testing::TestWithParam<RoutingPolicy> {};

TEST_P(RoutingBothPolicies, CompleteOnAllArchitectures) {
    util::Rng rng(11);
    const auto mesh = topo::make_mesh(6, 6);
    const auto kite = topo::make_kite(6, 6);
    const auto swap = topo::make_swap(6, 6, rng);
    const auto floret = core::make_floret(core::generate_sfc_set(6, 6, 6));
    for (const auto* t : {&mesh, &kite, &swap, &floret}) {
        const auto rt = RouteTable::build(*t, GetParam());
        EXPECT_TRUE(rt.complete()) << t->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, RoutingBothPolicies,
                         ::testing::Values(RoutingPolicy::kShortestPath,
                                           RoutingPolicy::kUpDown));

}  // namespace
}  // namespace floretsim::noc
