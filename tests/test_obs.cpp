/// Unit pins for the observability layer (src/obs/): the metrics
/// registry's zero-cost-when-off contract, snapshot determinism across
/// thread splits, the cross-process absorb merge, the tracer's ring
/// buffers and Chrome trace-event export, build provenance, and — the
/// satellite that motivated finish()/write-checking everywhere — that
/// unwritable output paths surface as failures instead of silent
/// success. The end-to-end obs-on/obs-off report parity differential is
/// scripted in bench_smoke.sh.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/sweep.h"
#include "src/core/experiment.h"
#include "src/obs/build_info.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/report.h"
#include "src/util/json.h"
#include "src/workload/tables.h"

namespace floretsim::obs {
namespace {

// ------------------------------------------------------------ metrics

TEST(Metrics, DisabledRecordingIsANoOp) {
    MetricsRegistry r;
    ASSERT_FALSE(r.enabled());
    r.add("c");
    r.set_gauge("g", 1.0);
    r.observe("h", 2.0);
    const util::Json snap = r.snapshot();
    EXPECT_TRUE(snap.find("counters")->as_object().empty());
    EXPECT_TRUE(snap.find("gauges")->as_object().empty());
    EXPECT_TRUE(snap.find("histograms")->as_object().empty());
}

TEST(Metrics, CountersSumAcrossThreads) {
    MetricsRegistry r;
    r.enable();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&r] {
            for (int i = 0; i < 1000; ++i) r.add("work.items");
            r.add("work.batches", 2);
        });
    for (auto& t : threads) t.join();
    const util::Json snap = r.snapshot();
    EXPECT_EQ(snap.find("counters")->find("work.items")->as_int(), 4000);
    EXPECT_EQ(snap.find("counters")->find("work.batches")->as_int(), 8);
}

TEST(Metrics, SnapshotIdenticalAcrossThreadSplits) {
    // The same samples split 1-way vs 4-way must serialize to the same
    // bytes: counters and log2 buckets merge by order-independent sums,
    // and the quantile estimates are replayed from the merged buckets at
    // snapshot time (never from the insertion order).
    const auto record = [](MetricsRegistry& r, int n_threads) {
        r.enable();
        std::vector<std::thread> threads;
        for (int t = 0; t < n_threads; ++t)
            threads.emplace_back([&r, t, n_threads] {
                for (int i = t; i < 256; i += n_threads) {
                    r.add("items");
                    r.observe("latency", static_cast<double>(1 + i % 97));
                }
            });
        for (auto& t : threads) t.join();
    };
    MetricsRegistry serial, parallel;
    record(serial, 1);
    record(parallel, 4);
    EXPECT_EQ(util::json_serialize(serial.snapshot()),
              util::json_serialize(parallel.snapshot()));
}

TEST(Metrics, SnapshotIdenticalAcrossEngineThreadCounts) {
    // The real wiring: the same 2-point sweep through evaluate_point on a
    // 1-thread engine and a 4-thread engine records identical metrics —
    // the per-process half of the shard-parity guarantee.
    core::SweepSpec spec;
    spec.archs = {core::experiment::Arch::kSiamMesh,
                  core::experiment::Arch::kFloret};
    spec.grids = {{6, 6}};
    spec.mixes = {workload::table2().front()};
    auto cfg = core::experiment::default_eval_config();
    cfg.traffic_scale = 1.0 / 512.0;
    spec.evals = {cfg};
    spec.greedy_max_gap = 2;

    MetricsRegistry& g = MetricsRegistry::global();
    g.reset();
    g.enable();
    std::string serialized[2];
    int i = 0;
    for (const std::int32_t threads : {1, 4}) {
        core::SweepEngine engine(threads);
        (void)engine.run(spec);
        serialized[i++] = util::json_serialize(g.snapshot());
        g.reset();
    }
    g.disable();
    EXPECT_EQ(serialized[0], serialized[1]);
    // And the instrumentation actually fired.
    EXPECT_NE(serialized[0].find("sweep.points"), std::string::npos);
    EXPECT_NE(serialized[0].find("noi.evals"), std::string::npos);
    EXPECT_NE(serialized[0].find("sim.runs"), std::string::npos);
}

TEST(Metrics, HistogramCountMinMaxAreExact) {
    MetricsRegistry r;
    r.enable();
    for (const double v : {3.0, 100.0, 0.25, 7.0}) r.observe("h", v);
    const util::Json snap = r.snapshot();
    const util::Json* h = snap.find("histograms")->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->as_int(), 4);
    EXPECT_EQ(h->find("min")->as_double(), 0.25);
    EXPECT_EQ(h->find("max")->as_double(), 100.0);
    EXPECT_GT(h->find("p50")->as_double(), 0.0);
    // frexp exponents: 0.25 -> -1, 3.0 -> 2, 7.0 -> 3, 100.0 -> 7.
    EXPECT_EQ(h->find("buckets")->as_object().size(), 4u);
}

TEST(Metrics, AbsorbMergesCountersGaugesAndBuckets) {
    MetricsRegistry a, b;
    a.enable();
    b.enable();
    a.add("shared", 3);
    a.add("only_a", 1);
    a.set_gauge("g", 1.0);
    a.observe("h", 8.0);
    b.add("shared", 4);
    b.set_gauge("g", 2.0);
    b.observe("h", 8.0);
    b.observe("h", 0.5);
    a.absorb(b.snapshot());
    const util::Json snap = a.snapshot();
    EXPECT_EQ(snap.find("counters")->find("shared")->as_int(), 7);
    EXPECT_EQ(snap.find("counters")->find("only_a")->as_int(), 1);
    EXPECT_EQ(snap.find("gauges")->find("g")->as_double(), 2.0);
    const util::Json* h = snap.find("histograms")->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->as_int(), 3);
    EXPECT_EQ(h->find("min")->as_double(), 0.5);
    EXPECT_EQ(h->find("max")->as_double(), 8.0);
}

TEST(Metrics, AbsorbRejectsMalformedDocuments) {
    MetricsRegistry r;
    r.enable();
    EXPECT_THROW(r.absorb(util::json_parse("[]")), std::invalid_argument);
    EXPECT_THROW(r.absorb(util::json_parse("{\"counters\": {}}")),
                 std::invalid_argument);
    EXPECT_THROW(
        r.absorb(util::json_parse(
            R"({"counters":{},"gauges":{},"histograms":{"h":{"count":1}}})")),
        std::invalid_argument);
    EXPECT_THROW(r.absorb(util::json_parse(
                     R"({"counters":{},"gauges":{},"histograms":
                        {"h":{"count":1,"min":1,"max":1,"buckets":{"x":1}}}})")),
                 std::invalid_argument);
    // Nothing half-merged.
    EXPECT_TRUE(r.snapshot().find("counters")->as_object().empty());
}

TEST(Metrics, ResetClearsButKeepsRecordingValid) {
    MetricsRegistry r;
    r.enable();
    r.add("c", 5);
    r.reset();
    EXPECT_TRUE(r.snapshot().find("counters")->as_object().empty());
    r.add("c", 2);
    EXPECT_EQ(r.snapshot().find("counters")->find("c")->as_int(), 2);
}

// ------------------------------------------------------------- tracer

TEST(Tracer, RingOverflowKeepsMostRecentAndCountsDropped) {
    Tracer t;
    t.enable(/*capacity_per_thread=*/4);
    for (int i = 0; i < 7; ++i) t.record("e", "cat", 100 + i, 1);
    EXPECT_EQ(t.event_count(), 4u);
    EXPECT_EQ(t.dropped(), 3u);
    const util::Json doc = t.chrome_trace();
    const auto& events = doc.find("traceEvents")->as_array();
    ASSERT_EQ(events.size(), 4u);
    // The survivors are the most recent 4 (ts 103..106), sorted by ts.
    EXPECT_EQ(events.front().find("ts")->as_int(), 103);
    EXPECT_EQ(events.back().find("ts")->as_int(), 106);
}

TEST(Tracer, SpanRecordsCompleteChromeEvent) {
    Tracer& g = Tracer::global();
    g.reset();
    g.enable();
    { const Span span("unit_test_span", "test"); }
    g.disable();
    const util::Json doc = g.chrome_trace();
    const util::Json* found = nullptr;
    for (const auto& e : doc.find("traceEvents")->as_array())
        if (e.find("name") && e.find("name")->as_string() == "unit_test_span")
            found = &e;
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->find("cat")->as_string(), "test");
    EXPECT_EQ(found->find("ph")->as_string(), "X");
    EXPECT_GE(found->find("dur")->as_int(), 0);
    EXPECT_NE(found->find("ts"), nullptr);
    EXPECT_NE(found->find("pid"), nullptr);
    EXPECT_NE(found->find("tid"), nullptr);
    g.reset();
}

TEST(Tracer, DisabledSpanRecordsNothing) {
    Tracer& g = Tracer::global();
    g.reset();
    ASSERT_FALSE(g.enabled());
    { const Span span("invisible"); }
    EXPECT_EQ(g.event_count(), 0u);
}

TEST(Tracer, AbsorbAppendsForeignEventsAndRejectsJunk) {
    Tracer t;
    t.enable();
    t.record("own", "cat", 50, 5);
    t.absorb(util::json_parse(
        R"({"traceEvents":[{"name":"foreign","ph":"X","ts":1,"dur":2,)"
        R"("pid":99,"tid":1,"cat":"w"}]})"));
    const util::Json doc = t.chrome_trace();
    const auto& events = doc.find("traceEvents")->as_array();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events.back().find("name")->as_string(), "foreign");
    EXPECT_THROW(t.absorb(util::json_parse("{}")), std::invalid_argument);
    EXPECT_THROW(t.absorb(util::json_parse(R"({"traceEvents": 3})")),
                 std::invalid_argument);
}

TEST(Tracer, ProcessLabelBecomesMetadataEvent) {
    Tracer t;
    t.enable();
    t.set_process_label("worker shard 1/2");
    t.record("e", "c", 1, 1);
    const util::Json doc = t.chrome_trace();
    bool saw_meta = false;
    for (const auto& e : doc.find("traceEvents")->as_array())
        if (e.find("ph") && e.find("ph")->as_string() == "M")
            saw_meta = true;
    EXPECT_TRUE(saw_meta);
}

TEST(Tracer, InternReturnsStableDeduplicatedPointers) {
    Tracer t;
    const char* a = t.intern(std::string("dynamic_name"));
    const char* b = t.intern(std::string("dynamic_name"));
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "dynamic_name");
}

// ------------------------------------------- write-failure propagation

TEST(WriteFailures, UnwritablePathsReturnFalse) {
    // The satellite pin: a full disk or a typo'd directory must turn into
    // a nonzero exit, not a silently missing file. Empty paths stay
    // successful no-ops.
    const std::string bad = "/nonexistent-floretsim-dir/out.json";
    MetricsRegistry r;
    EXPECT_TRUE(r.write(""));
    EXPECT_FALSE(r.write(bad));
    Tracer t;
    EXPECT_TRUE(t.write(""));
    EXPECT_FALSE(t.write(bad));
    scenario::JsonReport report("probe");
    EXPECT_TRUE(report.write(""));
    EXPECT_FALSE(report.write(bad));
}

// ----------------------------------------------------------- build info

TEST(BuildInfo, FieldsArePresentAndNonEmpty) {
    EXPECT_FALSE(std::string(build_type()).empty());
    EXPECT_FALSE(compiler_id().empty());
    EXPECT_FALSE(std::string(git_sha()).empty());
    const util::Json j = build_info_json();
    ASSERT_NE(j.find("build_type"), nullptr);
    ASSERT_NE(j.find("compiler"), nullptr);
    ASSERT_NE(j.find("git_sha"), nullptr);
}

TEST(RunInfo, ReportCarriesProvenanceAndOverwritesOnRekey) {
    scenario::JsonReport report("probe");
    report.set_run_info("seed", std::int64_t{7});
    report.set_run_info("seed", std::int64_t{9});  // re-finished report
    const util::Json doc = report.to_value();
    const util::Json* info = doc.find("run_info");
    ASSERT_NE(info, nullptr);
    EXPECT_NE(info->find("build_type"), nullptr);
    EXPECT_NE(info->find("compiler"), nullptr);
    EXPECT_NE(info->find("git_sha"), nullptr);
    EXPECT_NE(info->find("sim_core"), nullptr);
    EXPECT_EQ(info->find("seed")->as_int(), 9);
    std::size_t seed_keys = 0;
    for (const auto& [k, v] : info->as_object()) {
        (void)v;
        if (k == "seed") ++seed_keys;
    }
    EXPECT_EQ(seed_keys, 1u);
}

}  // namespace
}  // namespace floretsim::obs
