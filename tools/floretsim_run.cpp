/// floretsim_run: the one driver for every figure. Runs any subset of the
/// registered scenarios (or user-supplied scenario JSON files) in ONE
/// process over ONE shared SweepEngine — so scenarios with identical
/// fabric needs (fig3 + fig5 sweep the same grids) build each fabric once
/// and every later scenario hits the cache — applies --set overrides to
/// the declarative specs, and merges the per-scenario reports into a
/// single JSON document.
///
///   floretsim_run --list
///   floretsim_run                          # every registered scenario
///   floretsim_run --only fig3,fig5        # a subset, shared cache
///   floretsim_run --spec my_scenario.json  # a serialized spec from disk
///   floretsim_run --only fig3 --set grid=12x12 --set traffic_scale=1/128
///   floretsim_run --only fig5 --set archs=floret,kite --threads 8 --json o.json
///
/// Sharded sweeps (see src/scenario/shard.h for the wire contract):
///
///   floretsim_run --only fig3,fig5,table2 --shards 4   # coordinator:
///       forks 4 worker subprocesses per sweep, merges their row streams
///       back into point order — reports bit-identical to 1 process
///   floretsim_run --worker --points pts.json --shard 1/4   # one worker:
///       evaluates its slice of the point list, streams NDJSON rows to
///       stdout (or --rows-out FILE) as they finish
///
/// Fleet mode (see src/fleet/ for the protocol):
///
///   floretsim_run --only fig3,fig5 --pool 4   # persistent coordinator:
///       spawns 4 long-lived --worker --serve processes ONCE, streams
///       leases to them per sweep, steals from stragglers, restarts dead
///       workers — workers keep their ArchCache warm across scenarios
///   floretsim_run --worker --serve             # one persistent worker:
///       speaks the framed NDJSON fleet protocol on stdin/stdout

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/sweep.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/protocol.h"
#include "src/noc/simulator.h"
#include "src/obs/build_info.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/cache.h"
#include "src/scenario/registry.h"
#include "src/scenario/shard.h"
#include "src/util/hash.h"
#include "src/util/json.h"

namespace {

using namespace floretsim;

struct DriverOptions {
    bool list = false;
    std::vector<std::string> only;                    ///< --only names, in order.
    std::vector<std::string> spec_files;              ///< --spec paths, in order.
    std::vector<std::pair<std::string, std::string>> sets;  ///< --set k=v pairs.
    std::int32_t threads = 0;
    std::uint64_t seed = 0;
    bool has_seed = false;
    std::string json_path;
    std::int32_t shards = 0;    ///< --shards N (coordinator); 0 = in-process.
    std::int32_t pool = 0;      ///< --pool N (persistent fleet); 0 = off.
    bool worker = false;        ///< --worker (row-streaming worker mode).
    bool serve = false;         ///< --serve (persistent fleet worker mode).
    std::string points_file;    ///< --points FILE (worker work order).
    std::string rows_out;       ///< --rows-out FILE (default: stdout).
    std::string shard_arg;      ///< --shard i/N (worker slice selector).
    std::string trace_out;      ///< --trace-out FILE (Chrome trace JSON).
    std::string metrics_out;    ///< --metrics-out FILE (metrics snapshot).
    std::string cache_dir;      ///< --cache-dir DIR (on-disk result cache).
};

[[noreturn]] void usage(const char* argv0, const std::string& msg) {
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: %s [--list] [--only A,B,...] [--spec FILE]... \n"
                 "       [--set KEY=VALUE]... [--threads N] [--seed N] "
                 "[--json PATH] [--shards N | --pool N]\n"
                 "       [--core reference|event-horizon|regional]\n"
                 "       [--trace-out FILE] [--metrics-out FILE] "
                 "[--cache-dir DIR]\n"
                 "       %s --worker --points FILE [--rows-out FILE] "
                 "[--shard i/N] [--threads N]\n"
                 "       %s --worker --serve [--threads N]\n"
                 "override keys: %s\n",
                 argv0, msg.c_str(), argv0, argv0, argv0,
                 scenario::override_keys_help().c_str());
    std::exit(2);
}

DriverOptions parse(int argc, char** argv) {
    DriverOptions opt;
    const auto need_value = [&](int i, const char* flag) -> const char* {
        if (i + 1 >= argc) usage(argv[0], std::string(flag) + " needs a value");
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--only") {
            const auto names = scenario::split_csv(need_value(i++, "--only"));
            opt.only.insert(opt.only.end(), names.begin(), names.end());
        } else if (arg == "--spec") {
            opt.spec_files.emplace_back(need_value(i++, "--spec"));
        } else if (arg == "--set") {
            const std::string_view kv = need_value(i++, "--set");
            const std::size_t eq = kv.find('=');
            if (eq == std::string_view::npos || eq == 0)
                usage(argv[0], "--set expects KEY=VALUE");
            opt.sets.emplace_back(std::string(kv.substr(0, eq)),
                                  std::string(kv.substr(eq + 1)));
        } else if (arg == "--threads") {
            const std::string_view value = need_value(i++, "--threads");
            const auto [p, ec] = std::from_chars(
                value.data(), value.data() + value.size(), opt.threads);
            if (ec != std::errc() || p != value.data() + value.size())
                usage(argv[0], "--threads expects an integer");
        } else if (arg == "--seed") {
            const std::string_view value = need_value(i++, "--seed");
            const auto [p, ec] = std::from_chars(
                value.data(), value.data() + value.size(), opt.seed);
            if (ec != std::errc() || p != value.data() + value.size())
                usage(argv[0], "--seed expects a non-negative integer");
            opt.has_seed = true;
        } else if (arg == "--json") {
            opt.json_path = need_value(i++, "--json");
        } else if (arg == "--core") {
            const std::string value = need_value(i++, "--core");
            if (!noc::sim_core_from_name(value))
                usage(argv[0], "--core expects reference, event-horizon or "
                               "regional, got " + value);
            // The process-wide env override is the switch every simulation
            // honors, and forked shard workers inherit the environment —
            // one flag covers coordinator and workers alike.
            setenv("FLORETSIM_SIM_CORE", value.c_str(), 1);
        } else if (arg == "--shards") {
            const std::string_view value = need_value(i++, "--shards");
            const auto [p, ec] = std::from_chars(
                value.data(), value.data() + value.size(), opt.shards);
            if (ec != std::errc() || p != value.data() + value.size() ||
                opt.shards < 1)
                usage(argv[0], "--shards expects an integer >= 1");
        } else if (arg == "--pool") {
            const std::string_view value = need_value(i++, "--pool");
            const auto [p, ec] = std::from_chars(
                value.data(), value.data() + value.size(), opt.pool);
            if (ec != std::errc() || p != value.data() + value.size() ||
                opt.pool < 1)
                usage(argv[0], "--pool expects an integer >= 1");
        } else if (arg == "--worker") {
            opt.worker = true;
        } else if (arg == "--serve") {
            opt.serve = true;
        } else if (arg == "--points") {
            opt.points_file = need_value(i++, "--points");
        } else if (arg == "--rows-out") {
            opt.rows_out = need_value(i++, "--rows-out");
        } else if (arg == "--shard") {
            opt.shard_arg = need_value(i++, "--shard");
        } else if (arg == "--trace-out") {
            opt.trace_out = need_value(i++, "--trace-out");
        } else if (arg == "--metrics-out") {
            opt.metrics_out = need_value(i++, "--metrics-out");
        } else if (arg == "--cache-dir") {
            opt.cache_dir = need_value(i++, "--cache-dir");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], "help");
        } else {
            usage(argv[0], "unknown argument " + std::string(arg));
        }
    }
    if (opt.shards > 0 && opt.pool > 0)
        usage(argv[0], "--shards and --pool are mutually exclusive");
    if (opt.serve && !opt.worker) usage(argv[0], "--serve requires --worker");
    if (opt.pool > 0 && opt.worker)
        usage(argv[0], "--pool is a coordinator flag; workers use --serve");
    return opt;
}

/// Persistent fleet worker: speaks the framed protocol on stdin/stdout
/// until the coordinator sends quit (or closes the pipe). One SweepEngine
/// lives for the whole process — its ArchCache is the warm state that
/// outlasting individual sweeps is all about.
int run_serve(const DriverOptions& opt, const char* argv0) {
    if (opt.list || !opt.only.empty() || !opt.spec_files.empty() ||
        !opt.sets.empty() || opt.shards > 0 || !opt.json_path.empty() ||
        opt.has_seed || !opt.cache_dir.empty() || !opt.points_file.empty() ||
        !opt.rows_out.empty() || !opt.shard_arg.empty())
        usage(argv0,
              "--worker --serve only takes --threads, --trace-out, "
              "--metrics-out (sweeps and points arrive over stdin)");
    try {
        const std::int32_t threads = scenario::clamp_worker_threads(
            opt.threads, scenario::kMaxWorkerThreads, std::cerr);
        core::SweepEngine engine(threads);
        const int rc = fleet::serve_worker(std::cin, std::cout, std::cerr, engine);
        if (!obs::Tracer::global().write(opt.trace_out))
            return rc != 0 ? rc : 1;
        if (!obs::MetricsRegistry::global().write(opt.metrics_out))
            return rc != 0 ? rc : 1;
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv0, e.what());
        return 2;
    }
}

/// Worker mode: consume a serialized SweepPoint list (optionally one
/// --shard i/N slice of it), evaluate on a local SweepEngine, and stream
/// one NDJSON row per finished point. Rows go to stdout (or --rows-out),
/// everything human-readable goes to stderr, and any failing point makes
/// the exit code nonzero with its index on stderr — the coordinator's
/// contract for reporting which shard died.
int run_worker(const DriverOptions& opt, const char* argv0) {
    if (opt.list || !opt.only.empty() || !opt.spec_files.empty() ||
        !opt.sets.empty() || opt.shards > 0 || !opt.json_path.empty() ||
        opt.has_seed || !opt.cache_dir.empty())
        usage(argv0,
              "--worker only takes --points, --rows-out, --shard, --threads, "
              "--trace-out, --metrics-out (the coordinator owns --cache-dir: "
              "it partitions cache hits out before dispatch)");
    if (opt.points_file.empty()) usage(argv0, "--worker needs --points FILE");
    try {
        std::ifstream f(opt.points_file);
        if (!f)
            throw std::runtime_error("cannot read points file " + opt.points_file);
        std::ostringstream buf;
        buf << f.rdbuf();

        const auto points =
            scenario::points_from_text(buf.str(), opt.points_file);
        auto [shard, n_shards] = std::pair<std::int32_t, std::int32_t>{0, 1};
        if (!opt.shard_arg.empty())
            std::tie(shard, n_shards) = scenario::parse_shard_arg(opt.shard_arg);
        const auto indices =
            scenario::shard_indices(points.size(), shard, n_shards);

        obs::Tracer::global().set_process_label(
            "worker shard " + std::to_string(shard) + "/" +
            std::to_string(n_shards));

        const std::int32_t threads =
            scenario::clamp_worker_threads(opt.threads, indices.size(), std::cerr);
        core::SweepEngine engine(threads);

        std::ofstream rows_file;
        std::ostream* rows = &std::cout;
        if (!opt.rows_out.empty()) {
            rows_file.open(opt.rows_out);
            if (!rows_file)
                throw std::runtime_error("cannot write rows to " + opt.rows_out);
            rows = &rows_file;
        }
        // Heartbeats ride the worker's stdout pipe back to the
        // coordinator; when rows also go to stdout (manual/multi-host
        // use), the shared stream stays valid because both are NDJSON
        // envelopes and consumers dispatch via stream_line_from.
        const scenario::HeartbeatSink hb{&std::cout, shard, n_shards};
        std::size_t failed = 0;
        {
            const obs::Span span("worker_shard", "shard");
            failed = scenario::run_worker_points(engine, points, indices, *rows,
                                                 std::cerr, hb);
        }
        rows->flush();
        if (!*rows)
            throw std::runtime_error(
                "error writing rows to " +
                (opt.rows_out.empty() ? std::string("stdout") : opt.rows_out) +
                " — the row stream is truncated");
        if (!obs::Tracer::global().write(opt.trace_out))
            throw std::runtime_error("cannot write trace to " + opt.trace_out);
        if (!obs::MetricsRegistry::global().write(opt.metrics_out))
            throw std::runtime_error("cannot write metrics to " + opt.metrics_out);
        if (failed) {
            std::fprintf(stderr, "worker: %zu of %zu points failed (shard %d/%d)\n",
                         failed, indices.size(), shard, n_shards);
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv0, e.what());
        return 2;
    }
}

}  // namespace

int main(int argc, char** argv) {
    const DriverOptions opt = parse(argc, argv);
    // Observability is opt-in per flag: tracing and metrics stay fully
    // disabled (and zero-cost) unless an output path asks for them.
    if (!opt.trace_out.empty()) obs::Tracer::global().enable();
    if (!opt.metrics_out.empty()) obs::MetricsRegistry::global().enable();
    if (opt.worker)
        return opt.serve ? run_serve(opt, argv[0]) : run_worker(opt, argv[0]);
    obs::Tracer::global().set_process_label("coordinator");
    if (!opt.points_file.empty() || !opt.rows_out.empty() ||
        !opt.shard_arg.empty())
        usage(argv[0], "--points/--rows-out/--shard require --worker");
    const auto& registry = scenario::Registry::builtin();

    if (opt.list) {
        // With --cache-dir, each point-cacheable scenario also reports how
        // much of its expansion the cache already holds. contains_hash is a
        // pure existence check, so listing never skews the run counters.
        std::unique_ptr<scenario::ResultCache> cache;
        if (!opt.cache_dir.empty()) {
            try {
                cache = std::make_unique<scenario::ResultCache>(opt.cache_dir);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                return 2;
            }
        }
        std::printf("registered scenarios:\n");
        for (const auto& s : registry.scenarios()) {
            const std::string hash =
                util::hash_hex(scenario::spec_hash(s.spec)).substr(0, 12);
            std::string status;
            if (cache) {
                const auto points = scenario::cacheable_points(s.spec);
                if (!points || points->empty()) {
                    // fig2's sweep expands to nothing (its report reads
                    // topology structure, not rows), so it caches like
                    // the bespoke-work kinds: not at all.
                    status = "  [not point-cacheable]";
                } else {
                    std::size_t held = 0;
                    for (const auto& p : *points)
                        if (cache->contains_hash(scenario::point_hash(p))) ++held;
                    status = held == points->size()
                                 ? "  [cached]"
                                 : "  [" + std::to_string(held) + "/" +
                                       std::to_string(points->size()) +
                                       " cached]";
                }
            }
            std::printf("  %-19s [%-11s] %s  %s%s\n", s.name.c_str(),
                        scenario::spec_kind_name(s.spec), hash.c_str(),
                        s.summary.c_str(), status.c_str());
        }
        return 0;
    }

    // Selection: --only names (else every registered scenario), then the
    // --spec files, in command-line order.
    std::vector<scenario::Scenario> selected;
    try {
        if (!opt.only.empty()) {
            for (const auto& name : opt.only) selected.push_back(registry.at(name));
        } else if (opt.spec_files.empty()) {
            selected = registry.scenarios();
        }
        for (const auto& path : opt.spec_files)
            selected.push_back(scenario::load_scenario_file(path, registry));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }
    for (std::size_t i = 0; i < selected.size(); ++i)
        for (std::size_t j = i + 1; j < selected.size(); ++j)
            if (selected[i].name == selected[j].name) {
                std::fprintf(stderr, "%s: scenario \"%s\" selected twice\n",
                             argv[0], selected[i].name.c_str());
                return 2;
            }

    // Apply the seed and the --set overrides to every selected spec. Each
    // override must land on at least one scenario — a --set that applies
    // nowhere is a typo, not a no-op.
    try {
        for (auto& s : selected)
            if (opt.has_seed) scenario::set_seed(s.spec, opt.seed);
        for (const auto& [key, value] : opt.sets) {
            bool applied = false;
            for (auto& s : selected) {
                // Eval knobs are inert on mapping-only scenarios (fig4):
                // don't let them satisfy the applies-somewhere guard.
                if (!s.uses_eval && scenario::is_eval_override_key(key)) continue;
                applied = scenario::apply_override(s.spec, key, value) || applied;
            }
            if (!applied) {
                std::fprintf(stderr,
                             "%s: --set %s=%s applies to none of the selected "
                             "scenarios\n",
                             argv[0], key.c_str(), value.c_str());
                return 2;
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }

    // One engine for the whole run: the shared thread pool AND the shared
    // fabric cache — the reason fig3+fig5 no longer rebuild identical
    // sweep fabrics.
    core::SweepEngine engine(opt.threads);
    // The on-disk result cache sits under the engine: run_stream partitions
    // known points out before dispatch (local or sharded) and stores every
    // newly computed row back — so a fully warm cache replays a sweep with
    // zero point evaluations and zero forked workers (pinned by the
    // cache_parity ctest).
    std::unique_ptr<scenario::ResultCache> result_cache;
    if (!opt.cache_dir.empty()) {
        try {
            result_cache = std::make_unique<scenario::ResultCache>(opt.cache_dir);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
            return 2;
        }
        engine.set_result_cache(result_cache.get());
    }
    if (opt.shards > 0) {
        // Coordinator mode: every spec-driven sweep a report function runs
        // is forked across N worker subprocesses of this same binary and
        // the row streams are merged back into point order. The report
        // functions are unchanged — bit-identical output is the contract
        // (pinned by the shard_parity ctest). map()-based work (fig4,
        // serving replications) stays in this process.
        scenario::ShardOptions shard_opt;
        shard_opt.worker_exe = scenario::self_exe_path(argv[0]);
        shard_opt.n_shards = opt.shards;
        // SweepEngine treats any --threads <= 0 as "hardware"; workers
        // reject negatives, so normalize before forwarding.
        shard_opt.threads_per_worker = std::max<std::int32_t>(opt.threads, 0);
        // Live per-shard progress and the straggler summary go to stderr,
        // keeping stdout's report machinery clean.
        shard_opt.progress = &std::cerr;
        scenario::install_shard_executor(engine, shard_opt);
    }
    std::shared_ptr<fleet::Coordinator> coordinator;
    if (opt.pool > 0) {
        // Fleet mode: N persistent --worker --serve processes are spawned
        // once (lazily, at the first sweep) and reused by every scenario —
        // their ArchCaches stay warm across sweeps, so fig5 after fig3
        // builds zero fabrics anywhere in the fleet. The coordinator
        // leases points incrementally, steals from stragglers, and
        // restarts dead workers with bounded retry; rows stay
        // bit-identical (pinned by the fleet_parity ctest).
        fleet::FleetOptions fleet_opt;
        fleet_opt.worker_exe = scenario::self_exe_path(argv[0]);
        const auto hw =
            static_cast<std::int32_t>(std::thread::hardware_concurrency());
        const std::int32_t worker_threads =
            opt.threads > 0 ? opt.threads : std::max(1, hw / opt.pool);
        fleet_opt.worker_args = {"--worker", "--serve", "--threads",
                                 std::to_string(worker_threads)};
        fleet_opt.n_workers = opt.pool;
        fleet_opt.progress = &std::cerr;
        coordinator = std::make_shared<fleet::Coordinator>(fleet_opt);
        fleet::install_fleet_executor(engine, coordinator);
    }
    scenario::RunContext ctx{engine, std::cout};

    util::Json scenario_reports = util::Json::object();
    util::Json fleet_per_scenario = util::Json::object();
    const auto wall0 = std::chrono::steady_clock::now();
    int failures = 0;
    for (const auto& s : selected) {
        std::cout << "\n########## scenario: " << s.name << " ##########\n\n";
        const auto hits0 = engine.cache().hits();
        const auto misses0 = engine.cache().misses();
        const fleet::FleetStats fleet0 =
            coordinator ? coordinator->stats() : fleet::FleetStats{};
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // intern() keeps the span name alive past this iteration; the
            // ternary avoids interning when tracing is off.
            const obs::Span span(obs::Tracer::global().enabled()
                                     ? obs::Tracer::global().intern(s.name)
                                     : "scenario",
                                 "scenario");
            scenario::JsonReport report = s.report(s.spec, ctx);
            report.set_run_info(
                "seed", static_cast<std::int64_t>(
                            scenario::effective_seed(s.spec)));
            report.set_run_info("threads", engine.thread_count());
            report.add_metric(
                "scenario_seconds",
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count());
            // Cache deltas per scenario: a later scenario with misses == 0
            // ran entirely on fabrics built by its predecessors.
            report.add_metric("fabric_cache_hits",
                              static_cast<double>(engine.cache().hits() - hits0));
            report.add_metric(
                "fabric_cache_misses",
                static_cast<double>(engine.cache().misses() - misses0));
            scenario_reports.set(s.name, report.to_value());
            if (coordinator) {
                // Per-scenario fleet deltas live in the driver block (not
                // the scenario reports, which must stay bit-identical to
                // non-fleet runs): fabric_misses == 0 here means every
                // fabric this scenario needed was already warm in some
                // worker's ArchCache.
                const fleet::FleetStats& fs = coordinator->stats();
                util::Json delta = util::Json::object();
                delta.set("rows", fs.rows - fleet0.rows);
                delta.set("leases", fs.leases_issued - fleet0.leases_issued);
                delta.set("fabric_hits",
                          fs.fleet_fabric_hits - fleet0.fleet_fabric_hits);
                delta.set("fabric_misses", fs.fleet_fabric_misses -
                                               fleet0.fleet_fabric_misses);
                fleet_per_scenario.set(s.name, std::move(delta));
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "scenario %s failed: %s\n", s.name.c_str(),
                         e.what());
            util::Json err = util::Json::object();
            err.set("error", std::string(e.what()));
            scenario_reports.set(s.name, std::move(err));
            ++failures;
        }
    }

    // Shut the fleet down BEFORE the trace/metrics writes below: the
    // workers write their --trace-out/--metrics-out files as they exit
    // and the shutdown absorbs them into this process's sinks, so the
    // exported trace covers the whole fleet.
    if (coordinator) {
        coordinator->shutdown();
        coordinator->print_summary(std::cerr);
    }

    util::Json doc = util::Json::object();
    util::Json driver = util::Json::object();
    util::Json run_info = obs::build_info_json();
    run_info.set("sim_core",
                 std::string(noc::sim_core_name(
                     noc::resolved_sim_core(noc::SimConfig{}.core))));
    run_info.set("threads", engine.thread_count());
    run_info.set("shards", opt.shards);
    run_info.set("executor", std::string(engine.executor_label()));
    run_info.set("seed", opt.has_seed ? util::Json(opt.seed) : util::Json());
    driver.set("run_info", std::move(run_info));
    driver.set("threads", engine.thread_count());
    driver.set("shards", opt.shards);
    driver.set("pool", opt.pool);
    if (coordinator) {
        util::Json fleet_json = coordinator->stats_json();
        fleet_json.set("per_scenario", std::move(fleet_per_scenario));
        driver.set("fleet", std::move(fleet_json));
    }
    driver.set("sim_core",
               std::string(noc::sim_core_name(
                   noc::resolved_sim_core(noc::SimConfig{}.core))));
    driver.set("scenarios_run",
               static_cast<std::int64_t>(selected.size()) - failures);
    driver.set("scenarios_failed", static_cast<std::int64_t>(failures));
    driver.set("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall0)
                   .count());
    driver.set("fabric_cache_hits", engine.cache().hits());
    driver.set("fabric_cache_misses", engine.cache().misses());
    // Always present (0 without --cache-dir) so report consumers see one
    // stable key set either way.
    driver.set("result_cache_hits",
               result_cache ? result_cache->hits() : std::int64_t{0});
    driver.set("result_cache_misses",
               result_cache ? result_cache->misses() : std::int64_t{0});
    doc.set("driver", std::move(driver));
    doc.set("scenarios", std::move(scenario_reports));

    std::cout << "\n########## driver summary ##########\n"
              << selected.size() - static_cast<std::size_t>(failures) << "/"
              << selected.size() << " scenarios on " << engine.thread_count()
              << " thread(s); fabric cache " << engine.cache().hits()
              << " hits / " << engine.cache().misses() << " misses\n";
    if (result_cache)
        std::cout << "result cache (" << result_cache->dir() << "): "
                  << result_cache->hits() << " hits / " << result_cache->misses()
                  << " misses, " << result_cache->stores() << " stored, "
                  << result_cache->evictions() << " evicted\n";
    std::cout
              << "build " << obs::build_type() << " (" << obs::compiler_id()
              << "), git " << obs::git_sha() << ", sim core "
              << noc::sim_core_name(noc::resolved_sim_core(noc::SimConfig{}.core))
              << "\n";

    if (!opt.json_path.empty()) {
        std::ofstream f(opt.json_path);
        if (f) f << util::json_serialize(doc);
        if (!f) {
            std::fprintf(stderr, "error: cannot write JSON report to %s\n",
                         opt.json_path.c_str());
            return 1;
        }
    }
    if (!obs::Tracer::global().write(opt.trace_out)) return 1;
    if (!obs::MetricsRegistry::global().write(opt.metrics_out)) return 1;
    return failures == 0 ? 0 : 1;
}
