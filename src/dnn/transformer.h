#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace floretsim::dnn {

/// Section IV of the paper: Transformer encoders mix *static* kernels
/// (feed-forward / FC weights — PIM-friendly, mapped along the SFC macro)
/// with *dynamic* kernels (attention score matrices that are rewritten for
/// every token — unsuitable for NVM crossbars due to write endurance).
/// This module provides the storage model behind the paper's BERT
/// intermediate-vs-weight storage observation and a kernel walk used by the
/// heterogeneous-mapping example.

struct TransformerConfig {
    std::string name;
    std::int32_t layers = 12;     ///< Encoder blocks.
    std::int32_t hidden = 768;    ///< Model dimension d.
    std::int32_t heads = 12;      ///< Attention heads A.
    std::int32_t ff_dim = 3072;   ///< Feed-forward inner dimension.
    std::int32_t seq_len = 512;   ///< Tokens per sequence n.
    std::int32_t batch = 1;       ///< Concurrent sequences (intermediates scale).
    std::int32_t vocab = 30522;   ///< Embedding vocabulary.
};

/// BERT-Base (L=12, d=768, A=12, FF=3072, n=512).
[[nodiscard]] TransformerConfig bert_base();
/// BERT-Tiny (L=2, d=128, A=2, FF=512, n=128).
[[nodiscard]] TransformerConfig bert_tiny();

struct TransformerStorage {
    std::int64_t weight_params = 0;        ///< Encoder weights (no embeddings).
    std::int64_t embedding_params = 0;     ///< Token + position embeddings.
    std::int64_t intermediate_elems = 0;   ///< Stored intermediate matrix elements.
    /// The paper's metric: intermediate matrix storage over (encoder)
    /// weight matrix storage.
    [[nodiscard]] double intermediate_over_weights() const noexcept {
        return weight_params == 0
                   ? 0.0
                   : static_cast<double>(intermediate_elems) /
                         static_cast<double>(weight_params);
    }
};

/// Computes encoder weight storage and the intermediate matrices that must
/// be buffered (or written into crossbars) per inference:
/// Q/K/V projections, pre- and post-softmax score matrices (A·n² each),
/// attention context, attention output, FF hidden and FF output, per layer,
/// scaled by batch. See EXPERIMENTS.md for the calibration against the
/// paper's 8.98x (BERT-Base) and 2.06x (BERT-Tiny) figures.
[[nodiscard]] TransformerStorage analyze_storage(const TransformerConfig& cfg);

/// One schedulable kernel of an encoder stack.
enum class KernelClass {
    kStaticWeight,   ///< Fixed weight matrix (QKV/output projection, FF) — PIM-friendly.
    kDynamicMatrix,  ///< Rewritten per input (score MVMs) — needs SRAM/tensor cores.
    kElementwise,    ///< Softmax / layer-norm / residual — lightweight.
};

struct TransformerKernel {
    std::string name;
    KernelClass cls = KernelClass::kStaticWeight;
    std::int64_t weight_params = 0;   ///< 0 for dynamic/elementwise kernels.
    std::int64_t work_macs = 0;       ///< MACs per inference (batch-scaled).
    std::int64_t activation_elems = 0;  ///< Output activations to the next kernel.
};

/// Kernel-by-kernel walk of the encoder stack in dataflow order. The
/// heterogeneous-mapping example assigns kStaticWeight kernels to the
/// ReRAM SFC macro and kDynamicMatrix kernels to non-PIM modules.
[[nodiscard]] std::vector<TransformerKernel> kernel_walk(const TransformerConfig& cfg);

}  // namespace floretsim::dnn
