#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/dnn/layer.h"

namespace floretsim::dnn {

/// A DNN inference graph: layers plus directed activation edges.
///
/// Networks are built through the add_* methods, which perform the shape
/// arithmetic (conv output sizes, pooling, concat channel sums) and record
/// activation edges automatically. The graph is a DAG whose topological
/// order is the insertion order — the "dataflow" that the paper's mapping
/// exploits.
class Network {
public:
    explicit Network(std::string name) : name_(std::move(name)) {}

    /// Registers the input pseudo-layer. Must be called exactly once,
    /// first. Returns its layer id.
    std::int32_t add_input(Shape s);

    /// Conv with square kernel. `has_bn` folds batch-norm parameters in.
    /// Returns the new layer id; adds edge from `from`.
    std::int32_t add_conv(std::int32_t from, std::int32_t out_c, std::int32_t kernel,
                          std::int32_t stride, std::int32_t padding, bool has_bias,
                          bool has_bn, std::int32_t groups = 1,
                          const std::string& name = {});

    /// Max/avg pooling (treated identically for traffic purposes).
    std::int32_t add_pool(std::int32_t from, std::int32_t kernel, std::int32_t stride,
                          std::int32_t padding = 0, const std::string& name = {});

    /// Global average pool to 1x1 spatial.
    std::int32_t add_global_pool(std::int32_t from, const std::string& name = {});

    /// Fully connected layer over the flattened input.
    std::int32_t add_fc(std::int32_t from, std::int32_t out_features, bool has_bias = true,
                        const std::string& name = {});

    /// Residual elementwise add joining branches `a` and `b` (same shape).
    /// The edge from the earlier-id branch is marked as a skip edge when it
    /// bypasses intermediate layers.
    std::int32_t add_add(std::int32_t a, std::int32_t b, const std::string& name = {});

    /// Channel-wise concatenation of the given branches (equal H/W).
    std::int32_t add_concat(std::span<const std::int32_t> from,
                            const std::string& name = {});

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<Layer>& layers() const noexcept { return layers_; }
    [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
    [[nodiscard]] const Layer& layer(std::int32_t id) const { return layers_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }

    /// Total trainable parameters (validated against published counts).
    [[nodiscard]] std::int64_t total_params() const noexcept;

    /// Total MACs per inference.
    [[nodiscard]] std::int64_t total_macs() const noexcept;

    /// Sum of activation elements over all edges (one inference pass).
    [[nodiscard]] std::int64_t total_edge_activations() const noexcept;

    /// Sum of activation elements over skip edges only.
    [[nodiscard]] std::int64_t skip_edge_activations() const noexcept;

    /// Layers that hold weights (Conv/FC) in topological order — the units
    /// the PIM partitioner maps onto chiplets.
    [[nodiscard]] std::vector<std::int32_t> weight_layer_ids() const;

private:
    std::int32_t push_layer(Layer l);
    void push_edge(std::int32_t src, std::int32_t dst);

    std::string name_;
    std::vector<Layer> layers_;
    std::vector<Edge> edges_;
};

}  // namespace floretsim::dnn
