#pragma once

#include <cstdint>
#include <string>

namespace floretsim::dnn {

/// Kinds of inference-time layers we model. Batch-norm and activation
/// functions are folded into the preceding Conv/FC (standard practice for
/// PIM inference accelerators); their parameters are accounted for via
/// Layer::has_bn.
enum class LayerKind {
    kInput,       ///< Pseudo-layer holding the network input shape.
    kConv,        ///< 2D convolution (optionally grouped).
    kFc,          ///< Fully connected (dense) layer.
    kPool,        ///< Max/avg pooling (no weights).
    kGlobalPool,  ///< Global average pooling to 1x1.
    kAdd,         ///< Elementwise residual add (joins two branches).
    kConcat,      ///< Channel concatenation (DenseNet/Inception joins).
};

/// CHW tensor shape of a feature map.
struct Shape {
    std::int32_t c = 0;
    std::int32_t h = 0;
    std::int32_t w = 0;

    [[nodiscard]] constexpr std::int64_t elems() const noexcept {
        return static_cast<std::int64_t>(c) * h * w;
    }
    friend constexpr bool operator==(const Shape&, const Shape&) = default;
};

/// One layer of a DNN. Weight and activation volumes are derived from the
/// shape arithmetic, so parameter totals can be validated against the
/// published model sizes (see tests/test_dnn_zoo.cpp).
struct Layer {
    std::int32_t id = -1;
    std::string name;
    LayerKind kind = LayerKind::kInput;
    Shape in;   ///< Input feature-map shape (of one branch for Add/Concat).
    Shape out;  ///< Output feature-map shape.

    // Conv-specific geometry (ignored for other kinds).
    std::int32_t kernel = 0;
    std::int32_t stride = 1;
    std::int32_t padding = 0;
    std::int32_t groups = 1;

    bool has_bias = false;
    bool has_bn = false;  ///< Folded batch-norm contributes 2*out.c params.

    /// Trainable parameters of this layer (weights + bias + folded BN).
    [[nodiscard]] std::int64_t weight_params() const noexcept {
        std::int64_t p = 0;
        switch (kind) {
            case LayerKind::kConv:
                p = static_cast<std::int64_t>(kernel) * kernel *
                    (in.c / groups) * out.c;
                break;
            case LayerKind::kFc:
                p = static_cast<std::int64_t>(in.elems()) * out.c;
                break;
            default:
                return 0;
        }
        if (has_bias) p += out.c;
        if (has_bn) p += 2LL * out.c;
        return p;
    }

    /// Multiply-accumulate operations for one inference pass.
    [[nodiscard]] std::int64_t macs() const noexcept {
        switch (kind) {
            case LayerKind::kConv:
                return static_cast<std::int64_t>(out.h) * out.w * out.c *
                       kernel * kernel * (in.c / groups);
            case LayerKind::kFc:
                return static_cast<std::int64_t>(in.elems()) * out.c;
            default:
                return 0;
        }
    }

    /// Activation elements this layer produces.
    [[nodiscard]] std::int64_t output_activations() const noexcept {
        return out.elems();
    }
};

/// Directed activation flow between two layers. `elems` is the number of
/// activation elements transferred per inference. `skip` marks edges that
/// bypass at least one intermediate layer (residual/dense shortcuts) — the
/// non-contiguous traffic the paper singles out for ResNet-class models.
struct Edge {
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::int64_t elems = 0;
    bool skip = false;
};

}  // namespace floretsim::dnn
