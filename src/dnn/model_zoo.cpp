#include "src/dnn/model_zoo.h"

#include <array>
#include <stdexcept>

namespace floretsim::dnn {
namespace {

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

/// Basic residual block (two 3x3 convs). Returns the id of the Add node.
std::int32_t basic_block(Network& net, std::int32_t from, std::int32_t out_c,
                         std::int32_t stride, const std::string& tag) {
    const std::int32_t c1 =
        net.add_conv(from, out_c, 3, stride, 1, /*bias=*/false, /*bn=*/true, 1, tag + ".conv1");
    const std::int32_t c2 =
        net.add_conv(c1, out_c, 3, 1, 1, false, true, 1, tag + ".conv2");
    std::int32_t shortcut = from;
    if (stride != 1 || net.layer(from).out.c != out_c) {
        shortcut = net.add_conv(from, out_c, 1, stride, 0, false, true, 1, tag + ".down");
    }
    return net.add_add(c2, shortcut, tag + ".add");
}

/// Bottleneck residual block (1x1 -> 3x3 -> 1x1, expansion 4). The stride
/// sits on the 3x3 conv (torchvision "ResNet v1.5").
std::int32_t bottleneck_block(Network& net, std::int32_t from, std::int32_t mid_c,
                              std::int32_t stride, const std::string& tag) {
    const std::int32_t out_c = mid_c * 4;
    const std::int32_t c1 = net.add_conv(from, mid_c, 1, 1, 0, false, true, 1, tag + ".conv1");
    const std::int32_t c2 = net.add_conv(c1, mid_c, 3, stride, 1, false, true, 1, tag + ".conv2");
    const std::int32_t c3 = net.add_conv(c2, out_c, 1, 1, 0, false, true, 1, tag + ".conv3");
    std::int32_t shortcut = from;
    if (stride != 1 || net.layer(from).out.c != out_c) {
        shortcut = net.add_conv(from, out_c, 1, stride, 0, false, true, 1, tag + ".down");
    }
    return net.add_add(c3, shortcut, tag + ".add");
}

Network build_resnet_imagenet_style(std::int32_t depth, Dataset dataset) {
    struct StageCfg {
        std::array<std::int32_t, 4> blocks;
        bool bottleneck;
    };
    StageCfg cfg{};
    switch (depth) {
        case 18: cfg = {{2, 2, 2, 2}, false}; break;
        case 34: cfg = {{3, 4, 6, 3}, false}; break;
        case 50: cfg = {{3, 4, 6, 3}, true}; break;
        case 101: cfg = {{3, 4, 23, 3}, true}; break;
        case 152: cfg = {{3, 8, 36, 3}, true}; break;
        default: throw std::invalid_argument("unsupported ResNet depth");
    }
    Network net("ResNet" + std::to_string(depth) + "@" + dataset_name(dataset));
    std::int32_t cur = net.add_input(input_shape(dataset));
    cur = net.add_conv(cur, 64, 7, 2, 3, false, true, 1, "stem.conv");
    cur = net.add_pool(cur, 3, 2, 1, "stem.pool");

    constexpr std::array<std::int32_t, 4> kStageChannels{64, 128, 256, 512};
    for (std::size_t s = 0; s < 4; ++s) {
        for (std::int32_t b = 0; b < cfg.blocks[s]; ++b) {
            const std::int32_t stride = (s > 0 && b == 0) ? 2 : 1;
            const std::string tag =
                "stage" + std::to_string(s + 1) + ".block" + std::to_string(b + 1);
            cur = cfg.bottleneck
                      ? bottleneck_block(net, cur, kStageChannels[s], stride, tag)
                      : basic_block(net, cur, kStageChannels[s], stride, tag);
        }
    }
    cur = net.add_global_pool(cur, "gap");
    net.add_fc(cur, num_classes(dataset), true, "fc");
    return net;
}

/// CIFAR-style 6n+2 ResNet (He et al. 2015, Section 4.2): thin 3x3 stem,
/// three stages of n basic blocks with 16/32/64 channels.
Network build_resnet_cifar_style(std::int32_t depth, Dataset dataset) {
    if ((depth - 2) % 6 != 0)
        throw std::invalid_argument("CIFAR ResNet depth must be 6n+2");
    const std::int32_t n = (depth - 2) / 6;
    Network net("ResNet" + std::to_string(depth) + "@" + dataset_name(dataset));
    std::int32_t cur = net.add_input(input_shape(dataset));
    cur = net.add_conv(cur, 16, 3, 1, 1, false, true, 1, "stem.conv");

    constexpr std::array<std::int32_t, 3> kStageChannels{16, 32, 64};
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::int32_t b = 0; b < n; ++b) {
            const std::int32_t stride = (s > 0 && b == 0) ? 2 : 1;
            const std::string tag =
                "stage" + std::to_string(s + 1) + ".block" + std::to_string(b + 1);
            cur = basic_block(net, cur, kStageChannels[s], stride, tag);
        }
    }
    cur = net.add_global_pool(cur, "gap");
    net.add_fc(cur, num_classes(dataset), true, "fc");
    return net;
}

// ---------------------------------------------------------------------------
// VGG
// ---------------------------------------------------------------------------

Network build_vgg_impl(std::int32_t depth, Dataset dataset) {
    // Stage configs: convs per stage for VGG-11/16/19 (channels are fixed).
    std::array<std::int32_t, 5> convs{};
    switch (depth) {
        case 11: convs = {1, 1, 2, 2, 2}; break;
        case 16: convs = {2, 2, 3, 3, 3}; break;
        case 19: convs = {2, 2, 4, 4, 4}; break;
        default: throw std::invalid_argument("unsupported VGG depth");
    }
    constexpr std::array<std::int32_t, 5> kChannels{64, 128, 256, 512, 512};

    Network net("VGG" + std::to_string(depth) + "@" + dataset_name(dataset));
    std::int32_t cur = net.add_input(input_shape(dataset));
    for (std::size_t s = 0; s < 5; ++s) {
        for (std::int32_t c = 0; c < convs[s]; ++c) {
            const std::string tag =
                "stage" + std::to_string(s + 1) + ".conv" + std::to_string(c + 1);
            cur = net.add_conv(cur, kChannels[s], 3, 1, 1, /*bias=*/true,
                               /*bn=*/false, 1, tag);
        }
        cur = net.add_pool(cur, 2, 2, 0, "stage" + std::to_string(s + 1) + ".pool");
    }
    if (dataset == Dataset::kImageNet) {
        cur = net.add_fc(cur, 4096, true, "fc1");
        cur = net.add_fc(cur, 4096, true, "fc2");
    } else {
        cur = net.add_fc(cur, 512, true, "fc1");
        cur = net.add_fc(cur, 512, true, "fc2");
    }
    net.add_fc(cur, num_classes(dataset), true, "fc3");
    return net;
}

// ---------------------------------------------------------------------------
// DenseNet-169
// ---------------------------------------------------------------------------

Network build_densenet_impl(Dataset dataset) {
    constexpr std::int32_t kGrowth = 32;
    constexpr std::array<std::int32_t, 4> kBlocks{6, 12, 32, 32};

    Network net(std::string("DenseNet169@") + dataset_name(dataset));
    std::int32_t cur = net.add_input(input_shape(dataset));
    cur = net.add_conv(cur, 2 * kGrowth, 7, 2, 3, false, true, 1, "stem.conv");
    cur = net.add_pool(cur, 3, 2, 1, "stem.pool");

    for (std::size_t blk = 0; blk < kBlocks.size(); ++blk) {
        // Dense connectivity, expressed as *accumulated streaming*: each
        // layer consumes the running concatenation and appends its growth
        // channels. Functionally identical to DenseNet's "concat of all
        // previous outputs", and faithful to how a pipelined dataflow
        // implementation moves the data: the accumulated feature map is
        // forwarded layer to layer instead of re-sent from every producer.
        for (std::int32_t l = 0; l < kBlocks[blk]; ++l) {
            const std::string tag = "block" + std::to_string(blk + 1) + ".layer" +
                                    std::to_string(l + 1);
            const std::int32_t b1 =
                net.add_conv(cur, 4 * kGrowth, 1, 1, 0, false, true, 1, tag + ".conv1");
            const std::int32_t b2 =
                net.add_conv(b1, kGrowth, 3, 1, 1, false, true, 1, tag + ".conv2");
            const std::array<std::int32_t, 2> feeds{cur, b2};
            cur = net.add_concat(std::span<const std::int32_t>(feeds), tag + ".cat");
        }
        if (blk + 1 < kBlocks.size()) {
            const std::int32_t half = net.layer(cur).out.c / 2;
            const std::string tag = "trans" + std::to_string(blk + 1);
            cur = net.add_conv(cur, half, 1, 1, 0, false, true, 1, tag + ".conv");
            cur = net.add_pool(cur, 2, 2, 0, tag + ".pool");
        }
    }
    cur = net.add_global_pool(cur, "gap");
    net.add_fc(cur, num_classes(dataset), true, "fc");
    return net;
}

// ---------------------------------------------------------------------------
// GoogLeNet (Inception v1, torchvision variant)
// ---------------------------------------------------------------------------

struct InceptionCfg {
    std::int32_t b1;          // 1x1 branch
    std::int32_t b2_reduce;   // 1x1 before the 3x3
    std::int32_t b2;          // 3x3 branch
    std::int32_t b3_reduce;   // 1x1 before the "5x5" (3x3 in torchvision)
    std::int32_t b3;          // "5x5" branch
    std::int32_t b4;          // pool-projection branch
};

std::int32_t inception(Network& net, std::int32_t from, const InceptionCfg& cfg,
                       const std::string& tag) {
    const std::int32_t b1 = net.add_conv(from, cfg.b1, 1, 1, 0, false, true, 1, tag + ".b1");
    const std::int32_t b2r =
        net.add_conv(from, cfg.b2_reduce, 1, 1, 0, false, true, 1, tag + ".b2r");
    const std::int32_t b2 = net.add_conv(b2r, cfg.b2, 3, 1, 1, false, true, 1, tag + ".b2");
    const std::int32_t b3r =
        net.add_conv(from, cfg.b3_reduce, 1, 1, 0, false, true, 1, tag + ".b3r");
    const std::int32_t b3 = net.add_conv(b3r, cfg.b3, 3, 1, 1, false, true, 1, tag + ".b3");
    const std::int32_t b4p = net.add_pool(from, 3, 1, 1, tag + ".b4pool");
    const std::int32_t b4 = net.add_conv(b4p, cfg.b4, 1, 1, 0, false, true, 1, tag + ".b4");
    const std::array<std::int32_t, 4> branches{b1, b2, b3, b4};
    return net.add_concat(std::span<const std::int32_t>(branches), tag + ".cat");
}

Network build_googlenet_impl(Dataset dataset) {
    Network net(std::string("GoogLeNet@") + dataset_name(dataset));
    std::int32_t cur = net.add_input(input_shape(dataset));
    cur = net.add_conv(cur, 64, 7, 2, 3, false, true, 1, "stem.conv1");
    cur = net.add_pool(cur, 3, 2, 1, "stem.pool1");
    cur = net.add_conv(cur, 64, 1, 1, 0, false, true, 1, "stem.conv2");
    cur = net.add_conv(cur, 192, 3, 1, 1, false, true, 1, "stem.conv3");
    cur = net.add_pool(cur, 3, 2, 1, "stem.pool2");

    cur = inception(net, cur, {64, 96, 128, 16, 32, 32}, "inc3a");
    cur = inception(net, cur, {128, 128, 192, 32, 96, 64}, "inc3b");
    cur = net.add_pool(cur, 3, 2, 1, "pool3");
    cur = inception(net, cur, {192, 96, 208, 16, 48, 64}, "inc4a");
    cur = inception(net, cur, {160, 112, 224, 24, 64, 64}, "inc4b");
    cur = inception(net, cur, {128, 128, 256, 24, 64, 64}, "inc4c");
    cur = inception(net, cur, {112, 144, 288, 32, 64, 64}, "inc4d");
    cur = inception(net, cur, {256, 160, 320, 32, 128, 128}, "inc4e");
    cur = net.add_pool(cur, 3, 2, 1, "pool4");
    cur = inception(net, cur, {256, 160, 320, 32, 128, 128}, "inc5a");
    cur = inception(net, cur, {384, 192, 384, 48, 128, 128}, "inc5b");
    cur = net.add_global_pool(cur, "gap");
    net.add_fc(cur, num_classes(dataset), true, "fc");
    return net;
}

}  // namespace

const char* dataset_name(Dataset d) noexcept {
    return d == Dataset::kImageNet ? "ImageNet" : "CIFAR-10";
}

Network build_resnet(std::int32_t depth, Dataset dataset) {
    if (depth == 110) return build_resnet_cifar_style(depth, dataset);
    return build_resnet_imagenet_style(depth, dataset);
}

Network build_vgg(std::int32_t depth, Dataset dataset) { return build_vgg_impl(depth, dataset); }

Network build_densenet169(Dataset dataset) { return build_densenet_impl(dataset); }

Network build_googlenet(Dataset dataset) { return build_googlenet_impl(dataset); }

Network build_model(const std::string& model, Dataset dataset) {
    if (model == "ResNet18") return build_resnet(18, dataset);
    if (model == "ResNet34") return build_resnet(34, dataset);
    if (model == "ResNet50") return build_resnet(50, dataset);
    if (model == "ResNet101") return build_resnet(101, dataset);
    if (model == "ResNet110") return build_resnet(110, dataset);
    if (model == "ResNet152") return build_resnet(152, dataset);
    if (model == "VGG11") return build_vgg(11, dataset);
    if (model == "VGG16") return build_vgg(16, dataset);
    if (model == "VGG19") return build_vgg(19, dataset);
    if (model == "DenseNet169") return build_densenet169(dataset);
    if (model == "GoogLeNet") return build_googlenet(dataset);
    throw std::invalid_argument("unknown model: " + model);
}

std::vector<std::string> available_models() {
    return {"ResNet18",  "ResNet34", "ResNet50",    "ResNet101", "ResNet110", "ResNet152",
            "VGG11",     "VGG16",    "VGG19",       "DenseNet169", "GoogLeNet"};
}

}  // namespace floretsim::dnn
