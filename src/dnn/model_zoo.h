#pragma once

#include <string>
#include <vector>

#include "src/dnn/network.h"

namespace floretsim::dnn {

/// Dataset determines the input resolution and classifier width.
enum class Dataset { kImageNet, kCifar10 };

[[nodiscard]] constexpr Shape input_shape(Dataset d) noexcept {
    return d == Dataset::kImageNet ? Shape{3, 224, 224} : Shape{3, 32, 32};
}
[[nodiscard]] constexpr std::int32_t num_classes(Dataset d) noexcept {
    return d == Dataset::kImageNet ? 1000 : 10;
}
[[nodiscard]] const char* dataset_name(Dataset d) noexcept;

/// ResNet builders. Depths 18/34 use basic blocks, 50/101/152 bottleneck
/// blocks (ImageNet-style stem). Depth 110 is the CIFAR-style 6n+2
/// architecture (n = 18, 16/32/64 channels) as published by He et al.;
/// with Dataset::kImageNet it keeps that thin-stem structure at 224x224,
/// matching the paper's (unusual) "ResNet110 on ImageNet" entry.
[[nodiscard]] Network build_resnet(std::int32_t depth, Dataset dataset);

/// VGG-11/16/19. ImageNet uses the standard 4096-4096 classifier; CIFAR-10
/// uses the common compact 512-512 classifier (the paper's Table I CIFAR
/// parameter counts are consistent with a compact classifier).
[[nodiscard]] Network build_vgg(std::int32_t depth, Dataset dataset);

/// DenseNet-169: growth 32, blocks {6,12,32,32}, compression 0.5,
/// bottleneck (1x1 to 4k, then 3x3 to k) layers, full dense connectivity
/// expressed through per-layer concat nodes (these become the dense skip
/// edges in the traffic model).
[[nodiscard]] Network build_densenet169(Dataset dataset);

/// GoogLeNet (Inception v1, torchvision variant: batch-norm, 3x3 in the
/// "5x5" branch, no auxiliary classifiers).
[[nodiscard]] Network build_googlenet(Dataset dataset);

/// Dispatch by model name: "ResNet18", "ResNet34", "ResNet50", "ResNet101",
/// "ResNet110", "ResNet152", "VGG11", "VGG16", "VGG19", "DenseNet169",
/// "GoogLeNet". Throws std::invalid_argument for unknown names.
[[nodiscard]] Network build_model(const std::string& model, Dataset dataset);

/// All model names accepted by build_model().
[[nodiscard]] std::vector<std::string> available_models();

}  // namespace floretsim::dnn
