#include "src/dnn/network.h"

#include <cassert>
#include <stdexcept>

namespace floretsim::dnn {
namespace {

constexpr std::int32_t conv_out_dim(std::int32_t in, std::int32_t kernel,
                                    std::int32_t stride, std::int32_t padding) noexcept {
    return (in + 2 * padding - kernel) / stride + 1;
}

}  // namespace

std::int32_t Network::push_layer(Layer l) {
    l.id = static_cast<std::int32_t>(layers_.size());
    layers_.push_back(std::move(l));
    return layers_.back().id;
}

void Network::push_edge(std::int32_t src, std::int32_t dst) {
    if (src < 0 || src >= static_cast<std::int32_t>(layers_.size()))
        throw std::out_of_range("Network edge: bad source layer id");
    Edge e;
    e.src = src;
    e.dst = dst;
    e.elems = layers_[static_cast<std::size_t>(src)].output_activations();
    // A shortcut that bypasses at least one layer inserted in between is
    // "skip" traffic: it connects non-consecutive points of the dataflow.
    e.skip = (dst - src) > 1;
    edges_.push_back(e);
}

std::int32_t Network::add_input(Shape s) {
    if (!layers_.empty()) throw std::logic_error("add_input must be called first");
    Layer l;
    l.name = "input";
    l.kind = LayerKind::kInput;
    l.in = s;
    l.out = s;
    return push_layer(std::move(l));
}

std::int32_t Network::add_conv(std::int32_t from, std::int32_t out_c, std::int32_t kernel,
                               std::int32_t stride, std::int32_t padding, bool has_bias,
                               bool has_bn, std::int32_t groups, const std::string& name) {
    const Layer& src = layer(from);
    Layer l;
    l.name = name.empty() ? "conv" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kConv;
    l.in = src.out;
    l.kernel = kernel;
    l.stride = stride;
    l.padding = padding;
    l.groups = groups;
    l.has_bias = has_bias;
    l.has_bn = has_bn;
    l.out = Shape{out_c, conv_out_dim(src.out.h, kernel, stride, padding),
                  conv_out_dim(src.out.w, kernel, stride, padding)};
    if (l.out.h <= 0 || l.out.w <= 0)
        throw std::invalid_argument("conv collapses spatial dims: " + l.name);
    const std::int32_t id = push_layer(std::move(l));
    push_edge(from, id);
    return id;
}

std::int32_t Network::add_pool(std::int32_t from, std::int32_t kernel, std::int32_t stride,
                               std::int32_t padding, const std::string& name) {
    const Layer& src = layer(from);
    Layer l;
    l.name = name.empty() ? "pool" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kPool;
    l.in = src.out;
    l.kernel = kernel;
    l.stride = stride;
    l.padding = padding;
    l.out = Shape{src.out.c, conv_out_dim(src.out.h, kernel, stride, padding),
                  conv_out_dim(src.out.w, kernel, stride, padding)};
    const std::int32_t id = push_layer(std::move(l));
    push_edge(from, id);
    return id;
}

std::int32_t Network::add_global_pool(std::int32_t from, const std::string& name) {
    const Layer& src = layer(from);
    Layer l;
    l.name = name.empty() ? "gap" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kGlobalPool;
    l.in = src.out;
    l.out = Shape{src.out.c, 1, 1};
    const std::int32_t id = push_layer(std::move(l));
    push_edge(from, id);
    return id;
}

std::int32_t Network::add_fc(std::int32_t from, std::int32_t out_features, bool has_bias,
                             const std::string& name) {
    const Layer& src = layer(from);
    Layer l;
    l.name = name.empty() ? "fc" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kFc;
    l.in = src.out;
    l.has_bias = has_bias;
    l.out = Shape{out_features, 1, 1};
    const std::int32_t id = push_layer(std::move(l));
    push_edge(from, id);
    return id;
}

std::int32_t Network::add_add(std::int32_t a, std::int32_t b, const std::string& name) {
    const Layer& la = layer(a);
    const Layer& lb = layer(b);
    if (la.out != lb.out)
        throw std::invalid_argument("residual add with mismatched shapes: " +
                                    la.name + " vs " + lb.name);
    Layer l;
    l.name = name.empty() ? "add" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kAdd;
    l.in = la.out;
    l.out = la.out;
    const std::int32_t id = push_layer(std::move(l));
    push_edge(a, id);
    push_edge(b, id);
    return id;
}

std::int32_t Network::add_concat(std::span<const std::int32_t> from, const std::string& name) {
    if (from.empty()) throw std::invalid_argument("concat of zero branches");
    const Layer& first = layer(from.front());
    Shape out = first.out;
    out.c = 0;
    for (const std::int32_t src : from) {
        const Layer& ls = layer(src);
        if (ls.out.h != first.out.h || ls.out.w != first.out.w)
            throw std::invalid_argument("concat with mismatched spatial dims");
        out.c += ls.out.c;
    }
    Layer l;
    l.name = name.empty() ? "concat" + std::to_string(layers_.size()) : name;
    l.kind = LayerKind::kConcat;
    l.in = first.out;
    l.out = out;
    const std::int32_t id = push_layer(std::move(l));
    for (const std::int32_t src : from) push_edge(src, id);
    return id;
}

std::int64_t Network::total_params() const noexcept {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l.weight_params();
    return total;
}

std::int64_t Network::total_macs() const noexcept {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l.macs();
    return total;
}

std::int64_t Network::total_edge_activations() const noexcept {
    std::int64_t total = 0;
    for (const auto& e : edges_) total += e.elems;
    return total;
}

std::int64_t Network::skip_edge_activations() const noexcept {
    std::int64_t total = 0;
    for (const auto& e : edges_)
        if (e.skip) total += e.elems;
    return total;
}

std::vector<std::int32_t> Network::weight_layer_ids() const {
    std::vector<std::int32_t> ids;
    for (const auto& l : layers_)
        if (l.kind == LayerKind::kConv || l.kind == LayerKind::kFc) ids.push_back(l.id);
    return ids;
}

}  // namespace floretsim::dnn
