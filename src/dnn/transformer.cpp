#include "src/dnn/transformer.h"

namespace floretsim::dnn {

TransformerConfig bert_base() {
    TransformerConfig cfg;
    cfg.name = "BERT-Base";
    cfg.layers = 12;
    cfg.hidden = 768;
    cfg.heads = 12;
    cfg.ff_dim = 3072;
    cfg.seq_len = 512;
    cfg.vocab = 30522;
    return cfg;
}

TransformerConfig bert_tiny() {
    TransformerConfig cfg;
    cfg.name = "BERT-Tiny";
    cfg.layers = 2;
    cfg.hidden = 128;
    cfg.heads = 2;
    cfg.ff_dim = 512;
    cfg.seq_len = 128;
    cfg.vocab = 30522;
    return cfg;
}

TransformerStorage analyze_storage(const TransformerConfig& cfg) {
    const auto d = static_cast<std::int64_t>(cfg.hidden);
    const auto n = static_cast<std::int64_t>(cfg.seq_len);
    const auto a = static_cast<std::int64_t>(cfg.heads);
    const auto ff = static_cast<std::int64_t>(cfg.ff_dim);
    const auto b = static_cast<std::int64_t>(cfg.batch);

    TransformerStorage s;
    // Per-encoder weights: Q,K,V,O projections (d x d + bias each) plus the
    // two FF matrices (d x ff and ff x d with biases) plus layer-norm gains.
    const std::int64_t attn_w = 4 * (d * d + d);
    const std::int64_t ff_w = d * ff + ff + ff * d + d;
    const std::int64_t ln_w = 2 * 2 * d;
    s.weight_params = cfg.layers * (attn_w + ff_w + ln_w);
    s.embedding_params = cfg.vocab * d + n * d;

    // Intermediates stored per layer, per sequence: Q, K, V (n x d each),
    // pre-softmax scores and post-softmax probabilities (A x n x n each),
    // attention context (n x d), attention output (n x d), FF hidden
    // (n x ff) and FF output (n x d).
    const std::int64_t per_layer =
        3 * n * d + 2 * a * n * n + n * d + n * d + n * ff + n * d;
    s.intermediate_elems = b * cfg.layers * per_layer;
    return s;
}

std::vector<TransformerKernel> kernel_walk(const TransformerConfig& cfg) {
    const auto d = static_cast<std::int64_t>(cfg.hidden);
    const auto n = static_cast<std::int64_t>(cfg.seq_len);
    const auto a = static_cast<std::int64_t>(cfg.heads);
    const auto ff = static_cast<std::int64_t>(cfg.ff_dim);
    const auto b = static_cast<std::int64_t>(cfg.batch);

    std::vector<TransformerKernel> ks;
    ks.reserve(static_cast<std::size_t>(cfg.layers) * 7);
    for (std::int32_t l = 0; l < cfg.layers; ++l) {
        const std::string tag = "enc" + std::to_string(l + 1);
        ks.push_back({tag + ".qkv_proj", KernelClass::kStaticWeight, 3 * d * d,
                      b * 3 * n * d * d, b * 3 * n * d});
        ks.push_back({tag + ".scores", KernelClass::kDynamicMatrix, 0,
                      b * a * n * n * (d / a), b * a * n * n});
        ks.push_back({tag + ".softmax", KernelClass::kElementwise, 0, 0, b * a * n * n});
        ks.push_back({tag + ".context", KernelClass::kDynamicMatrix, 0,
                      b * a * n * n * (d / a), b * n * d});
        ks.push_back({tag + ".out_proj", KernelClass::kStaticWeight, d * d,
                      b * n * d * d, b * n * d});
        ks.push_back({tag + ".ff1", KernelClass::kStaticWeight, d * ff,
                      b * n * d * ff, b * n * ff});
        ks.push_back({tag + ".ff2", KernelClass::kStaticWeight, ff * d,
                      b * n * ff * d, b * n * d});
    }
    return ks;
}

}  // namespace floretsim::dnn
