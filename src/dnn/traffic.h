#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/dnn/network.h"

namespace floretsim::dnn {

/// A point-to-point traffic demand between two NoI/NoC nodes, produced by
/// projecting a network's activation edges through a layer->node mapping.
struct Flow {
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::int64_t bytes = 0;
    bool skip = false;  ///< Originates from a residual/dense skip edge.
};

/// Projects the activation edges of `net` onto inter-node flows, given the
/// set of nodes each layer occupies (`layer_nodes[id]`; every layer id must
/// have at least one node). Each edge's byte volume is split uniformly over
/// all (src node, dst node) pairs; pairs on the same node are dropped (no
/// on-chip network traffic).
inline std::vector<Flow> extract_flows(
    const Network& net, std::span<const std::vector<std::int32_t>> layer_nodes,
    std::int32_t bytes_per_elem) {
    if (layer_nodes.size() != net.size())
        throw std::invalid_argument("layer_nodes must cover every layer");
    std::vector<Flow> flows;
    for (const Edge& e : net.edges()) {
        const auto& src_nodes = layer_nodes[static_cast<std::size_t>(e.src)];
        const auto& dst_nodes = layer_nodes[static_cast<std::size_t>(e.dst)];
        if (src_nodes.empty() || dst_nodes.empty())
            throw std::invalid_argument("unmapped layer in flow extraction");
        const double pair_bytes =
            static_cast<double>(e.elems) * bytes_per_elem /
            (static_cast<double>(src_nodes.size()) * static_cast<double>(dst_nodes.size()));
        for (const std::int32_t s : src_nodes) {
            for (const std::int32_t d : dst_nodes) {
                if (s == d) continue;
                flows.push_back(Flow{s, d, static_cast<std::int64_t>(pair_bytes + 0.5),
                                     e.skip});
            }
        }
    }
    return flows;
}

/// Sum of all flow bytes (the NoI traffic volume of one inference pass).
inline std::int64_t total_flow_bytes(std::span<const Flow> flows) noexcept {
    std::int64_t total = 0;
    for (const auto& f : flows) total += f.bytes;
    return total;
}

}  // namespace floretsim::dnn
