#include "src/obs/build_info.h"

namespace floretsim::obs {

const char* build_type() {
#ifdef FLORETSIM_BUILD_TYPE
    return FLORETSIM_BUILD_TYPE[0] ? FLORETSIM_BUILD_TYPE : "unknown";
#else
    return "unknown";
#endif
}

const char* git_sha() {
#ifdef FLORETSIM_GIT_SHA
    return FLORETSIM_GIT_SHA[0] ? FLORETSIM_GIT_SHA : "unknown";
#else
    return "unknown";
#endif
}

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

util::Json build_info_json() {
    util::Json j = util::Json::object();
    j.set("build_type", std::string(build_type()));
    j.set("compiler", compiler_id());
    j.set("git_sha", std::string(git_sha()));
    return j;
}

}  // namespace floretsim::obs
