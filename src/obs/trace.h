#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.h"

namespace floretsim::obs {

/// Span tracer: records (name, category, start, duration) events into
/// per-thread ring buffers and exports them as Chrome trace-event JSON —
/// openable in chrome://tracing or https://ui.perfetto.dev. Same
/// constraints as the MetricsRegistry: disabled by default, one relaxed
/// atomic load per call while off, and write-only (tracing can never
/// change a simulation result, only describe where its wall time went).
///
/// Ring buffers bound memory on any run length: each thread keeps the
/// most recent `capacity` events and counts the overwritten ones
/// (dropped()). Timestamps are CLOCK_MONOTONIC microseconds, shared by
/// every process on the host, so traces absorbed from shard workers line
/// up with the coordinator's own spans on one timeline.
class Tracer {
public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// The tracer every instrumented call site records into.
    [[nodiscard]] static Tracer& global();

    /// Starts recording; per-thread rings hold `capacity_per_thread`
    /// events (existing rings keep their capacity).
    void enable(std::size_t capacity_per_thread = kDefaultCapacity);
    void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Monotonic microseconds — the tracer's timestamp domain.
    [[nodiscard]] static std::int64_t now_us() noexcept;

    /// Records one complete span. `name` and `cat` must outlive the
    /// tracer: string literals, or intern() for dynamic names. No-op
    /// while disabled.
    void record(const char* name, const char* cat, std::int64_t ts_us,
                std::int64_t dur_us);

    /// Records a durationless instant event (Chrome "i" phase) — a marker
    /// for point-in-time facts like a worker death or a stolen lease.
    /// Same lifetime rules as record(). No-op while disabled.
    void record_instant(const char* name, const char* cat, std::int64_t ts_us);

    /// Stable storage for a dynamic span name (deduplicated).
    [[nodiscard]] const char* intern(std::string_view s);

    /// Label for this process in the trace viewer (emitted as Chrome
    /// process_name metadata), e.g. "coordinator" or "worker shard 2/4".
    void set_process_label(std::string label);

    /// Appends the traceEvents of a foreign Chrome-trace document (a
    /// shard worker's --trace-out file) to this tracer's export — the
    /// coordinator-side merge. Throws std::invalid_argument when the
    /// document has no traceEvents array.
    void absorb(const util::Json& chrome_doc);

    /// The merged Chrome trace-event document:
    /// {"traceEvents": [...]}, own events sorted by timestamp, absorbed
    /// events appended verbatim.
    [[nodiscard]] util::Json chrome_trace() const;

    /// Serializes chrome_trace() to `path`. Empty path is a no-op
    /// returning true; an unwritable path returns false (note on stderr).
    [[nodiscard]] bool write(const std::string& path) const;

    /// Events currently held in this process's rings (absorbed foreign
    /// events not included).
    [[nodiscard]] std::size_t event_count() const;
    /// Events overwritten by ring wrap-around, across all threads.
    [[nodiscard]] std::uint64_t dropped() const;

    /// Clears recorded, absorbed, and interned state (rings stay
    /// registered). Not synchronized against concurrent recording.
    void reset();

private:
    struct ThreadLog;
    [[nodiscard]] ThreadLog& local_log();

    std::atomic<bool> enabled_{false};
    std::uint64_t id_;  ///< Distinguishes tracer instances in the TLS cache.
    mutable std::mutex mu_;
    std::size_t capacity_ = kDefaultCapacity;
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    std::deque<std::string> interned_;  ///< Stable addresses for intern().
    std::map<std::string, const char*, std::less<>> intern_index_;
    std::string process_label_;
    std::vector<util::Json> foreign_;  ///< absorb()ed events, verbatim.
};

/// RAII span: times its scope and records it on destruction. Free when
/// the tracer is disabled (one atomic load in the constructor).
class Span {
public:
    explicit Span(const char* name, const char* cat = "run") noexcept
        : name_(name),
          cat_(cat),
          t0_(Tracer::global().enabled() ? Tracer::now_us() : -1) {}
    ~Span() {
        if (t0_ >= 0)
            Tracer::global().record(name_, cat_, t0_, Tracer::now_us() - t0_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    const char* cat_;
    std::int64_t t0_;
};

}  // namespace floretsim::obs
