#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace floretsim::obs {
namespace {

struct Event {
    const char* name;
    const char* cat;
    std::int64_t ts_us;
    std::int64_t dur_us;
};

std::uint64_t next_tracer_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

struct Tracer::ThreadLog {
    std::mutex mu;
    std::size_t capacity = kDefaultCapacity;
    std::vector<Event> ring;
    std::uint64_t total = 0;  ///< Events ever recorded; ring holds the tail.
    std::int32_t tid = 0;     ///< Registration index, the exported "tid".
};

Tracer::Tracer() : id_(next_tracer_id()) {}
Tracer::~Tracer() = default;

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

void Tracer::enable(std::size_t capacity_per_thread) {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        capacity_ = std::max<std::size_t>(1, capacity_per_thread);
    }
    enabled_.store(true, std::memory_order_relaxed);
}

std::int64_t Tracer::now_us() noexcept {
    // steady_clock is CLOCK_MONOTONIC on Linux: one host-wide timeline,
    // so coordinator and worker spans merge without re-basing.
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Tracer::ThreadLog& Tracer::local_log() {
    struct CacheEntry {
        std::uint64_t id;
        ThreadLog* log;
    };
    thread_local std::vector<CacheEntry> cache;
    for (const auto& e : cache)
        if (e.id == id_) return *e.log;
    const std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    ThreadLog* log = logs_.back().get();
    log->capacity = capacity_;
    log->tid = static_cast<std::int32_t>(logs_.size());
    cache.push_back({id_, log});
    return *log;
}

void Tracer::record(const char* name, const char* cat, std::int64_t ts_us,
                    std::int64_t dur_us) {
    if (!enabled()) return;
    ThreadLog& log = local_log();
    const std::lock_guard<std::mutex> lock(log.mu);
    const Event e{name, cat, ts_us, dur_us};
    if (log.ring.size() < log.capacity)
        log.ring.push_back(e);
    else
        log.ring[static_cast<std::size_t>(log.total % log.capacity)] = e;
    ++log.total;
}

void Tracer::record_instant(const char* name, const char* cat,
                            std::int64_t ts_us) {
    // Instant events ride the same ring as spans, tagged with the
    // impossible duration -1; the export turns that into ph:"i".
    record(name, cat, ts_us, -1);
}

const char* Tracer::intern(std::string_view s) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = intern_index_.find(s);
    if (it != intern_index_.end()) return it->second;
    interned_.emplace_back(s);
    const char* stable = interned_.back().c_str();
    intern_index_.emplace(std::string(s), stable);
    return stable;
}

void Tracer::set_process_label(std::string label) {
    const std::lock_guard<std::mutex> lock(mu_);
    process_label_ = std::move(label);
}

void Tracer::absorb(const util::Json& chrome_doc) {
    if (chrome_doc.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("chrome trace: expected an object");
    const util::Json* events = chrome_doc.find("traceEvents");
    if (!events || events->kind() != util::Json::Kind::kArray)
        throw std::invalid_argument("chrome trace: need a traceEvents array");
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : events->as_array()) foreign_.push_back(e);
}

util::Json Tracer::chrome_trace() const {
    struct Tagged {
        Event event;
        std::int32_t tid;
    };
    std::vector<Tagged> own;
    std::string label;
    std::vector<util::Json> foreign;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        for (const auto& log : logs_) {
            const std::lock_guard<std::mutex> log_lock(log->mu);
            // Ring order is irrelevant here: the export sorts by
            // timestamp anyway, so just take every held event.
            for (const auto& e : log->ring) own.push_back({e, log->tid});
        }
        label = process_label_;
        foreign = foreign_;
    }
    std::sort(own.begin(), own.end(), [](const Tagged& a, const Tagged& b) {
        if (a.event.ts_us != b.event.ts_us) return a.event.ts_us < b.event.ts_us;
        return a.tid < b.tid;
    });

    const std::int64_t pid = static_cast<std::int64_t>(getpid());
    util::Json events = util::Json::array();
    if (!label.empty()) {
        util::Json meta = util::Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", pid);
        meta.set("tid", std::int64_t{0});
        util::Json args = util::Json::object();
        args.set("name", label);
        meta.set("args", std::move(args));
        events.push_back(std::move(meta));
    }
    for (const auto& t : own) {
        util::Json e = util::Json::object();
        e.set("name", std::string(t.event.name));
        e.set("cat", std::string(t.event.cat));
        if (t.event.dur_us < 0) {
            e.set("ph", "i");
            e.set("s", "p");  // process-scoped instant marker
        } else {
            e.set("ph", "X");
            e.set("dur", t.event.dur_us);
        }
        e.set("ts", t.event.ts_us);
        e.set("pid", pid);
        e.set("tid", std::int64_t{t.tid});
        events.push_back(std::move(e));
    }
    for (auto& e : foreign) events.push_back(std::move(e));

    util::Json doc = util::Json::object();
    doc.set("traceEvents", std::move(events));
    return doc;
}

bool Tracer::write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
        return false;
    }
    f << util::json_serialize(chrome_trace());
    return static_cast<bool>(f);
}

std::size_t Tracer::event_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& log : logs_) {
        const std::lock_guard<std::mutex> log_lock(log->mu);
        n += log->ring.size();
    }
    return n;
}

std::uint64_t Tracer::dropped() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& log : logs_) {
        const std::lock_guard<std::mutex> log_lock(log->mu);
        if (log->total > log->ring.size()) n += log->total - log->ring.size();
    }
    return n;
}

void Tracer::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& log : logs_) {
        const std::lock_guard<std::mutex> log_lock(log->mu);
        log->ring.clear();
        log->total = 0;
        log->capacity = capacity_;
    }
    foreign_.clear();
    process_label_.clear();
    // Interned names may still be referenced by live Span objects on
    // other threads; reset() is documented as quiesced-only, so clearing
    // is safe here — but keep the storage anyway: names are tiny and a
    // stale pointer bug would be far worse than a few retained strings.
}

}  // namespace floretsim::obs
