#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.h"

namespace floretsim::obs {

/// Process-wide registry of named counters, gauges, and histograms — the
/// characterization layer for the hot paths (fabric cache, wormhole sims,
/// engine phases, serving admissions). Design constraints, in order:
///
///   zero-cost-when-off:  every recording call is one relaxed atomic load
///                        and a branch while the registry is disabled (the
///                        default), so instrumented hot loops pay nothing
///                        in ordinary runs;
///   never perturb:       recording is write-only — no instrumented code
///                        path ever reads a metric back, so reports are
///                        bit-identical with metrics on or off (pinned by
///                        the obs parity check in bench_smoke.sh);
///   deterministic:       snapshot() depends only on WHAT was recorded,
///                        never on thread interleaving or wall clock.
///                        Counters and histogram buckets merge by
///                        order-independent integer sums; keys serialize
///                        sorted. Wall-clock durations belong in the
///                        obs::Tracer, not here.
///
/// Threading: each recording thread lazily registers a private shard (its
/// own mutex, uncontended on the hot path); snapshot() merges the shards
/// under the registry mutex. Gauges are last-writer-wins process-level
/// values — set them from one place (driver config, not worker threads)
/// or the merge order is unspecified.
///
/// Histograms bucket samples into powers of two (log2 buckets), so the
/// bucket counts — like the counters — merge deterministically across any
/// thread split. Quantile estimates (p50/p95/p99) are computed at
/// snapshot time by replaying the bucket midpoints through
/// util::P2Quantile in ascending order; they are bucket-resolution
/// estimates, while count/min/max are exact.
class MetricsRegistry {
public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The registry every instrumented call site records into.
    [[nodiscard]] static MetricsRegistry& global();

    void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
    void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Adds `delta` to the named counter. No-op while disabled.
    void add(std::string_view counter, std::int64_t delta = 1);
    /// Sets the named gauge (last writer wins). No-op while disabled.
    void set_gauge(std::string_view gauge, double value);
    /// Adds one sample to the named histogram. No-op while disabled.
    void observe(std::string_view histogram, double value);

    /// Deterministic merged view of every shard:
    ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
    /// with keys sorted and histogram entries carrying count/min/max,
    /// p50/p95/p99 estimates, and the raw log2 bucket counts.
    [[nodiscard]] util::Json snapshot() const;

    /// Serializes snapshot() to `path`. Empty path is a no-op returning
    /// true; an unwritable path returns false (with a note on stderr).
    [[nodiscard]] bool write(const std::string& path) const;

    /// Merges a foreign snapshot() document (e.g. read back from a shard
    /// worker's --metrics-out file) into this registry: counters and
    /// histogram buckets add, gauges overwrite. The quantile estimates in
    /// the document are ignored — they are recomputed from the merged
    /// buckets. Throws std::invalid_argument on a malformed document.
    void absorb(const util::Json& snapshot_doc);

    /// Clears every recorded value (shards stay registered, so concurrent
    /// recorders keep valid handles). Not synchronized against concurrent
    /// recording — quiesce first, as between test cases.
    void reset();

private:
    struct Shard;
    [[nodiscard]] Shard& local_shard();

    std::atomic<bool> enabled_{false};
    std::uint64_t id_;  ///< Distinguishes registry instances in the TLS cache.
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace floretsim::obs
