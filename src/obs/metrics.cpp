#include "src/obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/util/stats.h"

namespace floretsim::obs {
namespace {

/// Log2 bucket key for a histogram sample: the binary exponent from
/// frexp, so bucket b covers [2^(b-1), 2^b). Samples <= 0 (and
/// non-finite ones) share the sentinel bucket — histograms here measure
/// magnitudes (cycles, rounds, bytes), where non-positive values are
/// degenerate, not interesting.
constexpr int kNonPositiveBucket = std::numeric_limits<int>::min();

int bucket_of(double v) {
    if (!(v > 0.0) || !std::isfinite(v)) return kNonPositiveBucket;
    int exp = 0;
    (void)std::frexp(v, &exp);
    return exp;
}

/// The value a bucket's samples are replayed as when estimating
/// quantiles: the geometric-ish midpoint 0.75 * 2^b of [2^(b-1), 2^b).
double bucket_representative(int bucket) {
    if (bucket == kNonPositiveBucket) return 0.0;
    return std::ldexp(0.75, bucket);
}

struct HistData {
    std::int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::map<int, std::int64_t> buckets;

    void observe(double v) {
        if (count == 0) {
            min = max = v;
        } else {
            min = std::min(min, v);
            max = std::max(max, v);
        }
        ++count;
        ++buckets[bucket_of(v)];
    }

    void merge(const HistData& other) {
        if (other.count == 0) return;
        if (count == 0) {
            min = other.min;
            max = other.max;
        } else {
            min = std::min(min, other.min);
            max = std::max(max, other.max);
        }
        count += other.count;
        for (const auto& [b, n] : other.buckets) buckets[b] += n;
    }
};

}  // namespace

struct MetricsRegistry::Shard {
    std::mutex mu;
    std::map<std::string, std::int64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, HistData, std::less<>> hists;
};

namespace {

std::uint64_t next_registry_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
    // Per-thread cache of this registry's shard. Keyed by the registry id
    // (never reused), so a destroyed registry can only ever miss. Shards
    // are cleared, never deallocated, by reset() — cached pointers stay
    // valid for the registry's lifetime.
    struct CacheEntry {
        std::uint64_t id;
        Shard* shard;
    };
    thread_local std::vector<CacheEntry> cache;
    for (const auto& e : cache)
        if (e.id == id_) return *e.shard;
    const std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    Shard* shard = shards_.back().get();
    cache.push_back({id_, shard});
    return *shard;
}

void MetricsRegistry::add(std::string_view counter, std::int64_t delta) {
    if (!enabled()) return;
    Shard& shard = local_shard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.counters.find(counter);
    if (it == shard.counters.end())
        shard.counters.emplace(std::string(counter), delta);
    else
        it->second += delta;
}

void MetricsRegistry::set_gauge(std::string_view gauge, double value) {
    if (!enabled()) return;
    Shard& shard = local_shard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.gauges.find(gauge);
    if (it == shard.gauges.end())
        shard.gauges.emplace(std::string(gauge), value);
    else
        it->second = value;
}

void MetricsRegistry::observe(std::string_view histogram, double value) {
    if (!enabled()) return;
    Shard& shard = local_shard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.hists.find(histogram);
    if (it == shard.hists.end()) it = shard.hists.emplace(std::string(histogram), HistData{}).first;
    it->second.observe(value);
}

util::Json MetricsRegistry::snapshot() const {
    // Merge every shard into sorted scratch maps first: the result must
    // depend only on what was recorded, not on which thread recorded it
    // (shard registration order is scheduling-dependent; integer sums and
    // sorted keys erase it). Gauges are the one last-writer-wins case —
    // see the class comment.
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistData> hists;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        for (const auto& shard : shards_) {
            const std::lock_guard<std::mutex> shard_lock(shard->mu);
            for (const auto& [k, v] : shard->counters) counters[k] += v;
            for (const auto& [k, v] : shard->gauges) gauges[k] = v;
            for (const auto& [k, v] : shard->hists) hists[k].merge(v);
        }
    }

    util::Json doc = util::Json::object();
    util::Json counters_json = util::Json::object();
    for (const auto& [k, v] : counters) counters_json.set(k, v);
    doc.set("counters", std::move(counters_json));
    util::Json gauges_json = util::Json::object();
    for (const auto& [k, v] : gauges) gauges_json.set(k, v);
    doc.set("gauges", std::move(gauges_json));
    util::Json hists_json = util::Json::object();
    for (const auto& [k, h] : hists) {
        util::Json entry = util::Json::object();
        entry.set("count", h.count);
        entry.set("min", h.min);
        entry.set("max", h.max);
        // Replay the buckets in ascending order through P² — one
        // deterministic insertion sequence regardless of how the samples
        // were split across threads.
        util::P2Quantile p50(0.50), p95(0.95), p99(0.99);
        for (const auto& [b, n] : h.buckets) {
            const double rep = bucket_representative(b);
            for (std::int64_t i = 0; i < n; ++i) {
                p50.add(rep);
                p95.add(rep);
                p99.add(rep);
            }
        }
        entry.set("p50", p50.value());
        entry.set("p95", p95.value());
        entry.set("p99", p99.value());
        util::Json buckets = util::Json::object();
        for (const auto& [b, n] : h.buckets)
            buckets.set(b == kNonPositiveBucket ? std::string("nonpos")
                                                : std::to_string(b),
                        n);
        entry.set("buckets", std::move(buckets));
        hists_json.set(k, std::move(entry));
    }
    doc.set("histograms", std::move(hists_json));
    return doc;
}

bool MetricsRegistry::write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "error: cannot write metrics snapshot to %s\n",
                     path.c_str());
        return false;
    }
    f << util::json_serialize(snapshot());
    return static_cast<bool>(f);
}

void MetricsRegistry::absorb(const util::Json& snapshot_doc) {
    if (snapshot_doc.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("metrics snapshot: expected an object");
    const util::Json* counters = snapshot_doc.find("counters");
    const util::Json* gauges = snapshot_doc.find("gauges");
    const util::Json* hists = snapshot_doc.find("histograms");
    if (!counters || !gauges || !hists)
        throw std::invalid_argument(
            "metrics snapshot: need counters, gauges, and histograms");

    // Parse fully before touching the shard, so a malformed document
    // cannot leave a half-merged registry behind.
    std::vector<std::pair<std::string, std::int64_t>> counter_adds;
    for (const auto& [k, v] : counters->as_object())
        counter_adds.emplace_back(k, v.as_int());
    std::vector<std::pair<std::string, double>> gauge_sets;
    for (const auto& [k, v] : gauges->as_object())
        gauge_sets.emplace_back(k, v.as_double());
    std::vector<std::pair<std::string, HistData>> hist_merges;
    for (const auto& [k, v] : hists->as_object()) {
        const util::Json* count = v.find("count");
        const util::Json* min = v.find("min");
        const util::Json* max = v.find("max");
        const util::Json* buckets = v.find("buckets");
        if (!count || !min || !max || !buckets)
            throw std::invalid_argument("metrics snapshot: histogram \"" + k +
                                        "\" needs count/min/max/buckets");
        HistData h;
        h.count = count->as_int();
        h.min = min->as_double();
        h.max = max->as_double();
        for (const auto& [bk, bn] : buckets->as_object()) {
            int bucket = kNonPositiveBucket;
            if (bk != "nonpos") {
                const auto [p, ec] =
                    std::from_chars(bk.data(), bk.data() + bk.size(), bucket);
                if (ec != std::errc() || p != bk.data() + bk.size())
                    throw std::invalid_argument(
                        "metrics snapshot: bad bucket key \"" + bk + "\"");
            }
            h.buckets[bucket] += bn.as_int();
        }
        hist_merges.emplace_back(k, std::move(h));
    }

    Shard& shard = local_shard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [k, v] : counter_adds) shard.counters[std::move(k)] += v;
    for (auto& [k, v] : gauge_sets) shard.gauges[std::move(k)] = v;
    for (auto& [k, h] : hist_merges) shard.hists[std::move(k)].merge(h);
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
        const std::lock_guard<std::mutex> shard_lock(shard->mu);
        shard->counters.clear();
        shard->gauges.clear();
        shard->hists.clear();
    }
}

}  // namespace floretsim::obs
