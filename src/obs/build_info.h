#pragma once

#include <string>

#include "src/util/json.h"

namespace floretsim::obs {

/// Compile-time provenance baked into the library (CMake passes
/// FLORETSIM_BUILD_TYPE / FLORETSIM_GIT_SHA as compile definitions on
/// build_info.cpp; "unknown" when unavailable, e.g. a tarball build).
/// Every JSON report and the driver summary stamp these under "run_info"
/// so a BENCH_*.json trajectory is attributable to the exact build that
/// produced it. The git sha is captured at CMake configure time — it
/// names the checked-out commit, not uncommitted edits on top of it.
[[nodiscard]] const char* build_type();
[[nodiscard]] const char* git_sha();
[[nodiscard]] std::string compiler_id();

/// {"build_type": ..., "compiler": ..., "git_sha": ...}
[[nodiscard]] util::Json build_info_json();

}  // namespace floretsim::obs
