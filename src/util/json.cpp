#include "src/util/json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace floretsim::util {
namespace {

[[noreturn]] void type_error(const char* want, const char* got) {
    throw std::invalid_argument(std::string("JSON: expected ") + want + ", got " +
                                got);
}

}  // namespace

Json::Json(std::uint64_t v) {
    if (v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
        kind_ = Kind::kInt;
        int_ = static_cast<std::int64_t>(v);
    } else {
        kind_ = Kind::kUint;
        uint_ = v;
    }
}

Json Json::array(Array items) {
    Json j;
    j.kind_ = Kind::kArray;
    j.array_ = std::move(items);
    return j;
}

Json Json::object(Object members) {
    Json j;
    j.kind_ = Kind::kObject;
    j.object_ = std::move(members);
    return j;
}

const char* Json::kind_name() const noexcept {
    switch (kind_) {
        case Kind::kNull: return "null";
        case Kind::kBool: return "bool";
        case Kind::kInt:
        case Kind::kUint:
        case Kind::kDouble: return "number";
        case Kind::kString: return "string";
        case Kind::kArray: return "array";
        case Kind::kObject: return "object";
    }
    return "?";
}

bool Json::as_bool() const {
    if (kind_ != Kind::kBool) type_error("bool", kind_name());
    return bool_;
}

std::int64_t Json::as_int() const {
    switch (kind_) {
        case Kind::kInt: return int_;
        case Kind::kUint:
            throw std::invalid_argument("JSON: integer too large for int64");
        case Kind::kDouble: {
            // Accept integral doubles (a spec hand-written as 8.0 means 8),
            // but never round: 8.5 as an int field is a user error.
            if (std::nearbyint(double_) == double_ &&
                std::abs(double_) <= 9007199254740992.0)  // 2^53: exact range
                return static_cast<std::int64_t>(double_);
            throw std::invalid_argument("JSON: number is not an exact integer");
        }
        default: type_error("number", kind_name());
    }
}

std::uint64_t Json::as_uint() const {
    if (kind_ == Kind::kUint) return uint_;
    const std::int64_t v = as_int();  // handles kInt/kDouble + errors
    if (v < 0) throw std::invalid_argument("JSON: negative value for unsigned field");
    return static_cast<std::uint64_t>(v);
}

double Json::as_double() const {
    switch (kind_) {
        case Kind::kInt: return static_cast<double>(int_);
        case Kind::kUint: return static_cast<double>(uint_);
        case Kind::kDouble: return double_;
        default: type_error("number", kind_name());
    }
}

const std::string& Json::as_string() const {
    if (kind_ != Kind::kString) type_error("string", kind_name());
    return string_;
}

const Json::Array& Json::as_array() const {
    if (kind_ != Kind::kArray) type_error("array", kind_name());
    return array_;
}

const Json::Object& Json::as_object() const {
    if (kind_ != Kind::kObject) type_error("object", kind_name());
    return object_;
}

void Json::push_back(Json v) {
    if (kind_ != Kind::kArray) type_error("array", kind_name());
    array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
    if (kind_ != Kind::kObject) type_error("object", kind_name());
    object_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
    if (kind_ != Kind::kObject) type_error("object", kind_name());
    for (const auto& [k, v] : object_)
        if (k == key) return &v;
    return nullptr;
}

bool Json::operator==(const Json& other) const {
    if (is_number() && other.is_number()) {
        // Cross-kind numeric equality so text round-trips stay equal (an
        // integral double re-parses as kInt). Exact comparison only —
        // no epsilon; serialization at max_digits10 preserves values.
        if (kind_ == Kind::kDouble || other.kind_ == Kind::kDouble)
            return as_double() == other.as_double();
        if (kind_ == Kind::kUint || other.kind_ == Kind::kUint) {
            if (kind_ != other.kind_) return false;  // one fits int64, one not
            return uint_ == other.uint_;
        }
        return int_ == other.int_;
    }
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::kNull: return true;
        case Kind::kBool: return bool_ == other.bool_;
        case Kind::kString: return string_ == other.string_;
        case Kind::kArray: return array_ == other.array_;
        case Kind::kObject: return object_ == other.object_;
        default: return false;  // numbers handled above
    }
}

// ---- Parsing ----------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        skip_ws();
        Json v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw std::invalid_argument("JSON parse error at " + std::to_string(line) +
                                    ":" + std::to_string(col) + ": " + msg);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Json parse_value(int depth) {
        if (depth > 100) fail("nesting too deep");
        switch (peek()) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return Json();
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Json parse_object(int depth) {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') fail("expected object key string");
            std::string key = parse_string();
            if (obj.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
            skip_ws();
            expect(':');
            skip_ws();
            obj.set(std::move(key), parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json parse_array(int depth) {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            skip_ws();
            arr.push_back(parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': append_unicode_escape(out); break;
                default: fail("invalid escape character");
            }
        }
    }

    std::uint32_t parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return v;
    }

    void append_unicode_escape(std::string& out) {
        std::uint32_t cp = parse_hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (!consume_literal("\\u")) fail("unpaired surrogate in \\u escape");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
        }
        // UTF-8 encode.
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
        // RFC 8259: no leading zeros ("0123" is not a number) — a value a
        // user meant as octal must not be silently misread as decimal.
        if (peek() == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("leading zeros are not allowed");
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        bool integral = true;
        if (peek() == '.') {
            integral = false;
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        const std::string_view lex = text_.substr(start, pos_ - start);
        if (integral) {
            if (lex[0] == '-') {
                std::int64_t v = 0;
                const auto [p, ec] = std::from_chars(lex.data(), lex.data() + lex.size(), v);
                if (ec == std::errc() && p == lex.data() + lex.size()) return Json(v);
            } else {
                std::uint64_t v = 0;
                const auto [p, ec] = std::from_chars(lex.data(), lex.data() + lex.size(), v);
                if (ec == std::errc() && p == lex.data() + lex.size()) return Json(v);
            }
            // Out of 64-bit range: fall through to double.
        }
        double d = 0.0;
        const auto [p, ec] = std::from_chars(lex.data(), lex.data() + lex.size(), d);
        if (ec != std::errc() || p != lex.data() + lex.size()) fail("invalid number");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

// ---- Serialization ----------------------------------------------------------

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";  // JSON has no nan/inf literals
        return;
    }
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    out += os.str();
}

void serialize_to(std::string& out, const Json& v, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (v.kind()) {
        case Json::Kind::kNull: out += "null"; break;
        case Json::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
        case Json::Kind::kInt: out += std::to_string(v.as_int()); break;
        case Json::Kind::kUint: out += std::to_string(v.as_uint()); break;
        case Json::Kind::kDouble: append_number(out, v.as_double()); break;
        case Json::Kind::kString: append_escaped(out, v.as_string()); break;
        case Json::Kind::kArray: {
            const auto& items = v.as_array();
            if (items.empty()) {
                out += "[]";
                break;
            }
            // Scalar-only arrays print inline; nested ones expand.
            const bool inline_ok = std::all_of(
                items.begin(), items.end(), [](const Json& e) {
                    return e.kind() != Json::Kind::kArray &&
                           e.kind() != Json::Kind::kObject;
                });
            out += '[';
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (i) out += inline_ok ? ", " : ",";
                if (!inline_ok) {
                    out += '\n';
                    out += pad_in;
                } else if (i == 0) {
                    // first element inline, no separator
                }
                serialize_to(out, items[i], indent + 1);
            }
            if (!inline_ok) {
                out += '\n';
                out += pad;
            }
            out += ']';
            break;
        }
        case Json::Kind::kObject: {
            const auto& members = v.as_object();
            if (members.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (i) out += ',';
                out += '\n';
                out += pad_in;
                append_escaped(out, members[i].first);
                out += ": ";
                serialize_to(out, members[i].second, indent + 1);
            }
            out += '\n';
            out += pad;
            out += '}';
            break;
        }
    }
}

void serialize_compact_to(std::string& out, const Json& v) {
    switch (v.kind()) {
        case Json::Kind::kNull: out += "null"; break;
        case Json::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
        case Json::Kind::kInt: out += std::to_string(v.as_int()); break;
        case Json::Kind::kUint: out += std::to_string(v.as_uint()); break;
        case Json::Kind::kDouble: append_number(out, v.as_double()); break;
        case Json::Kind::kString: append_escaped(out, v.as_string()); break;
        case Json::Kind::kArray: {
            out += '[';
            const auto& items = v.as_array();
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (i) out += ',';
                serialize_compact_to(out, items[i]);
            }
            out += ']';
            break;
        }
        case Json::Kind::kObject: {
            out += '{';
            const auto& members = v.as_object();
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (i) out += ',';
                append_escaped(out, members[i].first);
                out += ':';
                serialize_compact_to(out, members[i].second);
            }
            out += '}';
            break;
        }
    }
}

}  // namespace

Json json_parse(std::string_view text) { return Parser(text).parse_document(); }

std::string json_serialize(const Json& v) {
    std::string out;
    serialize_to(out, v, 0);
    out += '\n';
    return out;
}

std::string json_serialize_compact(const Json& v) {
    std::string out;
    serialize_compact_to(out, v);
    return out;
}

}  // namespace floretsim::util
