#include "src/util/hash.h"

namespace floretsim::util {

std::string hash_hex(std::uint64_t h) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[h & 0xF];
        h >>= 4;
    }
    return out;
}

}  // namespace floretsim::util
