#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <cstdlib>

namespace floretsim::util {

/// Integer coordinate on the 2D interposer grid (chiplet pitch units).
struct Point2 {
    std::int32_t x = 0;
    std::int32_t y = 0;

    friend constexpr auto operator<=>(const Point2&, const Point2&) = default;
};

/// Integer coordinate in a 3D-stacked PE array. z == 0 is the tier
/// *farthest* from the heat sink (bottom tier); the sink sits above the
/// top tier z == depth-1.
struct Point3 {
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t z = 0;

    friend constexpr auto operator<=>(const Point3&, const Point3&) = default;
};

/// L1 (hop) distance on the 2D grid — the distance measure used by the
/// paper's Eq. (1) for SFC tail-to-head separation.
[[nodiscard]] constexpr std::int32_t manhattan(Point2 a, Point2 b) noexcept {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// L1 distance in 3D (vertical hops cost one like lateral hops).
[[nodiscard]] constexpr std::int32_t manhattan(Point3 a, Point3 b) noexcept {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

/// Euclidean distance in grid-pitch units (used for link lengths in mm
/// after scaling by the physical pitch).
[[nodiscard]] inline double euclidean(Point2 a, Point2 b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/// Row-major linearization of a 2D grid position.
[[nodiscard]] constexpr std::int32_t to_index(Point2 p, std::int32_t width) noexcept {
    return p.y * width + p.x;
}

/// Inverse of to_index().
[[nodiscard]] constexpr Point2 from_index(std::int32_t i, std::int32_t width) noexcept {
    return Point2{i % width, i / width};
}

}  // namespace floretsim::util
