#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace floretsim::util {

ThreadPool::ThreadPool(std::int32_t threads) {
    if (threads <= 0) {
        threads = static_cast<std::int32_t>(std::thread::hardware_concurrency());
        threads = std::max<std::int32_t>(1, threads);
    }
    workers_.reserve(static_cast<std::size_t>(threads));
    for (std::int32_t i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<std::size_t>(threads));
    for (std::int32_t i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t target;
    {
        const std::lock_guard<std::mutex> lk(mu_);
        target = static_cast<std::size_t>(next_++ % workers_.size());
        ++queued_;
        ++pending_;
    }
    {
        const std::lock_guard<std::mutex> lk(workers_[target]->mu);
        workers_[target]->jobs.push_back(std::move(task));
    }
    cv_work_.notify_one();
}

bool ThreadPool::acquire(std::size_t self, std::function<void()>& out) {
    const std::size_t n = workers_.size();
    // Own queue first (front: FIFO for locally assigned work) ...
    {
        Worker& w = *workers_[self];
        const std::lock_guard<std::mutex> lk(w.mu);
        if (!w.jobs.empty()) {
            out = std::move(w.jobs.front());
            w.jobs.pop_front();
            return true;
        }
    }
    // ... then steal from the back of a peer.
    for (std::size_t k = 1; k < n; ++k) {
        Worker& w = *workers_[(self + k) % n];
        const std::lock_guard<std::mutex> lk(w.mu);
        if (!w.jobs.empty()) {
            out = std::move(w.jobs.back());
            w.jobs.pop_back();
            return true;
        }
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t self) {
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk, [this] { return stop_ || queued_ > 0; });
            if (stop_ && queued_ == 0) return;
        }
        std::function<void()> job;
        if (!acquire(self, job)) continue;  // a peer won the race
        {
            const std::lock_guard<std::mutex> lk(mu_);
            --queued_;
        }
        try {
            job();
        } catch (...) {
            // Bare submit() tasks must not throw (see header); drop the
            // exception rather than terminating the worker.
        }
        {
            const std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0) cv_idle_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    // All completion state lives under `m`: the waiter cannot observe
    // done == count (and destroy these stack locals) until the finishing
    // task has released the lock, after which it touches nothing local.
    std::mutex m;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr first_error;

    for (std::size_t i = 0; i < count; ++i) {
        submit([&, i] {
            std::exception_ptr error;
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
            const std::lock_guard<std::mutex> lk(m);
            if (error && !first_error) first_error = error;
            if (++done == count) cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == count; });
    lk.unlock();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace floretsim::util
