#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace floretsim::util {

/// Minimal fixed-column text table used by the bench harnesses to print
/// paper-style rows (and optionally dump CSV next to them). Columns are
/// right-aligned except the first, mirroring the tables in the paper.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Appends one row; missing cells print empty, extra cells are kept
    /// (the table widens).
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    [[nodiscard]] static std::string fmt(double v, int precision = 2);

    /// Render with box-drawing separators to the stream.
    void print(std::ostream& os) const;

    /// Render as comma-separated values (header first).
    void print_csv(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    /// Raw access for machine-readable exporters (bench --json).
    [[nodiscard]] const std::vector<std::string>& header() const noexcept {
        return header_;
    }
    [[nodiscard]] const std::vector<std::vector<std::string>>& data() const noexcept {
        return rows_;
    }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace floretsim::util
