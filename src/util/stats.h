#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace floretsim::util {

/// Streaming accumulator for mean / variance / min / max (Welford's
/// algorithm). Used by the NoC simulator for packet-latency statistics and
/// by the benches for run-to-run aggregation.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    /// Mean of the added samples; 0 if empty.
    [[nodiscard]] double mean() const noexcept;
    /// Unbiased sample variance; 0 if fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

    void reset() noexcept { *this = RunningStats{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order
/// statistics). `q` in [0, 1]. Sorts a copy; intended for end-of-run
/// reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Streaming quantile estimator: the P² algorithm (Jain & Chlamtac, CACM
/// 1985). Tracks one quantile of an unbounded stream in O(1) memory with
/// five markers whose heights are adjusted by piecewise-parabolic
/// interpolation; exact while fewer than five samples have been seen.
/// Deterministic — the estimate depends only on the insertion sequence —
/// so it is safe for bit-identical replicated simulations. Used by the
/// serving simulator for p50/p95/p99 request-latency tails.
class P2Quantile {
public:
    /// `q` in [0, 1], e.g. 0.99 for the p99.
    explicit P2Quantile(double q);

    void add(double x) noexcept;

    /// Current estimate of the tracked quantile; 0 if empty.
    [[nodiscard]] double value() const;
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double quantile() const noexcept { return q_; }

private:
    double q_;
    std::size_t n_ = 0;
    std::array<double, 5> height_{};   ///< Marker heights (sample values).
    std::array<double, 5> pos_{};      ///< Actual marker positions, 1-based.
    std::array<double, 5> desired_{};  ///< Desired marker positions.
};

/// Histogram over non-negative integer keys (e.g. router port counts,
/// hop counts). Dense up to the largest key observed.
class Histogram {
public:
    void add(std::size_t key, std::uint64_t weight = 1);

    [[nodiscard]] std::uint64_t at(std::size_t key) const noexcept;
    /// One past the largest key with nonzero count.
    [[nodiscard]] std::size_t size() const noexcept { return bins_.size(); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

}  // namespace floretsim::util
