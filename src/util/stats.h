#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace floretsim::util {

/// Streaming accumulator for mean / variance / min / max (Welford's
/// algorithm). Used by the NoC simulator for packet-latency statistics and
/// by the benches for run-to-run aggregation.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    /// Mean of the added samples; 0 if empty.
    [[nodiscard]] double mean() const noexcept;
    /// Unbiased sample variance; 0 if fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

    void reset() noexcept { *this = RunningStats{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order
/// statistics). `q` in [0, 1]. Sorts a copy; intended for end-of-run
/// reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Histogram over non-negative integer keys (e.g. router port counts,
/// hop counts). Dense up to the largest key observed.
class Histogram {
public:
    void add(std::size_t key, std::uint64_t weight = 1);

    [[nodiscard]] std::uint64_t at(std::size_t key) const noexcept;
    /// One past the largest key with nonzero count.
    [[nodiscard]] std::size_t size() const noexcept { return bins_.size(); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

}  // namespace floretsim::util
