#include "src/util/rng.h"

#include <cmath>

namespace floretsim::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    for (auto& lane : state_) lane = splitmix64(seed);
    // Avoid the all-zero state, which is a fixed point of xoshiro.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % n;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

}  // namespace floretsim::util
