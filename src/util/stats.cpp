#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace floretsim::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double combined = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
    mean_ = (n1 * mean_ + n2 * other.mean_) / combined;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

void Histogram::add(std::size_t key, std::uint64_t weight) {
    if (key >= bins_.size()) bins_.resize(key + 1, 0);
    bins_[key] += weight;
    total_ += weight;
}

std::uint64_t Histogram::at(std::size_t key) const noexcept {
    return key < bins_.size() ? bins_[key] : 0;
}

}  // namespace floretsim::util
