#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace floretsim::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double combined = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
    mean_ = (n1 * mean_ + n2 * other.mean_) / combined;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {}

void P2Quantile::add(double x) noexcept {
    if (n_ < 5) {
        height_[n_++] = x;
        if (n_ == 5) {
            std::sort(height_.begin(), height_.end());
            for (std::size_t i = 0; i < 5; ++i)
                pos_[i] = static_cast<double>(i) + 1.0;
            desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
        }
        return;
    }

    // Locate the cell containing x, extending the extremes when it falls
    // outside the current marker range.
    std::size_t cell = 0;
    if (x < height_[0]) {
        height_[0] = x;
    } else if (x >= height_[4]) {
        height_[4] = x;
        cell = 3;
    } else {
        while (cell < 3 && x >= height_[cell + 1]) ++cell;
    }
    ++n_;
    for (std::size_t i = cell + 1; i < 5; ++i) pos_[i] += 1.0;
    const auto np = static_cast<double>(n_);
    desired_[1] = 1.0 + (np - 1.0) * q_ / 2.0;
    desired_[2] = 1.0 + (np - 1.0) * q_;
    desired_[3] = 1.0 + (np - 1.0) * (1.0 + q_) / 2.0;
    desired_[4] = np;

    // Nudge each interior marker one position toward its desired spot,
    // preferring the parabolic height update and falling back to linear
    // when the parabola would break marker monotonicity.
    for (std::size_t i = 1; i <= 3; ++i) {
        const double d = desired_[i] - pos_[i];
        if (!((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
              (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)))
            continue;
        const double s = d >= 0.0 ? 1.0 : -1.0;
        const double parabolic =
            height_[i] +
            s / (pos_[i + 1] - pos_[i - 1]) *
                ((pos_[i] - pos_[i - 1] + s) * (height_[i + 1] - height_[i]) /
                     (pos_[i + 1] - pos_[i]) +
                 (pos_[i + 1] - pos_[i] - s) * (height_[i] - height_[i - 1]) /
                     (pos_[i] - pos_[i - 1]));
        if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
            height_[i] = parabolic;
        } else {
            const std::size_t adj = s > 0.0 ? i + 1 : i - 1;
            height_[i] += s * (height_[adj] - height_[i]) / (pos_[adj] - pos_[i]);
        }
        pos_[i] += s;
    }
}

double P2Quantile::value() const {
    if (n_ == 0) return 0.0;
    if (n_ >= 5) return height_[2];
    std::array<double, 5> sorted = height_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_));
    const double p = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(p);
    const std::size_t hi = std::min(lo + 1, n_ - 1);
    return sorted[lo] + (p - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

void Histogram::add(std::size_t key, std::uint64_t weight) {
    if (key >= bins_.size()) bins_.resize(key + 1, 0);
    bins_[key] += weight;
    total_ += weight;
}

std::uint64_t Histogram::at(std::size_t key) const noexcept {
    return key < bins_.size() ? bins_[key] : 0;
}

}  // namespace floretsim::util
