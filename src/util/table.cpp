#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace floretsim::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::fmt(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void TextTable::print(std::ostream& os) const {
    std::size_t ncols = header_.size();
    for (const auto& r : rows_) ncols = std::max(ncols, r.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto line = [&] {
        os << '+';
        for (const auto w : widths) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < row.size() ? row[c] : std::string{};
            os << ' ';
            if (c == 0)
                os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
            else
                os << std::right << std::setw(static_cast<int>(widths[c])) << cell;
            os << " |";
        }
        os << '\n';
    };

    line();
    emit(header_);
    line();
    for (const auto& r : rows_) emit(r);
    line();
}

void TextTable::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
}

}  // namespace floretsim::util
