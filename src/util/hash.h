#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace floretsim::util {

/// Stable content hashing for the result cache and spec identity. FNV-1a
/// over bytes: deterministic across platforms, processes, and builds (no
/// pointer or layout dependence), which is the whole point — a cache
/// entry written by one run must be findable by every later run. Not
/// cryptographic; collision resistance comes from 64 bits plus the
/// cache's read-back validation (a looked-up row's point must equal the
/// requested point).

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte string, optionally continuing a previous hash (pass
/// the prior result as `seed` to chain fragments).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes,
                                            std::uint64_t seed = kFnvOffsetBasis) {
    std::uint64_t h = seed;
    for (const char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnvPrime;
    }
    return h;
}

/// Fixed-width lowercase hex (16 digits) — the cache's file-name and
/// --list display form.
[[nodiscard]] std::string hash_hex(std::uint64_t h);

}  // namespace floretsim::util
