#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace floretsim::util {

/// Minimal strict JSON document model for the scenario layer: scenario
/// specs serialize through it (src/scenario/spec_json.h) and the bench
/// JsonReport renders through it. No external dependency — the container
/// image has none to offer — and deliberately strict: parsing rejects
/// duplicate keys, trailing garbage, and malformed escapes instead of
/// guessing, because a silently-misread spec would run the wrong sweep.
///
/// Numbers keep their lexical class: integers parse to kInt/kUint (so
/// 64-bit seeds and cycle caps round-trip exactly), everything else to
/// kDouble. Serialization emits doubles at max_digits10, so
/// parse(serialize(x)) reproduces every finite value bit-exactly;
/// non-finite doubles serialize as null (JSON has no nan/inf literals).
class Json {
public:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kInt,     ///< Fits std::int64_t.
        kUint,    ///< Positive and > INT64_MAX only.
        kDouble,
        kString,
        kArray,
        kObject,
    };
    using Array = std::vector<Json>;
    /// Insertion-ordered; strict parsing guarantees key uniqueness.
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() = default;  ///< null
    Json(std::nullptr_t) {}                                       // NOLINT
    Json(bool v) : kind_(Kind::kBool), bool_(v) {}                // NOLINT
    Json(std::int32_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
    Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
    Json(std::uint64_t v);                                        // NOLINT
    Json(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
    Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
    Json(const char* v) : Json(std::string(v)) {}                 // NOLINT

    [[nodiscard]] static Json array(Array items = {});
    [[nodiscard]] static Json object(Object members = {});

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_number() const noexcept {
        return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
    }
    [[nodiscard]] const char* kind_name() const noexcept;

    /// Checked accessors; throw std::invalid_argument on a kind mismatch
    /// (or a numeric value that does not fit the requested type).
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] std::uint64_t as_uint() const;
    [[nodiscard]] double as_double() const;  ///< Any numeric kind.
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;

    /// Array append (throws unless this is an array).
    void push_back(Json v);
    /// Object append; key uniqueness is the caller's contract here (the
    /// parser enforces it for parsed documents). Throws unless an object.
    void set(std::string key, Json v);
    /// Object member lookup; nullptr when absent (throws unless an object).
    [[nodiscard]] const Json* find(std::string_view key) const;

    /// Structural equality; numbers compare by value across numeric kinds
    /// (1 == 1.0), so a round-trip through text stays equal even when an
    /// integral double re-parses as kInt.
    [[nodiscard]] bool operator==(const Json& other) const;

private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/// Parses one JSON document (the whole input; trailing non-whitespace is
/// an error). Throws std::invalid_argument with line:column context.
[[nodiscard]] Json json_parse(std::string_view text);

/// Pretty-prints with two-space indentation and a trailing newline.
[[nodiscard]] std::string json_serialize(const Json& v);

/// Single-line form (no whitespace, no trailing newline) — the framing
/// used by newline-delimited row streams, where one value must be one
/// line. Numbers format identically to json_serialize, so the two forms
/// parse back to equal documents.
[[nodiscard]] std::string json_serialize_compact(const Json& v);

}  // namespace floretsim::util
