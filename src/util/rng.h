#pragma once

#include <cstdint>
#include <limits>

namespace floretsim::util {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** by Blackman & Vigna).
///
/// Every stochastic component in FloretSim (SWAP topology synthesis,
/// simulated annealing, traffic jitter, thermal-noise sampling) takes an
/// explicit Rng so that experiments are reproducible bit-for-bit from a
/// seed. Satisfies the C++ UniformRandomBitGenerator concept so it can be
/// used with <random> distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit lanes from a single seed via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    /// Raw 64 random bits.
    [[nodiscard]] std::uint64_t next() noexcept;

    /// UniformRandomBitGenerator interface.
    std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling
    /// to avoid modulo bias.
    [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal variate (Box-Muller, cached spare).
    [[nodiscard]] double normal() noexcept;

    /// Normal variate with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Bernoulli trial with probability p of returning true.
    [[nodiscard]] bool chance(double p) noexcept;

private:
    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace floretsim::util
