#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace floretsim::util {

/// Work-stealing thread pool behind core::SweepEngine.
///
/// Each worker owns a deque; submissions are distributed round-robin,
/// workers pop their own queue from the front and steal from the back of
/// their peers when idle. The pool is deliberately free of any
/// task-ordering guarantees — callers that need deterministic output must
/// make each task independent and index its result slot (which is exactly
/// what SweepEngine and parallel_for do).
class ThreadPool {
public:
    /// `threads` <= 0 selects std::thread::hardware_concurrency().
    explicit ThreadPool(std::int32_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::int32_t thread_count() const noexcept {
        return static_cast<std::int32_t>(threads_.size());
    }

    /// Enqueues a task. Tasks must not throw; exceptions escaping a bare
    /// submit()ed task are swallowed to keep the worker alive (use
    /// parallel_for for error propagation).
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished.
    void wait_idle();

    /// Runs body(0..count-1) across the pool and blocks until all indices
    /// completed. The first exception thrown by any body is rethrown here
    /// after the loop drains. Must not be called from inside a pool task.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

private:
    struct Worker {
        std::mutex mu;
        std::deque<std::function<void()>> jobs;
    };

    void worker_loop(std::size_t self);
    /// Pops own front, then steals a peer's back. True on success.
    bool acquire(std::size_t self, std::function<void()>& out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_idle_;
    std::size_t queued_ = 0;   ///< Tasks sitting in some deque.
    std::size_t pending_ = 0;  ///< Tasks submitted and not yet finished.
    std::uint64_t next_ = 0;   ///< Round-robin submission cursor.
    bool stop_ = false;
};

}  // namespace floretsim::util
