#include "src/core/floret.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace floretsim::core {

topo::Topology make_floret(const SfcSet& set, const FloretOptions& opts) {
    std::vector<std::vector<topo::NodeId>> paths;
    paths.reserve(set.sfcs.size());
    for (const auto& s : set.sfcs) paths.push_back(s.path);

    std::vector<std::pair<topo::NodeId, topo::NodeId>> express;
    for (std::size_t i = 0; i < set.sfcs.size(); ++i) {
        const auto t = set.sfcs[i].tail();
        // Rank the other SFC heads by distance; connect the nearest ones
        // within the span limit, capped per tail. If none are in range,
        // the closest head is linked anyway: the spillover path
        // (tail -> next SFC's head) must always exist.
        std::vector<std::pair<std::int32_t, topo::NodeId>> heads;
        for (std::size_t j = 0; j < set.sfcs.size(); ++j) {
            if (i == j) continue;
            const auto h = set.sfcs[j].head();
            if (h == t) continue;
            heads.emplace_back(util::manhattan(set.pos(t), set.pos(h)), h);
        }
        std::sort(heads.begin(), heads.end());
        std::int32_t made = 0;
        for (const auto& [d, h] : heads) {
            if (made >= opts.max_express_per_tail) break;
            if (d > opts.max_tail_head_span && made > 0) break;
            express.emplace_back(t, h);
            ++made;
        }
    }

    topo::Topology topo = topo::make_path_topology(
        "Floret" + std::to_string(set.width) + "x" + std::to_string(set.height) + "l" +
            std::to_string(set.lambda()),
        set.width, set.height, paths, express, opts.pitch_mm);

    // Connectivity repair: bridge components through the closest
    // tail-to-head pair until the graph is connected.
    while (!topo.connected()) {
        const auto dist = topo.hop_distances(set.sfcs.front().head());
        std::int32_t best = std::numeric_limits<std::int32_t>::max();
        std::pair<topo::NodeId, topo::NodeId> bridge{-1, -1};
        for (const auto& si : set.sfcs) {
            for (const auto& sj : set.sfcs) {
                for (const auto a : {si.tail(), si.head()}) {
                    for (const auto b : {sj.head(), sj.tail()}) {
                        if (a == b || topo.has_link(a, b)) continue;
                        const bool a_reach = dist[static_cast<std::size_t>(a)] >= 0;
                        const bool b_reach = dist[static_cast<std::size_t>(b)] >= 0;
                        if (a_reach == b_reach) continue;  // same component
                        const auto d = util::manhattan(set.pos(a), set.pos(b));
                        if (d < best) {
                            best = d;
                            bridge = {a, b};
                        }
                    }
                }
            }
        }
        if (bridge.first < 0) break;  // nothing to bridge (shouldn't happen)
        topo.add_link(bridge.first, bridge.second);
    }

    // Each petal (SFC) is one locality region: intra-petal links form the
    // chain, so the petal boundary is exactly the express-link pipe cut
    // the regional simulator core synchronizes across.
    std::vector<std::int32_t> petal(static_cast<std::size_t>(topo.node_count()), 0);
    for (std::size_t i = 0; i < set.sfcs.size(); ++i)
        for (const auto n : set.sfcs[i].path)
            petal[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(i);
    topo.set_region_hint(std::move(petal));
    return topo;
}

}  // namespace floretsim::core
