#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/sfc.h"
#include "src/dnn/network.h"
#include "src/noc/routing.h"
#include "src/pim/partitioner.h"
#include "src/topo/topology.h"

namespace floretsim::core {

/// One DNN inference task queued for mapping: the network, its chiplet
/// partition plan, and a display name.
struct TaskSpec {
    std::string name;
    const dnn::Network* net = nullptr;   ///< Owned by the caller.
    pim::PartitionPlan plan;
};

/// The outcome of mapping one task.
struct MappedTask {
    std::string name;
    const dnn::Network* net = nullptr;
    pim::PartitionPlan plan;
    /// Per-layer chiplet assignment (empty when !mapped).
    std::vector<std::vector<topo::NodeId>> layer_nodes;
    /// All chiplets the task occupies, in allocation order.
    std::vector<topo::NodeId> nodes;
    bool mapped = false;
};

struct MappingStats {
    std::int32_t nodes_total = 0;
    std::int32_t nodes_used = 0;
    std::int32_t tasks_mapped = 0;
    std::int32_t tasks_failed = 0;

    /// Fraction of chiplets holding weights after mapping (Fig. 4's
    /// mapped-vs-unmapped comparison).
    [[nodiscard]] double utilization() const noexcept {
        return nodes_total == 0 ? 0.0
                                : static_cast<double>(nodes_used) / nodes_total;
    }
};

/// Interface for the task-queue-to-chiplet mapping policies compared in
/// the paper. Mapping consumes tasks strictly in queue order (the paper's
/// deadlock-freedom argument rests on this sequential discipline).
///
/// Mappers are *stateful*: chiplets allocated by map_queue stay busy until
/// release()d, so a sequence of map/release calls models the multi-tenant
/// scenario where completed DNN tasks return their chiplets and new tasks
/// claim the (possibly fragmented) free space.
class Mapper {
public:
    virtual ~Mapper() = default;

    /// Maps the queue onto currently-free chiplets; tasks that do not fit
    /// are returned with mapped == false and consume nothing.
    [[nodiscard]] virtual std::vector<MappedTask> map_queue(
        std::span<const TaskSpec> tasks, MappingStats* stats) = 0;

    /// Returns a mapped task's chiplets to the free pool.
    virtual void release(const MappedTask& task) = 0;

    /// Frees everything.
    virtual void reset() = 0;

    /// Maps one task with placement constraints relaxed (used when the
    /// queue head could not map on an otherwise idle system — progress
    /// must be possible; the paper's spillover argument). Default: same
    /// as map_queue on a single task.
    [[nodiscard]] virtual MappedTask map_one_relaxed(const TaskSpec& task);
};

/// The paper's dataflow-aware policy: chiplets are consumed contiguously
/// along the SFC concatenated order (earliest free positions first), so
/// consecutive neural layers land on path-adjacent chiplets; a task
/// overflowing one SFC (or a freed hole) continues at the next free run —
/// the spillover the tail-to-head express links serve.
class FloretMapper final : public Mapper {
public:
    explicit FloretMapper(const SfcSet& set);

    [[nodiscard]] std::vector<MappedTask> map_queue(std::span<const TaskSpec> tasks,
                                                    MappingStats* stats) override;
    void release(const MappedTask& task) override;
    void reset() override;

private:
    std::vector<topo::NodeId> order_;
    std::vector<std::int32_t> pos_of_node_;  ///< node id -> position in order_.
    std::vector<bool> busy_;                 ///< per position in order_.
};

/// The baseline policy used for Kite/SIAM/SWAP: each successive chiplet of
/// a task is placed on the free chiplet with the fewest hops from the
/// previously placed one. With `max_gap_hops` >= 0 a task *fails* when no
/// free chiplet lies within that many hops (the paper's Fig. 4 scenario
/// that strands unmapped chiplets); with -1 the nearest free chiplet is
/// always accepted (used for the latency/energy comparisons so every
/// architecture runs the full workload).
class GreedyMapper final : public Mapper {
public:
    GreedyMapper(const topo::Topology& topo, const noc::RouteTable& routes,
                 std::int32_t max_gap_hops = -1);

    [[nodiscard]] std::vector<MappedTask> map_queue(std::span<const TaskSpec> tasks,
                                                    MappingStats* stats) override;
    void release(const MappedTask& task) override;
    void reset() override;
    /// Retries with the hop-gap constraint lifted.
    [[nodiscard]] MappedTask map_one_relaxed(const TaskSpec& task) override;

private:
    const topo::Topology& topo_;
    const noc::RouteTable& routes_;
    std::int32_t max_gap_hops_;
    std::vector<bool> free_node_;
};

/// Builds TaskSpecs from workload ids using the paper-calibrated
/// partitioner (Table I parameter counts over `params_per_chiplet_m`).
/// `networks` receives ownership of the constructed networks (one shared
/// instance per distinct workload id).
[[nodiscard]] std::vector<TaskSpec> make_tasks(
    std::span<const std::string> workload_ids, double params_per_chiplet_m,
    std::vector<std::unique_ptr<dnn::Network>>& networks);

}  // namespace floretsim::core
