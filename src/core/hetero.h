#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/sfc.h"
#include "src/dnn/transformer.h"
#include "src/topo/topology.h"

namespace floretsim::core {

/// Section IV: end-to-end Transformer acceleration needs heterogeneous
/// integration — the static FF/projection weights suit the ReRAM SFC
/// macro, but the attention score matrices are rewritten per token, which
/// NVM crossbars cannot sustain (write latency and endurance). This module
/// builds a combined 2.5D system: a Floret SFC macro of ReRAM chiplets
/// plus a column of SRAM/tensor "attention modules" integrated along its
/// edge, maps an encoder stack across both, and evaluates the design
/// against the naive all-PIM alternative.

struct HeteroConfig {
    std::int32_t macro_width = 8;    ///< ReRAM macro grid.
    std::int32_t macro_height = 8;
    std::int32_t lambda = 4;         ///< SFC petals in the macro.
    std::int32_t attention_modules = 4;  ///< SRAM/tensor chiplets on the edge.
    double params_per_chiplet_m = 1.0;   ///< ReRAM chiplet weight capacity.
    double pitch_mm = 4.0;

    /// SRAM module MVM throughput relative to a ReRAM chiplet (dynamic
    /// matrices run on digital MACs; no write penalty).
    double sram_speedup = 1.0;
    /// ReRAM write cost per matrix element (ns) when forcing dynamic
    /// matrices into crossbars (the all-PIM baseline): a 128-cell row
    /// programs in ~500 ns -> ~4 ns/element.
    double reram_write_ns_per_elem = 4.0;

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const HeteroConfig&) const = default;
};

/// The built heterogeneous system.
struct HeteroSystem {
    topo::Topology topology;      ///< Macro + attention modules.
    SfcSet macro_sfc;             ///< Petals of the ReRAM macro.
    std::vector<topo::NodeId> macro_order;   ///< SFC chiplet order.
    std::vector<topo::NodeId> attention_nodes;  ///< The SRAM modules.
};

/// Builds the combined topology: Floret macro plus `attention_modules`
/// nodes in a column at x = macro_width, each linked to its nearest macro
/// chiplets (two links per module).
[[nodiscard]] HeteroSystem build_hetero_system(const HeteroConfig& cfg);

/// Where each kernel of the encoder stack executes.
struct KernelPlacement {
    std::string kernel;
    dnn::KernelClass cls;
    std::vector<topo::NodeId> nodes;  ///< Chiplets/modules executing it.
    double compute_ns = 0.0;          ///< Execution time on those nodes.
    double write_ns = 0.0;            ///< ReRAM programming stalls (all-PIM).
};

struct HeteroMapping {
    std::vector<KernelPlacement> placements;
    std::int32_t reram_chiplets_used = 0;
    bool fits = true;  ///< False if the macro ran out of chiplets.
};

/// Maps the encoder stack: static-weight kernels consume the SFC order
/// (packed by weight volume); dynamic kernels go to the *nearest*
/// attention module (dataflow-aware choice); elementwise kernels ride
/// with their producer. When
/// `force_all_pim` is set, dynamic kernels are instead written into ReRAM
/// crossbars each inference — the §IV anti-pattern — incurring the write
/// cost on their intermediate matrices.
[[nodiscard]] HeteroMapping map_transformer(const HeteroSystem& sys,
                                            const dnn::TransformerConfig& model,
                                            const HeteroConfig& cfg,
                                            bool force_all_pim = false);

struct HeteroEval {
    double compute_ns = 0.0;       ///< Serial kernel execution (one token batch).
    double comm_hop_bytes = 0.0;   ///< Sum of bytes x hops between kernels.
    double latency_ns = 0.0;       ///< compute + comm at 8 B/cycle, 1 GHz.
    double write_ns = 0.0;         ///< ReRAM write stalls (all-PIM only).
};

/// Analytical end-to-end evaluation of a mapping (hop-weighted traffic +
/// serial kernel compute + write stalls).
[[nodiscard]] HeteroEval evaluate_hetero(const HeteroSystem& sys,
                                         const HeteroMapping& mapping,
                                         const dnn::TransformerConfig& model);

}  // namespace floretsim::core
