#pragma once

#include "src/core/sfc.h"
#include "src/topo/topology.h"

namespace floretsim::core {

struct FloretOptions {
    /// Tail-to-head express links are created only when the pair is within
    /// this Manhattan span (the paper: "at most three hops").
    std::int32_t max_tail_head_span = 3;
    /// At most this many express links per tail (nearest heads win), so
    /// the top-level network stays sparse and head/tail routers stay small
    /// — the paper's Floret routers are 2-port except heads/tails.
    std::int32_t max_express_per_tail = 2;
    double pitch_mm = 4.0;
};

/// Builds the Floret NoI topology from an SFC decomposition: every SFC
/// contributes its chain of single-hop links (2-port routers along the
/// petal), and the top-level network connects each SFC's tail to the heads
/// of other SFCs within `max_tail_head_span` hops. If the result would be
/// disconnected (tiny or adversarial layouts), the closest tail-head pairs
/// across components are bridged regardless of the span limit.
[[nodiscard]] topo::Topology make_floret(const SfcSet& set,
                                         const FloretOptions& opts = {});

}  // namespace floretsim::core
