#include "src/core/experiment.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <stdexcept>

#include "src/cost/models.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"

namespace floretsim::core::experiment {

const char* arch_name(Arch a) {
    switch (a) {
        case Arch::kKite: return "Kite";
        case Arch::kSiamMesh: return "SIAM";
        case Arch::kSwap: return "SWAP";
        case Arch::kFloret: return "Floret";
    }
    return "?";
}

std::int32_t default_lambda(std::int32_t w, std::int32_t h) {
    const std::int32_t n = w * h;
    std::int32_t best = 1;
    for (std::int32_t l = 1; l <= n; ++l) {
        bool tiles = false;
        for (std::int32_t a = 1; a <= l; ++a)
            if (l % a == 0 && a <= w && l / a <= h) tiles = true;
        if (!tiles) continue;
        if (std::abs(n / l - 10) < std::abs(n / best - 10)) best = l;
    }
    return best;
}

std::shared_ptr<const ArchFabric> build_fabric(Arch a, std::int32_t w, std::int32_t h,
                                               std::uint64_t swap_seed) {
    auto f = std::make_shared<ArchFabric>();
    f->arch = a;
    f->width = w;
    f->height = h;
    f->swap_seed = swap_seed;
    switch (a) {
        case Arch::kKite:
            f->topology = topo::make_kite(w, h);
            break;
        case Arch::kSiamMesh:
            f->topology = topo::make_mesh(w, h);
            break;
        case Arch::kSwap: {
            util::Rng rng(swap_seed);
            f->topology = topo::make_swap(w, h, rng);
            break;
        }
        case Arch::kFloret:
            f->sfc = generate_sfc_set(w, h, default_lambda(w, h));
            f->topology = make_floret(f->sfc);
            break;
    }
    f->routes = noc::RouteTable::build(f->topology, noc::RoutingPolicy::kUpDown);
    return f;
}

/// Cache entry: losers of the insertion race block on `built` until the
/// winner publishes the fabric (or the build's exception).
struct ArchCache::Entry {
    std::mutex mu;
    std::condition_variable built;
    std::shared_ptr<const ArchFabric> fabric;
    std::exception_ptr error;
};

std::shared_ptr<const ArchFabric> ArchCache::get(Arch a, std::int32_t w,
                                                 std::int32_t h,
                                                 std::uint64_t swap_seed) {
    const Key key{static_cast<std::int32_t>(a), w, h, swap_seed};
    std::shared_ptr<Entry> entry;
    bool builder = false;
    {
        const std::lock_guard<std::mutex> lk(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            builder = true;
            ++misses_;
        } else {
            entry = it->second;
            ++hits_;
        }
    }
    obs::MetricsRegistry::global().add(builder ? "arch_cache.misses"
                                               : "arch_cache.hits");
    if (builder) {
        std::shared_ptr<const ArchFabric> fabric;
        try {
            const obs::Span span("build_fabric", "fabric");
            fabric = build_fabric(a, w, h, swap_seed);
        } catch (...) {
            // Wake the losers with the error and drop the entry so a
            // later get() retries instead of blocking forever.
            {
                const std::lock_guard<std::mutex> lk(entry->mu);
                entry->error = std::current_exception();
            }
            entry->built.notify_all();
            {
                const std::lock_guard<std::mutex> lk(mu_);
                entries_.erase(key);
            }
            throw;
        }
        {
            const std::lock_guard<std::mutex> lk(entry->mu);
            entry->fabric = fabric;
        }
        entry->built.notify_all();
        return fabric;
    }
    std::unique_lock<std::mutex> lk(entry->mu);
    entry->built.wait(lk, [&] { return entry->fabric != nullptr || entry->error; });
    if (entry->error) std::rethrow_exception(entry->error);
    return entry->fabric;
}

std::int64_t ArchCache::hits() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return hits_;
}

std::int64_t ArchCache::misses() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return misses_;
}

void ArchCache::clear() {
    const std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

BuiltArch make_built_arch(std::shared_ptr<const ArchFabric> fabric,
                          std::int32_t greedy_max_gap) {
    BuiltArch b;
    b.arch = fabric->arch;
    if (fabric->arch == Arch::kFloret)
        b.mapper = std::make_unique<FloretMapper>(fabric->sfc);
    else
        b.mapper = std::make_unique<GreedyMapper>(fabric->topology, fabric->routes,
                                                  greedy_max_gap);
    b.fabric = std::move(fabric);
    return b;
}

BuiltArch build_arch(Arch a, std::int32_t w, std::int32_t h, std::uint64_t swap_seed,
                     std::int32_t greedy_max_gap) {
    return make_built_arch(build_fabric(a, w, h, swap_seed), greedy_max_gap);
}

BuiltArch build_arch(ArchCache& cache, Arch a, std::int32_t w, std::int32_t h,
                     std::uint64_t swap_seed, std::int32_t greedy_max_gap) {
    return make_built_arch(cache.get(a, w, h, swap_seed), greedy_max_gap);
}

EvalConfig default_eval_config() {
    EvalConfig cfg;
    cfg.traffic_scale = 1.0 / 64.0;
    cfg.sim.injection_rate = 8.0;
    cfg.sim.max_cycles = 20'000'000;
    return cfg;
}

double task_compute_ns(const MappedTask& t, const pim::ReramConfig& rc) {
    double ns = 0.0;
    for (const auto& seg : t.plan.segments)
        ns += pim::layer_compute_latency_ns(t.net->layer(seg.layer_id), seg.chiplets(),
                                            rc);
    return ns;
}

DynamicResult run_mix_dynamic(BuiltArch& arch, const workload::ConcurrentMix& mix,
                              const EvalConfig& cfg, std::uint64_t seed) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto queue_ids = workload::expand_mix(mix);
    auto tasks = make_tasks(queue_ids, kParamsPerChipletM, owner);
    const pim::ReramConfig reram;

    // Deterministic residency in rounds per queue position (1..3).
    util::Rng rng(seed);
    std::vector<std::int32_t> duration(tasks.size());
    for (auto& d : duration) d = 1 + static_cast<std::int32_t>(rng.below(3));

    arch.mapper->reset();
    std::size_t next = 0;  // queue cursor
    struct Resident {
        MappedTask task;
        std::int32_t rounds_left;
        double compute_ns;
    };
    std::vector<Resident> resident;

    // Residency-epoch cache: successive rounds with an unchanged resident
    // set re-run an identical, deterministic NoI evaluation, so the
    // previous round's result (and the residents' compute maximum) can be
    // reused verbatim. Cleared on every admit/retire.
    bool residency_dirty = true;
    EvalResult round_eval;
    double round_compute_ns = 0.0;

    DynamicResult out;
    while ((next < tasks.size() || !resident.empty()) && out.rounds < 1000) {
        // Admit head-of-line tasks while they map (strict queue order —
        // the paper's deadlock-free sequential discipline).
        while (next < tasks.size()) {
            const std::span<const TaskSpec> one(&tasks[next], 1);
            auto mapped = arch.mapper->map_queue(one, nullptr);
            if (!mapped.front().mapped) {
                if (!resident.empty()) break;  // wait for departures
                // Idle system and the head still fails (placement budget
                // cornered): relax constraints — progress must be possible.
                mapped.front() = arch.mapper->map_one_relaxed(tasks[next]);
                if (!mapped.front().mapped) {
                    out.all_completed = false;  // task larger than the system
                    ++next;
                    continue;
                }
            }
            resident.push_back(
                Resident{std::move(mapped.front()), duration[next], 0.0});
            resident.back().compute_ns = task_compute_ns(resident.back().task, reram);
            residency_dirty = true;
            ++next;
        }
        if (resident.empty()) break;

        // One inference round of every resident task: compute in parallel
        // on their own chiplets, activations drain over the shared NoI.
        if (residency_dirty || !cfg.round_epoch_cache) {
            std::vector<MappedTask> snapshot;
            snapshot.reserve(resident.size());
            round_compute_ns = 0.0;
            for (const auto& r : resident) {
                snapshot.push_back(r.task);
                round_compute_ns = std::max(round_compute_ns, r.compute_ns);
            }
            round_eval = evaluate_noi(arch.topology(), arch.routes(), snapshot, cfg);
            out.sim_cycles_stepped += round_eval.sim_cycles_stepped;
            out.sim_cycles_skipped += round_eval.sim_cycles_skipped;
            out.sim_horizon_jumps += round_eval.sim_horizon_jumps;
            out.sim_region_cycles_stepped += round_eval.sim_region_cycles_stepped;
            out.sim_region_cycles_skipped += round_eval.sim_region_cycles_skipped;
            out.sim_region_horizon_jumps += round_eval.sim_region_horizon_jumps;
            out.sim_region_stepped_max += round_eval.sim_region_stepped_max;
            out.sim_region_stepped_min += round_eval.sim_region_stepped_min;
            ++out.noi_evals;
            residency_dirty = false;
        } else {
            ++out.round_epoch_hits;
        }
        // 1 GHz NoC clock: 1 cycle == 1 ns of compute time; compute and
        // traffic carry the same sampling scale so their balance is
        // unbiased.
        const double round_cycles =
            round_eval.latency_cycles + round_compute_ns * cfg.traffic_scale;
        out.total_cycles += round_cycles;
        out.total_energy_pj +=
            round_eval.energy_pj +
            cost::noi_leakage_mw(arch.topology(), cfg.cost) * round_cycles;
        out.flit_hops += round_eval.flit_hops;
        out.task_rounds += static_cast<std::int64_t>(resident.size());
        out.all_completed = out.all_completed && round_eval.completed;
        ++out.rounds;

        // Retire finished tasks, freeing their chiplets.
        for (std::size_t i = 0; i < resident.size();) {
            if (--resident[i].rounds_left <= 0) {
                arch.mapper->release(resident[i].task);
                resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(i));
                residency_dirty = true;
            } else {
                ++i;
            }
        }
    }
    // Wormhole sims actually run vs reused from the residency-epoch cache
    // — the reuse ratio is the round-level eval-cache win per mix.
    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.add("noi.sims_run", out.noi_evals);
        metrics.add("noi.sims_reused", out.round_epoch_hits);
        metrics.add("mix.runs");
        metrics.add("mix.rounds", out.rounds);
    }
    return out;
}

}  // namespace floretsim::core::experiment
