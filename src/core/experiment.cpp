#include "src/core/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/cost/models.h"
#include "src/topo/kite.h"
#include "src/topo/mesh.h"
#include "src/topo/swap.h"

namespace floretsim::core::experiment {

const char* arch_name(Arch a) {
    switch (a) {
        case Arch::kKite: return "Kite";
        case Arch::kSiamMesh: return "SIAM";
        case Arch::kSwap: return "SWAP";
        case Arch::kFloret: return "Floret";
    }
    return "?";
}

std::int32_t default_lambda(std::int32_t w, std::int32_t h) {
    const std::int32_t n = w * h;
    std::int32_t best = 1;
    for (std::int32_t l = 1; l <= n; ++l) {
        bool tiles = false;
        for (std::int32_t a = 1; a <= l; ++a)
            if (l % a == 0 && a <= w && l / a <= h) tiles = true;
        if (!tiles) continue;
        if (std::abs(n / l - 10) < std::abs(n / best - 10)) best = l;
    }
    return best;
}

BuiltArch build_arch(Arch a, std::int32_t w, std::int32_t h, std::uint64_t swap_seed,
                     std::int32_t greedy_max_gap) {
    BuiltArch b;
    b.arch = a;
    switch (a) {
        case Arch::kKite:
            b.topology_ptr = std::make_unique<topo::Topology>(topo::make_kite(w, h));
            break;
        case Arch::kSiamMesh:
            b.topology_ptr = std::make_unique<topo::Topology>(topo::make_mesh(w, h));
            break;
        case Arch::kSwap: {
            util::Rng rng(swap_seed);
            b.topology_ptr =
                std::make_unique<topo::Topology>(topo::make_swap(w, h, rng));
            break;
        }
        case Arch::kFloret:
            b.sfc = generate_sfc_set(w, h, default_lambda(w, h));
            b.topology_ptr = std::make_unique<topo::Topology>(make_floret(b.sfc));
            break;
    }
    b.routes_ptr = std::make_unique<noc::RouteTable>(
        noc::RouteTable::build(*b.topology_ptr, noc::RoutingPolicy::kUpDown));
    if (a == Arch::kFloret)
        b.mapper = std::make_unique<FloretMapper>(b.sfc);
    else
        b.mapper = std::make_unique<GreedyMapper>(*b.topology_ptr, *b.routes_ptr,
                                                  greedy_max_gap);
    return b;
}

EvalConfig default_eval_config() {
    EvalConfig cfg;
    cfg.traffic_scale = 1.0 / 64.0;
    cfg.sim.injection_rate = 8.0;
    cfg.sim.max_cycles = 20'000'000;
    return cfg;
}

double task_compute_ns(const MappedTask& t, const pim::ReramConfig& rc) {
    double ns = 0.0;
    for (const auto& seg : t.plan.segments)
        ns += pim::layer_compute_latency_ns(t.net->layer(seg.layer_id), seg.chiplets(),
                                            rc);
    return ns;
}

DynamicResult run_mix_dynamic(BuiltArch& arch, const workload::ConcurrentMix& mix,
                              const EvalConfig& cfg, std::uint64_t seed) {
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto queue_ids = workload::expand_mix(mix);
    auto tasks = make_tasks(queue_ids, kParamsPerChipletM, owner);
    const pim::ReramConfig reram;

    // Deterministic residency in rounds per queue position (1..3).
    util::Rng rng(seed);
    std::vector<std::int32_t> duration(tasks.size());
    for (auto& d : duration) d = 1 + static_cast<std::int32_t>(rng.below(3));

    arch.mapper->reset();
    std::size_t next = 0;  // queue cursor
    struct Resident {
        MappedTask task;
        std::int32_t rounds_left;
        double compute_ns;
    };
    std::vector<Resident> resident;

    DynamicResult out;
    while ((next < tasks.size() || !resident.empty()) && out.rounds < 1000) {
        // Admit head-of-line tasks while they map (strict queue order —
        // the paper's deadlock-free sequential discipline).
        while (next < tasks.size()) {
            const std::span<const TaskSpec> one(&tasks[next], 1);
            auto mapped = arch.mapper->map_queue(one, nullptr);
            if (!mapped.front().mapped) {
                if (!resident.empty()) break;  // wait for departures
                // Idle system and the head still fails (placement budget
                // cornered): relax constraints — progress must be possible.
                mapped.front() = arch.mapper->map_one_relaxed(tasks[next]);
                if (!mapped.front().mapped) {
                    out.all_completed = false;  // task larger than the system
                    ++next;
                    continue;
                }
            }
            resident.push_back(
                Resident{std::move(mapped.front()), duration[next], 0.0});
            resident.back().compute_ns = task_compute_ns(resident.back().task, reram);
            ++next;
        }
        if (resident.empty()) break;

        // One inference round of every resident task: compute in parallel
        // on their own chiplets, activations drain over the shared NoI.
        std::vector<MappedTask> snapshot;
        snapshot.reserve(resident.size());
        double compute_ns = 0.0;
        for (const auto& r : resident) {
            snapshot.push_back(r.task);
            compute_ns = std::max(compute_ns, r.compute_ns);
        }
        const auto eval = evaluate_noi(arch.topology(), arch.routes(), snapshot, cfg);
        // 1 GHz NoC clock: 1 cycle == 1 ns of compute time; compute and
        // traffic carry the same sampling scale so their balance is
        // unbiased.
        const double round_cycles = eval.latency_cycles + compute_ns * cfg.traffic_scale;
        out.total_cycles += round_cycles;
        out.total_energy_pj +=
            eval.energy_pj +
            cost::noi_leakage_mw(arch.topology(), cfg.cost) * round_cycles;
        out.flit_hops += eval.flit_hops;
        out.task_rounds += static_cast<std::int64_t>(resident.size());
        out.all_completed = out.all_completed && eval.completed;
        ++out.rounds;

        // Retire finished tasks, freeing their chiplets.
        for (std::size_t i = 0; i < resident.size();) {
            if (--resident[i].rounds_left <= 0) {
                arch.mapper->release(resident[i].task);
                resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }
    return out;
}

}  // namespace floretsim::core::experiment
