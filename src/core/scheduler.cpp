#include "src/core/scheduler.h"

#include <algorithm>
#include <numeric>

namespace floretsim::core {
namespace {

struct LiveTask {
    std::int64_t finish_slot = 0;
    std::vector<std::size_t> positions;  ///< Indices into the SFC order.
};

}  // namespace

SchedulerStats simulate_dynamic(const SfcSet& set, AllocationPolicy policy,
                                const SchedulerConfig& cfg) {
    const auto order = set.concatenated_order();
    const auto n = order.size();
    std::vector<bool> busy(n, false);
    std::size_t busy_count = 0;

    // Separate streams so both policies see identical arrival sequences:
    // the placement policy must not perturb arrivals.
    util::Rng rng(cfg.seed);
    util::Rng place_rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<LiveTask> live;
    SchedulerStats stats;
    double util_accum = 0.0;
    double fragments_accum = 0.0;
    double gap_accum = 0.0;
    std::int64_t gap_samples = 0;

    for (std::int64_t slot = 0; slot < cfg.slots; ++slot) {
        // Departures.
        for (auto it = live.begin(); it != live.end();) {
            if (it->finish_slot <= slot) {
                for (const auto p : it->positions) {
                    busy[p] = false;
                    --busy_count;
                }
                it = live.erase(it);
            } else {
                ++it;
            }
        }

        // Arrival.
        if (rng.chance(cfg.arrival_prob)) {
            ++stats.arrived;
            const auto need = static_cast<std::size_t>(
                rng.range(cfg.min_chiplets, cfg.max_chiplets));
            if (n - busy_count >= need) {
                LiveTask task;
                task.finish_slot = slot + rng.range(cfg.min_duration, cfg.max_duration);
                if (policy == AllocationPolicy::kSfcFirstFit) {
                    for (std::size_t p = 0; p < n && task.positions.size() < need; ++p)
                        if (!busy[p]) task.positions.push_back(p);
                } else {
                    std::vector<std::size_t> free_list;
                    for (std::size_t p = 0; p < n; ++p)
                        if (!busy[p]) free_list.push_back(p);
                    for (std::size_t k = 0; k < need; ++k) {
                        const auto pick = place_rng.below(free_list.size());
                        task.positions.push_back(free_list[pick]);
                        free_list.erase(free_list.begin() +
                                        static_cast<std::ptrdiff_t>(pick));
                    }
                    std::sort(task.positions.begin(), task.positions.end());
                }
                // Quality metrics on the allocation.
                std::int32_t fragments = 1;
                for (std::size_t k = 1; k < task.positions.size(); ++k) {
                    if (task.positions[k] != task.positions[k - 1] + 1) ++fragments;
                    const auto a = set.pos(order[task.positions[k - 1]]);
                    const auto b = set.pos(order[task.positions[k]]);
                    gap_accum += util::manhattan(a, b) - 1;  // 0 when adjacent
                    ++gap_samples;
                }
                fragments_accum += fragments;
                for (const auto p : task.positions) {
                    busy[p] = true;
                    ++busy_count;
                }
                live.push_back(std::move(task));
                ++stats.accepted;
            } else {
                ++stats.rejected;
            }
        }
        util_accum += static_cast<double>(busy_count) / static_cast<double>(n);
    }

    stats.mean_utilization = util_accum / static_cast<double>(cfg.slots);
    stats.mean_fragments_per_task =
        stats.accepted > 0 ? fragments_accum / static_cast<double>(stats.accepted) : 0.0;
    stats.mean_intra_task_gap =
        gap_samples > 0 ? gap_accum / static_cast<double>(gap_samples) : 0.0;
    stats.final_busy_chiplets = static_cast<std::int64_t>(busy_count);
    for (const auto& task : live)
        stats.final_resident_footprint +=
            static_cast<std::int64_t>(task.positions.size());
    return stats;
}

}  // namespace floretsim::core
