#pragma once

#include <cstdint>
#include <vector>

#include "src/core/sfc.h"
#include "src/util/rng.h"

namespace floretsim::core {

/// Dynamic multi-tenant scenario (Section II): DNN tasks arrive over time,
/// occupy a run of chiplets, finish, and release them; freed chiplets are
/// reassigned to newer tasks. With the SFC allocation discipline a task
/// takes the earliest free run along the concatenated SFC order and may
/// spill across runs (crossing a tail-to-head express link); the paper's
/// claim is that this keeps allocations near-contiguous where a scattered
/// allocator fragments.
struct SchedulerConfig {
    std::int64_t slots = 2000;          ///< Simulated time slots.
    double arrival_prob = 0.35;         ///< P(new task arrives in a slot).
    std::int32_t min_chiplets = 4;      ///< Task footprint range.
    std::int32_t max_chiplets = 30;
    std::int64_t min_duration = 20;     ///< Task residency range, slots.
    std::int64_t max_duration = 120;
    std::uint64_t seed = 42;
};

enum class AllocationPolicy {
    kSfcFirstFit,   ///< Earliest free positions along the SFC order (Floret).
    kScattered,     ///< Random free chiplets (fragmenting baseline).
};

struct SchedulerStats {
    std::int64_t arrived = 0;
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;          ///< Not enough free chiplets.
    double mean_utilization = 0.0;      ///< Time-averaged busy fraction.
    /// Mean number of contiguous fragments per accepted task (1.0 =
    /// perfectly contiguous; the paper's spillover quality measure).
    double mean_fragments_per_task = 0.0;
    /// Mean Manhattan gap between consecutive chiplets of a task's
    /// allocation (0 for path-adjacent chiplets).
    double mean_intra_task_gap = 0.0;
    /// End-of-run accounting: chiplets still marked busy vs. the summed
    /// footprint of still-resident tasks. Equal iff every retirement
    /// returned exactly its allocation (the no-leak invariant the tests
    /// pin down).
    std::int64_t final_busy_chiplets = 0;
    std::int64_t final_resident_footprint = 0;

    [[nodiscard]] double acceptance_rate() const noexcept {
        return arrived == 0 ? 0.0
                            : static_cast<double>(accepted) /
                                  static_cast<double>(arrived);
    }
};

/// Runs the dynamic allocation simulation over the SFC order implied by
/// `set` and returns aggregate statistics. Deterministic for a given seed.
[[nodiscard]] SchedulerStats simulate_dynamic(const SfcSet& set, AllocationPolicy policy,
                                              const SchedulerConfig& cfg);

}  // namespace floretsim::core
