#include "src/core/sfc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace floretsim::core {
namespace {

using topo::NodeId;
using util::Point2;

struct Rect {
    std::int32_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;  // half-open [x0,x1) x [y0,y1)
    [[nodiscard]] std::int32_t w() const noexcept { return x1 - x0; }
    [[nodiscard]] std::int32_t h() const noexcept { return y1 - y0; }
};

/// Balanced split of `total` into `parts` consecutive extents.
std::vector<std::pair<std::int32_t, std::int32_t>> balanced_bands(std::int32_t total,
                                                                  std::int32_t parts) {
    std::vector<std::pair<std::int32_t, std::int32_t>> bands;
    std::int32_t start = 0;
    for (std::int32_t p = 0; p < parts; ++p) {
        const std::int32_t size = total / parts + (p < total % parts ? 1 : 0);
        bands.emplace_back(start, start + size);
        start += size;
    }
    return bands;
}

/// Factor lambda = a*b (a columns of regions, b rows) with every region
/// non-empty, preferring near-square regions.
std::pair<std::int32_t, std::int32_t> choose_factors(std::int32_t width,
                                                     std::int32_t height,
                                                     std::int32_t lambda) {
    std::pair<std::int32_t, std::int32_t> best{-1, -1};
    double best_score = std::numeric_limits<double>::max();
    for (std::int32_t a = 1; a <= lambda; ++a) {
        if (lambda % a != 0) continue;
        const std::int32_t b = lambda / a;
        if (a > width || b > height) continue;
        const double rw = static_cast<double>(width) / a;
        const double rh = static_cast<double>(height) / b;
        const double score = std::abs(std::log(rw / rh));
        if (score < best_score) {
            best_score = score;
            best = {a, b};
        }
    }
    if (best.first < 0)
        throw std::invalid_argument("lambda does not tile the grid: " +
                                    std::to_string(lambda));
    return best;
}

/// Serpentine walk of a rectangle. `horizontal` scans row by row (rows
/// ordered from the start corner's side, alternating direction starting at
/// the corner); otherwise column by column. The walk always begins at the
/// chosen corner and is Hamiltonian over the rectangle.
std::vector<NodeId> serpentine(const Rect& r, bool start_left, bool start_top,
                               bool horizontal, std::int32_t grid_width) {
    std::vector<NodeId> path;
    path.reserve(static_cast<std::size_t>(r.w()) * static_cast<std::size_t>(r.h()));
    if (horizontal) {
        for (std::int32_t row = 0; row < r.h(); ++row) {
            const std::int32_t y = start_top ? r.y0 + row : r.y1 - 1 - row;
            const bool left_to_right = (row % 2 == 0) == start_left;
            for (std::int32_t col = 0; col < r.w(); ++col) {
                const std::int32_t x =
                    left_to_right ? r.x0 + col : r.x1 - 1 - col;
                path.push_back(util::to_index(Point2{x, y}, grid_width));
            }
        }
    } else {
        for (std::int32_t col = 0; col < r.w(); ++col) {
            const std::int32_t x = start_left ? r.x0 + col : r.x1 - 1 - col;
            const bool top_to_bottom = (col % 2 == 0) == start_top;
            for (std::int32_t row = 0; row < r.h(); ++row) {
                const std::int32_t y =
                    top_to_bottom ? r.y0 + row : r.y1 - 1 - row;
                path.push_back(util::to_index(Point2{x, y}, grid_width));
            }
        }
    }
    return path;
}

/// U-shaped comb walk: pairs of rows traversed out-and-back so that *both*
/// endpoints land on the same vertical side of the region (the petal shape
/// of the paper's Fig. 1, where head and tail both face the NoI center).
/// Requires an even height. `on_left` picks the side; `from_top` flips the
/// vertical direction.
std::vector<NodeId> u_comb_rows(const Rect& r, bool on_left, bool from_top,
                                std::int32_t grid_width) {
    std::vector<NodeId> path;
    path.reserve(static_cast<std::size_t>(r.w()) * static_cast<std::size_t>(r.h()));
    for (std::int32_t pair = 0; pair < r.h() / 2; ++pair) {
        const std::int32_t y_out = from_top ? r.y0 + 2 * pair : r.y1 - 1 - 2 * pair;
        const std::int32_t y_back = from_top ? y_out + 1 : y_out - 1;
        for (std::int32_t col = 0; col < r.w(); ++col) {
            const std::int32_t x = on_left ? r.x0 + col : r.x1 - 1 - col;
            path.push_back(util::to_index(Point2{x, y_out}, grid_width));
        }
        for (std::int32_t col = 0; col < r.w(); ++col) {
            const std::int32_t x = on_left ? r.x1 - 1 - col : r.x0 + col;
            path.push_back(util::to_index(Point2{x, y_back}, grid_width));
        }
    }
    return path;
}

/// Transposed U-comb (pairs of columns); requires an even width; both
/// endpoints land on the same horizontal side.
std::vector<NodeId> u_comb_cols(const Rect& r, bool on_top, bool from_left,
                                std::int32_t grid_width) {
    std::vector<NodeId> path;
    path.reserve(static_cast<std::size_t>(r.w()) * static_cast<std::size_t>(r.h()));
    for (std::int32_t pair = 0; pair < r.w() / 2; ++pair) {
        const std::int32_t x_out = from_left ? r.x0 + 2 * pair : r.x1 - 1 - 2 * pair;
        const std::int32_t x_back = from_left ? x_out + 1 : x_out - 1;
        for (std::int32_t row = 0; row < r.h(); ++row) {
            const std::int32_t y = on_top ? r.y0 + row : r.y1 - 1 - row;
            path.push_back(util::to_index(Point2{x_out, y}, grid_width));
        }
        for (std::int32_t row = 0; row < r.h(); ++row) {
            const std::int32_t y = on_top ? r.y1 - 1 - row : r.y0 + row;
            path.push_back(util::to_index(Point2{x_back, y}, grid_width));
        }
    }
    return path;
}

/// Candidate petal walks of a region: 8 serpentine variants (4 corners x 2
/// orientations) plus U-comb variants where parity permits.
std::vector<Sfc> candidates_for(const Rect& r, std::int32_t grid_width) {
    std::vector<Sfc> cands;
    for (const bool horizontal : {true, false})
        for (const bool start_left : {true, false})
            for (const bool start_top : {true, false})
                cands.push_back(
                    Sfc{serpentine(r, start_left, start_top, horizontal, grid_width)});
    if (r.h() % 2 == 0 && r.h() >= 2) {
        for (const bool on_left : {true, false})
            for (const bool from_top : {true, false})
                cands.push_back(Sfc{u_comb_rows(r, on_left, from_top, grid_width)});
    }
    if (r.w() % 2 == 0 && r.w() >= 2) {
        for (const bool on_top : {true, false})
            for (const bool from_left : {true, false})
                cands.push_back(Sfc{u_comb_cols(r, on_top, from_left, grid_width)});
    }
    return cands;
}

double eq1_distance(const std::vector<Sfc>& sfcs, std::int32_t grid_width) {
    const auto lambda = static_cast<std::int32_t>(sfcs.size());
    if (lambda < 2) return 0.0;
    double sum = 0.0;
    for (std::int32_t i = 0; i < lambda; ++i) {
        for (std::int32_t j = 0; j < lambda; ++j) {
            if (i == j) continue;
            sum += util::manhattan(util::from_index(sfcs[static_cast<std::size_t>(i)].tail(), grid_width),
                                   util::from_index(sfcs[static_cast<std::size_t>(j)].head(), grid_width));
        }
    }
    return sum / (static_cast<double>(lambda) * (lambda - 1));
}

}  // namespace

double SfcSet::tail_head_distance() const { return eq1_distance(sfcs, width); }

std::vector<topo::NodeId> SfcSet::concatenated_order() const {
    std::vector<topo::NodeId> order;
    if (sfcs.empty()) return order;
    const Point2 center{(width - 1) / 2, (height - 1) / 2};

    std::vector<bool> used(sfcs.size(), false);
    // Start with the SFC whose head is nearest the center.
    std::size_t cur = 0;
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    for (std::size_t i = 0; i < sfcs.size(); ++i) {
        const auto d = util::manhattan(pos(sfcs[i].head()), center);
        if (d < best) {
            best = d;
            cur = i;
        }
    }
    for (std::size_t step = 0; step < sfcs.size(); ++step) {
        used[cur] = true;
        order.insert(order.end(), sfcs[cur].path.begin(), sfcs[cur].path.end());
        // Jump: nearest unused head from this tail.
        std::size_t next = sfcs.size();
        std::int32_t next_d = std::numeric_limits<std::int32_t>::max();
        for (std::size_t j = 0; j < sfcs.size(); ++j) {
            if (used[j]) continue;
            const auto d = util::manhattan(pos(sfcs[cur].tail()), pos(sfcs[j].head()));
            if (d < next_d) {
                next_d = d;
                next = j;
            }
        }
        if (next == sfcs.size()) break;
        cur = next;
    }
    return order;
}

bool SfcSet::covers_grid_exactly_once() const {
    std::vector<std::int32_t> seen(static_cast<std::size_t>(width) * height, 0);
    for (const auto& s : sfcs)
        for (const auto n : s.path) {
            if (n < 0 || n >= width * height) return false;
            ++seen[static_cast<std::size_t>(n)];
        }
    return std::all_of(seen.begin(), seen.end(), [](std::int32_t c) { return c == 1; });
}

bool SfcSet::paths_are_contiguous() const {
    for (const auto& s : sfcs) {
        if (s.path.empty()) return false;
        for (std::size_t i = 1; i < s.path.size(); ++i) {
            if (util::manhattan(pos(s.path[i - 1]), pos(s.path[i])) != 1) return false;
        }
    }
    return true;
}

std::string SfcSet::render() const {
    std::vector<std::string> cell(static_cast<std::size_t>(width) * height, " .");
    for (std::size_t s = 0; s < sfcs.size(); ++s) {
        for (const auto n : sfcs[s].path) {
            std::string label = std::to_string(s);
            if (label.size() < 2) label = " " + label;
            cell[static_cast<std::size_t>(n)] = label;
        }
        cell[static_cast<std::size_t>(sfcs[s].head())] = " H";
        cell[static_cast<std::size_t>(sfcs[s].tail())] = " T";
    }
    std::ostringstream os;
    for (std::int32_t y = 0; y < height; ++y) {
        for (std::int32_t x = 0; x < width; ++x)
            os << cell[static_cast<std::size_t>(util::to_index(Point2{x, y}, width))]
               << ' ';
        os << '\n';
    }
    return os.str();
}

SfcSet generate_sfc_set(std::int32_t width, std::int32_t height, std::int32_t lambda,
                        const SfcOptions& opts) {
    if (width < 1 || height < 1) throw std::invalid_argument("empty grid");
    if (lambda < 1 || lambda > width * height)
        throw std::invalid_argument("lambda out of range");
    const auto [cols, rows] = choose_factors(width, height, lambda);

    std::vector<Rect> regions;
    for (const auto& [y0, y1] : balanced_bands(height, rows))
        for (const auto& [x0, x1] : balanced_bands(width, cols))
            regions.push_back(Rect{x0, y0, x1, y1});

    std::vector<std::vector<Sfc>> cands;
    cands.reserve(regions.size());
    for (const auto& r : regions) cands.push_back(candidates_for(r, width));

    SfcSet set;
    set.width = width;
    set.height = height;
    set.sfcs.resize(regions.size());

    if (!opts.optimize_placement) {
        for (std::size_t i = 0; i < regions.size(); ++i) set.sfcs[i] = cands[i].front();
        return set;
    }

    // Initialize each region with the variant whose head is nearest the
    // grid center (the paper: heads radiate outward from the NoI center).
    const Point2 center{(width - 1) / 2, (height - 1) / 2};
    std::vector<std::size_t> choice(regions.size(), 0);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        std::int32_t best = std::numeric_limits<std::int32_t>::max();
        for (std::size_t c = 0; c < cands[i].size(); ++c) {
            const auto d = util::manhattan(
                util::from_index(cands[i][c].head(), width), center);
            if (d < best) {
                best = d;
                choice[i] = c;
            }
        }
    }
    auto assemble = [&](const std::vector<std::size_t>& ch) {
        std::vector<Sfc> sfcs(regions.size());
        for (std::size_t i = 0; i < regions.size(); ++i) sfcs[i] = cands[i][ch[i]];
        return sfcs;
    };

    // Coordinate descent on Eq. (1) with a center-pull tie-breaker; for
    // small lambda this converges to the exhaustive optimum in a few
    // sweeps (validated in tests against brute force).
    auto cost = [&](const std::vector<std::size_t>& ch) {
        const auto sfcs = assemble(ch);
        double c = eq1_distance(sfcs, width);
        for (const auto& s : sfcs)
            c += 0.01 * util::manhattan(util::from_index(s.head(), width), center);
        return c;
    };
    double cur_cost = cost(choice);
    for (std::int32_t sweep = 0; sweep < 32; ++sweep) {
        bool improved = false;
        for (std::size_t i = 0; i < regions.size(); ++i) {
            const std::size_t orig = choice[i];
            std::size_t best_c = orig;
            double best_cost = cur_cost;
            for (std::size_t c = 0; c < cands[i].size(); ++c) {
                if (c == orig) continue;
                choice[i] = c;
                const double t = cost(choice);
                if (t < best_cost - 1e-12) {
                    best_cost = t;
                    best_c = c;
                }
            }
            choice[i] = best_c;
            if (best_c != orig) {
                cur_cost = best_cost;
                improved = true;
            }
        }
        if (!improved) break;
    }
    set.sfcs = assemble(choice);
    return set;
}

}  // namespace floretsim::core
