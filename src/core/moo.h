#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/network.h"
#include "src/noc/routing.h"
#include "src/pim/accuracy.h"
#include "src/pim/partitioner.h"
#include "src/thermal/grid_solver.h"
#include "src/thermal/power.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace floretsim::core {

/// Section III: on a 3D-stacked PE array the neural-layer-to-PE placement
/// must trade performance (EDP) against peak temperature, because ReRAM
/// accuracy collapses above ~330 K. This module provides the
/// performance-only baseline (Floret-style 3D SFC order) and the joint
/// performance-thermal simulated-annealing optimizer the paper compares
/// against it in Figs. 6-7.

/// Analytical performance/energy model used inside the optimization loop
/// (the flit simulator would be too slow per SA step; shapes match it).
struct PerfParams {
    double cycle_ns = 1.0;
    std::int32_t flit_bytes = 8;
    std::int32_t bytes_per_elem = 1;
    double hop_energy_pj = 1.2;        ///< Router+link energy per flit-hop.
    double compute_energy_scale = 1.0; ///< Multiplier on PIM MVM energy.
};

struct PlacementEval {
    double comm_cycles = 0.0;
    double compute_ns = 0.0;
    double latency_ns = 0.0;
    double energy_pj = 0.0;
    double edp = 0.0;             ///< latency_ns * energy_pj (paper's metric).
    double peak_k = 0.0;
    double accuracy_drop = 0.0;   ///< Fraction of baseline accuracy lost.
};

/// The PE consumption order of a performance-only 3D Floret: a serpentine
/// SFC through each tier, tiers visited bottom-up (z=0 first), so
/// consecutive layers stay path-adjacent. Node ids follow
/// topo::make_mesh3d's (z*height + y)*width + x convention.
[[nodiscard]] std::vector<topo::NodeId> sfc3d_order(std::int32_t width,
                                                    std::int32_t height,
                                                    std::int32_t depth);

/// Evaluates a placement (PE order consumed by the partitioner) end to
/// end: analytical comm/compute latency and energy, steady-state thermal
/// solve, and ReRAM accuracy impact.
[[nodiscard]] PlacementEval evaluate_placement(
    const dnn::Network& net, const pim::PartitionPlan& plan,
    std::span<const topo::NodeId> pe_order, const noc::RouteTable& routes,
    const thermal::ThermalConfig& tcfg, const thermal::PowerParams& pcfg,
    const pim::ReramConfig& rcfg, const pim::ThermalAccuracyModel& acc,
    const PerfParams& perf);

struct MooConfig {
    double w_perf = 1.0;
    /// Weight on the thermal penalty max(0, peak - t_target) in K.
    double w_thermal = 0.05;
    double t_target_k = 333.0;
    std::int32_t iterations = 3000;
    std::uint64_t seed = 7;
};

struct MooResult {
    std::vector<topo::NodeId> pe_order;
    PlacementEval eval;
    std::int32_t accepted_moves = 0;
};

/// Joint performance-thermal placement: simulated annealing over the PE
/// order (segment-swap moves), scalarizing normalized EDP and the peak
/// temperature excess. Starts from the performance-only SFC order.
[[nodiscard]] MooResult optimize_joint(
    const dnn::Network& net, const pim::PartitionPlan& plan,
    const noc::RouteTable& routes, const thermal::ThermalConfig& tcfg,
    const thermal::PowerParams& pcfg, const pim::ReramConfig& rcfg,
    const pim::ThermalAccuracyModel& acc, const PerfParams& perf,
    const MooConfig& cfg);

/// The "Floret-enabled 3D NoC" of Fig. 6: the same annealer with the
/// thermal weight zeroed (performance is the only objective), starting
/// from the 3D SFC order. Guarantees EDP no worse than the joint optimum
/// run under the same move budget — the paper's ~9% EDP edge.
[[nodiscard]] MooResult optimize_perf_only(
    const dnn::Network& net, const pim::PartitionPlan& plan,
    const noc::RouteTable& routes, const thermal::ThermalConfig& tcfg,
    const thermal::PowerParams& pcfg, const pim::ReramConfig& rcfg,
    const pim::ThermalAccuracyModel& acc, const PerfParams& perf,
    const MooConfig& cfg);

}  // namespace floretsim::core
