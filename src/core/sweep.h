#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/experiment.h"
#include "src/util/thread_pool.h"
#include "src/workload/tables.h"

namespace floretsim::core {

/// Declarative parallel sweep engine for the paper's evaluation grids
/// (architecture x grid size x workload mix x eval config). The benches
/// describe *what* to evaluate as a SweepSpec; the engine expands it into
/// independent points, executes them on a work-stealing thread pool with
/// the expensive topology/route construction memoized per fabric key, and
/// returns results in expansion order — bit-identical regardless of the
/// thread count, because every point owns its mapper/simulator state and
/// all randomness is seeded per point.

/// One self-contained point of a sweep: everything run_mix_dynamic needs.
struct SweepPoint {
    experiment::Arch arch = experiment::Arch::kFloret;
    std::int32_t width = 10;
    std::int32_t height = 10;
    workload::ConcurrentMix mix;
    EvalConfig eval;
    std::uint64_t swap_seed = 13;
    std::int32_t greedy_max_gap = -1;
    std::uint64_t run_seed = 1;

    /// Field-wise equality: points are the wire format for distributing
    /// sweeps (scenario::sweep_point_from_json(to_json(p)) == p).
    [[nodiscard]] bool operator==(const SweepPoint&) const = default;
};

/// The sweep grid: the cartesian product archs x grids x mixes x evals.
/// Expansion order (and therefore result order) is arch-major:
///   for arch / for grid / for mix / for eval.
struct SweepSpec {
    std::vector<experiment::Arch> archs;
    std::vector<std::pair<std::int32_t, std::int32_t>> grids{{10, 10}};
    std::vector<workload::ConcurrentMix> mixes;
    /// Empty selects {experiment::default_eval_config()}.
    std::vector<EvalConfig> evals;
    std::uint64_t swap_seed = 13;
    std::int32_t greedy_max_gap = -1;
    std::uint64_t run_seed = 1;

    [[nodiscard]] std::vector<SweepPoint> expand() const;

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const SweepSpec&) const = default;
};

/// One row of the result table: the point plus its dynamic-run outcome.
struct SweepRow {
    SweepPoint point;
    experiment::DynamicResult result;
    /// Wall-clock spent evaluating this point (arch build + dynamic run);
    /// the load-balance signal benches surface in their --json reports.
    double seconds = 0.0;

    /// Field-wise equality: rows are the return wire format of sharded
    /// sweeps (scenario::sweep_row_from_json(to_json(r)) == r); `seconds`
    /// participates because JSON doubles round-trip bit-exactly.
    [[nodiscard]] bool operator==(const SweepRow&) const = default;
};

/// Evaluates one sweep point — fabric from (or into) `cache`, fresh
/// mapper, run_mix_dynamic — and stamps the row's wall-clock. The single
/// per-point implementation shared by SweepEngine::run and the sharded
/// worker loop, so a row is bit-identical (seconds aside) no matter which
/// process computed it.
[[nodiscard]] SweepRow evaluate_point(experiment::ArchCache& cache,
                                      const SweepPoint& point);

/// Ordered stream of sweep rows: next() yields rows in point order until
/// exhausted. The streaming seam that bounds coordinator memory — a
/// consumer that folds rows as they arrive never holds more than one row,
/// no matter how many points the sweep has. Implementations may compute
/// lazily (the sharded NDJSON merge reads one row per next()) or wrap an
/// already-materialized vector (the local in-process path).
class RowStream {
public:
    virtual ~RowStream() = default;
    /// The next row in point order; nullopt when exhausted.
    [[nodiscard]] virtual std::optional<SweepRow> next() = 0;
    /// Total rows this stream will yield (known up front: one per point).
    [[nodiscard]] virtual std::size_t size() const = 0;
};

/// RowStream over a materialized vector — the adapter between the
/// collect-everything API (SweepResult::rows) and streaming consumers.
class VectorRowStream final : public RowStream {
public:
    explicit VectorRowStream(std::vector<SweepRow> rows)
        : rows_(std::move(rows)) {}
    [[nodiscard]] std::optional<SweepRow> next() override {
        if (pos_ >= rows_.size()) return std::nullopt;
        return std::move(rows_[pos_++]);
    }
    [[nodiscard]] std::size_t size() const override { return rows_.size(); }

private:
    std::vector<SweepRow> rows_;
    std::size_t pos_ = 0;
};

/// Content-addressed cache of finished sweep rows, keyed by the full
/// SweepPoint (arch, grid, mix, eval config, seeds — everything that
/// determines the result). The engine consults it before dispatching
/// work: a probe() hit skips evaluation entirely and the row is served
/// from lookup() at stream time; every computed row is store()d back.
/// Implementations must validate on lookup (a corrupt or mismatched entry
/// returns nullopt and the engine recomputes — the cache can degrade a
/// run to uncached speed but never to wrong rows).
class PointResultCache {
public:
    virtual ~PointResultCache() = default;
    /// Cheap existence probe; true means lookup() is expected to succeed.
    [[nodiscard]] virtual bool probe(const SweepPoint& point) = 0;
    /// The cached row, or nullopt when absent/corrupt (recompute then).
    [[nodiscard]] virtual std::optional<SweepRow> lookup(const SweepPoint& point) = 0;
    virtual void store(const SweepPoint& point, const SweepRow& row) = 0;
};

struct SweepResult {
    /// Rows in SweepSpec::expand() order.
    std::vector<SweepRow> rows;
    /// Grid dimensions of the spec that produced the rows (all 1-based
    /// sizes; zeroed when the engine ran a bare point list).
    std::size_t n_archs = 0, n_grids = 0, n_mixes = 0, n_evals = 0;
    double wall_seconds = 0.0;
    std::int64_t fabric_cache_hits = 0;
    std::int64_t fabric_cache_misses = 0;

    /// Row lookup by grid coordinates (spec-driven sweeps only).
    [[nodiscard]] const SweepRow& at(std::size_t arch_idx, std::size_t grid_idx,
                                     std::size_t mix_idx,
                                     std::size_t eval_idx = 0) const {
        if (n_evals == 0)
            throw std::logic_error(
                "SweepResult::at needs grid dimensions; this result came from "
                "the bare point-list overload — index rows[] directly");
        return rows[((arch_idx * n_grids + grid_idx) * n_mixes + mix_idx) * n_evals +
                    eval_idx];
    }
};

class SweepEngine {
public:
    /// `threads` <= 0 selects the hardware concurrency.
    explicit SweepEngine(std::int32_t threads = 0) : pool_(threads) {}

    [[nodiscard]] SweepResult run(const SweepSpec& spec);
    [[nodiscard]] SweepResult run(const std::vector<SweepPoint>& points);

    /// Streaming execution: evaluates `points` (through the result cache
    /// and the installed executor, exactly like run()) but returns the
    /// rows as an ordered stream instead of a vector. With the sharded
    /// stream executor installed, rows are read one at a time from the
    /// per-shard NDJSON files — coordinator memory stays O(1) in the row
    /// count. run(points) is collect(run_stream(points)).
    [[nodiscard]] std::unique_ptr<RowStream> run_stream(
        const std::vector<SweepPoint>& points);

    /// Pluggable transport for point lists: when set, run() hands the
    /// expanded points to the executor (which must return one row per
    /// point, in point order) instead of evaluating them on the local
    /// pool. This is the process-distribution seam — the floretsim_run
    /// coordinator installs a fork-N-workers executor here, and every
    /// report function distributes without knowing it. map()/timed_map()
    /// fan-outs are bespoke local work and always stay in-process.
    using PointListExecutor =
        std::function<std::vector<SweepRow>(const std::vector<SweepPoint>&)>;
    void set_point_executor(PointListExecutor executor) {
        executor_ = std::move(executor);
        stream_executor_ = nullptr;
    }

    /// Streaming variant of the executor seam: returns the rows as an
    /// ordered stream rather than a vector, so a distributed backend
    /// never needs to materialize every row in the coordinator. Takes
    /// precedence over set_point_executor; the two are mutually exclusive
    /// (installing either clears the other).
    using StreamExecutor = std::function<std::unique_ptr<RowStream>(
        const std::vector<SweepPoint>&)>;
    void set_stream_executor(StreamExecutor executor) {
        stream_executor_ = std::move(executor);
        executor_ = nullptr;
    }

    /// Human-readable name of the installed transport, surfaced in report
    /// provenance ("in-process" locally; installers of the executor seams
    /// set "shards"/"fleet"). Must point at a string literal.
    void set_executor_label(const char* label) { executor_label_ = label; }
    [[nodiscard]] const char* executor_label() const { return executor_label_; }

    /// Attaches a result cache (nullptr detaches; not owned). Points that
    /// probe() as cached are never dispatched to the pool or the
    /// executor; computed rows are stored back as they stream out.
    void set_result_cache(PointResultCache* cache) { result_cache_ = cache; }

    /// Generic deterministic fan-out for benches whose per-point work is
    /// not run_mix_dynamic: evaluates fn(0..count-1) on the pool and
    /// returns the results indexed by input position. fn must be
    /// re-entrant; its result type must be default-constructible.
    template <typename Fn>
    [[nodiscard]] auto map(std::size_t count, Fn&& fn)
        -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
        using T = std::invoke_result_t<Fn&, std::size_t>;
        static_assert(!std::is_same_v<T, bool>,
                      "vector<bool> packs bits: concurrent writes to adjacent "
                      "indices would race — return a struct or int instead");
        std::vector<T> out(count);
        pool_.parallel_for(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /// map() variant that also records per-point wall-clock into `seconds`
    /// (resized to `count`): the point_seconds_* load-balance signal for
    /// benches whose per-point work is bespoke rather than run_mix_dynamic.
    template <typename Fn>
    [[nodiscard]] auto timed_map(std::size_t count, Fn&& fn,
                                 std::vector<double>& seconds)
        -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
        seconds.assign(count, 0.0);
        return map(count, [&](std::size_t i) {
            const auto t0 = std::chrono::steady_clock::now();
            auto r = fn(i);
            seconds[i] = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            return r;
        });
    }

    /// The shared fabric cache (also usable directly by benches that only
    /// need topologies, e.g. the structural Fig. 2 profile).
    [[nodiscard]] experiment::ArchCache& cache() { return cache_; }
    [[nodiscard]] std::int32_t thread_count() const { return pool_.thread_count(); }

private:
    util::ThreadPool pool_;
    experiment::ArchCache cache_;
    PointListExecutor executor_;
    StreamExecutor stream_executor_;
    PointResultCache* result_cache_ = nullptr;
    const char* executor_label_ = "in-process";
};

}  // namespace floretsim::core
