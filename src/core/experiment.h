#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/floret.h"
#include "src/core/mapper.h"
#include "src/core/sfc.h"
#include "src/noc/routing.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"
#include "src/workload/tables.h"

namespace floretsim::core::experiment {

/// The experiment harness behind the paper's evaluation: builders for the
/// four compared NoI architectures (with their mapping policies) and the
/// dynamic multi-tenant workload runner used by the Fig. 3/4/5 studies.

enum class Arch { kKite, kSiamMesh, kSwap, kFloret };

[[nodiscard]] const char* arch_name(Arch a);

constexpr std::array<Arch, 4> kAllArchs{Arch::kKite, Arch::kSiamMesh, Arch::kSwap,
                                        Arch::kFloret};

/// Chiplet weight capacity used by the mix experiments, in millions of
/// 8-bit parameters. Matches pim::ReramConfig (128x128 crossbars, 2-bit
/// cells, 16 IMAs x 16 crossbars ≈ 1.05M weights per chiplet) — the
/// SIAM-class chiplet the paper assumes. Table II mixes therefore overload
/// the 100-chiplet system and queue, exactly the multi-tenant pressure the
/// paper's mapping study exercises.
constexpr double kParamsPerChipletM = 1.0;

/// The immutable, shareable part of a built architecture: topology, route
/// table, and (for Floret) the SFC set. Construction is deterministic in
/// (arch, w, h, swap_seed), so a fabric built once can back any number of
/// concurrent evaluations — mappers and simulators hold const references
/// into it and never mutate it.
struct ArchFabric {
    Arch arch = Arch::kFloret;
    std::int32_t width = 0;
    std::int32_t height = 0;
    std::uint64_t swap_seed = 13;
    topo::Topology topology{"unbuilt"};
    noc::RouteTable routes;
    SfcSet sfc;  ///< Only meaningful for Floret.
};

/// Builds the shared fabric for one of the compared architectures.
[[nodiscard]] std::shared_ptr<const ArchFabric> build_fabric(
    Arch a, std::int32_t w, std::int32_t h, std::uint64_t swap_seed = 13);

/// Thread-safe memo of ArchFabric construction keyed on
/// (arch, w, h, swap_seed) — topology synthesis and up*/down* route-table
/// construction dominate a sweep point's setup cost, and every point of a
/// sweep at the same grid shares them. Concurrent requests for the same
/// key build once; the losers block on the winner's result.
class ArchCache {
public:
    [[nodiscard]] std::shared_ptr<const ArchFabric> get(Arch a, std::int32_t w,
                                                        std::int32_t h,
                                                        std::uint64_t swap_seed = 13);

    [[nodiscard]] std::int64_t hits() const;
    [[nodiscard]] std::int64_t misses() const;
    void clear();

private:
    using Key = std::tuple<std::int32_t, std::int32_t, std::int32_t, std::uint64_t>;
    struct Entry;  // fabric slot + once-flag, defined in the .cpp

    mutable std::mutex mu_;
    std::map<Key, std::shared_ptr<Entry>> entries_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

/// One fully built architecture: a (possibly shared) fabric plus a mapper
/// bound to its allocation policy (SFC-contiguous for Floret, nearest-hop
/// greedy for the baselines). The mapper is the only mutable state, so two
/// BuiltArchs over the same fabric can run on different threads. The
/// fabric lives on the heap because the mapper holds references into it —
/// the struct must stay move-safe.
struct BuiltArch {
    Arch arch = Arch::kFloret;
    std::shared_ptr<const ArchFabric> fabric;
    std::unique_ptr<Mapper> mapper;

    [[nodiscard]] const topo::Topology& topology() const { return fabric->topology; }
    [[nodiscard]] const noc::RouteTable& routes() const { return fabric->routes; }
    /// Only meaningful for Floret.
    [[nodiscard]] const SfcSet& sfc() const { return fabric->sfc; }
};

/// Petal count for a Floret grid: aim for petals of ~10 chiplets while
/// keeping a valid region tiling (mirrors Fig. 1's 6 petals for 36).
[[nodiscard]] std::int32_t default_lambda(std::int32_t w, std::int32_t h);

/// Builds one of the compared architectures at the given grid size.
/// `greedy_max_gap` is the baselines' contiguity budget in hops (-1 =
/// unbounded); `swap_seed` fixes the SWAP synthesis.
[[nodiscard]] BuiltArch build_arch(Arch a, std::int32_t w, std::int32_t h,
                                   std::uint64_t swap_seed = 13,
                                   std::int32_t greedy_max_gap = -1);

/// Cached variant: fabric from (or into) `cache`, fresh mapper per call.
[[nodiscard]] BuiltArch build_arch(ArchCache& cache, Arch a, std::int32_t w,
                                   std::int32_t h, std::uint64_t swap_seed = 13,
                                   std::int32_t greedy_max_gap = -1);

/// Wraps an already-built fabric with a fresh mapper.
[[nodiscard]] BuiltArch make_built_arch(std::shared_ptr<const ArchFabric> fabric,
                                        std::int32_t greedy_max_gap = -1);

/// Evaluation defaults for the mix experiments: 1/64 traffic sampling and
/// sources that offer traffic as fast as the NoI accepts it, so the drain
/// makespan measures the network rather than the injection pacing.
[[nodiscard]] EvalConfig default_eval_config();

/// Per-inference PIM compute latency of a mapped task (layers in dataflow
/// order on their allocated chiplet spans).
[[nodiscard]] double task_compute_ns(const MappedTask& t, const pim::ReramConfig& rc);

/// Outcome of the dynamic multi-tenant execution of one mix.
struct DynamicResult {
    /// Workload makespan: per round, the slowest resident task's PIM
    /// compute time plus the NoI drain time. Rounds spent at low occupancy
    /// (queue head blocked by fragmentation) inflate this — the paper's
    /// utilization-to-latency causal chain.
    double total_cycles = 0.0;
    double total_energy_pj = 0.0;  ///< NoI energy: dynamic + leakage (Fig. 5).
    std::int64_t flit_hops = 0;
    std::int64_t rounds = 0;
    std::int64_t task_rounds = 0;  ///< Sum of resident counts over rounds.
    bool all_completed = true;
    /// NoI-evaluation economy: rounds that ran the wormhole simulator vs.
    /// rounds served by the unchanged-residency epoch cache
    /// (EvalConfig::round_epoch_cache), plus the simulator-engine work
    /// statistics summed over the rounds that did simulate.
    std::int64_t noi_evals = 0;
    std::int64_t round_epoch_hits = 0;
    std::int64_t sim_cycles_stepped = 0;
    std::int64_t sim_cycles_skipped = 0;
    std::int64_t sim_horizon_jumps = 0;
    /// Regional-core accounting summed over simulated rounds: per-region
    /// participation/leap totals and the per-round hottest/coolest region
    /// participation counts (imbalance). Zero when no round simulated.
    std::int64_t sim_region_cycles_stepped = 0;
    std::int64_t sim_region_cycles_skipped = 0;
    std::int64_t sim_region_horizon_jumps = 0;
    std::int64_t sim_region_stepped_max = 0;
    std::int64_t sim_region_stepped_min = 0;

    /// Field-wise equality: results travel back from sharded workers as
    /// JSON (scenario::dynamic_result_from_json(to_json(r)) == r).
    [[nodiscard]] bool operator==(const DynamicResult&) const = default;
};

/// Executes a Table II mix the way the paper describes Section II's
/// multi-tenant scenario: tasks are admitted strictly from the queue head
/// while the mapper can place them, every resident task runs inference
/// rounds, and tasks retire after a deterministic per-instance number of
/// rounds, returning their chiplets. When the queue head cannot map the
/// system keeps running at reduced occupancy; if the system is idle and
/// the head still fails, placement constraints are relaxed so progress is
/// always possible. Durations depend only on `seed` and queue position,
/// so every architecture executes the identical work schedule.
///
/// Re-entrant: mutates only `arch.mapper` (resetting it first), so
/// concurrent calls are safe as long as each thread owns its BuiltArch —
/// sharing one fabric across threads is fine.
[[nodiscard]] DynamicResult run_mix_dynamic(BuiltArch& arch,
                                            const workload::ConcurrentMix& mix,
                                            const EvalConfig& cfg,
                                            std::uint64_t seed = 1);

}  // namespace floretsim::core::experiment
