#include "src/core/hetero.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <stdexcept>

#include "src/core/floret.h"
#include "src/noc/routing.h"

namespace floretsim::core {

HeteroSystem build_hetero_system(const HeteroConfig& cfg) {
    if (cfg.attention_modules < 1) throw std::invalid_argument("need >= 1 module");

    HeteroSystem sys{topo::Topology("Hetero", cfg.pitch_mm), {}, {}, {}};
    sys.macro_sfc = generate_sfc_set(cfg.macro_width, cfg.macro_height, cfg.lambda);
    FloretOptions opts;
    opts.pitch_mm = cfg.pitch_mm;
    sys.topology = make_floret(sys.macro_sfc, opts);
    sys.macro_order = sys.macro_sfc.concatenated_order();

    // Attention modules alternate along the macro's right and left edges,
    // spread evenly in y; each links to the two nearest edge chiplets so
    // dynamic kernels can sit close to their producers anywhere on the SFC.
    for (std::int32_t m = 0; m < cfg.attention_modules; ++m) {
        const bool right = (m % 2 == 0);
        const std::int32_t slots = (cfg.attention_modules + 1) / 2;
        const std::int32_t slot = m / 2;
        const std::int32_t y = std::min(
            (2 * slot + 1) * cfg.macro_height / (2 * std::max(1, slots)),
            cfg.macro_height - 1);
        const std::int32_t mx = right ? cfg.macro_width : -1;
        const std::int32_t ex = right ? cfg.macro_width - 1 : 0;
        const auto node = sys.topology.add_node(util::Point2{mx, y});
        sys.attention_nodes.push_back(node);
        sys.topology.add_link(node, util::to_index(util::Point2{ex, y}, cfg.macro_width));
        const std::int32_t y2 = y > 0 ? y - 1 : std::min(y + 1, cfg.macro_height - 1);
        const auto edge2 = util::to_index(util::Point2{ex, y2}, cfg.macro_width);
        if (!sys.topology.has_link(node, edge2)) sys.topology.add_link(node, edge2);
    }
    return sys;
}

HeteroMapping map_transformer(const HeteroSystem& sys,
                              const dnn::TransformerConfig& model,
                              const HeteroConfig& cfg, bool force_all_pim) {
    HeteroMapping out;
    const auto kernels = dnn::kernel_walk(model);
    const double capacity = cfg.params_per_chiplet_m * 1e6;

    double cum_weights = 0.0;
    std::vector<topo::NodeId> prev_nodes;

    for (const auto& k : kernels) {
        KernelPlacement p;
        p.kernel = k.name;
        p.cls = k.cls;

        const bool on_pim =
            k.cls == dnn::KernelClass::kStaticWeight ||
            (force_all_pim && k.cls == dnn::KernelClass::kDynamicMatrix);
        if (on_pim) {
            // Pack onto the SFC order by weight volume; dynamic kernels
            // (all-PIM mode) claim one chiplet's worth of crossbars for
            // their intermediate matrix.
            const double mass =
                k.cls == dnn::KernelClass::kStaticWeight
                    ? static_cast<double>(k.weight_params)
                    : capacity;  // one chiplet per dynamic matrix
            const auto first = static_cast<std::int32_t>(cum_weights / capacity);
            cum_weights += mass;
            const auto last = std::max(
                first, static_cast<std::int32_t>(std::ceil(cum_weights / capacity)) - 1);
            if (static_cast<std::size_t>(last) >= sys.macro_order.size()) {
                out.fits = false;
                return out;
            }
            for (std::int32_t c = first; c <= last; ++c)
                p.nodes.push_back(sys.macro_order[static_cast<std::size_t>(c)]);
            out.reram_chiplets_used = std::max(out.reram_chiplets_used, last + 1);
            // PIM MVM throughput: 41 GMAC/s per crossbar-equivalent, one
            // chiplet = 256 crossbars -> ~10.5 TMAC/s.
            const double tmacs = 10.5e12 * static_cast<double>(p.nodes.size());
            p.compute_ns = static_cast<double>(k.work_macs) / tmacs * 1e9;
            if (force_all_pim && k.cls == dnn::KernelClass::kDynamicMatrix) {
                // The score matrix must be written into the crossbars
                // before every MVM pass — the §IV endurance/latency wall.
                p.write_ns = static_cast<double>(k.activation_elems) *
                             cfg.reram_write_ns_per_elem;
                p.compute_ns += p.write_ns;
            }
        } else if (k.cls == dnn::KernelClass::kDynamicMatrix) {
            // Dataflow-aware module choice: the one nearest the producer.
            const auto anchor = prev_nodes.empty()
                                    ? sys.macro_order.front()
                                    : prev_nodes.back();
            const auto apos = sys.topology.node(anchor).pos;
            topo::NodeId best = sys.attention_nodes.front();
            std::int32_t best_d = std::numeric_limits<std::int32_t>::max();
            for (const auto mod : sys.attention_nodes) {
                const auto d = util::manhattan(sys.topology.node(mod).pos, apos);
                if (d < best_d) {
                    best_d = d;
                    best = mod;
                }
            }
            p.nodes.push_back(best);
            const double tmacs = 10.5e12 * cfg.sram_speedup;
            p.compute_ns = static_cast<double>(k.work_macs) / tmacs * 1e9;
        } else {
            // Elementwise: runs where its producer finished.
            p.nodes = prev_nodes.empty()
                          ? std::vector<topo::NodeId>{sys.macro_order.front()}
                          : prev_nodes;
            p.compute_ns = 0.0;
        }
        prev_nodes = p.nodes;
        out.placements.push_back(std::move(p));
    }
    return out;
}

HeteroEval evaluate_hetero(const HeteroSystem& sys, const HeteroMapping& mapping,
                           const dnn::TransformerConfig& model) {
    HeteroEval ev;
    if (!mapping.fits) return ev;
    const auto routes =
        noc::RouteTable::build(sys.topology, noc::RoutingPolicy::kUpDown);
    const auto kernels = dnn::kernel_walk(model);

    for (std::size_t i = 0; i < mapping.placements.size(); ++i) {
        const auto& p = mapping.placements[i];
        ev.compute_ns += p.compute_ns;
        ev.write_ns += p.write_ns;
        if (i == 0) continue;
        // Activations of kernel i-1 flow to kernel i: tail -> head.
        const auto from = mapping.placements[i - 1].nodes.back();
        const auto to = p.nodes.front();
        if (from == to) continue;
        ev.comm_hop_bytes += static_cast<double>(kernels[i - 1].activation_elems) *
                             routes.hops(from, to);
    }
    // 8 B per flit-cycle at 1 GHz.
    ev.latency_ns = ev.compute_ns + ev.comm_hop_bytes / 8.0;
    return ev;
}

}  // namespace floretsim::core
