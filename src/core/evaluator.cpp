#include "src/core/evaluator.h"

#include <algorithm>
#include <cmath>

#include "src/dnn/traffic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace floretsim::core {

std::vector<dnn::Flow> pipeline_flows(const MappedTask& task,
                                      std::int32_t bytes_per_elem) {
    std::vector<dnn::Flow> flows;
    if (!task.mapped) return flows;
    const dnn::Network& net = *task.net;

    // Intra-segment streaming: each boundary inside a multi-chiplet layer
    // carries the layer's input activations (multicast along the chain of
    // its chiplets).
    for (const pim::LayerSegment& seg : task.plan.segments) {
        const auto& nodes = task.layer_nodes[static_cast<std::size_t>(seg.layer_id)];
        const auto in_bytes =
            net.layer(seg.layer_id).in.elems() * static_cast<std::int64_t>(bytes_per_elem);
        for (std::size_t i = 1; i < nodes.size(); ++i) {
            if (nodes[i - 1] != nodes[i])
                flows.push_back(dnn::Flow{nodes[i - 1], nodes[i], in_bytes, false});
        }
    }

    // Inter-layer dataflow: the producing segment's tail chiplet sends the
    // full activation volume to the consuming segment's head chiplet.
    for (const dnn::Edge& e : net.edges()) {
        const auto& src = task.layer_nodes[static_cast<std::size_t>(e.src)];
        const auto& dst = task.layer_nodes[static_cast<std::size_t>(e.dst)];
        if (src.empty() || dst.empty()) continue;
        const auto from = src.back();
        const auto to = dst.front();
        if (from == to) continue;
        flows.push_back(dnn::Flow{
            from, to, e.elems * static_cast<std::int64_t>(bytes_per_elem), e.skip});
    }
    return flows;
}

EvalResult evaluate_noi(const topo::Topology& topo, const noc::RouteTable& routes,
                        std::span<const MappedTask> tasks, const EvalConfig& cfg) {
    const obs::Span span("evaluate_noi", "noi");
    obs::MetricsRegistry::global().add("noi.evals");
    noc::Simulator sim(topo, routes, cfg.sim);

    for (const MappedTask& task : tasks) {
        if (!task.mapped) continue;
        const auto flows = pipeline_flows(task, cfg.bytes_per_elem);
        for (const auto& f : flows) {
            if (f.bytes <= 0) continue;
            // Clamp to one flit: a nonzero flow must stay in the demand
            // list, or aggressive traffic_scale values silently erase
            // small layers from the comparison.
            const auto scaled = std::max<std::int64_t>(
                1, std::llround(static_cast<double>(f.bytes) * cfg.traffic_scale));
            sim.add_demand(noc::Demand{f.src, f.dst, scaled});
        }
        if (cfg.include_weight_load) {
            // One byte per 8-bit parameter, split over the segment span,
            // streamed from the I/O node to every chiplet of the segment.
            for (const auto& seg : task.plan.segments) {
                const auto& nodes =
                    task.layer_nodes[static_cast<std::size_t>(seg.layer_id)];
                if (nodes.empty() || seg.weights == 0) continue;
                const double per_node = static_cast<double>(seg.weights) /
                                        static_cast<double>(nodes.size());
                for (const auto n : nodes) {
                    if (n == cfg.io_node) continue;
                    const auto scaled = std::max<std::int64_t>(
                        1, std::llround(per_node * cfg.traffic_scale));
                    sim.add_demand(noc::Demand{cfg.io_node, n, scaled});
                }
            }
        }
    }

    const noc::SimResult s = sim.run();

    EvalResult res;
    res.latency_cycles = static_cast<double>(s.cycles);
    res.mean_packet_latency = s.packet_latency.mean();
    res.energy_pj = cost::noi_energy_pj(topo, s, cfg.cost);
    res.flit_hops = s.flit_hops;
    res.packets = s.packets;
    res.completed = s.completed;
    res.sim_cycles_stepped = s.cycles_stepped;
    res.sim_cycles_skipped = s.cycles_skipped;
    res.sim_horizon_jumps = s.horizon_jumps;
    res.sim_regions = s.regions;
    res.sim_region_cycles_stepped = s.region_cycles_stepped;
    res.sim_region_cycles_skipped = s.region_cycles_skipped;
    res.sim_region_horizon_jumps = s.region_horizon_jumps;
    res.sim_region_stepped_max = s.region_stepped_max;
    res.sim_region_stepped_min = s.region_stepped_min;
    return res;
}

}  // namespace floretsim::core
