#include "src/core/mapper.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/workload/tables.h"

namespace floretsim::core {

FloretMapper::FloretMapper(const SfcSet& set) : order_(set.concatenated_order()) {
    pos_of_node_.assign(order_.size(), -1);
    for (std::size_t p = 0; p < order_.size(); ++p)
        pos_of_node_[static_cast<std::size_t>(order_[p])] = static_cast<std::int32_t>(p);
    busy_.assign(order_.size(), false);
}

std::vector<MappedTask> FloretMapper::map_queue(std::span<const TaskSpec> tasks,
                                                MappingStats* stats) {
    std::vector<MappedTask> out;
    out.reserve(tasks.size());

    for (const TaskSpec& spec : tasks) {
        MappedTask m;
        m.name = spec.name;
        m.net = spec.net;
        m.plan = spec.plan;
        const auto need = static_cast<std::size_t>(spec.plan.total_chiplets);

        // Earliest free positions along the SFC order (first-fit with
        // spillover across freed holes and SFC boundaries).
        std::vector<std::size_t> positions;
        for (std::size_t p = 0; p < order_.size() && positions.size() < need; ++p)
            if (!busy_[p]) positions.push_back(p);
        if (positions.size() == need) {
            for (const auto p : positions) {
                busy_[p] = true;
                m.nodes.push_back(order_[p]);
            }
            m.layer_nodes = pim::assign_layers(*spec.net, spec.plan, m.nodes);
            m.mapped = true;
        }
        out.push_back(std::move(m));
    }

    if (stats != nullptr) {
        stats->nodes_total = static_cast<std::int32_t>(order_.size());
        stats->nodes_used = static_cast<std::int32_t>(
            std::count(busy_.begin(), busy_.end(), true));
        stats->tasks_mapped = 0;
        stats->tasks_failed = 0;
        for (const auto& m : out) (m.mapped ? stats->tasks_mapped : stats->tasks_failed)++;
    }
    return out;
}

void FloretMapper::release(const MappedTask& task) {
    for (const auto n : task.nodes)
        busy_[static_cast<std::size_t>(pos_of_node_[static_cast<std::size_t>(n)])] = false;
}

void FloretMapper::reset() { std::fill(busy_.begin(), busy_.end(), false); }

GreedyMapper::GreedyMapper(const topo::Topology& topo, const noc::RouteTable& routes,
                           std::int32_t max_gap_hops)
    : topo_(topo),
      routes_(routes),
      max_gap_hops_(max_gap_hops),
      free_node_(static_cast<std::size_t>(topo.node_count()), true) {}

std::vector<MappedTask> GreedyMapper::map_queue(std::span<const TaskSpec> tasks,
                                                MappingStats* stats) {
    std::int32_t free_count = static_cast<std::int32_t>(
        std::count(free_node_.begin(), free_node_.end(), true));

    std::vector<MappedTask> out;
    out.reserve(tasks.size());

    for (const TaskSpec& spec : tasks) {
        MappedTask m;
        m.name = spec.name;
        m.net = spec.net;
        m.plan = spec.plan;
        const std::int32_t need = spec.plan.total_chiplets;

        if (need <= free_count) {
            std::vector<topo::NodeId> chosen;
            chosen.reserve(static_cast<std::size_t>(need));
            bool failed = false;
            for (std::int32_t k = 0; k < need; ++k) {
                topo::NodeId best = -1;
                std::int32_t best_d = std::numeric_limits<std::int32_t>::max();
                if (chosen.empty()) {
                    // First chiplet of the task: lowest-id free node (the
                    // deterministic variant of "next available chiplet").
                    for (topo::NodeId n = 0; n < topo_.node_count(); ++n) {
                        if (free_node_[static_cast<std::size_t>(n)]) {
                            best = n;
                            break;
                        }
                    }
                } else {
                    const topo::NodeId prev = chosen.back();
                    for (topo::NodeId n = 0; n < topo_.node_count(); ++n) {
                        if (!free_node_[static_cast<std::size_t>(n)]) continue;
                        const auto d = routes_.hops(prev, n);
                        if (d < best_d) {
                            best_d = d;
                            best = n;
                        }
                    }
                    if (best >= 0 && max_gap_hops_ >= 0 && best_d > max_gap_hops_) {
                        failed = true;  // no free chiplet close enough
                        break;
                    }
                }
                if (best < 0) {
                    failed = true;
                    break;
                }
                chosen.push_back(best);
                free_node_[static_cast<std::size_t>(best)] = false;
            }
            if (failed) {
                for (const auto n : chosen) free_node_[static_cast<std::size_t>(n)] = true;
            } else {
                m.nodes = std::move(chosen);
                m.layer_nodes = pim::assign_layers(*spec.net, spec.plan, m.nodes);
                m.mapped = true;
                free_count -= need;
            }
        }
        out.push_back(std::move(m));
    }

    if (stats != nullptr) {
        stats->nodes_total = topo_.node_count();
        stats->nodes_used = topo_.node_count() - free_count;
        stats->tasks_mapped = 0;
        stats->tasks_failed = 0;
        for (const auto& m : out) (m.mapped ? stats->tasks_mapped : stats->tasks_failed)++;
    }
    return out;
}

void GreedyMapper::release(const MappedTask& task) {
    for (const auto n : task.nodes) free_node_[static_cast<std::size_t>(n)] = true;
}

void GreedyMapper::reset() { std::fill(free_node_.begin(), free_node_.end(), true); }

MappedTask Mapper::map_one_relaxed(const TaskSpec& task) {
    const std::span<const TaskSpec> one(&task, 1);
    auto mapped = map_queue(one, nullptr);
    return std::move(mapped.front());
}

MappedTask GreedyMapper::map_one_relaxed(const TaskSpec& task) {
    const std::int32_t saved = max_gap_hops_;
    max_gap_hops_ = -1;
    const std::span<const TaskSpec> one(&task, 1);
    auto mapped = map_queue(one, nullptr);
    max_gap_hops_ = saved;
    return std::move(mapped.front());
}

std::vector<TaskSpec> make_tasks(std::span<const std::string> workload_ids,
                                 double params_per_chiplet_m,
                                 std::vector<std::unique_ptr<dnn::Network>>& networks) {
    std::map<std::string, const dnn::Network*> cache;
    std::vector<TaskSpec> specs;
    std::int32_t instance = 0;
    for (const auto& id : workload_ids) {
        const workload::DnnWorkload& w = workload::workload_by_id(id);
        auto it = cache.find(id);
        if (it == cache.end()) {
            networks.push_back(
                std::make_unique<dnn::Network>(dnn::build_model(w.model, w.dataset)));
            it = cache.emplace(id, networks.back().get()).first;
        }
        TaskSpec spec;
        spec.name = id + "#" + std::to_string(instance++) + ":" + w.model;
        spec.net = it->second;
        spec.plan = pim::partition_by_params(*spec.net, w.paper_params_m,
                                             params_per_chiplet_m);
        specs.push_back(std::move(spec));
    }
    return specs;
}

}  // namespace floretsim::core
