#include "src/core/moo.h"

#include <algorithm>
#include <cmath>

#include "src/pim/reram.h"

namespace floretsim::core {

std::vector<topo::NodeId> sfc3d_order(std::int32_t width, std::int32_t height,
                                      std::int32_t depth) {
    std::vector<topo::NodeId> order;
    order.reserve(static_cast<std::size_t>(width) * height * depth);
    for (std::int32_t z = 0; z < depth; ++z) {
        // Serpentine within the tier; alternate the row scan between tiers
        // so the inter-tier step is a single vertical hop.
        for (std::int32_t row = 0; row < height; ++row) {
            const std::int32_t y = (z % 2 == 0) ? row : height - 1 - row;
            const bool l2r = (row % 2 == 0) == (z % 2 == 0);
            for (std::int32_t col = 0; col < width; ++col) {
                const std::int32_t x = l2r ? col : width - 1 - col;
                order.push_back((z * height + y) * width + x);
            }
        }
    }
    return order;
}

PlacementEval evaluate_placement(const dnn::Network& net, const pim::PartitionPlan& plan,
                                 std::span<const topo::NodeId> pe_order,
                                 const noc::RouteTable& routes,
                                 const thermal::ThermalConfig& tcfg,
                                 const thermal::PowerParams& pcfg,
                                 const pim::ReramConfig& rcfg,
                                 const pim::ThermalAccuracyModel& acc,
                                 const PerfParams& perf) {
    const auto layer_nodes = pim::assign_layers(net, plan, pe_order);

    PlacementEval ev;

    // Communication: flits x hops, one flit stream per edge node-pair.
    double flit_hops = 0.0;
    for (const auto& e : net.edges()) {
        const auto& src = layer_nodes[static_cast<std::size_t>(e.src)];
        const auto& dst = layer_nodes[static_cast<std::size_t>(e.dst)];
        if (src.empty() || dst.empty()) continue;
        const double bytes_per_pair =
            static_cast<double>(e.elems) * perf.bytes_per_elem /
            (static_cast<double>(src.size()) * static_cast<double>(dst.size()));
        const double flits_per_pair =
            std::ceil(bytes_per_pair / static_cast<double>(perf.flit_bytes));
        for (const auto s : src)
            for (const auto d : dst)
                if (s != d) flit_hops += flits_per_pair * routes.hops(s, d);
    }
    ev.comm_cycles = flit_hops;

    // Compute: layers execute in dataflow order; chiplet parallelism is
    // already inside layer_compute_latency_ns.
    double compute_ns = 0.0;
    double compute_pj = 0.0;
    for (const auto& seg : plan.segments) {
        const auto& layer = net.layer(seg.layer_id);
        compute_ns += pim::layer_compute_latency_ns(layer, seg.chiplets(), rcfg);
        compute_pj += pim::layer_compute_energy_pj(layer, rcfg) * perf.compute_energy_scale;
    }
    ev.compute_ns = compute_ns;
    ev.latency_ns = compute_ns + ev.comm_cycles * perf.cycle_ns;
    ev.energy_pj = compute_pj + flit_hops * perf.hop_energy_pj;
    ev.edp = ev.latency_ns * ev.energy_pj;

    // Thermal + accuracy.
    const auto power = thermal::pe_power_map(net, layer_nodes, tcfg.cells(), pcfg);
    const auto thermal_result = thermal::solve_steady_state(tcfg, power);
    ev.peak_k = thermal_result.peak_k();

    std::vector<double> weight_frac(static_cast<std::size_t>(tcfg.cells()), 0.0);
    double total_w = 0.0;
    for (const auto& seg : plan.segments) {
        const auto& nodes = layer_nodes[static_cast<std::size_t>(seg.layer_id)];
        if (nodes.empty()) continue;
        const double per_node =
            static_cast<double>(seg.weights) / static_cast<double>(nodes.size());
        for (const auto n : nodes) {
            weight_frac[static_cast<std::size_t>(n)] += per_node;
            total_w += per_node;
        }
    }
    if (total_w > 0.0)
        for (auto& w : weight_frac) w /= total_w;
    ev.accuracy_drop = acc.accuracy_drop(thermal_result.temp_k, weight_frac);
    return ev;
}

namespace {

/// Structured starting candidates: the SFC order with its tier-sized
/// blocks permuted (which tier hosts which pipeline stage) and optionally
/// reversed end to end. These are the macro design moves an architect
/// applies first — e.g. "start the pipeline at the tier next to the heat
/// sink" — and they preserve intra-block adjacency, so they are nearly
/// free in EDP.
std::vector<std::vector<topo::NodeId>> structured_candidates(
    const std::vector<topo::NodeId>& base, std::int32_t tier_cells,
    std::int32_t tiers) {
    std::vector<std::vector<topo::NodeId>> out;
    out.push_back(base);
    if (tier_cells <= 0 || tiers <= 1 ||
        static_cast<std::size_t>(tier_cells) * tiers != base.size()) {
        auto rev = base;
        std::reverse(rev.begin(), rev.end());
        out.push_back(std::move(rev));
        return out;
    }
    std::vector<std::int32_t> perm(static_cast<std::size_t>(tiers));
    for (std::int32_t i = 0; i < tiers; ++i) perm[static_cast<std::size_t>(i)] = i;
    do {
        std::vector<topo::NodeId> cand;
        cand.reserve(base.size());
        for (const auto block : perm) {
            const auto begin = base.begin() + block * tier_cells;
            cand.insert(cand.end(), begin, begin + tier_cells);
        }
        out.push_back(cand);
        std::reverse(cand.begin(), cand.end());
        out.push_back(std::move(cand));
    } while (std::next_permutation(perm.begin(), perm.end()));
    return out;
}

}  // namespace

MooResult optimize_joint(const dnn::Network& net, const pim::PartitionPlan& plan,
                         const noc::RouteTable& routes, const thermal::ThermalConfig& tcfg,
                         const thermal::PowerParams& pcfg, const pim::ReramConfig& rcfg,
                         const pim::ThermalAccuracyModel& acc, const PerfParams& perf,
                         const MooConfig& cfg) {
    MooResult res;
    res.pe_order = sfc3d_order(tcfg.width, tcfg.height, tcfg.depth);

    auto base = evaluate_placement(net, plan, res.pe_order, routes, tcfg, pcfg, rcfg,
                                   acc, perf);
    const double edp_norm = std::max(1e-30, base.edp);
    auto scalar = [&](const PlacementEval& ev) {
        return cfg.w_perf * ev.edp / edp_norm +
               cfg.w_thermal * std::max(0.0, ev.peak_k - cfg.t_target_k);
    };

    util::Rng rng(cfg.seed);
    auto cur_order = res.pe_order;
    auto cur_eval = base;
    double cur_cost = scalar(base);

    // Portfolio phase: pick the best structured candidate as the start.
    for (const auto& cand : structured_candidates(
             res.pe_order, tcfg.width * tcfg.height, tcfg.depth)) {
        const auto ev =
            evaluate_placement(net, plan, cand, routes, tcfg, pcfg, rcfg, acc, perf);
        const double cost = scalar(ev);
        if (cost < cur_cost) {
            cur_cost = cost;
            cur_order = cand;
            cur_eval = ev;
        }
    }
    auto best_order = cur_order;
    auto best_eval = cur_eval;
    double best_cost = cur_cost;

    // Start lukewarm: the initial order is already performance-optimal,
    // so the search should hill-climb with occasional escapes rather than
    // random-walk away from it.
    double temperature = 0.05 * std::max(1e-12, cur_cost);
    for (std::int32_t it = 0; it < cfg.iterations; ++it) {
        auto prop = cur_order;
        // Move set: point swaps and short reversals relocate individual
        // segments; chunk swaps exchange whole contiguous runs of the
        // pipeline between physical regions (e.g. pushing a hot early
        // stage to the tier next to the heat sink at almost no extra
        // communication cost — the designer move Section III describes).
        const auto n = prop.size();
        const double move = rng.uniform();
        if (move < 0.4) {
            const auto i = rng.below(n);
            const auto j = rng.below(n);
            std::swap(prop[i], prop[j]);
        } else if (move < 0.75) {
            const auto i = rng.below(n);
            const auto len = 2 + rng.below(6);
            const auto j = std::min(n, i + len);
            std::reverse(prop.begin() + static_cast<std::ptrdiff_t>(i),
                         prop.begin() + static_cast<std::ptrdiff_t>(j));
        } else {
            // Tier-scale chunk: big enough to relocate a whole hot
            // pipeline stage block (e.g. bottom tier -> sink tier).
            const std::size_t chunk = std::max<std::size_t>(4, n / 4);
            const auto i = rng.below(n - chunk + 1);
            const auto j = rng.below(n - chunk + 1);
            if (i != j && (i + chunk <= j || j + chunk <= i)) {
                for (std::size_t k = 0; k < chunk; ++k)
                    std::swap(prop[i + k], prop[j + k]);
            } else {
                std::swap(prop[rng.below(n)], prop[rng.below(n)]);
            }
        }
        const auto ev = evaluate_placement(net, plan, prop, routes, tcfg, pcfg, rcfg,
                                           acc, perf);
        const double cost = scalar(ev);
        const double delta = cost - cur_cost;
        if (delta < 0.0 || rng.chance(std::exp(-delta / std::max(1e-12, temperature)))) {
            cur_order = std::move(prop);
            cur_eval = ev;
            cur_cost = cost;
            ++res.accepted_moves;
            if (cost < best_cost) {
                best_cost = cost;
                best_order = cur_order;
                best_eval = cur_eval;
            }
        }
        temperature *= 0.999;
    }

    // Greedy pairwise refinement: apply improving single swaps until a
    // full sampling pass finds none. This reliably harvests the local
    // improvements simulated annealing leaves on the table (moving one
    // hot segment off the peak cell, etc.).
    const auto n_nodes = best_order.size();
    for (std::int32_t pass = 0; pass < 25; ++pass) {
        bool improved = false;
        for (std::int32_t trial = 0; trial < 120; ++trial) {
            const auto i = rng.below(n_nodes);
            const auto j = rng.below(n_nodes);
            if (i == j) continue;
            auto prop = best_order;
            std::swap(prop[i], prop[j]);
            const auto ev = evaluate_placement(net, plan, prop, routes, tcfg, pcfg,
                                               rcfg, acc, perf);
            const double cost = scalar(ev);
            if (cost < best_cost - 1e-12) {
                best_cost = cost;
                best_order = std::move(prop);
                best_eval = ev;
                improved = true;
                ++res.accepted_moves;
            }
        }
        if (!improved) break;
    }

    res.pe_order = std::move(best_order);
    res.eval = best_eval;
    return res;
}

MooResult optimize_perf_only(const dnn::Network& net, const pim::PartitionPlan& plan,
                             const noc::RouteTable& routes,
                             const thermal::ThermalConfig& tcfg,
                             const thermal::PowerParams& pcfg,
                             const pim::ReramConfig& rcfg,
                             const pim::ThermalAccuracyModel& acc,
                             const PerfParams& perf, const MooConfig& cfg) {
    MooConfig perf_cfg = cfg;
    perf_cfg.w_thermal = 0.0;
    return optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc, perf, perf_cfg);
}

}  // namespace floretsim::core
