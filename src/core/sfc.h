#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/geometry.h"

namespace floretsim::core {

/// One space-filling curve ("petal"): a Hamiltonian path over a contiguous
/// region of the chiplet grid. Node ids are row-major grid indices. The
/// *head* is where a task starts consuming chiplets (placed near the NoI
/// center); the *tail* is where it spills over into the next SFC.
struct Sfc {
    std::vector<topo::NodeId> path;

    [[nodiscard]] topo::NodeId head() const { return path.front(); }
    [[nodiscard]] topo::NodeId tail() const { return path.back(); }
};

/// A full decomposition of a width x height grid into lambda SFCs — the
/// Floret layout of the paper's Fig. 1.
struct SfcSet {
    std::int32_t width = 0;
    std::int32_t height = 0;
    std::vector<Sfc> sfcs;

    [[nodiscard]] std::int32_t lambda() const noexcept {
        return static_cast<std::int32_t>(sfcs.size());
    }
    [[nodiscard]] util::Point2 pos(topo::NodeId n) const noexcept {
        return util::from_index(n, width);
    }

    /// Eq. (1) of the paper: the mean Manhattan distance from the tail of
    /// each SFC to the heads of all *other* SFCs,
    ///   d = 1/(λ(λ-1)) · Σ_{i≠j} |t_i - h_j|.
    [[nodiscard]] double tail_head_distance() const;

    /// The global chiplet consumption order: SFCs chained greedily
    /// (starting from the head nearest the grid center, each tail jumps to
    /// the nearest unused head), concatenating their paths. This is the
    /// sequence the Floret mapper allocates chiplets from.
    [[nodiscard]] std::vector<topo::NodeId> concatenated_order() const;

    /// True when the SFCs partition the grid: every node appears in
    /// exactly one path position overall.
    [[nodiscard]] bool covers_grid_exactly_once() const;

    /// True when every SFC path is a valid Hamiltonian walk (consecutive
    /// path nodes are 4-neighbors on the grid).
    [[nodiscard]] bool paths_are_contiguous() const;

    /// ASCII sketch of the petal decomposition (Fig. 1 style): each cell
    /// shows its SFC index; heads are marked 'H', tails 'T'.
    [[nodiscard]] std::string render() const;
};

struct SfcOptions {
    /// When true (default) head/tail placement is optimized to minimize
    /// Eq. (1); when false, every region uses its default serpentine
    /// (top-left start) — the ablation baseline.
    bool optimize_placement = true;
};

/// Decomposes the grid into `lambda` balanced rectangular regions and
/// builds one serpentine SFC per region, choosing each region's serpentine
/// variant (start corner x scan orientation) to minimize Eq. (1) with the
/// head pulled toward the grid center. Throws std::invalid_argument when
/// lambda cannot tile the grid (lambda < 1 or lambda > width*height).
[[nodiscard]] SfcSet generate_sfc_set(std::int32_t width, std::int32_t height,
                                      std::int32_t lambda, const SfcOptions& opts = {});

}  // namespace floretsim::core
