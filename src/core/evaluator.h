#pragma once

#include <span>

#include "src/core/mapper.h"
#include "src/cost/models.h"
#include "src/dnn/traffic.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/topology.h"

namespace floretsim::core {

/// End-to-end NoI evaluation settings for the 2.5D experiments.
struct EvalConfig {
    noc::SimConfig sim;
    cost::CostParams cost;
    std::int32_t bytes_per_elem = 1;  ///< int8 activations.
    /// Fraction of the activation traffic injected into the flit
    /// simulator. One full inference pass of a 100-chiplet mix is hundreds
    /// of MB; sampling keeps simulated makespans tractable while
    /// preserving the relative comparison (all architectures use the same
    /// scale). Scaled flows are clamped to a one-flit minimum so small
    /// layers never vanish from the demand list.
    double traffic_scale = 1.0 / 256.0;
    /// Also inject the SIAM-style weight-loading phase: every mapped
    /// chiplet receives its stored weights (1 B per 8-bit parameter) from
    /// the interposer I/O node before inference. Off by default — the
    /// paper's steady-state inference serves many passes per load, but the
    /// ablation bench quantifies its one-time cost.
    bool include_weight_load = false;
    topo::NodeId io_node = 0;  ///< Where weights enter the interposer.
    /// Round-based runners (experiment::run_mix_dynamic): when the resident
    /// task set is unchanged between successive rounds, reuse the previous
    /// round's NoI evaluation instead of re-simulating. evaluate_noi is
    /// deterministic in its inputs, so results are bit-identical either way
    /// (pinned by tests); off forces a fresh simulation every round.
    bool round_epoch_cache = true;

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const EvalConfig&) const = default;
};

/// Aggregate NoI metrics for one workload mapping (one Fig. 3/5 bar).
struct EvalResult {
    double latency_cycles = 0.0;        ///< Makespan to drain the traffic.
    double mean_packet_latency = 0.0;   ///< Cycles, inject -> tail eject.
    double energy_pj = 0.0;             ///< Radix/length-weighted NoI energy.
    std::int64_t flit_hops = 0;
    std::int64_t packets = 0;
    bool completed = false;
    /// Simulator-engine work statistics (noc::SimResult passthrough):
    /// cycles the selected SimCore actually executed vs. proved no-op and
    /// jumped over. Engine-dependent — not part of the semantic result.
    std::int64_t sim_cycles_stepped = 0;
    std::int64_t sim_cycles_skipped = 0;
    std::int64_t sim_horizon_jumps = 0;
    /// Regional-core accounting (noc::SimResult passthrough): region count
    /// of the run, per-region participation/leap totals, and the hottest/
    /// coolest region's participation counts (imbalance).
    std::int64_t sim_regions = 0;
    std::int64_t sim_region_cycles_stepped = 0;
    std::int64_t sim_region_cycles_skipped = 0;
    std::int64_t sim_region_horizon_jumps = 0;
    std::int64_t sim_region_stepped_max = 0;
    std::int64_t sim_region_stepped_min = 0;
};

/// Dataflow (pipeline) traffic of one mapped task, the paper's model:
/// activations flow from layer i to layer i+1, i.e. from the *tail*
/// chiplet of the producing segment to the *head* chiplet of the consuming
/// segment (full edge volume), and stream through multi-chiplet segments
/// chiplet-to-chiplet (each internal boundary carries the layer's input
/// activations). Contiguous mappings therefore ride single-hop links,
/// which is precisely the property Floret optimizes.
[[nodiscard]] std::vector<dnn::Flow> pipeline_flows(const MappedTask& task,
                                                    std::int32_t bytes_per_elem);

/// Projects every mapped task's pipeline flows into demands, runs the
/// wormhole simulator, and prices the traffic with the cost model.
/// Unmapped tasks are skipped (they contribute no traffic).
[[nodiscard]] EvalResult evaluate_noi(const topo::Topology& topo,
                                      const noc::RouteTable& routes,
                                      std::span<const MappedTask> tasks,
                                      const EvalConfig& cfg);

}  // namespace floretsim::core
