#include "src/core/sweep.h"

#include <chrono>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace floretsim::core {

std::vector<SweepPoint> SweepSpec::expand() const {
    const std::vector<EvalConfig> eval_list =
        evals.empty() ? std::vector<EvalConfig>{experiment::default_eval_config()}
                      : evals;
    std::vector<SweepPoint> points;
    points.reserve(archs.size() * grids.size() * mixes.size() * eval_list.size());
    for (const auto arch : archs) {
        for (const auto& [w, h] : grids) {
            for (const auto& mix : mixes) {
                for (const auto& eval : eval_list) {
                    SweepPoint p;
                    p.arch = arch;
                    p.width = w;
                    p.height = h;
                    p.mix = mix;
                    p.eval = eval;
                    p.swap_seed = swap_seed;
                    p.greedy_max_gap = greedy_max_gap;
                    p.run_seed = run_seed;
                    points.push_back(std::move(p));
                }
            }
        }
    }
    return points;
}

SweepResult SweepEngine::run(const SweepSpec& spec) {
    auto res = run(spec.expand());
    res.n_archs = spec.archs.size();
    res.n_grids = spec.grids.size();
    res.n_mixes = spec.mixes.size();
    res.n_evals = spec.evals.empty() ? 1 : spec.evals.size();
    return res;
}

SweepRow evaluate_point(experiment::ArchCache& cache, const SweepPoint& point) {
    const obs::Span span("sweep_point", "sweep");
    obs::MetricsRegistry::global().add("sweep.points");
    const auto t0 = std::chrono::steady_clock::now();
    auto arch = experiment::build_arch(cache, point.arch, point.width,
                                       point.height, point.swap_seed,
                                       point.greedy_max_gap);
    SweepRow row;
    row.point = point;
    row.result =
        experiment::run_mix_dynamic(arch, row.point.mix, point.eval, point.run_seed);
    row.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return row;
}

namespace {

/// Interleaves cached rows with freshly computed ones back into point
/// order. Cached rows are looked up lazily, one per next() — the cache
/// hit path holds no row buffer at all. A probe() that later fails its
/// lookup() (entry evicted or corrupted between the two) degrades to a
/// local recompute, never to a missing row.
class MergeRowStream final : public RowStream {
public:
    MergeRowStream(std::vector<SweepPoint> points, std::vector<char> hit,
                   std::unique_ptr<RowStream> miss_stream,
                   PointResultCache* cache, experiment::ArchCache* arch_cache)
        : points_(std::move(points)),
          hit_(std::move(hit)),
          miss_stream_(std::move(miss_stream)),
          cache_(cache),
          arch_cache_(arch_cache) {}

    [[nodiscard]] std::optional<SweepRow> next() override {
        if (pos_ >= points_.size()) return std::nullopt;
        const std::size_t i = pos_++;
        if (hit_[i]) {
            if (auto row = cache_->lookup(points_[i])) return row;
            SweepRow row = evaluate_point(*arch_cache_, points_[i]);
            cache_->store(points_[i], row);
            return row;
        }
        auto row = miss_stream_->next();
        if (!row)
            throw std::runtime_error("sweep: row stream ended early at point " +
                                     std::to_string(i) + " of " +
                                     std::to_string(points_.size()));
        cache_->store(points_[i], *row);
        return row;
    }
    [[nodiscard]] std::size_t size() const override { return points_.size(); }

private:
    std::vector<SweepPoint> points_;
    std::vector<char> hit_;
    std::unique_ptr<RowStream> miss_stream_;
    PointResultCache* cache_;
    experiment::ArchCache* arch_cache_;
    std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<RowStream> SweepEngine::run_stream(
    const std::vector<SweepPoint>& points) {
    // Partition into cache hits and misses; only misses are dispatched.
    std::vector<char> hit(points.size(), 0);
    std::vector<SweepPoint> misses;
    if (result_cache_) {
        misses.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (result_cache_->probe(points[i]))
                hit[i] = 1;
            else
                misses.push_back(points[i]);
        }
    } else {
        misses = points;
    }

    std::unique_ptr<RowStream> miss_stream;
    if (stream_executor_ && !misses.empty()) {
        miss_stream = stream_executor_(misses);
        if (!miss_stream || miss_stream->size() != misses.size())
            throw std::runtime_error(
                "stream executor returned " +
                std::to_string(miss_stream ? miss_stream->size() : 0) +
                " rows for " + std::to_string(misses.size()) + " points");
    } else if (executor_ && !misses.empty()) {
        auto rows = executor_(misses);
        if (rows.size() != misses.size())
            throw std::runtime_error(
                "point-list executor returned " + std::to_string(rows.size()) +
                " rows for " + std::to_string(misses.size()) + " points");
        miss_stream = std::make_unique<VectorRowStream>(std::move(rows));
    } else {
        std::vector<SweepRow> rows(misses.size());
        pool_.parallel_for(misses.size(), [&](std::size_t i) {
            rows[i] = evaluate_point(cache_, misses[i]);
        });
        miss_stream = std::make_unique<VectorRowStream>(std::move(rows));
    }
    // Without a cache every point is a miss, so the miss stream already
    // yields all rows in point order.
    if (!result_cache_) return miss_stream;
    return std::make_unique<MergeRowStream>(points, std::move(hit),
                                            std::move(miss_stream),
                                            result_cache_, &cache_);
}

SweepResult SweepEngine::run(const std::vector<SweepPoint>& points) {
    const auto hits_before = cache_.hits();
    const auto misses_before = cache_.misses();
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult res;
    auto stream = run_stream(points);
    res.rows.reserve(points.size());
    while (auto row = stream->next()) res.rows.push_back(std::move(*row));
    if (res.rows.size() != points.size())
        throw std::runtime_error("sweep: row stream yielded " +
                                 std::to_string(res.rows.size()) + " rows for " +
                                 std::to_string(points.size()) + " points");

    const auto t1 = std::chrono::steady_clock::now();
    res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    res.fabric_cache_hits = cache_.hits() - hits_before;
    res.fabric_cache_misses = cache_.misses() - misses_before;
    return res;
}

}  // namespace floretsim::core
