#include "src/core/sweep.h"

#include <chrono>

namespace floretsim::core {

std::vector<SweepPoint> SweepSpec::expand() const {
    const std::vector<EvalConfig> eval_list =
        evals.empty() ? std::vector<EvalConfig>{experiment::default_eval_config()}
                      : evals;
    std::vector<SweepPoint> points;
    points.reserve(archs.size() * grids.size() * mixes.size() * eval_list.size());
    for (const auto arch : archs) {
        for (const auto& [w, h] : grids) {
            for (const auto& mix : mixes) {
                for (const auto& eval : eval_list) {
                    SweepPoint p;
                    p.arch = arch;
                    p.width = w;
                    p.height = h;
                    p.mix = mix;
                    p.eval = eval;
                    p.swap_seed = swap_seed;
                    p.greedy_max_gap = greedy_max_gap;
                    p.run_seed = run_seed;
                    points.push_back(std::move(p));
                }
            }
        }
    }
    return points;
}

SweepResult SweepEngine::run(const SweepSpec& spec) {
    auto res = run(spec.expand());
    res.n_archs = spec.archs.size();
    res.n_grids = spec.grids.size();
    res.n_mixes = spec.mixes.size();
    res.n_evals = spec.evals.empty() ? 1 : spec.evals.size();
    return res;
}

SweepResult SweepEngine::run(const std::vector<SweepPoint>& points) {
    const auto hits_before = cache_.hits();
    const auto misses_before = cache_.misses();
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult res;
    res.rows.resize(points.size());
    pool_.parallel_for(points.size(), [&](std::size_t i) {
        const auto p0 = std::chrono::steady_clock::now();
        const SweepPoint& p = points[i];
        auto arch = experiment::build_arch(cache_, p.arch, p.width, p.height,
                                           p.swap_seed, p.greedy_max_gap);
        res.rows[i].point = p;
        res.rows[i].result =
            experiment::run_mix_dynamic(arch, res.rows[i].point.mix, p.eval, p.run_seed);
        res.rows[i].seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
                .count();
    });

    const auto t1 = std::chrono::steady_clock::now();
    res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    res.fabric_cache_hits = cache_.hits() - hits_before;
    res.fabric_cache_misses = cache_.misses() - misses_before;
    return res;
}

}  // namespace floretsim::core
