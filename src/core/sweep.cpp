#include "src/core/sweep.h"

#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace floretsim::core {

std::vector<SweepPoint> SweepSpec::expand() const {
    const std::vector<EvalConfig> eval_list =
        evals.empty() ? std::vector<EvalConfig>{experiment::default_eval_config()}
                      : evals;
    std::vector<SweepPoint> points;
    points.reserve(archs.size() * grids.size() * mixes.size() * eval_list.size());
    for (const auto arch : archs) {
        for (const auto& [w, h] : grids) {
            for (const auto& mix : mixes) {
                for (const auto& eval : eval_list) {
                    SweepPoint p;
                    p.arch = arch;
                    p.width = w;
                    p.height = h;
                    p.mix = mix;
                    p.eval = eval;
                    p.swap_seed = swap_seed;
                    p.greedy_max_gap = greedy_max_gap;
                    p.run_seed = run_seed;
                    points.push_back(std::move(p));
                }
            }
        }
    }
    return points;
}

SweepResult SweepEngine::run(const SweepSpec& spec) {
    auto res = run(spec.expand());
    res.n_archs = spec.archs.size();
    res.n_grids = spec.grids.size();
    res.n_mixes = spec.mixes.size();
    res.n_evals = spec.evals.empty() ? 1 : spec.evals.size();
    return res;
}

SweepRow evaluate_point(experiment::ArchCache& cache, const SweepPoint& point) {
    const obs::Span span("sweep_point", "sweep");
    obs::MetricsRegistry::global().add("sweep.points");
    const auto t0 = std::chrono::steady_clock::now();
    auto arch = experiment::build_arch(cache, point.arch, point.width,
                                       point.height, point.swap_seed,
                                       point.greedy_max_gap);
    SweepRow row;
    row.point = point;
    row.result =
        experiment::run_mix_dynamic(arch, row.point.mix, point.eval, point.run_seed);
    row.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return row;
}

SweepResult SweepEngine::run(const std::vector<SweepPoint>& points) {
    const auto hits_before = cache_.hits();
    const auto misses_before = cache_.misses();
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult res;
    if (executor_ && !points.empty()) {
        res.rows = executor_(points);
        if (res.rows.size() != points.size())
            throw std::runtime_error(
                "point-list executor returned " +
                std::to_string(res.rows.size()) + " rows for " +
                std::to_string(points.size()) + " points");
    } else {
        res.rows.resize(points.size());
        pool_.parallel_for(points.size(), [&](std::size_t i) {
            res.rows[i] = evaluate_point(cache_, points[i]);
        });
    }

    const auto t1 = std::chrono::steady_clock::now();
    res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    res.fabric_cache_hits = cache_.hits() - hits_before;
    res.fabric_cache_misses = cache_.misses() - misses_before;
    return res;
}

}  // namespace floretsim::core
