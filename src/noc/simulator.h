#pragma once

#include <cstdint>
#include <vector>

#include "src/noc/routing.h"
#include "src/topo/topology.h"
#include "src/util/stats.h"

namespace floretsim::noc {

/// Simulator knobs. Defaults model a 64-bit inter-chiplet channel at
/// 1 GHz with 2-cycle routers — SIAM/BookSim-class assumptions.
struct SimConfig {
    std::int32_t flit_bytes = 8;           ///< Payload per flit.
    std::int32_t max_packet_flits = 16;    ///< Long transfers are segmented.
    std::int32_t input_buffer_flits = 8;   ///< Per-input-port FIFO depth.
    std::int32_t router_delay_cycles = 2;  ///< Pipeline latency per hop.
    double mm_per_cycle = 4.0;             ///< Interposer wire speed per cycle.
    std::int64_t max_cycles = 50'000'000;  ///< Hard stop (sim reports !completed).
    /// Injection rate while scheduling packets, in flits/node/cycle.
    double injection_rate = 0.05;
    /// Skip-ahead fast path: when every in-flight flit is inside a link
    /// pipeline (all router FIFOs empty), jump time to the next arrival or
    /// injection event instead of stepping idle cycles. Produces
    /// bit-identical SimResults — the skipped cycles are provably no-ops —
    /// while cutting the cycle loop dramatically on sparse traffic. Off
    /// reproduces the reference cycle-by-cycle behavior (used by tests).
    bool skip_idle = true;
};

/// A point-to-point traffic demand (bytes to move src -> dst).
struct Demand {
    topo::NodeId src = -1;
    topo::NodeId dst = -1;
    std::int64_t bytes = 0;
};

/// Outcome of one simulation run.
struct SimResult {
    std::int64_t cycles = 0;             ///< Makespan: drain time of all traffic.
    std::int64_t packets = 0;            ///< Packets delivered.
    std::int64_t flits = 0;              ///< Flits delivered.
    std::int64_t flit_hops = 0;          ///< Total link traversals by flits.
    bool completed = false;              ///< False if max_cycles was hit.
    util::RunningStats packet_latency;   ///< Inject -> tail-eject, cycles.
    std::vector<std::int64_t> router_flits;  ///< Per-node flit traversals.
    std::vector<std::int64_t> link_flits;    ///< Per-link flit traversals.
};

/// Cycle-driven wormhole network simulator.
///
/// Packets are source-routed along RouteTable paths; each router output is
/// a round-robin arbiter with per-packet wormhole locking; links are
/// pipelined with a delay derived from their physical length; buffer space
/// is managed with credits, so flits never overrun a FIFO. With an
/// up*/down* route table the simulation is deadlock-free by construction.
class Simulator {
public:
    Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg);

    /// Queues a traffic demand (split into packets at run()).
    void add_demand(const Demand& d);
    void add_demands(const std::vector<Demand>& ds);

    /// Runs until all queued traffic drains (or cfg.max_cycles). The
    /// demand list is consumed; the simulator can be reused by adding new
    /// demands afterwards.
    [[nodiscard]] SimResult run();

private:
    const topo::Topology& topo_;
    const RouteTable& routes_;
    SimConfig cfg_;
    std::vector<Demand> demands_;
};

}  // namespace floretsim::noc
