#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/noc/routing.h"
#include "src/topo/topology.h"
#include "src/util/stats.h"

namespace floretsim::noc {

/// Which cycle engine drives the simulation. All cores produce bit-identical
/// SimResults (enforced by tests/test_noc_event_horizon.cpp); they differ
/// only in how many cycles they actually execute.
enum class SimCore : std::uint8_t {
    /// Ground truth: step every cycle while traffic is in flight (idle
    /// gaps with nothing in flight are still fast-forwarded — trivially
    /// sound — or sparse schedules would take minutes of wall clock).
    kReference,
    /// Credit-aware event-horizon engine: after any cycle whose ejection
    /// and switch-allocation phases prove no flit can move — every head
    /// flit is blocked on a zero-credit output or on a wormhole lock held
    /// by another packet — time jumps straight to the next cycle at which
    /// anything can change (earliest link-pipe arrival or next injection;
    /// credit returns need no separate bound because in this simulator a
    /// credit only returns when a downstream allocation or ejection fires,
    /// which the proof has ruled out). See README "NoC simulator cores"
    /// for the full no-op proof obligations.
    kEventHorizon,
    /// Per-region event horizon: the fabric is partitioned into regions
    /// (topo::make_region_map — Floret petals when the generator hints
    /// them, else spatial tiles) and each region advances an independent
    /// local clock. A quiet region proves the kEventHorizon fixed point
    /// *locally* and jumps its clock to min(next local pipe arrival, next
    /// local injection, earliest cross-region in-flight arrival); regions
    /// synchronize only at cross-region channels — an arrival bounds the
    /// destination clock by the link delay, and a same-cycle credit return
    /// wakes the owning region mid-phase. So a saturated drain or hotspot
    /// steps cycle-by-cycle while every other region leaps — exactly the
    /// regime where the global quiet proof degenerates to the reference
    /// loop. Bit-identical to kReference by the same differential
    /// contract; region shape may change performance, never results.
    kRegional,
};

[[nodiscard]] const char* sim_core_name(SimCore c);

/// Parses a core name as spelled on CLIs and in FLORETSIM_SIM_CORE:
/// "reference", "event-horizon" (or "event_horizon"), "regional".
/// std::nullopt on anything else.
[[nodiscard]] std::optional<SimCore> sim_core_from_name(std::string_view name);

/// The core a run configured with `configured` will actually use, after
/// the process-wide FLORETSIM_SIM_CORE override (parsed once; CLI --core
/// flags are implemented by setting that variable before first use).
[[nodiscard]] SimCore resolved_sim_core(SimCore configured);

/// Simulator knobs. Defaults model a 64-bit inter-chiplet channel at
/// 1 GHz with 2-cycle routers — SIAM/BookSim-class assumptions.
struct SimConfig {
    std::int32_t flit_bytes = 8;           ///< Payload per flit.
    std::int32_t max_packet_flits = 16;    ///< Long transfers are segmented.
    std::int32_t input_buffer_flits = 8;   ///< Per-input-port FIFO depth.
    std::int32_t router_delay_cycles = 2;  ///< Pipeline latency per hop.
    double mm_per_cycle = 4.0;             ///< Interposer wire speed per cycle.
    std::int64_t max_cycles = 50'000'000;  ///< Hard stop (sim reports !completed).
    /// Injection rate while scheduling packets, in flits/node/cycle.
    double injection_rate = 0.05;
    /// Cycle engine. kEventHorizon is the default and bit-identical to
    /// kReference (as is kRegional); the environment variable
    /// FLORETSIM_SIM_CORE ("reference" / "event-horizon" / "regional")
    /// overrides it process-wide, which is how CI keeps every core
    /// exercised end to end.
    SimCore core = SimCore::kEventHorizon;
    /// Region count for the kRegional core: 0 derives it from the topology
    /// (generator region hints such as Floret petals, else ~8-node spatial
    /// tiles); > 0 forces about that many spatial tiles. Ignored by the
    /// single-clock cores. Any value is results-preserving — regions change
    /// scheduling, never semantics.
    std::int32_t regions = 0;

    /// Field-wise equality: the scenario layer's JSON round-trip contract
    /// (scenario::sim_config_from_json(to_json(x)) == x).
    [[nodiscard]] bool operator==(const SimConfig&) const = default;
};

/// A point-to-point traffic demand (bytes to move src -> dst).
struct Demand {
    topo::NodeId src = -1;
    topo::NodeId dst = -1;
    std::int64_t bytes = 0;
};

/// Outcome of one simulation run.
struct SimResult {
    std::int64_t cycles = 0;             ///< Makespan: drain time of all traffic.
    std::int64_t packets = 0;            ///< Packets delivered.
    std::int64_t flits = 0;              ///< Flits delivered.
    std::int64_t flit_hops = 0;          ///< Total link traversals by flits.
    bool completed = false;              ///< False if max_cycles was hit.
    util::RunningStats packet_latency;   ///< Inject -> tail-eject, cycles.
    std::vector<std::int64_t> router_flits;  ///< Per-node flit traversals.
    std::vector<std::int64_t> link_flits;    ///< Per-link flit traversals.

    /// Engine-work statistics. These describe how the selected core earned
    /// the result, not the result itself: they legitimately differ between
    /// SimCore settings and are excluded from the bit-identicality
    /// contract the differential tests enforce.
    std::int64_t cycles_stepped = 0;  ///< Cycles actually executed.
    std::int64_t cycles_skipped = 0;  ///< Cycles proven no-op and jumped over.
    std::int64_t horizon_jumps = 0;   ///< Fast-forward events taken.

    /// Regional-core accounting, populated by every core (the single-clock
    /// cores report one region spanning the fabric, so their region totals
    /// mirror the global counters). Each region either participates in a
    /// stepped cycle or its local clock leaps it, hence the invariant
    /// region_cycles_stepped + region_cycles_skipped == regions * cycles.
    /// The stepped max/min pair measures region imbalance: a saturated
    /// drain shows a hot region near `cycles_stepped` and cold regions
    /// near zero.
    std::int64_t regions = 0;                ///< Region count of the run.
    std::int64_t region_cycles_stepped = 0;  ///< Sum of per-region participations.
    std::int64_t region_cycles_skipped = 0;  ///< Sum of per-region leapt cycles.
    std::int64_t region_horizon_jumps = 0;   ///< Sum of per-region sleep jumps.
    std::int64_t region_stepped_max = 0;     ///< Hottest region's participations.
    std::int64_t region_stepped_min = 0;     ///< Coolest region's participations.
};

/// Cycle-driven wormhole network simulator.
///
/// Packets are source-routed along RouteTable paths; each router output is
/// a round-robin arbiter with per-packet wormhole locking; links are
/// pipelined with a delay derived from their physical length; buffer space
/// is managed with credits, so flits never overrun a FIFO. With an
/// up*/down* route table the simulation is deadlock-free by construction.
class Simulator {
public:
    Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg);

    /// Queues a traffic demand (split into packets at run()).
    void add_demand(const Demand& d);
    void add_demands(const std::vector<Demand>& ds);

    /// Runs until all queued traffic drains (or cfg.max_cycles). The
    /// demand list is consumed; the simulator can be reused by adding new
    /// demands afterwards.
    [[nodiscard]] SimResult run();

private:
    const topo::Topology& topo_;
    const RouteTable& routes_;
    SimConfig cfg_;
    std::vector<Demand> demands_;
};

}  // namespace floretsim::noc
