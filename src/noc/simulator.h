#pragma once

#include <cstdint>
#include <vector>

#include "src/noc/routing.h"
#include "src/topo/topology.h"
#include "src/util/stats.h"

namespace floretsim::noc {

/// Which cycle engine drives the simulation. Both produce bit-identical
/// SimResults (enforced by tests/test_noc_event_horizon.cpp); they differ
/// only in how many cycles they actually execute.
enum class SimCore : std::uint8_t {
    /// Ground truth: step every cycle while traffic is in flight (idle
    /// gaps with nothing in flight are still fast-forwarded — trivially
    /// sound — or sparse schedules would take minutes of wall clock).
    kReference,
    /// Credit-aware event-horizon engine: after any cycle whose ejection
    /// and switch-allocation phases prove no flit can move — every head
    /// flit is blocked on a zero-credit output or on a wormhole lock held
    /// by another packet — time jumps straight to the next cycle at which
    /// anything can change (earliest link-pipe arrival or next injection;
    /// credit returns need no separate bound because in this simulator a
    /// credit only returns when a downstream allocation or ejection fires,
    /// which the proof has ruled out). See README "NoC simulator cores"
    /// for the full no-op proof obligations.
    kEventHorizon,
};

[[nodiscard]] const char* sim_core_name(SimCore c);

/// Simulator knobs. Defaults model a 64-bit inter-chiplet channel at
/// 1 GHz with 2-cycle routers — SIAM/BookSim-class assumptions.
struct SimConfig {
    std::int32_t flit_bytes = 8;           ///< Payload per flit.
    std::int32_t max_packet_flits = 16;    ///< Long transfers are segmented.
    std::int32_t input_buffer_flits = 8;   ///< Per-input-port FIFO depth.
    std::int32_t router_delay_cycles = 2;  ///< Pipeline latency per hop.
    double mm_per_cycle = 4.0;             ///< Interposer wire speed per cycle.
    std::int64_t max_cycles = 50'000'000;  ///< Hard stop (sim reports !completed).
    /// Injection rate while scheduling packets, in flits/node/cycle.
    double injection_rate = 0.05;
    /// Cycle engine. kEventHorizon is the default and bit-identical to
    /// kReference; the environment variable FLORETSIM_SIM_CORE
    /// ("reference" / "event-horizon") overrides it process-wide, which is
    /// how CI keeps the reference loop exercised end to end.
    SimCore core = SimCore::kEventHorizon;

    /// Field-wise equality: the scenario layer's JSON round-trip contract
    /// (scenario::sim_config_from_json(to_json(x)) == x).
    [[nodiscard]] bool operator==(const SimConfig&) const = default;
};

/// A point-to-point traffic demand (bytes to move src -> dst).
struct Demand {
    topo::NodeId src = -1;
    topo::NodeId dst = -1;
    std::int64_t bytes = 0;
};

/// Outcome of one simulation run.
struct SimResult {
    std::int64_t cycles = 0;             ///< Makespan: drain time of all traffic.
    std::int64_t packets = 0;            ///< Packets delivered.
    std::int64_t flits = 0;              ///< Flits delivered.
    std::int64_t flit_hops = 0;          ///< Total link traversals by flits.
    bool completed = false;              ///< False if max_cycles was hit.
    util::RunningStats packet_latency;   ///< Inject -> tail-eject, cycles.
    std::vector<std::int64_t> router_flits;  ///< Per-node flit traversals.
    std::vector<std::int64_t> link_flits;    ///< Per-link flit traversals.

    /// Engine-work statistics. These describe how the selected core earned
    /// the result, not the result itself: they legitimately differ between
    /// SimCore settings and are excluded from the bit-identicality
    /// contract the differential tests enforce.
    std::int64_t cycles_stepped = 0;  ///< Cycles actually executed.
    std::int64_t cycles_skipped = 0;  ///< Cycles proven no-op and jumped over.
    std::int64_t horizon_jumps = 0;   ///< Fast-forward events taken.
};

/// Cycle-driven wormhole network simulator.
///
/// Packets are source-routed along RouteTable paths; each router output is
/// a round-robin arbiter with per-packet wormhole locking; links are
/// pipelined with a delay derived from their physical length; buffer space
/// is managed with credits, so flits never overrun a FIFO. With an
/// up*/down* route table the simulation is deadlock-free by construction.
class Simulator {
public:
    Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg);

    /// Queues a traffic demand (split into packets at run()).
    void add_demand(const Demand& d);
    void add_demands(const std::vector<Demand>& ds);

    /// Runs until all queued traffic drains (or cfg.max_cycles). The
    /// demand list is consumed; the simulator can be reused by adding new
    /// demands afterwards.
    [[nodiscard]] SimResult run();

private:
    const topo::Topology& topo_;
    const RouteTable& routes_;
    SimConfig cfg_;
    std::vector<Demand> demands_;
};

}  // namespace floretsim::noc
