#include "src/noc/routing.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace floretsim::noc {
namespace {

using topo::NodeId;

/// Node nearest the centroid of all node positions (tie: lowest id).
NodeId central_node(const topo::Topology& t) {
    double cx = 0.0;
    double cy = 0.0;
    for (const auto& n : t.nodes()) {
        cx += n.pos.x;
        cy += n.pos.y;
    }
    cx /= std::max(1, t.node_count());
    cy /= std::max(1, t.node_count());
    NodeId best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (const auto& n : t.nodes()) {
        const double dx = n.pos.x - cx;
        const double dy = n.pos.y - cy;
        const double d = dx * dx + dy * dy;
        if (d < best_d) {
            best_d = d;
            best = n.id;
        }
    }
    return best;
}

/// BFS levels from the root (spanning-tree depth for up*/down*).
std::vector<std::int32_t> bfs_levels(const topo::Topology& t, NodeId root) {
    return t.hop_distances(root);
}

/// "Up" direction: toward (lower level, lower id). Every link has exactly
/// one up end, so the orientation is a DAG and up-then-down paths exist
/// between all pairs (via the root in the worst case).
bool is_up_move(const std::vector<std::int32_t>& level, NodeId from, NodeId to) {
    const auto lf = level[static_cast<std::size_t>(from)];
    const auto lt = level[static_cast<std::size_t>(to)];
    return lt < lf || (lt == lf && to < from);
}

std::vector<NodeId> reverse_path(std::vector<NodeId> p) {
    std::reverse(p.begin(), p.end());
    return p;
}

}  // namespace

RouteTable RouteTable::build(const topo::Topology& t, RoutingPolicy policy,
                             topo::NodeId root) {
    RouteTable rt;
    rt.n_ = t.node_count();
    rt.routes_.assign(static_cast<std::size_t>(rt.n_) * static_cast<std::size_t>(rt.n_), {});

    if (policy == RoutingPolicy::kXY) {
        // Node lookup by (x, y, tier).
        std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, NodeId> at;
        for (const auto& node : t.nodes())
            at[{node.pos.x, node.pos.y, node.tier}] = node.id;
        auto step = [&](NodeId cur, std::int32_t dx, std::int32_t dy,
                        std::int32_t dz) -> NodeId {
            const auto& n = t.node(cur);
            const auto it = at.find({n.pos.x + dx, n.pos.y + dy, n.tier + dz});
            if (it == at.end() || !t.has_link(cur, it->second))
                throw std::invalid_argument(
                    "XY routing requires a mesh-structured topology: missing link at "
                    "node " + std::to_string(cur));
            return it->second;
        };
        for (NodeId src = 0; src < rt.n_; ++src) {
            for (NodeId dst = 0; dst < rt.n_; ++dst) {
                auto& route = rt.routes_[rt.index(src, dst)];
                route = {src};
                NodeId cur = src;
                while (cur != dst) {
                    const auto& c = t.node(cur);
                    const auto& d = t.node(dst);
                    if (c.pos.x != d.pos.x)
                        cur = step(cur, c.pos.x < d.pos.x ? 1 : -1, 0, 0);
                    else if (c.pos.y != d.pos.y)
                        cur = step(cur, 0, c.pos.y < d.pos.y ? 1 : -1, 0);
                    else
                        cur = step(cur, 0, 0, c.tier < d.tier ? 1 : -1);
                    route.push_back(cur);
                }
            }
        }
        return rt;
    }

    if (policy == RoutingPolicy::kShortestPath) {
        // BFS from every destination, recording parent pointers toward it;
        // ties broken toward the lowest neighbor id for determinism.
        for (NodeId dst = 0; dst < rt.n_; ++dst) {
            std::vector<NodeId> parent(static_cast<std::size_t>(rt.n_), -1);
            std::vector<std::int32_t> dist(static_cast<std::size_t>(rt.n_), -1);
            std::queue<NodeId> q;
            dist[static_cast<std::size_t>(dst)] = 0;
            q.push(dst);
            while (!q.empty()) {
                const NodeId cur = q.front();
                q.pop();
                auto nbrs = t.adjacency(cur);
                std::sort(nbrs.begin(), nbrs.end());
                for (const auto& [nbr, lid] : nbrs) {
                    if (dist[static_cast<std::size_t>(nbr)] < 0) {
                        dist[static_cast<std::size_t>(nbr)] =
                            dist[static_cast<std::size_t>(cur)] + 1;
                        parent[static_cast<std::size_t>(nbr)] = cur;
                        q.push(nbr);
                    }
                }
            }
            for (NodeId src = 0; src < rt.n_; ++src) {
                auto& route = rt.routes_[rt.index(src, dst)];
                if (src == dst) {
                    route = {src};
                    continue;
                }
                if (dist[static_cast<std::size_t>(src)] < 0) continue;  // unreachable
                NodeId cur = src;
                route.push_back(cur);
                while (cur != dst) {
                    cur = parent[static_cast<std::size_t>(cur)];
                    route.push_back(cur);
                }
            }
        }
        return rt;
    }

    // Up*/down*: BFS over the state graph (node, has-gone-down).
    const NodeId r = root >= 0 ? root : central_node(t);
    const auto level = bfs_levels(t, r);
    const auto n = static_cast<std::size_t>(rt.n_);
    for (NodeId src = 0; src < rt.n_; ++src) {
        // State: node * 2 + phase (0 = still ascending, 1 = descending).
        std::vector<std::int32_t> dist(n * 2, -1);
        std::vector<std::int32_t> prev(n * 2, -1);  // previous state index
        std::queue<std::int32_t> q;
        const std::int32_t start = static_cast<std::int32_t>(src) * 2;
        dist[static_cast<std::size_t>(start)] = 0;
        q.push(start);
        while (!q.empty()) {
            const std::int32_t st = q.front();
            q.pop();
            const NodeId cur = st / 2;
            const std::int32_t phase = st % 2;
            auto nbrs = t.adjacency(cur);
            std::sort(nbrs.begin(), nbrs.end());
            for (const auto& [nbr, lid] : nbrs) {
                const bool up = is_up_move(level, cur, nbr);
                if (phase == 1 && up) continue;  // down -> up forbidden
                const std::int32_t nphase = up ? phase : 1;
                const std::int32_t nst = static_cast<std::int32_t>(nbr) * 2 + nphase;
                if (dist[static_cast<std::size_t>(nst)] < 0) {
                    dist[static_cast<std::size_t>(nst)] =
                        dist[static_cast<std::size_t>(st)] + 1;
                    prev[static_cast<std::size_t>(nst)] = st;
                    q.push(nst);
                }
            }
        }
        for (NodeId dst = 0; dst < rt.n_; ++dst) {
            auto& route = rt.routes_[rt.index(src, dst)];
            if (src == dst) {
                route = {src};
                continue;
            }
            // Prefer the shorter of the two terminal phases.
            std::int32_t best_state = -1;
            for (const std::int32_t phase : {0, 1}) {
                const std::int32_t st = static_cast<std::int32_t>(dst) * 2 + phase;
                if (dist[static_cast<std::size_t>(st)] < 0) continue;
                if (best_state < 0 || dist[static_cast<std::size_t>(st)] <
                                          dist[static_cast<std::size_t>(best_state)])
                    best_state = st;
            }
            if (best_state < 0) continue;  // unreachable
            std::vector<NodeId> rev;
            for (std::int32_t st = best_state; st >= 0;
                 st = prev[static_cast<std::size_t>(st)])
                rev.push_back(st / 2);
            route = reverse_path(std::move(rev));
        }
    }
    return rt;
}

double RouteTable::mean_hops() const {
    double total = 0.0;
    std::int64_t pairs = 0;
    for (std::int32_t s = 0; s < n_; ++s) {
        for (std::int32_t d = 0; d < n_; ++d) {
            if (s == d) continue;
            const auto& r = routes_[index(s, d)];
            if (r.empty()) continue;
            total += static_cast<double>(r.size()) - 1.0;
            ++pairs;
        }
    }
    return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

bool RouteTable::complete() const {
    for (std::int32_t s = 0; s < n_; ++s)
        for (std::int32_t d = 0; d < n_; ++d)
            if (routes_[index(s, d)].empty()) return false;
    return true;
}

}  // namespace floretsim::noc
