#include "src/noc/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace floretsim::noc {
namespace {

using topo::LinkId;
using topo::NodeId;

struct Packet {
    std::int32_t id = -1;
    NodeId src = -1;
    NodeId dst = -1;
    std::int32_t flits = 0;
    std::int64_t inject_cycle = 0;
    const std::vector<NodeId>* path = nullptr;
};

struct Flit {
    std::int32_t packet = -1;
    std::int32_t hop = 0;  ///< Index into the packet path of the current node.
    bool head = false;
    bool tail = false;
};

/// One directed channel (half of a bidirectional link) with its pipeline
/// and the input FIFO at its downstream router.
struct Channel {
    NodeId from = -1;
    NodeId to = -1;
    LinkId link = -1;
    std::int32_t delay = 1;
    std::int32_t credits = 0;                      ///< Space left downstream.
    std::deque<std::pair<Flit, std::int64_t>> pipe;  ///< (flit, arrival cycle).
    std::deque<Flit> fifo;                         ///< Downstream input buffer.
};

}  // namespace

Simulator::Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg)
    : topo_(topo), routes_(routes), cfg_(cfg) {
    if (topo.node_count() != routes.node_count())
        throw std::invalid_argument("route table built for a different topology");
}

void Simulator::add_demand(const Demand& d) {
    if (d.src < 0 || d.dst < 0 || d.src >= topo_.node_count() ||
        d.dst >= topo_.node_count())
        throw std::out_of_range("demand endpoint out of range");
    if (d.src == d.dst || d.bytes <= 0) return;  // local or empty: no traffic
    demands_.push_back(d);
}

void Simulator::add_demands(const std::vector<Demand>& ds) {
    for (const auto& d : ds) add_demand(d);
}

SimResult Simulator::run() {
    const auto n_nodes = static_cast<std::size_t>(topo_.node_count());

    // --- Build directed channels: 2 per link, plus per-node injection
    // queues (unbounded source FIFO) and ejection sinks.
    std::vector<Channel> channels;
    channels.reserve(topo_.links().size() * 2);
    // in_channels[n] = indices of channels whose downstream FIFO sits at n.
    std::vector<std::vector<std::int32_t>> in_channels(n_nodes);

    for (const auto& l : topo_.links()) {
        const auto delay = std::max<std::int32_t>(
            1, static_cast<std::int32_t>(std::lround(l.length_mm / cfg_.mm_per_cycle))) +
                           cfg_.router_delay_cycles;
        for (const auto& [from, to] : {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
            Channel c;
            c.from = from;
            c.to = to;
            c.link = l.id;
            c.delay = delay;
            c.credits = cfg_.input_buffer_flits;
            const auto idx = static_cast<std::int32_t>(channels.size());
            channels.push_back(std::move(c));
            in_channels[static_cast<std::size_t>(to)].push_back(idx);
        }
    }

    // --- Packetize demands and build per-node injection schedules.
    std::vector<Packet> packets;
    for (const auto& d : demands_) {
        const auto total_flits = std::max<std::int64_t>(
            1, (d.bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes);
        std::int64_t remaining = total_flits;
        while (remaining > 0) {
            const auto take =
                static_cast<std::int32_t>(std::min<std::int64_t>(remaining, cfg_.max_packet_flits));
            Packet p;
            p.id = static_cast<std::int32_t>(packets.size());
            p.src = d.src;
            p.dst = d.dst;
            p.flits = take;
            p.path = &routes_.route(d.src, d.dst);
            if (p.path->size() < 2)
                throw std::logic_error("no route for demand " + std::to_string(d.src) +
                                       "->" + std::to_string(d.dst));
            packets.push_back(p);
            remaining -= take;
        }
    }
    demands_.clear();

    // Round-robin interleave packets of each source across the injection
    // window implied by the configured injection rate.
    std::vector<std::vector<std::int32_t>> per_src(n_nodes);
    for (const auto& p : packets) per_src[static_cast<std::size_t>(p.src)].push_back(p.id);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        const double rate = std::max(1e-9, cfg_.injection_rate);
        double cursor = 0.0;
        for (const auto pid : per_src[n]) {
            packets[static_cast<std::size_t>(pid)].inject_cycle =
                static_cast<std::int64_t>(cursor);
            cursor += static_cast<double>(packets[static_cast<std::size_t>(pid)].flits) / rate;
        }
    }

    // Per-node injection FIFO of flits, pre-expanded lazily: we keep a
    // cursor into the packet list sorted by inject time.
    for (std::size_t n = 0; n < n_nodes; ++n) {
        std::sort(per_src[n].begin(), per_src[n].end(),
                  [&](std::int32_t a, std::int32_t b) {
                      return packets[static_cast<std::size_t>(a)].inject_cycle <
                             packets[static_cast<std::size_t>(b)].inject_cycle;
                  });
    }
    std::vector<std::size_t> inj_cursor(n_nodes, 0);
    std::vector<std::deque<Flit>> inj_fifo(n_nodes);

    // --- Arbiter state.
    // Output lock: which packet currently owns each channel (wormhole).
    std::vector<std::int32_t> lock(channels.size(), -1);
    // Round-robin pointer per channel over its router's input sources.
    std::vector<std::uint32_t> rr(channels.size(), 0);

    SimResult res;
    res.router_flits.assign(n_nodes, 0);
    res.link_flits.assign(topo_.links().size(), 0);

    std::int64_t now = 0;
    std::int64_t delivered_packets = 0;
    const auto total_packets = static_cast<std::int64_t>(packets.size());
    std::vector<std::int32_t> flits_left(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) flits_left[i] = packets[i].flits;

    std::int64_t in_flight_flits = 0;
    std::int64_t piped_flits = 0;  ///< Subset of in-flight flits inside link pipes.

    // Switch-allocation scratch, reused across cycles (an allocation per
    // cycle here dominates the profile on long drains).
    std::vector<std::int8_t> channel_drained(channels.size(), 0);
    std::vector<std::int8_t> inj_drained(n_nodes, 0);

    while (delivered_packets < total_packets && now < cfg_.max_cycles) {
        // 1. Injection: move due packets into their source FIFO as flits.
        for (std::size_t n = 0; n < n_nodes; ++n) {
            while (inj_cursor[n] < per_src[n].size()) {
                const auto pid = per_src[n][inj_cursor[n]];
                const auto& p = packets[static_cast<std::size_t>(pid)];
                if (p.inject_cycle > now) break;
                for (std::int32_t f = 0; f < p.flits; ++f) {
                    Flit fl;
                    fl.packet = pid;
                    fl.hop = 0;
                    fl.head = (f == 0);
                    fl.tail = (f == p.flits - 1);
                    inj_fifo[n].push_back(fl);
                    ++in_flight_flits;
                }
                ++inj_cursor[n];
            }
        }

        // 2. Link pipelines: deliver arrived flits into downstream FIFOs.
        for (auto& c : channels) {
            while (!c.pipe.empty() && c.pipe.front().second <= now) {
                c.fifo.push_back(c.pipe.front().first);
                c.pipe.pop_front();
                --piped_flits;
            }
        }

        // 3. Ejection: flits at their destination leave the network (one
        // per input port per cycle), returning credit to the channel that
        // delivered them.
        for (auto& c : channels) {
            if (c.fifo.empty()) continue;
            const Flit& f = c.fifo.front();
            const auto& p = packets[static_cast<std::size_t>(f.packet)];
            const auto& path = *p.path;
            if (path[static_cast<std::size_t>(f.hop)] != p.dst) continue;
            if (f.tail) {
                ++delivered_packets;
                res.packet_latency.add(static_cast<double>(now - p.inject_cycle));
            }
            ++res.flits;
            --in_flight_flits;
            c.fifo.pop_front();
            ++c.credits;
        }

        // 4. Switch allocation: for every output channel pick one flit.
        // `channel_drained` / `inj_drained` enforce one flit per input
        // port per cycle across all outputs of a router.
        std::fill(channel_drained.begin(), channel_drained.end(), 0);
        std::fill(inj_drained.begin(), inj_drained.end(), 0);
        for (std::size_t ci = 0; ci < channels.size(); ++ci) {
            Channel& out = channels[ci];
            if (out.credits <= 0) continue;
            const auto node = static_cast<std::size_t>(out.from);

            // Candidate input sources at this router: injection FIFO (-1)
            // plus each incoming channel's FIFO.
            const auto& ins = in_channels[node];
            const auto n_sources = ins.size() + 1;

            auto head_wants = [&](std::deque<Flit>& fifo) -> bool {
                if (fifo.empty()) return false;
                const Flit& f = fifo.front();
                const auto& p = packets[static_cast<std::size_t>(f.packet)];
                const auto& path = *p.path;
                const auto pos = static_cast<std::size_t>(f.hop);
                if (path[pos] == p.dst) return false;  // wants ejection
                return path[pos + 1] == out.to;
            };
            auto fifo_of = [&](std::size_t source) -> std::deque<Flit>& {
                return source == 0
                           ? inj_fifo[node]
                           : channels[static_cast<std::size_t>(ins[source - 1])].fifo;
            };
            auto source_free = [&](std::size_t source) -> bool {
                return source == 0
                           ? inj_drained[node] == 0
                           : channel_drained[static_cast<std::size_t>(ins[source - 1])] == 0;
            };

            std::int32_t chosen = -1;  // source index
            if (lock[ci] >= 0) {
                // Wormhole continuation: only the owner packet may use the
                // output; find the source whose head flit belongs to it.
                for (std::size_t s = 0; s < n_sources; ++s) {
                    auto& fifo = fifo_of(s);
                    if (source_free(s) && !fifo.empty() &&
                        fifo.front().packet == lock[ci] && head_wants(fifo)) {
                        chosen = static_cast<std::int32_t>(s);
                        break;
                    }
                }
            } else {
                // New allocation: round-robin over head flits requesting us.
                for (std::size_t k = 0; k < n_sources; ++k) {
                    const std::size_t s = (rr[ci] + k) % n_sources;
                    auto& fifo = fifo_of(s);
                    if (source_free(s) && !fifo.empty() && fifo.front().head &&
                        head_wants(fifo)) {
                        chosen = static_cast<std::int32_t>(s);
                        rr[ci] = static_cast<std::uint32_t>(s + 1);
                        break;
                    }
                }
            }
            if (chosen < 0) continue;

            auto& fifo = fifo_of(static_cast<std::size_t>(chosen));
            Flit f = fifo.front();
            fifo.pop_front();
            if (chosen > 0) {
                // Credit back to the upstream channel we drained.
                const auto up = static_cast<std::size_t>(ins[static_cast<std::size_t>(chosen) - 1]);
                ++channels[up].credits;
                channel_drained[up] = 1;
            } else {
                inj_drained[node] = 1;
            }
            lock[ci] = f.tail ? -1 : f.packet;
            --out.credits;
            ++f.hop;
            out.pipe.emplace_back(f, now + out.delay);
            ++piped_flits;
            ++res.router_flits[node];
            ++res.link_flits[static_cast<std::size_t>(out.link)];
            ++res.flit_hops;
        }

        ++now;

        const auto next_injection = [&] {
            std::int64_t next = std::numeric_limits<std::int64_t>::max();
            for (std::size_t n = 0; n < n_nodes; ++n) {
                if (inj_cursor[n] < per_src[n].size()) {
                    next = std::min(
                        next,
                        packets[static_cast<std::size_t>(per_src[n][inj_cursor[n]])]
                            .inject_cycle);
                }
            }
            return next;
        };

        // Fast-forward across idle gaps (no flits in flight anywhere and
        // the next injection is in the future).
        if (in_flight_flits == 0) {
            const auto next_inject = next_injection();
            if (next_inject == std::numeric_limits<std::int64_t>::max()) {
                break;  // nothing left anywhere
            }
            now = std::max(now, next_inject);
        } else if (cfg_.skip_idle && in_flight_flits == piped_flits) {
            // Skip-ahead fast path: every in-flight flit sits inside a
            // link pipeline, so no ejection or switch allocation can
            // happen until the earliest pipe arrival (or the next
            // injection, if sooner) — every cycle in between is a no-op.
            // Arrival cycles within a channel are monotone (constant
            // delay), so each pipe's front is its earliest.
            std::int64_t next_event = next_injection();
            for (const auto& c : channels) {
                if (!c.pipe.empty())
                    next_event = std::min(next_event, c.pipe.front().second);
            }
            // Clamp to max_cycles so a capped run still reports the same
            // cycle count as the reference loop.
            now = std::max(now, std::min(next_event, cfg_.max_cycles));
        }
    }

    res.cycles = now;
    res.packets = delivered_packets;
    res.completed = delivered_packets == total_packets;
    return res;
}

}  // namespace floretsim::noc
