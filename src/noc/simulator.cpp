#include "src/noc/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

namespace floretsim::noc {
namespace {

using topo::LinkId;
using topo::NodeId;

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

struct Packet {
    std::int32_t id = -1;
    NodeId src = -1;
    NodeId dst = -1;
    std::int32_t flits = 0;
    std::int64_t inject_cycle = 0;
    const std::vector<NodeId>* path = nullptr;
};

struct Flit {
    std::int32_t packet = -1;
    std::int32_t hop = 0;  ///< Index into the packet path of the current node.
    bool head = false;
    bool tail = false;
};

/// One directed channel (half of a bidirectional link) with its pipeline
/// and the input FIFO at its downstream router.
struct Channel {
    NodeId from = -1;
    NodeId to = -1;
    LinkId link = -1;
    std::int32_t delay = 1;
    std::int32_t credits = 0;                        ///< Space left downstream.
    std::deque<std::pair<Flit, std::int64_t>> pipe;  ///< (flit, arrival cycle).
    std::deque<Flit> fifo;                           ///< Downstream input buffer.
};

/// Head-flit request table entries: what a source FIFO's head flit asks of
/// the switch this cycle. Non-negative values are output channel indices.
constexpr std::int32_t kRequestNone = -2;   ///< Source FIFO is empty.
constexpr std::int32_t kRequestEject = -1;  ///< Head flit is at its destination.

/// Process-wide core override, parsed once: lets CI (and ad-hoc debugging)
/// force every simulation onto one engine without touching configs.
std::optional<SimCore> core_env_override() {
    static const std::optional<SimCore> parsed = []() -> std::optional<SimCore> {
        const char* s = std::getenv("FLORETSIM_SIM_CORE");
        if (s == nullptr || *s == '\0') return std::nullopt;
        const std::string_view sv(s);
        if (sv == "reference") return SimCore::kReference;
        if (sv == "event-horizon" || sv == "event_horizon")
            return SimCore::kEventHorizon;
        std::fprintf(stderr,
                     "floretsim: ignoring unknown FLORETSIM_SIM_CORE='%s' "
                     "(expected 'reference' or 'event-horizon')\n",
                     s);
        return std::nullopt;
    }();
    return parsed;
}

/// One simulation run, restructured from the former monolithic loop into an
/// explicit per-router/per-channel state model:
///   - per-cycle phases (inject, deliver, eject, allocate) in step();
///   - a head-flit request table rebuilt each stepped cycle, shared by the
///     switch allocator and the event-horizon no-op proof;
///   - a lazy next-event query over link-pipe fronts and injection
///     schedules, paid only when a jump is attempted.
///
/// The event-horizon core exploits one theorem about this model: if a
/// stepped cycle ejects nothing and allocates nothing, the network state is
/// a fixed point — credits, locks, round-robin pointers and every FIFO are
/// unchanged, because all of them mutate only through ejection or
/// allocation. The only exogenous events are link-pipe arrivals and source
/// injections, so every cycle before the earliest of those is provably a
/// no-op and time can jump straight to it. Credit returns need no separate
/// horizon term: a credit is returned exactly when a downstream ejection or
/// allocation fires, which the fixed point has ruled out until new flits
/// land. verify_quiet() cross-checks the fixed point against the request
/// table in debug builds: every waiting head flit must be blocked on a
/// zero-credit output or on a wormhole lock owned by another packet.
class Engine {
public:
    Engine(const topo::Topology& topo, const RouteTable& routes, const SimConfig& cfg,
           const std::vector<Demand>& demands)
        : cfg_(cfg),
          horizon_(cfg.core == SimCore::kEventHorizon),
          n_nodes_(static_cast<std::size_t>(topo.node_count())) {
        // --- Directed channels: 2 per link, indexed from both endpoints.
        channels_.reserve(topo.links().size() * 2);
        in_channels_.resize(n_nodes_);
        out_channels_.resize(n_nodes_);
        for (const auto& l : topo.links()) {
            const auto delay = std::max<std::int32_t>(
                1, static_cast<std::int32_t>(std::lround(l.length_mm / cfg_.mm_per_cycle))) +
                               cfg_.router_delay_cycles;
            for (const auto& [from, to] : {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
                Channel c;
                c.from = from;
                c.to = to;
                c.link = l.id;
                c.delay = delay;
                c.credits = cfg_.input_buffer_flits;
                const auto idx = static_cast<std::int32_t>(channels_.size());
                channels_.push_back(std::move(c));
                in_channels_[static_cast<std::size_t>(to)].push_back(idx);
                out_channels_[static_cast<std::size_t>(from)].push_back(idx);
            }
        }

        // --- Packetize demands and build per-node injection schedules.
        for (const auto& d : demands) {
            const auto total_flits = std::max<std::int64_t>(
                1, (d.bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes);
            std::int64_t remaining = total_flits;
            while (remaining > 0) {
                const auto take = static_cast<std::int32_t>(
                    std::min<std::int64_t>(remaining, cfg_.max_packet_flits));
                Packet p;
                p.id = static_cast<std::int32_t>(packets_.size());
                p.src = d.src;
                p.dst = d.dst;
                p.flits = take;
                p.path = &routes.route(d.src, d.dst);
                if (p.path->size() < 2)
                    throw std::logic_error("no route for demand " + std::to_string(d.src) +
                                           "->" + std::to_string(d.dst));
                packets_.push_back(p);
                remaining -= take;
            }
        }

        // Round-robin interleave packets of each source across the
        // injection window implied by the configured injection rate.
        per_src_.resize(n_nodes_);
        for (const auto& p : packets_)
            per_src_[static_cast<std::size_t>(p.src)].push_back(p.id);
        for (std::size_t n = 0; n < n_nodes_; ++n) {
            const double rate = std::max(1e-9, cfg_.injection_rate);
            double cursor = 0.0;
            for (const auto pid : per_src_[n]) {
                auto& p = packets_[static_cast<std::size_t>(pid)];
                p.inject_cycle = static_cast<std::int64_t>(cursor);
                cursor += static_cast<double>(p.flits) / rate;
            }
            std::sort(per_src_[n].begin(), per_src_[n].end(),
                      [&](std::int32_t a, std::int32_t b) {
                          return packets_[static_cast<std::size_t>(a)].inject_cycle <
                                 packets_[static_cast<std::size_t>(b)].inject_cycle;
                      });
        }
        inj_cursor_.assign(n_nodes_, 0);
        inj_fifo_.resize(n_nodes_);

        // --- Arbiter and scratch state.
        lock_.assign(channels_.size(), -1);
        rr_.assign(channels_.size(), 0);
        inj_request_.assign(n_nodes_, kRequestNone);
        ch_request_.assign(channels_.size(), kRequestNone);
        channel_drained_.assign(channels_.size(), 0);
        inj_drained_.assign(n_nodes_, 0);

        res_.router_flits.assign(n_nodes_, 0);
        res_.link_flits.assign(topo.links().size(), 0);
        total_packets_ = static_cast<std::int64_t>(packets_.size());
    }

    SimResult run() {
        std::int64_t now = 0;
        while (delivered_packets_ < total_packets_ && now < cfg_.max_cycles) {
            const bool active = step(now);
            ++now;
            ++res_.cycles_stepped;

            // Fast-forward decision. The reference core only jumps the
            // trivially-sound idle gaps (nothing in flight anywhere); the
            // event-horizon core additionally jumps after any quiet cycle
            // (see the class comment for the proof). Keeping the idle rule
            // in the horizon core matters: it fires even when the final
            // ejection made the cycle active, so the horizon core never
            // steps a cycle the reference loop would have skipped.
            const bool quiet = in_flight_flits_ == 0 || (horizon_ && !active);
            if (!quiet) continue;
            const std::int64_t next_inject = next_injection();
            const std::int64_t next_event =
                horizon_ ? std::min(next_inject, earliest_arrival()) : next_inject;
            if (in_flight_flits_ == 0 && next_event == kNever)
                break;  // nothing left anywhere
            // Clamp to max_cycles so a capped run reports the same cycle
            // count as stepping to the cap would (next_event may be kNever
            // here when every in-flight flit is wedged: the jump then burns
            // the remaining budget exactly like the reference loop does).
            const std::int64_t target =
                std::max(now, std::min(next_event, cfg_.max_cycles));
            if (target > now) {
                res_.cycles_skipped += target - now;
                ++res_.horizon_jumps;
                now = target;
            }
        }
        res_.cycles = now;
        res_.packets = delivered_packets_;
        res_.completed = delivered_packets_ == total_packets_;
        return std::move(res_);
    }

private:
    /// One cycle of the reference semantics. Returns whether the ejection
    /// or allocation phase moved any flit — false means the network state
    /// is a fixed point until the next pipe arrival or injection.
    bool step(const std::int64_t now) {
        // 1. Injection: move due packets into their source FIFO as flits.
        for (std::size_t n = 0; n < n_nodes_; ++n) {
            while (inj_cursor_[n] < per_src_[n].size()) {
                const auto pid = per_src_[n][inj_cursor_[n]];
                const auto& p = packets_[static_cast<std::size_t>(pid)];
                if (p.inject_cycle > now) break;
                for (std::int32_t f = 0; f < p.flits; ++f) {
                    Flit fl;
                    fl.packet = pid;
                    fl.hop = 0;
                    fl.head = (f == 0);
                    fl.tail = (f == p.flits - 1);
                    inj_fifo_[n].push_back(fl);
                    ++in_flight_flits_;
                }
                ++inj_cursor_[n];
            }
        }

        // 2. Link pipelines: deliver arrived flits into downstream FIFOs.
        for (auto& c : channels_) {
            while (!c.pipe.empty() && c.pipe.front().second <= now) {
                c.fifo.push_back(c.pipe.front().first);
                c.pipe.pop_front();
            }
        }
        // 3. Ejection: flits at their destination leave the network (one
        // per input port per cycle), returning credit to the channel that
        // delivered them.
        bool ejected = false;
        for (auto& c : channels_) {
            if (c.fifo.empty()) continue;
            const Flit& f = c.fifo.front();
            const auto& p = packets_[static_cast<std::size_t>(f.packet)];
            if ((*p.path)[static_cast<std::size_t>(f.hop)] != p.dst) continue;
            if (f.tail) {
                ++delivered_packets_;
                res_.packet_latency.add(static_cast<double>(now - p.inject_cycle));
            }
            ++res_.flits;
            --in_flight_flits_;
            c.fifo.pop_front();
            ++c.credits;
            ejected = true;
        }

        // 4. Switch allocation over the head-flit request table.
        refresh_requests();
        const bool allocated = allocate(now);

#ifndef NDEBUG
        if (horizon_ && !ejected && !allocated) verify_quiet();
#endif
        return ejected || allocated;
    }

    /// Rebuilds the head-flit request table from the current FIFO fronts.
    /// Entries of sources drained later in the same cycle go stale, but the
    /// allocator's one-flit-per-input-per-cycle guard keeps them unread.
    void refresh_requests() {
        for (std::size_t n = 0; n < n_nodes_; ++n)
            inj_request_[n] = request_of(inj_fifo_[n]);
        for (std::size_t ci = 0; ci < channels_.size(); ++ci)
            ch_request_[ci] = request_of(channels_[ci].fifo);
    }

    [[nodiscard]] std::int32_t request_of(const std::deque<Flit>& fifo) const {
        if (fifo.empty()) return kRequestNone;
        const Flit& f = fifo.front();
        const auto& p = packets_[static_cast<std::size_t>(f.packet)];
        const auto& path = *p.path;
        const auto pos = static_cast<std::size_t>(f.hop);
        if (path[pos] == p.dst) return kRequestEject;
        const NodeId next = path[pos + 1];
        for (const auto ci : out_channels_[static_cast<std::size_t>(path[pos])])
            if (channels_[static_cast<std::size_t>(ci)].to == next) return ci;
        assert(false && "route step without a matching channel");
        return kRequestNone;
    }

    /// For every output channel pick one flit: wormhole continuation for
    /// locked outputs, round-robin arbitration over requesting head flits
    /// otherwise. `channel_drained_` / `inj_drained_` enforce one flit per
    /// input port per cycle across all outputs of a router.
    bool allocate(const std::int64_t now) {
        std::fill(channel_drained_.begin(), channel_drained_.end(), 0);
        std::fill(inj_drained_.begin(), inj_drained_.end(), 0);
        bool any = false;
        for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
            Channel& out = channels_[ci];
            if (out.credits <= 0) continue;
            const auto node = static_cast<std::size_t>(out.from);
            const auto& ins = in_channels_[node];
            const auto n_sources = ins.size() + 1;
            const auto out_req = static_cast<std::int32_t>(ci);

            // Source 0 is the node's injection FIFO; source s >= 1 is the
            // FIFO of incoming channel ins[s - 1].
            auto fifo_of = [&](std::size_t s) -> std::deque<Flit>& {
                return s == 0 ? inj_fifo_[node]
                              : channels_[static_cast<std::size_t>(ins[s - 1])].fifo;
            };
            auto request_at = [&](std::size_t s) -> std::int32_t {
                return s == 0 ? inj_request_[node]
                              : ch_request_[static_cast<std::size_t>(ins[s - 1])];
            };
            auto source_free = [&](std::size_t s) -> bool {
                return s == 0 ? inj_drained_[node] == 0
                              : channel_drained_[static_cast<std::size_t>(ins[s - 1])] == 0;
            };

            std::int32_t chosen = -1;  // source index
            if (lock_[ci] >= 0) {
                // Wormhole continuation: only the owner packet may use the
                // output; find the source whose head flit belongs to it.
                for (std::size_t s = 0; s < n_sources; ++s) {
                    if (!source_free(s) || request_at(s) != out_req) continue;
                    if (fifo_of(s).front().packet != lock_[ci]) continue;
                    chosen = static_cast<std::int32_t>(s);
                    break;
                }
            } else {
                // New allocation: round-robin over head flits requesting us.
                for (std::size_t k = 0; k < n_sources; ++k) {
                    const std::size_t s = (rr_[ci] + k) % n_sources;
                    if (!source_free(s) || request_at(s) != out_req) continue;
                    if (!fifo_of(s).front().head) continue;
                    chosen = static_cast<std::int32_t>(s);
                    rr_[ci] = static_cast<std::uint32_t>(s + 1);
                    break;
                }
            }
            if (chosen < 0) continue;

            any = true;
            auto& fifo = fifo_of(static_cast<std::size_t>(chosen));
            Flit f = fifo.front();
            fifo.pop_front();
            if (chosen > 0) {
                // Credit back to the upstream channel we drained.
                const auto up =
                    static_cast<std::size_t>(ins[static_cast<std::size_t>(chosen) - 1]);
                ++channels_[up].credits;
                channel_drained_[up] = 1;
            } else {
                inj_drained_[node] = 1;
            }
            lock_[ci] = f.tail ? -1 : f.packet;
            --out.credits;
            ++f.hop;
            out.pipe.emplace_back(f, now + out.delay);
            ++res_.router_flits[node];
            ++res_.link_flits[static_cast<std::size_t>(out.link)];
            ++res_.flit_hops;
        }
        return any;
    }

    /// Earliest cycle at which any packet still waits to inject.
    [[nodiscard]] std::int64_t next_injection() const {
        std::int64_t next = kNever;
        for (std::size_t n = 0; n < n_nodes_; ++n) {
            if (inj_cursor_[n] < per_src_[n].size()) {
                next = std::min(
                    next, packets_[static_cast<std::size_t>(per_src_[n][inj_cursor_[n]])]
                              .inject_cycle);
            }
        }
        return next;
    }

    /// Earliest link-pipe arrival still in flight. Arrival cycles within a
    /// channel are monotone (constant per-channel delay), so each pipe's
    /// front is its earliest and an O(channels) scan is exact. Evaluated
    /// lazily — only when a quiet cycle attempts a jump — so the allocator
    /// hot path carries no event-queue bookkeeping.
    [[nodiscard]] std::int64_t earliest_arrival() const {
        std::int64_t next = kNever;
        for (const auto& c : channels_)
            if (!c.pipe.empty()) next = std::min(next, c.pipe.front().second);
        return next;
    }

#ifndef NDEBUG
    /// Debug cross-check of the no-op proof: on a quiet cycle every waiting
    /// head flit must be blocked on a zero-credit output or on a wormhole
    /// lock owned by another packet (a body flit's output lock is always
    /// owned by its own packet, and ejectable flits cannot wait — the
    /// ejection phase drains them unconditionally).
    void verify_quiet() const {
        const auto blocked = [&](std::int32_t req, const std::deque<Flit>& fifo) {
            if (req == kRequestNone) return true;
            if (req == kRequestEject) return false;  // would have ejected
            const auto& out = channels_[static_cast<std::size_t>(req)];
            const auto owner = lock_[static_cast<std::size_t>(req)];
            if (out.credits <= 0) return true;                  // blocked on credit
            return owner >= 0 && owner != fifo.front().packet;  // blocked on lock
        };
        for (std::size_t n = 0; n < n_nodes_; ++n)
            assert(blocked(inj_request_[n], inj_fifo_[n]));
        for (std::size_t ci = 0; ci < channels_.size(); ++ci)
            assert(blocked(ch_request_[ci], channels_[ci].fifo));
    }
#endif

    const SimConfig& cfg_;
    const bool horizon_;
    const std::size_t n_nodes_;

    std::vector<Channel> channels_;
    /// in_channels_[n] / out_channels_[n]: channels whose FIFO sits at /
    /// whose upstream router is node n.
    std::vector<std::vector<std::int32_t>> in_channels_;
    std::vector<std::vector<std::int32_t>> out_channels_;

    std::vector<Packet> packets_;
    std::vector<std::vector<std::int32_t>> per_src_;  ///< Injection schedules.
    std::vector<std::size_t> inj_cursor_;
    std::vector<std::deque<Flit>> inj_fifo_;

    std::vector<std::int32_t> lock_;  ///< Wormhole owner per output channel.
    std::vector<std::uint32_t> rr_;   ///< Round-robin pointer per output.
    std::vector<std::int32_t> inj_request_;  ///< Request table: injection FIFOs.
    std::vector<std::int32_t> ch_request_;   ///< Request table: channel FIFOs.
    std::vector<std::int8_t> channel_drained_;
    std::vector<std::int8_t> inj_drained_;

    SimResult res_;
    std::int64_t total_packets_ = 0;
    std::int64_t delivered_packets_ = 0;
    std::int64_t in_flight_flits_ = 0;
};

}  // namespace

const char* sim_core_name(SimCore c) {
    switch (c) {
        case SimCore::kReference: return "reference";
        case SimCore::kEventHorizon: return "event-horizon";
    }
    return "?";
}

Simulator::Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg)
    : topo_(topo), routes_(routes), cfg_(cfg) {
    if (topo.node_count() != routes.node_count())
        throw std::invalid_argument("route table built for a different topology");
    if (const auto forced = core_env_override()) cfg_.core = *forced;
}

void Simulator::add_demand(const Demand& d) {
    if (d.src < 0 || d.dst < 0 || d.src >= topo_.node_count() ||
        d.dst >= topo_.node_count())
        throw std::out_of_range("demand endpoint out of range");
    if (d.src == d.dst || d.bytes <= 0) return;  // local or empty: no traffic
    demands_.push_back(d);
}

void Simulator::add_demands(const std::vector<Demand>& ds) {
    for (const auto& d : ds) add_demand(d);
}

SimResult Simulator::run() {
    Engine engine(topo_, routes_, cfg_, demands_);
    demands_.clear();
    return engine.run();
}

}  // namespace floretsim::noc
