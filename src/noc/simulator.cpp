#include "src/noc/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace floretsim::noc {
namespace {

using topo::LinkId;
using topo::NodeId;

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

struct Packet {
    std::int32_t id = -1;
    NodeId src = -1;
    NodeId dst = -1;
    std::int32_t flits = 0;
    std::int64_t inject_cycle = 0;
    const std::vector<NodeId>* path = nullptr;
};

struct Flit {
    std::int32_t packet = -1;
    std::int32_t hop = 0;  ///< Index into the packet path of the current node.
    bool head = false;
    bool tail = false;
};

/// One directed channel (half of a bidirectional link) with its pipeline
/// and the input FIFO at its downstream router.
struct Channel {
    NodeId from = -1;
    NodeId to = -1;
    LinkId link = -1;
    std::int32_t delay = 1;
    std::int32_t credits = 0;                        ///< Space left downstream.
    std::deque<std::pair<Flit, std::int64_t>> pipe;  ///< (flit, arrival cycle).
    std::deque<Flit> fifo;                           ///< Downstream input buffer.
};

/// One locality unit of the regional core: a set of routers, the channels
/// whose FIFOs they host (in_ch), the channels they allocate (out_ch), and
/// an independent local clock. The single-clock cores are the one-region
/// special case — one region spanning the fabric makes the merged phase
/// loops below degenerate to the legacy whole-network iteration order.
struct Region {
    std::vector<std::int32_t> nodes;   ///< Member routers, ascending.
    std::vector<std::int32_t> in_ch;   ///< Channels with `to` here, ascending.
    std::vector<std::int32_t> out_ch;  ///< Channels with `from` here, ascending.
    std::int64_t next = 0;     ///< Earliest cycle this region must execute.
    std::int64_t stepped = 0;  ///< Cycles this region participated in.
    std::int64_t jumps = 0;    ///< Sleep transitions skipping >= 1 cycle.
};

/// Head-flit request table entries: what a source FIFO's head flit asks of
/// the switch this cycle. Non-negative values are output channel indices.
constexpr std::int32_t kRequestNone = -2;   ///< Source FIFO is empty.
constexpr std::int32_t kRequestEject = -1;  ///< Head flit is at its destination.

/// Process-wide core override, parsed once: lets CI, the --core CLI flags
/// (which set the variable before first use) and ad-hoc debugging force
/// every simulation onto one engine without touching configs.
std::optional<SimCore> core_env_override() {
    static const std::optional<SimCore> parsed = []() -> std::optional<SimCore> {
        const char* s = std::getenv("FLORETSIM_SIM_CORE");
        if (s == nullptr || *s == '\0') return std::nullopt;
        const auto core = sim_core_from_name(s);
        if (!core) {
            std::fprintf(stderr,
                         "floretsim: ignoring unknown FLORETSIM_SIM_CORE='%s' "
                         "(expected 'reference', 'event-horizon' or 'regional')\n",
                         s);
        }
        return core;
    }();
    return parsed;
}

/// One simulation run, structured around regions with independent local
/// clocks (`Region::next` = the earliest cycle the region must execute).
/// Per global cycle the engine runs the reference phases — inject, deliver,
/// eject, allocate — but only over *awake* regions (next <= now); when no
/// region is due, the global clock jumps to the earliest regional wake-up.
///
/// Bit-identicality with the reference loop rests on two ordering rules and
/// one fixed-point theorem:
///
///   - Ejection and allocation iterate the awake regions' channel lists
///     merged in ascending global channel index — the reference core's
///     exact order. Ejection order fixes the floating-point accumulation
///     order of packet_latency; allocation order fixes the same-cycle
///     credit/drain coupling between channels of one cycle.
///
///   - The PR-3 fixed point, localized: a cycle in which a region ejected
///     nothing, allocated nothing, and received no credit from another
///     region leaves its credits, locks, round-robin pointers and FIFOs
///     unchanged — all of them mutate only through the region's own
///     ejection/allocation or a cross-region credit return. Its next
///     possible change is its earliest local pipe arrival or injection, so
///     its clock jumps there. verify_quiet() cross-checks the local proof
///     in debug builds: every waiting head flit in the region must be
///     blocked on a zero-credit output or a foreign wormhole lock.
///
///   - Cross-region events wake sleepers exactly when the reference core
///     would let them act. A flit allocated onto a cut channel bounds the
///     destination region's clock by its arrival cycle (lookahead = the
///     channel delay >= 1). A credit returned to a sleeping region's
///     output channel has *zero* lookahead — the reference allocator could
///     use it later in the same cycle — so the owner is woken within the
///     cycle for the allocation phase only: a credit returned by ejection
///     enters the merged scan from its first channel (ejection precedes
///     all allocation), and a credit returned by a drain mid-scan enters
///     just past the draining channel's index — precisely the set of
///     outputs the reference core would still visit with that credit
///     available. A credit-touched region never proves quietness that
///     cycle (the stale request table cannot see what the credit unblocks);
///     it stays awake one more cycle instead — conservative, never wrong.
class Engine {
public:
    Engine(const topo::Topology& topo, const RouteTable& routes, const SimConfig& cfg,
           const std::vector<Demand>& demands)
        : cfg_(cfg),
          horizon_(cfg.core != SimCore::kReference),
          n_nodes_(static_cast<std::size_t>(topo.node_count())) {
        // --- Directed channels: 2 per link, indexed from both endpoints.
        channels_.reserve(topo.links().size() * 2);
        in_channels_.resize(n_nodes_);
        out_channels_.resize(n_nodes_);
        for (const auto& l : topo.links()) {
            const auto delay = std::max<std::int32_t>(
                1, static_cast<std::int32_t>(std::lround(l.length_mm / cfg_.mm_per_cycle))) +
                               cfg_.router_delay_cycles;
            for (const auto& [from, to] : {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
                Channel c;
                c.from = from;
                c.to = to;
                c.link = l.id;
                c.delay = delay;
                c.credits = cfg_.input_buffer_flits;
                const auto idx = static_cast<std::int32_t>(channels_.size());
                channels_.push_back(std::move(c));
                in_channels_[static_cast<std::size_t>(to)].push_back(idx);
                out_channels_[static_cast<std::size_t>(from)].push_back(idx);
            }
        }

        // --- Packetize demands and build per-node injection schedules.
        for (const auto& d : demands) {
            const auto total_flits = std::max<std::int64_t>(
                1, (d.bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes);
            std::int64_t remaining = total_flits;
            while (remaining > 0) {
                const auto take = static_cast<std::int32_t>(
                    std::min<std::int64_t>(remaining, cfg_.max_packet_flits));
                Packet p;
                p.id = static_cast<std::int32_t>(packets_.size());
                p.src = d.src;
                p.dst = d.dst;
                p.flits = take;
                p.path = &routes.route(d.src, d.dst);
                if (p.path->size() < 2)
                    throw std::logic_error("no route for demand " + std::to_string(d.src) +
                                           "->" + std::to_string(d.dst));
                packets_.push_back(p);
                remaining -= take;
            }
        }

        // Round-robin interleave packets of each source across the
        // injection window implied by the configured injection rate.
        per_src_.resize(n_nodes_);
        for (const auto& p : packets_)
            per_src_[static_cast<std::size_t>(p.src)].push_back(p.id);
        for (std::size_t n = 0; n < n_nodes_; ++n) {
            const double rate = std::max(1e-9, cfg_.injection_rate);
            double cursor = 0.0;
            for (const auto pid : per_src_[n]) {
                auto& p = packets_[static_cast<std::size_t>(pid)];
                p.inject_cycle = static_cast<std::int64_t>(cursor);
                cursor += static_cast<double>(p.flits) / rate;
            }
            std::sort(per_src_[n].begin(), per_src_[n].end(),
                      [&](std::int32_t a, std::int32_t b) {
                          return packets_[static_cast<std::size_t>(a)].inject_cycle <
                                 packets_[static_cast<std::size_t>(b)].inject_cycle;
                      });
        }
        inj_cursor_.assign(n_nodes_, 0);
        inj_fifo_.resize(n_nodes_);

        // --- Arbiter and scratch state.
        lock_.assign(channels_.size(), -1);
        rr_.assign(channels_.size(), 0);
        inj_request_.assign(n_nodes_, kRequestNone);
        ch_request_.assign(channels_.size(), kRequestNone);
        channel_drained_.assign(channels_.size(), 0);
        inj_drained_.assign(n_nodes_, 0);

        // --- Regions: the regional core partitions via topo::make_region_map;
        // the single-clock cores use one region spanning the fabric, which
        // reproduces their legacy iteration order and accounting exactly.
        std::vector<std::int32_t> node_region(n_nodes_, 0);
        std::int32_t n_regions = 1;
        if (cfg_.core == SimCore::kRegional && n_nodes_ > 0) {
            const auto rm = topo::make_region_map(topo, cfg_.regions);
            if (rm.count > 0) {
                node_region = rm.region_of;
                n_regions = rm.count;
            }
        }
        regions_.resize(static_cast<std::size_t>(n_regions));
        for (std::size_t n = 0; n < n_nodes_; ++n)
            regions_[static_cast<std::size_t>(node_region[n])].nodes.push_back(
                static_cast<std::int32_t>(n));
        ch_from_region_.resize(channels_.size());
        ch_to_region_.resize(channels_.size());
        for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
            const auto fr = node_region[static_cast<std::size_t>(channels_[ci].from)];
            const auto tr = node_region[static_cast<std::size_t>(channels_[ci].to)];
            ch_from_region_[ci] = fr;
            ch_to_region_[ci] = tr;
            regions_[static_cast<std::size_t>(fr)].out_ch.push_back(
                static_cast<std::int32_t>(ci));
            regions_[static_cast<std::size_t>(tr)].in_ch.push_back(
                static_cast<std::int32_t>(ci));
        }
        for (auto& r : regions_) r.next = region_next_injection(r);
        cursor_.assign(regions_.size(), 0);
        is_awake_.assign(regions_.size(), 0);
        in_alloc_.assign(regions_.size(), 0);
        region_active_.assign(regions_.size(), 0);
        credit_touched_.assign(regions_.size(), 0);
        awake_.reserve(regions_.size());
        alloc_extra_.reserve(regions_.size());

        res_.router_flits.assign(n_nodes_, 0);
        res_.link_flits.assign(topo.links().size(), 0);
        total_packets_ = static_cast<std::int64_t>(packets_.size());
    }

    SimResult run() {
        std::int64_t now = 0;
        while (delivered_packets_ < total_packets_ && now < cfg_.max_cycles) {
            awake_.clear();
            std::int64_t soonest = kNever;
            for (std::size_t r = 0; r < regions_.size(); ++r) {
                if (regions_[r].next <= now) {
                    is_awake_[r] = 1;
                    awake_.push_back(static_cast<std::int32_t>(r));
                } else {
                    soonest = std::min(soonest, regions_[r].next);
                }
            }
            if (awake_.empty()) {
                // Every region holds a proven fixed point past `now`: jump
                // the global clock to the earliest regional wake-up,
                // clamped to max_cycles so a capped run reports the same
                // cycle count as stepping to the cap would (soonest may be
                // kNever when every in-flight flit is wedged: the jump
                // then burns the remaining budget exactly like the
                // reference loop does).
                if (in_flight_flits_ == 0 && soonest == kNever)
                    break;  // nothing left anywhere
                const std::int64_t target = std::min(soonest, cfg_.max_cycles);
                res_.cycles_skipped += target - now;
                ++res_.horizon_jumps;
                now = target;
                continue;
            }
            step_awake(now);
            ++now;
            ++res_.cycles_stepped;
        }
        res_.cycles = now;
        res_.packets = delivered_packets_;
        res_.completed = delivered_packets_ == total_packets_;
        res_.regions = static_cast<std::int64_t>(regions_.size());
        res_.region_stepped_min = kNever;
        for (const auto& r : regions_) {
            res_.region_cycles_stepped += r.stepped;
            res_.region_cycles_skipped += res_.cycles - r.stepped;
            res_.region_horizon_jumps += r.jumps;
            res_.region_stepped_max = std::max(res_.region_stepped_max, r.stepped);
            res_.region_stepped_min = std::min(res_.region_stepped_min, r.stepped);
        }
        flush_metrics();
        return std::move(res_);
    }

private:
    /// One end-of-run flush into the process metrics registry: every
    /// value is a deterministic work quantity out of res_ (never wall
    /// clock), so snapshots stay bit-identical across thread counts. The
    /// per-phase flit counters split a run's movement into its three
    /// engine phases — inject (flits entering source FIFOs), allocate
    /// (hops won through switch allocation), eject (flits leaving the
    /// fabric) — and the region counters expose how much of the fabric
    /// the kRegional core actually stepped vs slept.
    void flush_metrics() const {
        auto& m = obs::MetricsRegistry::global();
        if (!m.enabled()) return;
        m.add("sim.runs");
        m.add("sim.cycles", res_.cycles);
        m.add("sim.cycles_stepped", res_.cycles_stepped);
        m.add("sim.cycles_skipped", res_.cycles_skipped);
        m.add("sim.horizon_jumps", res_.horizon_jumps);
        m.add("sim.phase_inject_flits", injected_flits_);
        m.add("sim.phase_alloc_hops", res_.flit_hops);
        m.add("sim.phase_eject_flits", res_.flits);
        m.add("sim.region_cycles_stepped", res_.region_cycles_stepped);
        m.add("sim.region_cycles_skipped", res_.region_cycles_skipped);
        m.add("sim.region_horizon_jumps", res_.region_horizon_jumps);
        m.observe("sim.run_cycles", static_cast<double>(res_.cycles));
    }

    /// One cycle of the reference semantics over the awake regions.
    void step_awake(const std::int64_t now) {
        // 1. Injection: move due packets into their source FIFOs as flits.
        // A sleeping region never has a due injection: its horizon is
        // bounded by the earliest pending one.
        for (const auto r : awake_)
            for (const auto node : regions_[static_cast<std::size_t>(r)].nodes)
                inject_node(static_cast<std::size_t>(node), now);

        // 2. Link pipelines: deliver arrived flits into downstream FIFOs.
        // A sleeping region never has a due arrival: the allocation that
        // launched the flit bounded this region's clock by its arrival.
        for (const auto r : awake_)
            for (const auto ci : regions_[static_cast<std::size_t>(r)].in_ch) {
                Channel& c = channels_[static_cast<std::size_t>(ci)];
                while (!c.pipe.empty() && c.pipe.front().second <= now) {
                    c.fifo.push_back(c.pipe.front().first);
                    c.pipe.pop_front();
                }
            }

        // 3. Ejection, merged in ascending global channel index across the
        // awake regions (one flit per input port per cycle). A sleeping
        // region holds no ejectable head — its quiet proof rules that out
        // and its FIFOs have not changed since — so skipping it drops no
        // ejection and no latency sample.
        eject_awake(now);

        // 4. Switch allocation over the head-flit request table. Requests
        // are refreshed only for awake regions; a sleeping region's table
        // is still valid because its FIFOs cannot have changed since its
        // last participation (any drain would have kept it awake).
        for (const auto r : awake_) refresh_requests(static_cast<std::size_t>(r));
        allocate_awake(now);

        finish_cycle(now);
    }

    void inject_node(const std::size_t n, const std::int64_t now) {
        while (inj_cursor_[n] < per_src_[n].size()) {
            const auto pid = per_src_[n][inj_cursor_[n]];
            const auto& p = packets_[static_cast<std::size_t>(pid)];
            if (p.inject_cycle > now) break;
            for (std::int32_t f = 0; f < p.flits; ++f) {
                Flit fl;
                fl.packet = pid;
                fl.hop = 0;
                fl.head = (f == 0);
                fl.tail = (f == p.flits - 1);
                inj_fifo_[n].push_back(fl);
                ++in_flight_flits_;
                ++injected_flits_;
            }
            ++inj_cursor_[n];
        }
    }

    void eject_awake(const std::int64_t now) {
        for (const auto r : awake_) cursor_[static_cast<std::size_t>(r)] = 0;
        for (;;) {
            std::int32_t best_r = -1;
            std::int32_t best_ci = std::numeric_limits<std::int32_t>::max();
            for (const auto r : awake_) {
                const auto& in = regions_[static_cast<std::size_t>(r)].in_ch;
                const auto cur = cursor_[static_cast<std::size_t>(r)];
                if (cur < in.size() && in[cur] < best_ci) {
                    best_ci = in[cur];
                    best_r = r;
                }
            }
            if (best_r < 0) break;
            ++cursor_[static_cast<std::size_t>(best_r)];
            try_eject(static_cast<std::size_t>(best_ci), best_r, now);
        }
    }

    /// Ejects the front flit of channel `ci` if it sits at its destination,
    /// returning credit upstream (possibly across a region cut).
    void try_eject(const std::size_t ci, const std::int32_t region,
                   const std::int64_t now) {
        Channel& c = channels_[ci];
        if (c.fifo.empty()) return;
        const Flit& f = c.fifo.front();
        const auto& p = packets_[static_cast<std::size_t>(f.packet)];
        if ((*p.path)[static_cast<std::size_t>(f.hop)] != p.dst) return;
        if (f.tail) {
            ++delivered_packets_;
            res_.packet_latency.add(static_cast<double>(now - p.inject_cycle));
        }
        ++res_.flits;
        --in_flight_flits_;
        c.fifo.pop_front();
        ++c.credits;
        region_active_[static_cast<std::size_t>(region)] = 1;
        // The freed slot is a credit for whoever allocates onto this
        // channel: its upstream region. Ejection precedes all allocation,
        // so a woken sleeper enters the merged scan from its first channel.
        wake_for_credit(ch_from_region_[ci], -1);
    }

    /// Marks `r` credit-touched and, if it is sleeping through this cycle,
    /// enrolls it in the allocation phase starting just past channel
    /// `after_ci` (-1 = from the beginning).
    void wake_for_credit(const std::int32_t r, const std::int32_t after_ci) {
        const auto ri = static_cast<std::size_t>(r);
        credit_touched_[ri] = 1;
        if (is_awake_[ri] || in_alloc_[ri]) return;
        in_alloc_[ri] = 1;
        const auto& oc = regions_[ri].out_ch;
        cursor_[ri] =
            after_ci < 0
                ? 0
                : static_cast<std::size_t>(
                      std::upper_bound(oc.begin(), oc.end(), after_ci) - oc.begin());
        alloc_extra_.push_back(r);
    }

    /// Rebuilds the head-flit request table for one region's FIFO fronts.
    /// Entries of sources drained later in the same cycle go stale, but the
    /// allocator's one-flit-per-input-per-cycle guard keeps them unread.
    void refresh_requests(const std::size_t r) {
        for (const auto node : regions_[r].nodes) {
            const auto n = static_cast<std::size_t>(node);
            inj_request_[n] = request_of(inj_fifo_[n]);
        }
        for (const auto ci : regions_[r].in_ch) {
            const auto c = static_cast<std::size_t>(ci);
            ch_request_[c] = request_of(channels_[c].fifo);
        }
    }

    [[nodiscard]] std::int32_t request_of(const std::deque<Flit>& fifo) const {
        if (fifo.empty()) return kRequestNone;
        const Flit& f = fifo.front();
        const auto& p = packets_[static_cast<std::size_t>(f.packet)];
        const auto& path = *p.path;
        const auto pos = static_cast<std::size_t>(f.hop);
        if (path[pos] == p.dst) return kRequestEject;
        const NodeId next = path[pos + 1];
        for (const auto ci : out_channels_[static_cast<std::size_t>(path[pos])])
            if (channels_[static_cast<std::size_t>(ci)].to == next) return ci;
        assert(false && "route step without a matching channel");
        return kRequestNone;
    }

    /// Allocation over the participating regions' output channels, merged
    /// in ascending global channel index. Participants are the awake
    /// regions plus any sleeper woken by a same-cycle credit return;
    /// alloc_extra_ may grow while the scan runs (a drain can return
    /// credit across a cut), and a region woken at position p only scans
    /// channels past p — exactly the outputs the reference core would
    /// still visit with that credit available.
    void allocate_awake(const std::int64_t now) {
        for (const auto r : awake_) {
            cursor_[static_cast<std::size_t>(r)] = 0;
            in_alloc_[static_cast<std::size_t>(r)] = 1;
        }
        for (;;) {
            std::int32_t best_r = -1;
            std::int32_t best_ci = std::numeric_limits<std::int32_t>::max();
            const auto consider = [&](const std::int32_t r) {
                const auto& oc = regions_[static_cast<std::size_t>(r)].out_ch;
                const auto cur = cursor_[static_cast<std::size_t>(r)];
                if (cur < oc.size() && oc[cur] < best_ci) {
                    best_ci = oc[cur];
                    best_r = r;
                }
            };
            for (const auto r : awake_) consider(r);
            for (const auto r : alloc_extra_) consider(r);
            if (best_r < 0) break;
            ++cursor_[static_cast<std::size_t>(best_r)];
            if (allocate_output(static_cast<std::size_t>(best_ci), now))
                region_active_[static_cast<std::size_t>(best_r)] = 1;
        }
        // Reset the one-flit-per-input guards we actually set — O(moved
        // flits), not O(channels): the whole-table std::fill the former
        // single-clock loop used would charge every region for one hot
        // region's cycle.
        for (const auto ci : drained_ch_scratch_)
            channel_drained_[static_cast<std::size_t>(ci)] = 0;
        for (const auto n : drained_inj_scratch_)
            inj_drained_[static_cast<std::size_t>(n)] = 0;
        drained_ch_scratch_.clear();
        drained_inj_scratch_.clear();
    }

    /// For one output channel pick one flit: wormhole continuation for
    /// locked outputs, round-robin arbitration over requesting head flits
    /// otherwise. `channel_drained_` / `inj_drained_` enforce one flit per
    /// input port per cycle across all outputs of a router.
    bool allocate_output(const std::size_t ci, const std::int64_t now) {
        Channel& out = channels_[ci];
        if (out.credits <= 0) return false;
        const auto node = static_cast<std::size_t>(out.from);
        const auto& ins = in_channels_[node];
        const auto n_sources = ins.size() + 1;
        const auto out_req = static_cast<std::int32_t>(ci);

        // Source 0 is the node's injection FIFO; source s >= 1 is the
        // FIFO of incoming channel ins[s - 1].
        auto fifo_of = [&](std::size_t s) -> std::deque<Flit>& {
            return s == 0 ? inj_fifo_[node]
                          : channels_[static_cast<std::size_t>(ins[s - 1])].fifo;
        };
        auto request_at = [&](std::size_t s) -> std::int32_t {
            return s == 0 ? inj_request_[node]
                          : ch_request_[static_cast<std::size_t>(ins[s - 1])];
        };
        auto source_free = [&](std::size_t s) -> bool {
            return s == 0 ? inj_drained_[node] == 0
                          : channel_drained_[static_cast<std::size_t>(ins[s - 1])] == 0;
        };

        std::int32_t chosen = -1;  // source index
        if (lock_[ci] >= 0) {
            // Wormhole continuation: only the owner packet may use the
            // output; find the source whose head flit belongs to it.
            for (std::size_t s = 0; s < n_sources; ++s) {
                if (!source_free(s) || request_at(s) != out_req) continue;
                if (fifo_of(s).front().packet != lock_[ci]) continue;
                chosen = static_cast<std::int32_t>(s);
                break;
            }
        } else {
            // New allocation: round-robin over head flits requesting us.
            for (std::size_t k = 0; k < n_sources; ++k) {
                const std::size_t s = (rr_[ci] + k) % n_sources;
                if (!source_free(s) || request_at(s) != out_req) continue;
                if (!fifo_of(s).front().head) continue;
                chosen = static_cast<std::int32_t>(s);
                rr_[ci] = static_cast<std::uint32_t>(s + 1);
                break;
            }
        }
        if (chosen < 0) return false;

        auto& fifo = fifo_of(static_cast<std::size_t>(chosen));
        Flit f = fifo.front();
        fifo.pop_front();
        if (chosen > 0) {
            // Credit back to the upstream channel we drained; its owning
            // region may be across the cut and asleep — wake it for the
            // remainder of this scan (channels past `ci` only).
            const auto up =
                static_cast<std::size_t>(ins[static_cast<std::size_t>(chosen) - 1]);
            ++channels_[up].credits;
            channel_drained_[up] = 1;
            drained_ch_scratch_.push_back(static_cast<std::int32_t>(up));
            wake_for_credit(ch_from_region_[up], static_cast<std::int32_t>(ci));
        } else {
            inj_drained_[node] = 1;
            drained_inj_scratch_.push_back(static_cast<std::int32_t>(node));
        }
        lock_[ci] = f.tail ? -1 : f.packet;
        --out.credits;
        ++f.hop;
        out.pipe.emplace_back(f, now + out.delay);
        // The launched flit bounds the destination region's clock: the
        // cross-cut lookahead is the channel delay.
        Region& dest = regions_[static_cast<std::size_t>(ch_to_region_[ci])];
        dest.next = std::min(dest.next, now + out.delay);
        ++res_.router_flits[node];
        ++res_.link_flits[static_cast<std::size_t>(out.link)];
        ++res_.flit_hops;
        return true;
    }

    /// Sets every participating region's local clock for the cycles after
    /// `now`, then clears the per-cycle scratch flags.
    void finish_cycle(const std::int64_t now) {
        const auto decide = [&](const std::int32_t r) {
            const auto ri = static_cast<std::size_t>(r);
            Region& R = regions_[ri];
            ++R.stepped;
            std::int64_t next;
            if (in_flight_flits_ == 0) {
                // Global idle: only a future injection can start anything.
                // This fires even for an active region (its final ejection
                // just emptied the net), so no core ever steps a cycle the
                // reference loop's idle rule would have skipped.
                next = region_next_injection(R);
            } else if (!horizon_ || region_active_[ri] || credit_touched_[ri]) {
                // Reference semantics, a moved flit, or a same-cycle credit
                // whose effect the stale request table cannot bound: run
                // the next cycle.
                next = now + 1;
            } else {
                // Local fixed point: leap to the earliest local event.
#ifndef NDEBUG
                verify_quiet(R);
#endif
                next = region_horizon(R);
            }
            if (next > now + 1 && next != kNever) ++R.jumps;
            R.next = next;
            is_awake_[ri] = 0;
            in_alloc_[ri] = 0;
            region_active_[ri] = 0;
            credit_touched_[ri] = 0;
        };
        for (const auto r : awake_) decide(r);
        for (const auto r : alloc_extra_) decide(r);
        alloc_extra_.clear();
    }

    /// Earliest cycle at which a packet of this region still waits to
    /// inject.
    [[nodiscard]] std::int64_t region_next_injection(const Region& R) const {
        std::int64_t next = kNever;
        for (const auto node : R.nodes) {
            const auto n = static_cast<std::size_t>(node);
            if (inj_cursor_[n] < per_src_[n].size()) {
                next = std::min(
                    next, packets_[static_cast<std::size_t>(per_src_[n][inj_cursor_[n]])]
                              .inject_cycle);
            }
        }
        return next;
    }

    /// Earliest local event of a quiet region: pending injection or
    /// link-pipe arrival into it. Arrival cycles within a channel are
    /// monotone (constant per-channel delay), so each pipe's front is its
    /// earliest and the scan is exact. Evaluated lazily — only when a
    /// quiet region goes to sleep — so the allocator hot path carries no
    /// event-queue bookkeeping.
    [[nodiscard]] std::int64_t region_horizon(const Region& R) const {
        std::int64_t next = region_next_injection(R);
        for (const auto ci : R.in_ch) {
            const auto& pipe = channels_[static_cast<std::size_t>(ci)].pipe;
            if (!pipe.empty()) next = std::min(next, pipe.front().second);
        }
        return next;
    }

#ifndef NDEBUG
    /// Debug cross-check of the localized no-op proof: on a region's quiet
    /// cycle every waiting head flit in it must be blocked on a
    /// zero-credit output or on a wormhole lock owned by another packet (a
    /// body flit's output lock is always owned by its own packet, and
    /// ejectable flits cannot wait — the ejection phase drains them
    /// unconditionally).
    void verify_quiet(const Region& R) const {
        const auto blocked = [&](std::int32_t req, const std::deque<Flit>& fifo) {
            if (req == kRequestNone) return true;
            if (req == kRequestEject) return false;  // would have ejected
            const auto& out = channels_[static_cast<std::size_t>(req)];
            const auto owner = lock_[static_cast<std::size_t>(req)];
            if (out.credits <= 0) return true;                  // blocked on credit
            return owner >= 0 && owner != fifo.front().packet;  // blocked on lock
        };
        for (const auto node : R.nodes) {
            const auto n = static_cast<std::size_t>(node);
            assert(blocked(inj_request_[n], inj_fifo_[n]));
        }
        for (const auto ci : R.in_ch) {
            const auto c = static_cast<std::size_t>(ci);
            assert(blocked(ch_request_[c], channels_[c].fifo));
        }
    }
#endif

    const SimConfig& cfg_;
    const bool horizon_;  ///< Quiet-region fast-forward enabled (non-reference).
    const std::size_t n_nodes_;

    std::vector<Channel> channels_;
    /// in_channels_[n] / out_channels_[n]: channels whose FIFO sits at /
    /// whose upstream router is node n.
    std::vector<std::vector<std::int32_t>> in_channels_;
    std::vector<std::vector<std::int32_t>> out_channels_;

    std::vector<Packet> packets_;
    std::vector<std::vector<std::int32_t>> per_src_;  ///< Injection schedules.
    std::vector<std::size_t> inj_cursor_;
    std::vector<std::deque<Flit>> inj_fifo_;

    std::vector<std::int32_t> lock_;  ///< Wormhole owner per output channel.
    std::vector<std::uint32_t> rr_;   ///< Round-robin pointer per output.
    std::vector<std::int32_t> inj_request_;  ///< Request table: injection FIFOs.
    std::vector<std::int32_t> ch_request_;   ///< Request table: channel FIFOs.
    std::vector<std::int8_t> channel_drained_;
    std::vector<std::int8_t> inj_drained_;

    std::vector<Region> regions_;
    std::vector<std::int32_t> ch_from_region_;  ///< Channel -> upstream region.
    std::vector<std::int32_t> ch_to_region_;    ///< Channel -> downstream region.
    /// Per-cycle scratch, all cleared by finish_cycle()/allocate_awake().
    std::vector<std::int32_t> awake_;        ///< Regions running full phases.
    std::vector<std::int32_t> alloc_extra_;  ///< Sleepers woken for allocation.
    std::vector<std::size_t> cursor_;        ///< Merge cursor per region.
    std::vector<std::int8_t> is_awake_;
    std::vector<std::int8_t> in_alloc_;
    std::vector<std::int8_t> region_active_;
    std::vector<std::int8_t> credit_touched_;
    std::vector<std::int32_t> drained_ch_scratch_;
    std::vector<std::int32_t> drained_inj_scratch_;

    SimResult res_;
    std::int64_t total_packets_ = 0;
    std::int64_t delivered_packets_ = 0;
    std::int64_t in_flight_flits_ = 0;
    std::int64_t injected_flits_ = 0;
};

}  // namespace

const char* sim_core_name(SimCore c) {
    switch (c) {
        case SimCore::kReference: return "reference";
        case SimCore::kEventHorizon: return "event-horizon";
        case SimCore::kRegional: return "regional";
    }
    return "?";
}

std::optional<SimCore> sim_core_from_name(std::string_view name) {
    if (name == "reference") return SimCore::kReference;
    if (name == "event-horizon" || name == "event_horizon")
        return SimCore::kEventHorizon;
    if (name == "regional") return SimCore::kRegional;
    return std::nullopt;
}

SimCore resolved_sim_core(SimCore configured) {
    if (const auto forced = core_env_override()) return *forced;
    return configured;
}

Simulator::Simulator(const topo::Topology& topo, const RouteTable& routes, SimConfig cfg)
    : topo_(topo), routes_(routes), cfg_(cfg) {
    if (topo.node_count() != routes.node_count())
        throw std::invalid_argument("route table built for a different topology");
    cfg_.core = resolved_sim_core(cfg_.core);
}

void Simulator::add_demand(const Demand& d) {
    if (d.src < 0 || d.dst < 0 || d.src >= topo_.node_count() ||
        d.dst >= topo_.node_count())
        throw std::out_of_range("demand endpoint out of range");
    if (d.src == d.dst || d.bytes <= 0) return;  // local or empty: no traffic
    demands_.push_back(d);
}

void Simulator::add_demands(const std::vector<Demand>& ds) {
    for (const auto& d : ds) add_demand(d);
}

SimResult Simulator::run() {
    Engine engine(topo_, routes_, cfg_, demands_);
    demands_.clear();
    return engine.run();
}

}  // namespace floretsim::noc
