#pragma once

#include <cstdint>
#include <vector>

#include "src/topo/topology.h"

namespace floretsim::noc {

/// Routing policy for table construction.
enum class RoutingPolicy {
    /// Plain BFS shortest paths with deterministic tie-breaking (lowest
    /// neighbor id). Minimal, but cyclic channel dependencies are possible
    /// on irregular graphs.
    kShortestPath,
    /// Up*/down* routing over a BFS spanning tree rooted at the node
    /// closest to the grid center: a packet may only turn from "down" to
    /// "down" after its first down move, which provably breaks channel
    /// dependency cycles (deadlock-free wormhole on arbitrary graphs) at
    /// the price of occasionally non-minimal paths.
    kUpDown,
    /// Dimension-order (X, then Y, then tier): minimal and deadlock-free,
    /// but only valid on mesh-structured topologies (every unit step along
    /// a dimension must be a link). Throws std::invalid_argument when the
    /// topology lacks a required link.
    kXY,
};

/// Precomputed source routes for every (src, dst) pair of a topology.
/// Routes are node-id sequences including both endpoints; the simulator
/// source-routes packets along them, so per-hop lookup is O(1).
class RouteTable {
public:
    /// Builds the table. For kUpDown, `root` < 0 selects the node nearest
    /// the grid centroid.
    static RouteTable build(const topo::Topology& t, RoutingPolicy policy,
                            topo::NodeId root = -1);

    /// The route from src to dst ([src] when src == dst). Lifetime: valid
    /// while the table lives.
    [[nodiscard]] const std::vector<topo::NodeId>& route(topo::NodeId src,
                                                         topo::NodeId dst) const {
        return routes_[index(src, dst)];
    }

    /// Route length in hops.
    [[nodiscard]] std::int32_t hops(topo::NodeId src, topo::NodeId dst) const {
        return static_cast<std::int32_t>(routes_[index(src, dst)].size()) - 1;
    }

    /// Mean hop count over all distinct pairs.
    [[nodiscard]] double mean_hops() const;

    [[nodiscard]] std::int32_t node_count() const noexcept { return n_; }

    /// Checks that a route exists between all pairs (graph connected &
    /// policy complete).
    [[nodiscard]] bool complete() const;

private:
    [[nodiscard]] std::size_t index(topo::NodeId src, topo::NodeId dst) const {
        return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(dst);
    }

    std::int32_t n_ = 0;
    std::vector<std::vector<topo::NodeId>> routes_;
};

}  // namespace floretsim::noc
