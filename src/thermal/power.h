#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dnn/network.h"
#include "src/pim/reram.h"

namespace floretsim::thermal {

/// First-order PE power model for the 3D study. A PE's power is leakage
/// plus compute power proportional to the MAC throughput of the layers it
/// hosts plus router power proportional to the activation traffic it
/// forwards. The paper's observation that "PEs executing the initial
/// neural layers consume more power as they process more activations"
/// emerges naturally: early conv layers have far more MVM activations.
struct PowerParams {
    double leakage_w = 0.05;
    /// Watts per sustained GMAC/s — 2e-4 W/(GMAC/s) == 0.2 pJ/MAC dynamic,
    /// ISAAC-class ReRAM PIM including ADC/DAC periphery.
    double compute_w_per_gmacs = 2.0e-4;
    /// Watts per Gbit/s forwarded (~4 pJ/bit NoC+SerDes energy).
    double router_w_per_gbps = 0.004;
    /// Pipeline initiation interval: one inference enters (and its
    /// activations move) every period. Set this from
    /// pim::pipeline_period_ns(...) so power reflects a fully utilized
    /// pipeline bounded by the crossbar MVM rate.
    double inference_period_ns = 5.0e4;
    /// Hardware ceiling on a PE's compute power (all crossbars + periphery
    /// active). Demand beyond this stalls the pipeline instead of burning
    /// more power.
    double max_compute_w = 1.5;
    /// Hardware ceiling on a PE's router power: the NI/port bandwidth is
    /// finite (~64 Gbps x a few ports), so forwarded-traffic power
    /// saturates too.
    double max_router_w = 1.0;
    std::int32_t bytes_per_elem = 1;
};

/// Computes per-PE power for a network mapped onto `pe_count` PEs.
/// `layer_nodes[layer_id]` lists the PEs hosting each layer (as produced
/// by pim::assign_layers). MACs of a layer split evenly across its PEs;
/// each activation edge charges router power to every PE of its source and
/// destination sets.
[[nodiscard]] std::vector<double> pe_power_map(
    const dnn::Network& net, std::span<const std::vector<std::int32_t>> layer_nodes,
    std::int32_t pe_count, const PowerParams& params);

}  // namespace floretsim::thermal
