#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace floretsim::thermal {

/// Steady-state compact thermal model of a 3D-stacked PE array
/// (HotSpot-grid-class; see DESIGN.md §5). Each PE is one thermal cell.
/// Cells couple laterally within a tier and vertically between tiers; the
/// tier at z == depth-1 couples to an isothermal heat sink. The bottom
/// tier (z == 0) is farthest from the sink — the paper's Fig. 7 shows its
/// hotspots. Sides and bottom are adiabatic (worst case).
struct ThermalConfig {
    std::int32_t width = 5;
    std::int32_t height = 5;
    std::int32_t depth = 4;
    double t_ambient_k = 318.0;   ///< Package/sink reference temperature.
    double g_lateral_w_per_k = 0.12;
    double g_vertical_w_per_k = 0.5;
    double g_sink_w_per_k = 0.12;  ///< Per top-tier cell, to the sink.
    double sor_omega = 1.5;        ///< Over-relaxation factor.
    double tolerance_k = 1e-7;     ///< Max per-cell update at convergence.
    std::int32_t max_iterations = 200000;

    [[nodiscard]] std::int32_t cells() const noexcept { return width * height * depth; }
    [[nodiscard]] std::int32_t index(std::int32_t x, std::int32_t y,
                                     std::int32_t z) const noexcept {
        return (z * height + y) * width + x;
    }
};

struct ThermalResult {
    ThermalConfig config;
    std::vector<double> temp_k;  ///< Cell temperatures, config.index order.
    std::int32_t iterations = 0;
    bool converged = false;

    [[nodiscard]] double peak_k() const;
    [[nodiscard]] double mean_k() const;
    /// Peak temperature within one tier.
    [[nodiscard]] double tier_peak_k(std::int32_t z) const;
    /// Cells in tier z that exceed `threshold_k` (the hotspot count of
    /// Fig. 7).
    [[nodiscard]] std::int32_t hotspot_count(std::int32_t z, double threshold_k) const;
};

/// Solves G·T = P with successive over-relaxation. `power_w` has one entry
/// per cell (config.index order). Throws std::invalid_argument on size
/// mismatch or non-finite power.
[[nodiscard]] ThermalResult solve_steady_state(const ThermalConfig& cfg,
                                               std::span<const double> power_w);

/// ASCII rendering of one tier's temperature field (for Fig. 7-style
/// visual comparison): one glyph per cell bucketed between the tier's min
/// and max, plus a legend line.
[[nodiscard]] std::string render_tier(const ThermalResult& result, std::int32_t z);

}  // namespace floretsim::thermal
