#include "src/thermal/power.h"

#include <stdexcept>

namespace floretsim::thermal {

std::vector<double> pe_power_map(const dnn::Network& net,
                                 std::span<const std::vector<std::int32_t>> layer_nodes,
                                 std::int32_t pe_count, const PowerParams& params) {
    if (layer_nodes.size() != net.size())
        throw std::invalid_argument("layer_nodes must cover every layer");
    std::vector<double> power(static_cast<std::size_t>(pe_count), params.leakage_w);
    std::vector<double> compute(static_cast<std::size_t>(pe_count), 0.0);

    const double seconds = params.inference_period_ns * 1e-9;

    // Compute power: layer MACs spread across the PEs hosting the layer,
    // clamped at the PE's hardware peak (crossbars are time-shared; excess
    // demand stalls the pipeline rather than burning more power).
    for (const auto& layer : net.layers()) {
        const auto& nodes = layer_nodes[static_cast<std::size_t>(layer.id)];
        if (nodes.empty() || layer.macs() == 0) continue;
        const double gmacs_per_s = static_cast<double>(layer.macs()) /
                                   static_cast<double>(nodes.size()) / seconds / 1e9;
        for (const auto n : nodes) {
            if (n < 0 || n >= pe_count) throw std::out_of_range("PE id out of range");
            compute[static_cast<std::size_t>(n)] += params.compute_w_per_gmacs * gmacs_per_s;
        }
    }
    for (std::size_t i = 0; i < compute.size(); ++i)
        power[i] += std::min(compute[i], params.max_compute_w);

    // Router power: each edge charges its endpoints' PEs for the traffic,
    // saturating at the port bandwidth bound. Edges whose producer tail
    // and consumer head share a chiplet move no NoI data (consistent with
    // core::pipeline_flows) and burn no router power.
    std::vector<double> router(static_cast<std::size_t>(pe_count), 0.0);
    for (const auto& e : net.edges()) {
        const auto& src = layer_nodes[static_cast<std::size_t>(e.src)];
        const auto& dst = layer_nodes[static_cast<std::size_t>(e.dst)];
        if (src.empty() || dst.empty()) continue;
        if (src.back() == dst.front()) continue;  // chiplet-internal
        const double gbits =
            static_cast<double>(e.elems) * params.bytes_per_elem * 8.0 / 1e9;
        const double gbps = gbits / seconds;
        for (const auto n : src)
            router[static_cast<std::size_t>(n)] +=
                params.router_w_per_gbps * gbps / static_cast<double>(src.size());
        for (const auto n : dst)
            router[static_cast<std::size_t>(n)] +=
                params.router_w_per_gbps * gbps / static_cast<double>(dst.size());
    }
    for (std::size_t i = 0; i < router.size(); ++i)
        power[i] += std::min(router[i], params.max_router_w);
    return power;
}

}  // namespace floretsim::thermal
