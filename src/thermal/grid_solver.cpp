#include "src/thermal/grid_solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace floretsim::thermal {

double ThermalResult::peak_k() const {
    double peak = 0.0;
    for (const double t : temp_k) peak = std::max(peak, t);
    return peak;
}

double ThermalResult::mean_k() const {
    if (temp_k.empty()) return 0.0;
    double sum = 0.0;
    for (const double t : temp_k) sum += t;
    return sum / static_cast<double>(temp_k.size());
}

double ThermalResult::tier_peak_k(std::int32_t z) const {
    double peak = 0.0;
    for (std::int32_t y = 0; y < config.height; ++y)
        for (std::int32_t x = 0; x < config.width; ++x)
            peak = std::max(peak,
                            temp_k[static_cast<std::size_t>(config.index(x, y, z))]);
    return peak;
}

std::int32_t ThermalResult::hotspot_count(std::int32_t z, double threshold_k) const {
    std::int32_t count = 0;
    for (std::int32_t y = 0; y < config.height; ++y)
        for (std::int32_t x = 0; x < config.width; ++x)
            if (temp_k[static_cast<std::size_t>(config.index(x, y, z))] > threshold_k)
                ++count;
    return count;
}

ThermalResult solve_steady_state(const ThermalConfig& cfg, std::span<const double> power_w) {
    const auto n = static_cast<std::size_t>(cfg.cells());
    if (power_w.size() != n)
        throw std::invalid_argument("power vector size != cell count");
    for (const double p : power_w)
        if (!std::isfinite(p) || p < 0.0)
            throw std::invalid_argument("power entries must be finite and non-negative");

    ThermalResult res;
    res.config = cfg;
    res.temp_k.assign(n, cfg.t_ambient_k);

    // Gauss-Seidel with successive over-relaxation on the conductance
    // Laplacian: T_i = (P_i + sum_j G_ij T_j + G_sink T_amb) / sum G_i.
    for (std::int32_t it = 0; it < cfg.max_iterations; ++it) {
        double max_delta = 0.0;
        for (std::int32_t z = 0; z < cfg.depth; ++z) {
            for (std::int32_t y = 0; y < cfg.height; ++y) {
                for (std::int32_t x = 0; x < cfg.width; ++x) {
                    const auto i = static_cast<std::size_t>(cfg.index(x, y, z));
                    double g_sum = 0.0;
                    double flux = power_w[i];
                    auto couple = [&](std::int32_t xx, std::int32_t yy, std::int32_t zz,
                                      double g) {
                        g_sum += g;
                        flux += g * res.temp_k[static_cast<std::size_t>(
                                    cfg.index(xx, yy, zz))];
                    };
                    if (x > 0) couple(x - 1, y, z, cfg.g_lateral_w_per_k);
                    if (x + 1 < cfg.width) couple(x + 1, y, z, cfg.g_lateral_w_per_k);
                    if (y > 0) couple(x, y - 1, z, cfg.g_lateral_w_per_k);
                    if (y + 1 < cfg.height) couple(x, y + 1, z, cfg.g_lateral_w_per_k);
                    if (z > 0) couple(x, y, z - 1, cfg.g_vertical_w_per_k);
                    if (z + 1 < cfg.depth) couple(x, y, z + 1, cfg.g_vertical_w_per_k);
                    if (z == cfg.depth - 1) {
                        g_sum += cfg.g_sink_w_per_k;
                        flux += cfg.g_sink_w_per_k * cfg.t_ambient_k;
                    }
                    const double updated = flux / g_sum;
                    const double relaxed =
                        res.temp_k[i] + cfg.sor_omega * (updated - res.temp_k[i]);
                    max_delta = std::max(max_delta, std::abs(relaxed - res.temp_k[i]));
                    res.temp_k[i] = relaxed;
                }
            }
        }
        res.iterations = it + 1;
        if (max_delta < cfg.tolerance_k) {
            res.converged = true;
            break;
        }
    }
    return res;
}

std::string render_tier(const ThermalResult& result, std::int32_t z) {
    const ThermalConfig& cfg = result.config;
    double lo = 1e30;
    double hi = -1e30;
    for (std::int32_t y = 0; y < cfg.height; ++y) {
        for (std::int32_t x = 0; x < cfg.width; ++x) {
            const double t = result.temp_k[static_cast<std::size_t>(cfg.index(x, y, z))];
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
    }
    static constexpr char kGlyphs[] = ".:-=+*#%@";
    constexpr std::int32_t kLevels = 9;
    std::ostringstream os;
    os << "tier z=" << z << "  [" << lo << " K .. " << hi << " K]\n";
    for (std::int32_t y = 0; y < cfg.height; ++y) {
        for (std::int32_t x = 0; x < cfg.width; ++x) {
            const double t = result.temp_k[static_cast<std::size_t>(cfg.index(x, y, z))];
            const double frac = hi > lo ? (t - lo) / (hi - lo) : 0.0;
            const auto lvl = std::min<std::int32_t>(
                kLevels - 1, static_cast<std::int32_t>(frac * kLevels));
            os << kGlyphs[lvl] << ' ';
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace floretsim::thermal
