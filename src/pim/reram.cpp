#include "src/pim/reram.h"

#include <algorithm>
#include <cmath>

namespace floretsim::pim {
namespace {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
    return (a + b - 1) / b;
}

/// Rows of the unrolled weight matrix (the MVM input dimension).
std::int64_t matrix_rows(const dnn::Layer& layer) noexcept {
    switch (layer.kind) {
        case dnn::LayerKind::kConv:
            return static_cast<std::int64_t>(layer.kernel) * layer.kernel *
                   (layer.in.c / layer.groups);
        case dnn::LayerKind::kFc:
            return layer.in.elems();
        default:
            return 0;
    }
}

/// Columns of the unrolled weight matrix (the MVM output dimension).
std::int64_t matrix_cols(const dnn::Layer& layer) noexcept {
    switch (layer.kind) {
        case dnn::LayerKind::kConv:
        case dnn::LayerKind::kFc:
            return layer.out.c;
        default:
            return 0;
    }
}

/// MVM activations per inference: one per output spatial position (and one
/// total for FC layers).
std::int64_t mvm_count(const dnn::Layer& layer) noexcept {
    switch (layer.kind) {
        case dnn::LayerKind::kConv:
            return static_cast<std::int64_t>(layer.out.h) * layer.out.w;
        case dnn::LayerKind::kFc:
            return 1;
        default:
            return 0;
    }
}

}  // namespace

std::int64_t xbars_for_layer(const dnn::Layer& layer, const ReramConfig& cfg) {
    const std::int64_t rows = matrix_rows(layer);
    const std::int64_t cols = matrix_cols(layer);
    if (rows == 0 || cols == 0) return 0;
    const std::int64_t row_tiles = ceil_div(rows, cfg.xbar_rows);
    const std::int64_t usable_cols = cfg.xbar_cols / cfg.cells_per_weight();
    const std::int64_t col_tiles = ceil_div(cols, usable_cols);
    return row_tiles * col_tiles * layer.groups;
}

std::int32_t chiplets_for_layer(const dnn::Layer& layer, const ReramConfig& cfg) {
    const std::int64_t xbars = xbars_for_layer(layer, cfg);
    if (xbars == 0) return 0;
    return static_cast<std::int32_t>(ceil_div(xbars, cfg.xbars_per_chiplet()));
}

double layer_compute_latency_ns(const dnn::Layer& layer, std::int32_t chiplets,
                                const ReramConfig& cfg) {
    const std::int64_t xbars = xbars_for_layer(layer, cfg);
    if (xbars == 0 || chiplets <= 0) return 0.0;
    // Total sequential MVM slots per crossbar: output pixels are streamed
    // through each crossbar tile. Extra chiplets replicate column tiles,
    // splitting the output-pixel stream.
    const std::int64_t available = cfg.xbars_per_chiplet() * chiplets;
    const double replication =
        std::max(1.0, static_cast<double>(available) / static_cast<double>(xbars));
    const double serial_mvms =
        std::ceil(static_cast<double>(mvm_count(layer)) / replication);
    return serial_mvms * cfg.mvm_latency_ns;
}

double layer_compute_energy_pj(const dnn::Layer& layer, const ReramConfig& cfg) {
    const std::int64_t xbars = xbars_for_layer(layer, cfg);
    return static_cast<double>(xbars) * static_cast<double>(mvm_count(layer)) *
           cfg.mvm_energy_pj;
}

}  // namespace floretsim::pim
