#include "src/pim/accuracy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace floretsim::pim {

double ThermalAccuracyModel::conductance_window(double temp_k) const noexcept {
    if (temp_k <= t_safe_k) return 1.0;
    return std::exp(-window_decay_per_k * (temp_k - t_safe_k));
}

double ThermalAccuracyModel::accuracy_drop(std::span<const double> pe_temp_k,
                                           std::span<const double> pe_weight_frac) const {
    if (pe_temp_k.size() != pe_weight_frac.size())
        throw std::invalid_argument("temperature/weight spans differ in size");
    double weight_total = 0.0;
    for (const double w : pe_weight_frac) weight_total += w;
    if (weight_total <= 0.0) return 0.0;

    double min_window = 1.0;
    for (std::size_t i = 0; i < pe_temp_k.size(); ++i) {
        if (pe_weight_frac[i] / weight_total < min_weight_share) continue;
        min_window = std::min(min_window, conductance_window(pe_temp_k[i]));
    }
    const double drop = degradation_at_zero_window * (1.0 - min_window);
    return std::clamp(drop, 0.0, degradation_at_zero_window);
}

}  // namespace floretsim::pim
