#include "src/pim/partitioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace floretsim::pim {

PartitionPlan partition_network(const dnn::Network& net, const ReramConfig& cfg) {
    PartitionPlan plan;
    std::int32_t cursor = 0;
    for (const std::int32_t id : net.weight_layer_ids()) {
        const dnn::Layer& l = net.layer(id);
        const std::int32_t need = std::max<std::int32_t>(1, chiplets_for_layer(l, cfg));
        LayerSegment seg;
        seg.layer_id = id;
        seg.first = cursor;
        seg.last = cursor + need - 1;
        seg.weights = l.weight_params();
        cursor += need;
        plan.segments.push_back(seg);
    }
    plan.total_chiplets = cursor;
    return plan;
}

PartitionPlan partition_by_params(const dnn::Network& net, double total_params_millions,
                                  double params_per_chiplet_millions) {
    if (params_per_chiplet_millions <= 0.0)
        throw std::invalid_argument("params_per_chiplet must be positive");
    const double capacity = params_per_chiplet_millions * 1e6;
    const double true_total = static_cast<double>(net.total_params());

    PartitionPlan plan;
    double cum = 0.0;
    for (const std::int32_t id : net.weight_layer_ids()) {
        const dnn::Layer& l = net.layer(id);
        const double frac =
            true_total > 0.0 ? static_cast<double>(l.weight_params()) / true_total : 0.0;
        const double layer_params = frac * total_params_millions * 1e6;
        LayerSegment seg;
        seg.layer_id = id;
        seg.first = static_cast<std::int32_t>(cum / capacity);
        cum += layer_params;
        // Last chiplet touched by this layer's parameter mass (ceil - 1,
        // guarded so zero-width layers still own one chiplet).
        seg.last = std::max(seg.first,
                            static_cast<std::int32_t>(std::ceil(cum / capacity)) - 1);
        seg.weights = static_cast<std::int64_t>(layer_params);
        plan.segments.push_back(seg);
    }
    plan.total_chiplets =
        plan.segments.empty() ? 0 : plan.segments.back().last + 1;
    return plan;
}

double pipeline_period_ns(const dnn::Network& net, const PartitionPlan& plan,
                          const ReramConfig& cfg) {
    double period = 0.0;
    for (const LayerSegment& seg : plan.segments) {
        period = std::max(period, layer_compute_latency_ns(net.layer(seg.layer_id),
                                                           seg.chiplets(), cfg));
    }
    return period;
}

std::vector<std::vector<std::int32_t>> assign_layers(
    const dnn::Network& net, const PartitionPlan& plan,
    std::span<const std::int32_t> node_sequence) {
    std::vector<std::vector<std::int32_t>> assignment(net.size());

    for (const LayerSegment& seg : plan.segments) {
        if (static_cast<std::size_t>(seg.last) >= node_sequence.size())
            throw std::length_error("node sequence shorter than partition demand");
        auto& nodes = assignment[static_cast<std::size_t>(seg.layer_id)];
        nodes.assign(node_sequence.begin() + seg.first,
                     node_sequence.begin() + seg.last + 1);
    }

    // Weightless layers ride along with their nearest mapped predecessor:
    // the chiplet that produced their input performs the pool/add/concat.
    // Repeated sweeps resolve chains (pool feeding pool etc.).
    if (!plan.segments.empty()) {
        const auto first_weight_layer =
            static_cast<std::size_t>(plan.segments.front().layer_id);
        if (assignment[0].empty() && !assignment[first_weight_layer].empty())
            assignment[0].push_back(assignment[first_weight_layer].front());
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t id = 0; id < net.size(); ++id) {
            if (!assignment[id].empty()) continue;
            std::int32_t best_src = -1;
            for (const dnn::Edge& e : net.edges()) {
                if (e.dst != static_cast<std::int32_t>(id)) continue;
                if (!assignment[static_cast<std::size_t>(e.src)].empty())
                    best_src = std::max(best_src, e.src);
            }
            if (best_src >= 0) {
                assignment[id].push_back(
                    assignment[static_cast<std::size_t>(best_src)].back());
                changed = true;
            }
        }
    }
    return assignment;
}

}  // namespace floretsim::pim
