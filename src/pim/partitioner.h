#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dnn/network.h"
#include "src/pim/reram.h"

namespace floretsim::pim {

/// One weight layer's slice of a task's chiplet sequence: it occupies
/// positions [first, last] (inclusive) of the sequence the mapper
/// allocates. Consecutive segments may share a boundary chiplet in packed
/// plans (several small layers on one chiplet).
struct LayerSegment {
    std::int32_t layer_id = -1;
    std::int32_t first = 0;
    std::int32_t last = 0;
    std::int64_t weights = 0;  ///< Parameters stored by this layer.

    [[nodiscard]] std::int32_t chiplets() const noexcept { return last - first + 1; }
};

/// A network partitioned into per-layer chiplet spans, in dataflow order.
struct PartitionPlan {
    std::vector<LayerSegment> segments;
    std::int32_t total_chiplets = 0;  ///< Length of the required sequence.
};

/// Exact (exclusive) partition: each Conv/FC layer gets its own
/// ceil(crossbar demand / chiplet capacity) chiplets, at least one; no
/// sharing. Faithful to crossbar geometry.
[[nodiscard]] PartitionPlan partition_network(const dnn::Network& net, const ReramConfig& cfg);

/// Paper-calibrated *packed* partition: distributes a given total
/// parameter count (e.g. the literal Table I value) over the weight layers
/// proportionally to their true weight volume, then packs them onto
/// chiplets of `params_per_chiplet_millions` capacity cumulatively, so
/// small consecutive layers share chiplets. Reproduces the paper's mapping
/// pressure even where Table I disagrees with the true architecture size.
[[nodiscard]] PartitionPlan partition_by_params(const dnn::Network& net,
                                                double total_params_millions,
                                                double params_per_chiplet_millions);

/// Pipeline initiation interval of a partitioned network: the compute
/// latency of the slowest segment (its chiplets work in parallel; a new
/// inference can enter the pipeline only as fast as the bottleneck stage
/// finishes). Used to convert per-inference energies into sustained power
/// for the thermal study.
[[nodiscard]] double pipeline_period_ns(const dnn::Network& net, const PartitionPlan& plan,
                                        const ReramConfig& cfg);

/// Expands a plan into a per-layer node assignment, reading node ids from
/// `node_sequence` (produced by a mapper: SFC order for Floret, greedy
/// order for baselines). Weight layers take the nodes of their [first,
/// last] span; weightless layers (pool/add/concat/input) inherit the last
/// node of their nearest mapped predecessor. Returns one node list per
/// layer id. Throws std::length_error if the sequence is too short.
[[nodiscard]] std::vector<std::vector<std::int32_t>> assign_layers(
    const dnn::Network& net, const PartitionPlan& plan,
    std::span<const std::int32_t> node_sequence);

}  // namespace floretsim::pim
