#pragma once

#include <span>

namespace floretsim::pim {

/// Thermal impact on ReRAM inference accuracy (Shin et al., ICCAD'20 — the
/// paper's reference [20]): weights are stored as conductance states, and
/// the usable conductance window (gap between G_on and G_off) shrinks
/// exponentially once the cell temperature exceeds ~330 K. A narrower
/// window means output levels are more easily misread, degrading accuracy.
struct ThermalAccuracyModel {
    double t_safe_k = 330.0;          ///< Below this, no degradation.
    double window_decay_per_k = 0.04; ///< Exponential shrink rate above t_safe.
    /// Fraction of baseline accuracy lost when the window fully collapses.
    /// Calibrated so that the paper's "up to 11 %" band is reached at the
    /// hotspot temperatures its Fig. 6 mappings produce (~345-350 K).
    double degradation_at_zero_window = 0.25;

    /// Relative conductance window in (0, 1]; 1 below t_safe_k.
    [[nodiscard]] double conductance_window(double temp_k) const noexcept;

    /// PEs storing less than this share of the model's weights are ignored
    /// when looking for the binding (hottest) cell.
    double min_weight_share = 1e-3;

    /// Accuracy drop (fraction of baseline, in [0, degradation_at_zero_window])
    /// for a set of PEs with temperatures `pe_temp_k` and per-PE stored
    /// weight shares `pe_weight_frac`. DNN inference has no redundancy
    /// across layers: the layer whose weights drift the most bounds the
    /// network's accuracy, and its errors cascade. The model is therefore
    /// weakest-link: the smallest conductance window among PEs holding a
    /// non-negligible weight share sets the degradation.
    [[nodiscard]] double accuracy_drop(std::span<const double> pe_temp_k,
                                       std::span<const double> pe_weight_frac) const;
};

}  // namespace floretsim::pim
