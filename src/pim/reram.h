#pragma once

#include <cstdint>

#include "src/dnn/layer.h"

namespace floretsim::pim {

/// ReRAM crossbar / chiplet organization and first-order timing-energy
/// model (SIAM/NeuroSim-class constants; see DESIGN.md §5 for the
/// substitution rationale). A chiplet is a tile of IMAs (in-memory
/// accelerators), each holding a set of crossbar arrays. Weights are
/// bit-sliced over cells: an 8-bit weight at 2 bits/cell spans 4 columns.
struct ReramConfig {
    std::int32_t xbar_rows = 128;
    std::int32_t xbar_cols = 128;
    std::int32_t bits_per_cell = 2;
    std::int32_t weight_bits = 8;
    std::int32_t xbars_per_ima = 16;
    std::int32_t imas_per_chiplet = 16;

    double mvm_latency_ns = 100.0;   ///< One full-array analog MVM (incl. ADC).
    double mvm_energy_pj = 180.0;    ///< Energy per crossbar MVM (incl. periphery).
    double write_latency_ns = 500.0; ///< One row programming pass.
    double leakage_mw_per_chiplet = 15.0;

    /// Columns consumed by one multi-bit weight.
    [[nodiscard]] constexpr std::int32_t cells_per_weight() const noexcept {
        return (weight_bits + bits_per_cell - 1) / bits_per_cell;
    }
    /// Weights storable in one crossbar.
    [[nodiscard]] constexpr std::int64_t weights_per_xbar() const noexcept {
        return static_cast<std::int64_t>(xbar_rows) * (xbar_cols / cells_per_weight());
    }
    [[nodiscard]] constexpr std::int64_t xbars_per_chiplet() const noexcept {
        return static_cast<std::int64_t>(xbars_per_ima) * imas_per_chiplet;
    }
    /// Weight capacity of one chiplet.
    [[nodiscard]] constexpr std::int64_t weights_per_chiplet() const noexcept {
        return weights_per_xbar() * xbars_per_chiplet();
    }
};

/// Crossbars needed to hold one layer's weight matrix: the unrolled
/// (k·k·Cin) x Cout matrix is tiled over (rows x usable-cols) crossbars.
[[nodiscard]] std::int64_t xbars_for_layer(const dnn::Layer& layer, const ReramConfig& cfg);

/// Chiplets needed for a layer (ceil of crossbar demand over capacity).
[[nodiscard]] std::int32_t chiplets_for_layer(const dnn::Layer& layer, const ReramConfig& cfg);

/// Compute latency (ns) for one inference pass of `layer` spread across
/// `chiplets` chiplets: each output pixel requires one MVM per row-tile;
/// crossbars within the allocation operate in parallel, MVMs for different
/// output pixels are serialized per crossbar.
[[nodiscard]] double layer_compute_latency_ns(const dnn::Layer& layer,
                                              std::int32_t chiplets,
                                              const ReramConfig& cfg);

/// Compute energy (pJ) for one inference pass of `layer` (MVM count times
/// per-MVM energy; independent of the chiplet spread).
[[nodiscard]] double layer_compute_energy_pj(const dnn::Layer& layer, const ReramConfig& cfg);

}  // namespace floretsim::pim
