#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/experiment.h"
#include "src/serve/arrivals.h"

namespace floretsim::serve {

/// Discrete-event, request-level serving simulator on top of the
/// experiment stack: requests arrive over continuous time, queue under an
/// admission policy, occupy a chiplet run via the architecture's mapper
/// (model residency, as in core::simulate_dynamic), execute their
/// inference rounds, and release. Round duration is the evaluate_noi
/// drain latency of the *current* resident set (frozen at round start)
/// plus the request's own PIM compute time; resident-set evaluations are
/// memoized, so successive rounds under unchanged residency never
/// re-simulate the NoC. Everything is deterministic in the config seed.

enum class AdmissionPolicy {
    kFifo,              ///< Strict arrival order; the head blocks the line.
    kEarliestDeadline,  ///< Queue ordered by SLA deadline (ties by id).
    kRejectOnFull,      ///< FIFO, but arrivals beyond max_queue bounce.
    /// EDF queue order, plus eviction: when the head cannot be placed, the
    /// resident whose earliest member deadline is *latest* is preempted
    /// (in-flight round discarded, members re-queued with their remaining
    /// rounds) — but only if its deadline is strictly later than the
    /// head's, so eviction chains strictly decrease deadline and cannot
    /// cycle.
    kEdfEvict,
};

[[nodiscard]] const char* admission_policy_name(AdmissionPolicy p);

struct ServeConfig {
    ArrivalConfig arrivals;
    /// Tenant classes; empty selects default_request_classes().
    std::vector<RequestClass> classes;
    AdmissionPolicy admission = AdmissionPolicy::kFifo;
    std::size_t max_queue = 64;  ///< Only enforced by kRejectOnFull.
    /// Batch coalescing cap: when the queue head is admitted, up to
    /// max_batch-1 further queued requests for the *same* workload join the
    /// residency and share its rounds (one fabric evaluation prices the
    /// whole batch). 1 disables batching and is bit-identical to the
    /// pre-batching scheduler.
    std::int32_t max_batch = 1;
    /// Batch traffic model: a round serving m live members costs
    /// epoch_drain + compute_ns * traffic_scale * (1 + alpha*(m-1)) —
    /// the NoI drain is shared, the PIM compute grows sub-linearly when
    /// alpha < 1. Exactly the legacy formula at m == 1.
    double batch_traffic_alpha = 0.25;
    core::EvalConfig eval;       ///< NoI evaluation settings.
    double params_per_chiplet_m = core::experiment::kParamsPerChipletM;
    std::uint64_t seed = 1;      ///< Drives arrivals and service demands.

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const ServeConfig&) const = default;
};

/// Serving defaults: the experiment eval config (1/64 traffic sampling),
/// so serving latencies live on the same scale as the Table II batch
/// numbers. Serve's own knob so the layers can diverge independently.
[[nodiscard]] ServeConfig default_serve_config();

struct ClassServeStats {
    std::string name;
    std::int64_t arrived = 0;
    std::int64_t completed = 0;
    std::int64_t violations = 0;  ///< Late completions + rejections.
};

/// Aggregate outcome of one serving run.
struct ServeStats {
    std::int64_t arrived = 0;
    std::int64_t admitted = 0;
    std::int64_t completed = 0;
    /// Bounced requests: queue overflow (kRejectOnFull) or a request no
    /// placement can satisfy even on an idle system.
    std::int64_t rejected = 0;
    std::int64_t sla_violations = 0;  ///< Late completions + rejections.
    double makespan_cycles = 0.0;     ///< Last event time.
    double throughput_per_mcycle = 0.0;  ///< Completions per 1e6 cycles.
    double mean_utilization = 0.0;    ///< Time-weighted busy-chiplet share.
    double mean_queue_depth = 0.0;    ///< Time-weighted.
    std::int64_t peak_queue_depth = 0;
    double mean_wait_cycles = 0.0;    ///< Arrival -> admission, admitted only.
    /// Sojourn (arrival -> completion) statistics over completed requests;
    /// percentiles from the streaming P2 sketch in util::stats.
    double mean_latency_cycles = 0.0;
    double p50_latency_cycles = 0.0;
    double p95_latency_cycles = 0.0;
    double p99_latency_cycles = 0.0;
    /// NoI evaluation economy: rounds scheduled vs. resident-set cache
    /// hits. `noi_rounds - noi_cache_hits` is the number of wormhole
    /// simulations actually run — an admission burst of k requests costs
    /// one (the round schedule is deferred until the burst drains, so every
    /// admit sees the final resident set).
    std::int64_t noi_rounds = 0;
    std::int64_t noi_cache_hits = 0;
    /// Batching/preemption accounting. batched_requests counts members that
    /// joined an existing admission (i.e. rode along beyond the batch
    /// leader); evictions counts residencies torn down by kEdfEvict;
    /// preemptions counts the members those evictions re-queued. Each
    /// admission increments `admitted`, so over a drained run
    /// admitted == completed + preemptions and arrived == completed +
    /// rejected.
    std::int64_t batched_requests = 0;
    std::int64_t preemptions = 0;
    std::int64_t evictions = 0;
    /// Simulator-engine work statistics summed over the evaluate_noi calls
    /// (see noc::SimResult): cycles executed vs. proven no-op and skipped.
    std::int64_t sim_cycles_stepped = 0;
    std::int64_t sim_cycles_skipped = 0;
    std::int64_t sim_horizon_jumps = 0;
    /// Regional-core accounting summed over the evaluate_noi calls (see
    /// noc::SimResult's region fields).
    std::int64_t sim_region_cycles_stepped = 0;
    std::int64_t sim_region_cycles_skipped = 0;
    std::int64_t sim_region_horizon_jumps = 0;
    std::int64_t sim_region_stepped_max = 0;
    std::int64_t sim_region_stepped_min = 0;
    /// False only if the event-count safety guard tripped (a bug, not a
    /// workload property — every request normally completes or bounces).
    bool drained = true;
    std::vector<ClassServeStats> per_class;

    [[nodiscard]] double sla_violation_rate() const noexcept {
        return arrived == 0 ? 0.0
                            : static_cast<double>(sla_violations) /
                                  static_cast<double>(arrived);
    }
};

/// Runs the serving simulation to completion (every generated request is
/// either completed or rejected). Re-entrant in the run_mix_dynamic sense:
/// mutates only `arch.mapper` (resetting it first), so concurrent calls
/// are safe when each thread owns its BuiltArch.
[[nodiscard]] ServeStats serve_requests(core::experiment::BuiltArch& arch,
                                        const ServeConfig& cfg);

}  // namespace floretsim::serve
