#include "src/serve/arrivals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace floretsim::serve {
namespace {

/// Exponential variate with the given mean. uniform() is in [0, 1), so
/// the argument of log stays in (0, 1].
double exponential(util::Rng& rng, double mean) noexcept {
    return -std::log(1.0 - rng.uniform()) * mean;
}

std::int32_t pick_class(util::Rng& rng, std::span<const RequestClass> classes,
                        double total_weight) {
    double u = rng.uniform() * total_weight;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        u -= classes[i].weight;
        if (u < 0.0) return static_cast<std::int32_t>(i);
    }
    return static_cast<std::int32_t>(classes.size() - 1);
}

}  // namespace

const char* arrival_process_name(ArrivalProcess p) {
    switch (p) {
        case ArrivalProcess::kPoisson: return "Poisson";
        case ArrivalProcess::kMmpp: return "MMPP";
        case ArrivalProcess::kTrace: return "Trace";
    }
    return "?";
}

std::vector<RequestClass> default_request_classes() {
    return {
        {"interactive", {"DNN9", "DNN11", "DNN13"}, 0.6, 100'000.0},
        {"batch", {"DNN1", "DNN3", "DNN8"}, 0.4, 500'000.0},
    };
}

std::vector<Request> generate_requests(const ArrivalConfig& cfg,
                                       std::span<const RequestClass> classes,
                                       std::uint64_t seed) {
    if (classes.empty())
        throw std::invalid_argument("generate_requests: no request classes");
    double total_weight = 0.0;
    for (const auto& c : classes) {
        if (c.workload_ids.empty())
            throw std::invalid_argument("request class " + c.name +
                                        " lists no workloads");
        if (c.weight <= 0.0)
            throw std::invalid_argument("request class " + c.name +
                                        " needs a positive weight");
        total_weight += c.weight;
    }
    if (cfg.process != ArrivalProcess::kTrace && cfg.rate_per_mcycle <= 0.0)
        throw std::invalid_argument("arrival rate must be positive");
    if (cfg.min_rounds < 1 || cfg.max_rounds < cfg.min_rounds)
        throw std::invalid_argument("invalid round demand range");
    if (!std::is_sorted(cfg.trace_cycles.begin(), cfg.trace_cycles.end()))
        throw std::invalid_argument("trace arrival cycles must be sorted");

    util::Rng rng(seed);
    const double mean_gap = 1e6 / cfg.rate_per_mcycle;

    // Arrival instants first (one stream per process), then the per-request
    // draws, so swapping the process leaves the class/model sequence alone.
    std::vector<double> when;
    switch (cfg.process) {
        case ArrivalProcess::kPoisson: {
            double t = 0.0;
            for (std::int64_t i = 0; i < cfg.max_requests; ++i) {
                t += exponential(rng, mean_gap);
                when.push_back(t);
            }
            break;
        }
        case ArrivalProcess::kMmpp: {
            // Exact 2-state MMPP: candidate gaps at the current state's
            // rate; a candidate beyond the state's dwell end is discarded
            // (memorylessness) and time resumes from the switch instant.
            double t = 0.0;
            bool burst = false;
            double state_end = exponential(rng, cfg.normal_dwell_cycles);
            while (static_cast<std::int64_t>(when.size()) < cfg.max_requests) {
                const double rate_gap =
                    burst ? mean_gap / cfg.burst_rate_multiplier : mean_gap;
                const double candidate = t + exponential(rng, rate_gap);
                if (candidate > state_end) {
                    t = state_end;
                    burst = !burst;
                    state_end =
                        t + exponential(rng, burst ? cfg.burst_dwell_cycles
                                                   : cfg.normal_dwell_cycles);
                    continue;
                }
                t = candidate;
                when.push_back(t);
            }
            break;
        }
        case ArrivalProcess::kTrace: {
            const auto n = std::min<std::size_t>(cfg.trace_cycles.size(),
                                                 static_cast<std::size_t>(
                                                     cfg.max_requests));
            when.assign(cfg.trace_cycles.begin(),
                        cfg.trace_cycles.begin() + static_cast<std::ptrdiff_t>(n));
            break;
        }
    }

    std::vector<Request> out;
    out.reserve(when.size());
    for (std::size_t i = 0; i < when.size(); ++i) {
        Request r;
        r.id = static_cast<std::int64_t>(i);
        r.arrival_cycle = when[i];
        r.class_idx = pick_class(rng, classes, total_weight);
        const auto& cls = classes[static_cast<std::size_t>(r.class_idx)];
        r.workload_id = cls.workload_ids[rng.below(cls.workload_ids.size())];
        r.rounds = static_cast<std::int32_t>(
            rng.range(cfg.min_rounds, cfg.max_rounds));
        r.deadline_cycle = r.arrival_cycle + cls.slo_cycles;
        out.push_back(std::move(r));
    }
    return out;
}

}  // namespace floretsim::serve
