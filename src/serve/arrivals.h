#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace floretsim::serve {

/// Request-level traffic model for the serving simulator: tenants issue
/// inference requests over continuous time (cycles of the 1 GHz NoC
/// clock); each request names a Table I workload and a service demand in
/// inference rounds. Streams are expanded up front and deterministically
/// from a seed so replicated simulations are bit-identical.

/// One tenant class: which models it requests, its share of the arrival
/// stream, and the sojourn SLO its requests are judged by.
struct RequestClass {
    std::string name;
    std::vector<std::string> workload_ids;  ///< Table I ids, drawn uniformly.
    double weight = 1.0;                    ///< Relative share of arrivals.
    double slo_cycles = 200'000.0;          ///< Arrival-to-completion deadline.

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const RequestClass&) const = default;
};

/// Two default tenants for the 100-chiplet system: latency-sensitive
/// interactive traffic on the small CIFAR-class models and throughput
/// batch traffic on the large ImageNet models.
[[nodiscard]] std::vector<RequestClass> default_request_classes();

struct Request {
    std::int64_t id = 0;            ///< Arrival order, 0-based.
    double arrival_cycle = 0.0;
    std::int32_t class_idx = 0;     ///< Index into the class list.
    std::string workload_id;        ///< Table I id ("DNN1"...).
    std::int32_t rounds = 1;        ///< Inference passes the request needs.
    double deadline_cycle = 0.0;    ///< arrival + class SLO.
};

enum class ArrivalProcess {
    kPoisson,  ///< Memoryless open-loop traffic at a constant mean rate.
    kMmpp,     ///< 2-state Markov-modulated Poisson process (bursty).
    kTrace,    ///< Replay of explicit recorded arrival cycles.
};

[[nodiscard]] const char* arrival_process_name(ArrivalProcess p);

struct ArrivalConfig {
    ArrivalProcess process = ArrivalProcess::kPoisson;
    /// Mean offered load, arrivals per 1e6 cycles (MMPP: rate of the
    /// normal state; the long-run mean is higher by the burst share).
    double rate_per_mcycle = 50.0;
    /// MMPP burst state: rate multiplier and exponential mean dwells.
    double burst_rate_multiplier = 4.0;
    double normal_dwell_cycles = 400'000.0;
    double burst_dwell_cycles = 100'000.0;
    /// kTrace: explicit non-decreasing arrival cycles to replay.
    std::vector<double> trace_cycles;
    /// Stream length (kTrace streams are additionally capped by the trace).
    std::int64_t max_requests = 200;
    /// Per-request service demand range, inference rounds.
    std::int32_t min_rounds = 1;
    std::int32_t max_rounds = 3;

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const ArrivalConfig&) const = default;
};

/// Expands the arrival config into a concrete request stream, sorted by
/// arrival cycle. Class choice is weight-proportional, the model uniform
/// within the class, and the round demand uniform in [min, max] rounds —
/// all drawn from one generator, so the stream is deterministic in
/// (cfg, classes, seed) and identical across admission policies.
/// Throws std::invalid_argument on an empty/invalid class list or an
/// unsorted trace.
[[nodiscard]] std::vector<Request> generate_requests(
    const ArrivalConfig& cfg, std::span<const RequestClass> classes,
    std::uint64_t seed);

}  // namespace floretsim::serve
