#include "src/serve/simulator.h"

#include <span>

#include "src/serve/cluster.h"

namespace floretsim::serve {

const char* admission_policy_name(AdmissionPolicy p) {
    switch (p) {
        case AdmissionPolicy::kFifo: return "FIFO";
        case AdmissionPolicy::kEarliestDeadline: return "EDF";
        case AdmissionPolicy::kRejectOnFull: return "Reject-on-full";
        case AdmissionPolicy::kEdfEvict: return "EDF-evict";
    }
    return "?";
}

ServeConfig default_serve_config() {
    ServeConfig cfg;
    // The experiment eval defaults (1/64 sampling) carry over: the
    // resident-set memo absorbs the per-round NoI cost, so serving stays
    // directly comparable with the batch Table II numbers.
    cfg.eval = core::experiment::default_eval_config();
    return cfg;
}

ServeStats serve_requests(core::experiment::BuiltArch& arch,
                          const ServeConfig& cfg) {
    // A single fabric behind a trivial frontend: the cluster event loop
    // accumulates in exactly the legacy single-fabric order, so this is
    // bit-identical to the pre-cluster scheduler (pinned by the
    // differential goldens in tests/test_serve.cpp).
    return serve_cluster(std::span(&arch, 1), cfg, BalancePolicy::kLeastLoaded)
        .serve;
}

}  // namespace floretsim::serve
