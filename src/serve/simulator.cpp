#include "src/serve/simulator.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "src/core/mapper.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pim/reram.h"
#include "src/util/stats.h"

namespace floretsim::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Resident {
    Request req;
    core::MappedTask task;
    double admitted_cycle = 0.0;
    double compute_ns = 0.0;
    std::int32_t rounds_left = 0;
    double round_done = 0.0;  ///< Cycle at which the current round ends.
};

/// Exact (collision-free) memo key for a resident set: the placements in
/// resident order — the order matters because it is the order the demand
/// list reaches the wormhole simulator.
using ResidentKey = std::vector<std::pair<std::string, std::vector<topo::NodeId>>>;

}  // namespace

const char* admission_policy_name(AdmissionPolicy p) {
    switch (p) {
        case AdmissionPolicy::kFifo: return "FIFO";
        case AdmissionPolicy::kEarliestDeadline: return "EDF";
        case AdmissionPolicy::kRejectOnFull: return "Reject-on-full";
    }
    return "?";
}

ServeConfig default_serve_config() {
    ServeConfig cfg;
    // The experiment eval defaults (1/64 sampling) carry over: the
    // resident-set memo absorbs the per-round NoI cost, so serving stays
    // directly comparable with the batch Table II numbers.
    cfg.eval = core::experiment::default_eval_config();
    return cfg;
}

ServeStats serve_requests(core::experiment::BuiltArch& arch,
                          const ServeConfig& cfg) {
    const auto classes =
        cfg.classes.empty() ? default_request_classes() : cfg.classes;
    const auto requests = generate_requests(cfg.arrivals, classes, cfg.seed);

    // One TaskSpec prototype (network + partition plan) per distinct
    // workload id, in first-appearance order.
    std::vector<std::string> distinct;
    for (const auto& r : requests)
        if (std::find(distinct.begin(), distinct.end(), r.workload_id) ==
            distinct.end())
            distinct.push_back(r.workload_id);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto prototypes =
        core::make_tasks(distinct, cfg.params_per_chiplet_m, owner);
    const auto prototype_of = [&](const std::string& id) -> const core::TaskSpec& {
        for (std::size_t i = 0; i < distinct.size(); ++i)
            if (distinct[i] == id) return prototypes[i];
        throw std::logic_error("serve_requests: unknown workload " + id);
    };
    const pim::ReramConfig reram;

    arch.mapper->reset();
    const auto node_count = static_cast<double>(arch.topology().node_count());

    ServeStats out;
    out.per_class.resize(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c)
        out.per_class[c].name = classes[c].name;

    std::vector<Resident> residents;
    std::vector<Request> queue;  ///< Waiting line, policy-ordered.
    std::size_t next_arrival = 0;
    double now = 0.0;
    double busy_nodes = 0.0;
    double util_accum = 0.0;   ///< Integral of busy_nodes over time.
    double queue_accum = 0.0;  ///< Integral of queue depth over time.
    double wait_accum = 0.0;
    util::RunningStats latency;
    util::P2Quantile p50(0.50), p95(0.95), p99(0.99);
    std::map<ResidentKey, double> noi_cache;  ///< Resident set -> drain cycles.
    // The memo is bounded so a long trace replay with high residency churn
    // (mostly-distinct sets) cannot grow memory linearly with rounds; the
    // dominant repeat case — successive rounds under unchanged residency —
    // is served by the epoch short-circuit below without touching the map.
    constexpr std::size_t kNoiCacheCap = 4096;
    double epoch_drain = 0.0;  ///< Drain of the current residency epoch.
    bool epoch_valid = false;  ///< Cleared on every admit/release.

    const auto reject = [&](const Request& r) {
        ++out.rejected;
        ++out.sla_violations;
        ++out.per_class[static_cast<std::size_t>(r.class_idx)].violations;
    };

    // Round duration = drain latency of the whole resident set (memoized)
    // plus this request's own PIM compute, both at the same sampling scale.
    const auto schedule_round = [&](Resident& r) {
        const obs::Span span("serve_round", "serve");
        ++out.noi_rounds;
        if (!epoch_valid) {
            ResidentKey key;
            key.reserve(residents.size());
            for (const auto& res : residents)
                key.emplace_back(res.req.workload_id, res.task.nodes);
            if (const auto it = noi_cache.find(key); it != noi_cache.end()) {
                ++out.noi_cache_hits;
                epoch_drain = it->second;
            } else {
                std::vector<core::MappedTask> snapshot;
                snapshot.reserve(residents.size());
                for (const auto& res : residents) snapshot.push_back(res.task);
                const auto eval = core::evaluate_noi(arch.topology(), arch.routes(),
                                                     snapshot, cfg.eval);
                epoch_drain = eval.latency_cycles;
                out.sim_cycles_stepped += eval.sim_cycles_stepped;
                out.sim_cycles_skipped += eval.sim_cycles_skipped;
                out.sim_horizon_jumps += eval.sim_horizon_jumps;
                out.sim_region_cycles_stepped += eval.sim_region_cycles_stepped;
                out.sim_region_cycles_skipped += eval.sim_region_cycles_skipped;
                out.sim_region_horizon_jumps += eval.sim_region_horizon_jumps;
                out.sim_region_stepped_max += eval.sim_region_stepped_max;
                out.sim_region_stepped_min += eval.sim_region_stepped_min;
                if (noi_cache.size() < kNoiCacheCap)
                    noi_cache.emplace(std::move(key), epoch_drain);
            }
            epoch_valid = true;
        } else {
            ++out.noi_cache_hits;
        }
        const double round_cycles =
            epoch_drain + r.compute_ns * cfg.eval.traffic_scale;
        obs::MetricsRegistry::global().observe("serve.round_cycles",
                                               round_cycles);
        r.round_done = now + round_cycles;
    };

    // Round scheduling is deferred until the admission burst drains: an
    // arrival wave of k mappable requests invalidates the residency epoch k
    // times, so scheduling inside the loop would re-run evaluate_noi per
    // admission and hand the earlier admits round durations computed
    // against stale intermediate resident sets. Admit first, then schedule
    // every new resident against the final set — one NoI evaluation per
    // burst.
    const auto try_admit = [&] {
        const std::size_t first_new = residents.size();
        while (!queue.empty()) {
            const Request head = queue.front();
            core::TaskSpec spec = prototype_of(head.workload_id);
            const std::span<const core::TaskSpec> one(&spec, 1);
            auto mapped = arch.mapper->map_queue(one, nullptr);
            core::MappedTask task = std::move(mapped.front());
            if (!task.mapped) {
                if (!residents.empty()) break;  // wait for departures
                task = arch.mapper->map_one_relaxed(spec);
                if (!task.mapped) {
                    // No placement even on an idle system: bounce it so the
                    // line keeps moving.
                    reject(head);
                    queue.erase(queue.begin());
                    continue;
                }
            }
            queue.erase(queue.begin());
            ++out.admitted;
            wait_accum += now - head.arrival_cycle;
            Resident r;
            r.req = head;
            r.task = std::move(task);
            r.admitted_cycle = now;
            r.rounds_left = head.rounds;
            r.compute_ns = core::experiment::task_compute_ns(r.task, reram);
            busy_nodes += static_cast<double>(r.task.nodes.size());
            residents.push_back(std::move(r));
            epoch_valid = false;  // residency changed
        }
        for (std::size_t i = first_new; i < residents.size(); ++i)
            schedule_round(residents[i]);
    };

    const auto advance_to = [&](double t) {
        util_accum += busy_nodes * (t - now);
        queue_accum += static_cast<double>(queue.size()) * (t - now);
        now = t;
    };

    // Event-count guard: every request contributes one arrival plus at most
    // max_rounds round completions; anything past that is a logic bug.
    const std::int64_t max_events =
        16 + static_cast<std::int64_t>(requests.size()) *
                 (static_cast<std::int64_t>(cfg.arrivals.max_rounds) + 4);
    std::int64_t events = 0;

    while (next_arrival < requests.size() || !residents.empty() ||
           !queue.empty()) {
        if (++events > max_events) {
            out.drained = false;
            break;
        }

        // Earliest round completion (ties: lowest resident index).
        std::size_t round_idx = residents.size();
        double round_at = kInf;
        for (std::size_t i = 0; i < residents.size(); ++i)
            if (residents[i].round_done < round_at) {
                round_at = residents[i].round_done;
                round_idx = i;
            }
        const double arrival_at = next_arrival < requests.size()
                                      ? requests[next_arrival].arrival_cycle
                                      : kInf;

        if (round_at == kInf && arrival_at == kInf) {
            // Arrivals exhausted, nothing resident, queue non-empty: the
            // idle-system admission path below always shrinks the queue.
            try_admit();
            continue;
        }

        // Completions before arrivals at the same instant, so an arriving
        // request sees the capacity freed "now".
        if (round_at <= arrival_at) {
            advance_to(round_at);
            Resident& r = residents[round_idx];
            if (--r.rounds_left > 0) {
                schedule_round(r);  // same resident set: a cache hit
                continue;
            }
            const Request req = r.req;
            const double sojourn = now - req.arrival_cycle;
            latency.add(sojourn);
            p50.add(sojourn);
            p95.add(sojourn);
            p99.add(sojourn);
            ++out.completed;
            auto& cls = out.per_class[static_cast<std::size_t>(req.class_idx)];
            ++cls.completed;
            if (now > req.deadline_cycle) {
                ++out.sla_violations;
                ++cls.violations;
            }
            arch.mapper->release(r.task);
            busy_nodes -= static_cast<double>(r.task.nodes.size());
            residents.erase(residents.begin() +
                            static_cast<std::ptrdiff_t>(round_idx));
            epoch_valid = false;  // residency changed
            out.makespan_cycles = now;
            try_admit();
        } else {
            advance_to(arrival_at);
            const Request& req = requests[next_arrival++];
            ++out.arrived;
            ++out.per_class[static_cast<std::size_t>(req.class_idx)].arrived;
            if (cfg.admission == AdmissionPolicy::kRejectOnFull &&
                queue.size() >= cfg.max_queue) {
                reject(req);
            } else if (cfg.admission == AdmissionPolicy::kEarliestDeadline) {
                const auto at = std::upper_bound(
                    queue.begin(), queue.end(), req,
                    [](const Request& a, const Request& b) {
                        return std::pair(a.deadline_cycle, a.id) <
                               std::pair(b.deadline_cycle, b.id);
                    });
                queue.insert(at, req);
            } else {
                queue.push_back(req);
            }
            out.peak_queue_depth = std::max(
                out.peak_queue_depth, static_cast<std::int64_t>(queue.size()));
            try_admit();
        }
    }

    out.makespan_cycles = std::max(out.makespan_cycles, now);
    if (now > 0.0) {
        out.mean_utilization = util_accum / (now * node_count);
        out.mean_queue_depth = queue_accum / now;
    }
    if (out.makespan_cycles > 0.0)
        out.throughput_per_mcycle =
            static_cast<double>(out.completed) / out.makespan_cycles * 1e6;
    if (out.admitted > 0)
        out.mean_wait_cycles = wait_accum / static_cast<double>(out.admitted);
    out.mean_latency_cycles = latency.mean();
    out.p50_latency_cycles = p50.value();
    out.p95_latency_cycles = p95.value();
    out.p99_latency_cycles = p99.value();
    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.add("serve.arrived", out.arrived);
        metrics.add("serve.admitted", out.admitted);
        metrics.add("serve.rejected", out.rejected);
        metrics.add("serve.completed", out.completed);
        metrics.add("serve.sla_violations", out.sla_violations);
        // Reserved at 0 until the ROADMAP's preemption/residency-eviction
        // policy lands: dashboards can key on it today and light up then.
        metrics.add("serve.preemptions", 0);
        metrics.add("serve.noi_rounds", out.noi_rounds);
        metrics.add("serve.noi_cache_hits", out.noi_cache_hits);
    }
    return out;
}

}  // namespace floretsim::serve
