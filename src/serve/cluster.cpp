#include "src/serve/cluster.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/mapper.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pim/reram.h"
#include "src/util/stats.h"

namespace floretsim::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// round_done sentinel for a resident admitted but not yet scheduled
/// (rounds are deferred to the end of the admission burst; a real
/// round_done is always strictly positive).
constexpr double kUnscheduled = -1.0;

/// One request riding a residency. A batch leader and its coalesced
/// followers are all members of the same Resident; each keeps its own
/// round count and deadline.
struct Member {
    Request req;
    std::int32_t rounds_left = 0;
};

struct Resident {
    std::vector<Member> members;  ///< Leader first, then attach order.
    core::MappedTask task;
    std::string workload_id;
    double admitted_cycle = 0.0;
    double compute_ns = 0.0;
    double round_done = kUnscheduled;

    /// Earliest SLA deadline across live members — the eviction policy's
    /// notion of how deadline-critical this residency is.
    [[nodiscard]] double earliest_deadline() const {
        double d = kInf;
        for (const auto& m : members) d = std::min(d, m.req.deadline_cycle);
        return d;
    }
};

/// Exact (collision-free) memo key for a resident set: the placements in
/// resident order — the order matters because it is the order the demand
/// list reaches the wormhole simulator.
using ResidentKey =
    std::vector<std::pair<std::string, std::vector<topo::NodeId>>>;

/// Per-fabric scheduler state. Every field the legacy single-fabric loop
/// kept as a local now lives here, once per fabric; the shared virtual
/// clock and the output statistics stay global so a one-fabric cluster
/// accumulates in exactly the legacy order.
struct Fabric {
    core::experiment::BuiltArch* arch = nullptr;
    std::vector<Resident> residents;
    std::vector<Request> queue;  ///< Waiting line, policy-ordered.
    double busy_nodes = 0.0;
    std::map<ResidentKey, double> noi_cache;  ///< Resident set -> drain.
    double epoch_drain = 0.0;  ///< Drain of the current residency epoch.
    bool epoch_valid = false;  ///< Cleared on every admit/release/evict.

    [[nodiscard]] std::int64_t live_members() const {
        std::int64_t n = 0;
        for (const auto& r : residents)
            n += static_cast<std::int64_t>(r.members.size());
        return n;
    }
    /// Frontend load signal: queued plus resident requests.
    [[nodiscard]] std::int64_t load() const {
        return static_cast<std::int64_t>(queue.size()) + live_members();
    }
    [[nodiscard]] bool holds_model(const std::string& workload_id) const {
        for (const auto& r : residents)
            if (r.workload_id == workload_id) return true;
        for (const auto& q : queue)
            if (q.workload_id == workload_id) return true;
        return false;
    }
};

}  // namespace

const char* balance_policy_name(BalancePolicy p) {
    switch (p) {
        case BalancePolicy::kLeastLoaded: return "least-loaded";
        case BalancePolicy::kModelAffinity: return "model-affinity";
    }
    return "?";
}

ClusterStats serve_cluster(std::span<core::experiment::BuiltArch> fabrics,
                           const ServeConfig& cfg, BalancePolicy balance) {
    if (fabrics.empty())
        throw std::invalid_argument("serve_cluster: no fabrics");
    if (cfg.max_batch < 1)
        throw std::invalid_argument("serve_cluster: max_batch must be >= 1");
    const auto classes =
        cfg.classes.empty() ? default_request_classes() : cfg.classes;
    const auto requests = generate_requests(cfg.arrivals, classes, cfg.seed);

    // One TaskSpec prototype (network + partition plan) per distinct
    // workload id, in first-appearance order; shared by every fabric.
    std::vector<std::string> distinct;
    for (const auto& r : requests)
        if (std::find(distinct.begin(), distinct.end(), r.workload_id) ==
            distinct.end())
            distinct.push_back(r.workload_id);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto prototypes =
        core::make_tasks(distinct, cfg.params_per_chiplet_m, owner);
    const auto prototype_of = [&](const std::string& id) -> const core::TaskSpec& {
        for (std::size_t i = 0; i < distinct.size(); ++i)
            if (distinct[i] == id) return prototypes[i];
        throw std::logic_error("serve_cluster: unknown workload " + id);
    };
    const pim::ReramConfig reram;

    std::vector<Fabric> cluster(fabrics.size());
    double node_count = 0.0;
    for (std::size_t k = 0; k < fabrics.size(); ++k) {
        cluster[k].arch = &fabrics[k];
        fabrics[k].mapper->reset();
        node_count += static_cast<double>(fabrics[k].topology().node_count());
    }

    ClusterStats cluster_out;
    cluster_out.fabric_arrivals.assign(fabrics.size(), 0);
    cluster_out.fabric_completed.assign(fabrics.size(), 0);
    ServeStats& out = cluster_out.serve;
    out.per_class.resize(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c)
        out.per_class[c].name = classes[c].name;

    const bool edf_queue = cfg.admission == AdmissionPolicy::kEarliestDeadline ||
                           cfg.admission == AdmissionPolicy::kEdfEvict;
    std::size_t next_arrival = 0;
    double now = 0.0;
    double util_accum = 0.0;   ///< Integral of busy nodes over time.
    double queue_accum = 0.0;  ///< Integral of total queue depth over time.
    double wait_accum = 0.0;
    util::RunningStats latency;
    util::P2Quantile p50(0.50), p95(0.95), p99(0.99);
    // The memo is bounded so a long trace replay with high residency churn
    // (mostly-distinct sets) cannot grow memory linearly with rounds; the
    // dominant repeat case — successive rounds under unchanged residency —
    // is served by the epoch short-circuit below without touching the map.
    constexpr std::size_t kNoiCacheCap = 4096;

    const auto reject = [&](const Request& r) {
        ++out.rejected;
        ++out.sla_violations;
        ++out.per_class[static_cast<std::size_t>(r.class_idx)].violations;
    };

    // Round duration = drain latency of the whole resident set (memoized)
    // plus the batch's PIM compute, both at the same sampling scale. A
    // round serving m members shares the drain; the compute term grows by
    // batch_traffic_alpha per extra member (m == 1 is the exact
    // pre-batching formula).
    const auto schedule_round = [&](Fabric& f, Resident& r) {
        const obs::Span span("serve_round", "serve");
        ++out.noi_rounds;
        if (!f.epoch_valid) {
            ResidentKey key;
            key.reserve(f.residents.size());
            for (const auto& res : f.residents)
                key.emplace_back(res.workload_id, res.task.nodes);
            if (const auto it = f.noi_cache.find(key); it != f.noi_cache.end()) {
                ++out.noi_cache_hits;
                f.epoch_drain = it->second;
            } else {
                std::vector<core::MappedTask> snapshot;
                snapshot.reserve(f.residents.size());
                for (const auto& res : f.residents)
                    snapshot.push_back(res.task);
                const auto eval = core::evaluate_noi(
                    f.arch->topology(), f.arch->routes(), snapshot, cfg.eval);
                f.epoch_drain = eval.latency_cycles;
                out.sim_cycles_stepped += eval.sim_cycles_stepped;
                out.sim_cycles_skipped += eval.sim_cycles_skipped;
                out.sim_horizon_jumps += eval.sim_horizon_jumps;
                out.sim_region_cycles_stepped += eval.sim_region_cycles_stepped;
                out.sim_region_cycles_skipped += eval.sim_region_cycles_skipped;
                out.sim_region_horizon_jumps += eval.sim_region_horizon_jumps;
                out.sim_region_stepped_max += eval.sim_region_stepped_max;
                out.sim_region_stepped_min += eval.sim_region_stepped_min;
                if (f.noi_cache.size() < kNoiCacheCap)
                    f.noi_cache.emplace(std::move(key), f.epoch_drain);
            }
            f.epoch_valid = true;
        } else {
            ++out.noi_cache_hits;
        }
        const auto m = static_cast<double>(r.members.size());
        const double round_cycles =
            f.epoch_drain + r.compute_ns * cfg.eval.traffic_scale *
                                (1.0 + cfg.batch_traffic_alpha * (m - 1.0));
        obs::MetricsRegistry::global().observe("serve.round_cycles",
                                               round_cycles);
        r.round_done = now + round_cycles;
    };

    // EDF-ordered insertion (deadline, then id); also the re-queue order
    // for preempted members.
    const auto queue_edf = [](std::vector<Request>& queue, const Request& req) {
        const auto at = std::upper_bound(
            queue.begin(), queue.end(), req,
            [](const Request& a, const Request& b) {
                return std::pair(a.deadline_cycle, a.id) <
                       std::pair(b.deadline_cycle, b.id);
            });
        queue.insert(at, req);
    };

    // kEdfEvict only: tear down the residency whose earliest member
    // deadline is latest, provided it is strictly later than `head`'s —
    // strictness means every eviction edge decreases deadline, so chains
    // terminate. The in-flight round is discarded (that is the preemption)
    // and every member re-queues with its remaining rounds.
    const auto evict_one_for = [&](Fabric& f, const Request& head) {
        std::size_t victim = f.residents.size();
        double latest = head.deadline_cycle;
        for (std::size_t i = 0; i < f.residents.size(); ++i) {
            const double d = f.residents[i].earliest_deadline();
            if (d > latest) {
                latest = d;
                victim = i;
            }
        }
        if (victim == f.residents.size()) return false;
        Resident& r = f.residents[victim];
        f.arch->mapper->release(r.task);
        f.busy_nodes -= static_cast<double>(r.task.nodes.size());
        for (auto& m : r.members) {
            Request back = m.req;
            back.rounds = m.rounds_left;  // the running round is lost
            ++out.preemptions;
            queue_edf(f.queue, back);
        }
        ++out.evictions;
        f.residents.erase(f.residents.begin() +
                          static_cast<std::ptrdiff_t>(victim));
        f.epoch_valid = false;  // residency changed
        return true;
    };

    // Round scheduling is deferred until the admission burst drains: an
    // arrival wave of k mappable requests invalidates the residency epoch k
    // times, so scheduling inside the loop would re-run evaluate_noi per
    // admission and hand the earlier admits round durations computed
    // against stale intermediate resident sets. Admit first, then schedule
    // every new resident against the final set — one NoI evaluation per
    // burst. (Eviction can reorder the resident vector mid-burst, so "new"
    // is tracked by the kUnscheduled sentinel, not by index.)
    const auto try_admit = [&](Fabric& f) {
        while (!f.queue.empty()) {
            const Request head = f.queue.front();
            core::TaskSpec spec = prototype_of(head.workload_id);
            const std::span<const core::TaskSpec> one(&spec, 1);
            auto mapped = f.arch->mapper->map_queue(one, nullptr);
            core::MappedTask task = std::move(mapped.front());
            if (!task.mapped) {
                if (!f.residents.empty()) {
                    if (cfg.admission == AdmissionPolicy::kEdfEvict &&
                        evict_one_for(f, head))
                        continue;  // capacity freed: retry the head
                    break;         // wait for departures
                }
                task = f.arch->mapper->map_one_relaxed(spec);
                if (!task.mapped) {
                    // No placement even on an idle system: bounce it so the
                    // line keeps moving.
                    reject(head);
                    f.queue.erase(f.queue.begin());
                    continue;
                }
            }
            f.queue.erase(f.queue.begin());
            ++out.admitted;
            wait_accum += now - head.arrival_cycle;
            Resident r;
            r.workload_id = head.workload_id;
            r.members.push_back({head, head.rounds});
            r.task = std::move(task);
            r.admitted_cycle = now;
            r.compute_ns = core::experiment::task_compute_ns(r.task, reram);
            // Batch coalescing: queued requests for the same model ride the
            // residency the leader just paid for, up to the cap. They jump
            // the line on purpose — that is the batching win.
            for (std::size_t i = 0;
                 i < f.queue.size() &&
                 static_cast<std::int32_t>(r.members.size()) < cfg.max_batch;) {
                if (f.queue[i].workload_id != head.workload_id) {
                    ++i;
                    continue;
                }
                const Request follower = f.queue[i];
                f.queue.erase(f.queue.begin() +
                              static_cast<std::ptrdiff_t>(i));
                ++out.admitted;
                ++out.batched_requests;
                wait_accum += now - follower.arrival_cycle;
                r.members.push_back({follower, follower.rounds});
            }
            f.busy_nodes += static_cast<double>(r.task.nodes.size());
            f.residents.push_back(std::move(r));
            f.epoch_valid = false;  // residency changed
        }
        for (auto& r : f.residents)
            if (r.round_done == kUnscheduled) schedule_round(f, r);
    };

    const auto advance_to = [&](double t) {
        double busy = 0.0;
        double queued = 0.0;
        for (const auto& f : cluster) {
            busy += f.busy_nodes;
            queued += static_cast<double>(f.queue.size());
        }
        util_accum += busy * (t - now);
        queue_accum += queued * (t - now);
        now = t;
    };

    // Frontend routing, decided once per arrival. Load = queued + resident
    // members; affinity prefers fabrics already holding the model (warm
    // residency), falling back to least-loaded. Ties go to the lowest
    // fabric index, which keeps the whole cluster deterministic.
    const auto route = [&](const Request& req) {
        std::size_t best = 0;
        if (balance == BalancePolicy::kModelAffinity) {
            std::size_t warm = cluster.size();
            for (std::size_t k = 0; k < cluster.size(); ++k) {
                if (!cluster[k].holds_model(req.workload_id)) continue;
                if (warm == cluster.size() ||
                    cluster[k].load() < cluster[warm].load())
                    warm = k;
            }
            if (warm != cluster.size()) {
                ++cluster_out.affinity_hits;
                return warm;
            }
        }
        for (std::size_t k = 1; k < cluster.size(); ++k)
            if (cluster[k].load() < cluster[best].load()) best = k;
        if (balance != BalancePolicy::kModelAffinity &&
            cluster[best].holds_model(req.workload_id))
            ++cluster_out.affinity_hits;
        return best;
    };

    const auto any_pending = [&] {
        for (const auto& f : cluster)
            if (!f.residents.empty() || !f.queue.empty()) return true;
        return false;
    };

    // Event-count guard: every request contributes one arrival plus at most
    // max_rounds round completions; anything past that is a logic bug.
    // Eviction re-queues work, so kEdfEvict gets the worst-case re-run
    // budget on top (each request evictable at most once per
    // earlier-deadline head).
    std::int64_t max_events =
        16 + static_cast<std::int64_t>(requests.size()) *
                 (static_cast<std::int64_t>(cfg.arrivals.max_rounds) + 4);
    if (cfg.admission == AdmissionPolicy::kEdfEvict)
        max_events += static_cast<std::int64_t>(requests.size()) *
                      static_cast<std::int64_t>(requests.size()) *
                      (static_cast<std::int64_t>(cfg.arrivals.max_rounds) + 4);
    std::int64_t events = 0;

    while (next_arrival < requests.size() || any_pending()) {
        if (++events > max_events) {
            out.drained = false;
            break;
        }

        // Earliest round completion (ties: lowest fabric, then lowest
        // resident index).
        std::size_t round_fab = cluster.size();
        std::size_t round_idx = 0;
        double round_at = kInf;
        for (std::size_t k = 0; k < cluster.size(); ++k)
            for (std::size_t i = 0; i < cluster[k].residents.size(); ++i)
                if (cluster[k].residents[i].round_done < round_at) {
                    round_at = cluster[k].residents[i].round_done;
                    round_fab = k;
                    round_idx = i;
                }
        const double arrival_at = next_arrival < requests.size()
                                      ? requests[next_arrival].arrival_cycle
                                      : kInf;

        if (round_at == kInf && arrival_at == kInf) {
            // Arrivals exhausted, nothing resident, queues non-empty: the
            // idle-system admission path always shrinks each queue.
            for (auto& f : cluster)
                if (!f.queue.empty()) try_admit(f);
            continue;
        }

        // Completions before arrivals at the same instant, so an arriving
        // request sees the capacity freed "now".
        if (round_at <= arrival_at) {
            advance_to(round_at);
            Fabric& f = cluster[round_fab];
            Resident& r = f.residents[round_idx];
            // Every live member consumed this round; those out of rounds
            // complete here, in attach order.
            bool finished_any = false;
            for (auto it = r.members.begin(); it != r.members.end();) {
                if (--it->rounds_left > 0) {
                    ++it;
                    continue;
                }
                const Request req = it->req;
                const double sojourn = now - req.arrival_cycle;
                latency.add(sojourn);
                p50.add(sojourn);
                p95.add(sojourn);
                p99.add(sojourn);
                ++out.completed;
                ++cluster_out.fabric_completed[round_fab];
                auto& cls =
                    out.per_class[static_cast<std::size_t>(req.class_idx)];
                ++cls.completed;
                if (now > req.deadline_cycle) {
                    ++out.sla_violations;
                    ++cls.violations;
                }
                it = r.members.erase(it);
                finished_any = true;
            }
            if (!r.members.empty()) {
                // Batch not drained: next round under the unchanged
                // residency (an epoch cache hit), with m reduced.
                if (finished_any) out.makespan_cycles = now;
                schedule_round(f, r);
                continue;
            }
            f.arch->mapper->release(r.task);
            f.busy_nodes -= static_cast<double>(r.task.nodes.size());
            f.residents.erase(f.residents.begin() +
                              static_cast<std::ptrdiff_t>(round_idx));
            f.epoch_valid = false;  // residency changed
            out.makespan_cycles = now;
            try_admit(f);
        } else {
            advance_to(arrival_at);
            const Request& req = requests[next_arrival++];
            ++out.arrived;
            ++out.per_class[static_cast<std::size_t>(req.class_idx)].arrived;
            Fabric& f = cluster[route(req)];
            ++cluster_out.fabric_arrivals[static_cast<std::size_t>(
                &f - cluster.data())];
            if (cfg.admission == AdmissionPolicy::kRejectOnFull &&
                f.queue.size() >= cfg.max_queue) {
                reject(req);
            } else if (edf_queue) {
                queue_edf(f.queue, req);
            } else {
                f.queue.push_back(req);
            }
            out.peak_queue_depth =
                std::max(out.peak_queue_depth,
                         static_cast<std::int64_t>(f.queue.size()));
            try_admit(f);
        }
    }

    out.makespan_cycles = std::max(out.makespan_cycles, now);
    if (now > 0.0) {
        out.mean_utilization = util_accum / (now * node_count);
        out.mean_queue_depth = queue_accum / now;
    }
    if (out.makespan_cycles > 0.0)
        out.throughput_per_mcycle =
            static_cast<double>(out.completed) / out.makespan_cycles * 1e6;
    if (out.admitted > 0)
        out.mean_wait_cycles = wait_accum / static_cast<double>(out.admitted);
    out.mean_latency_cycles = latency.mean();
    out.p50_latency_cycles = p50.value();
    out.p95_latency_cycles = p95.value();
    out.p99_latency_cycles = p99.value();
    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.add("serve.arrived", out.arrived);
        metrics.add("serve.admitted", out.admitted);
        metrics.add("serve.rejected", out.rejected);
        metrics.add("serve.completed", out.completed);
        metrics.add("serve.sla_violations", out.sla_violations);
        metrics.add("serve.preemptions", out.preemptions);
        metrics.add("serve.evictions", out.evictions);
        metrics.add("serve.batched_requests", out.batched_requests);
        metrics.add("serve.noi_rounds", out.noi_rounds);
        metrics.add("serve.noi_cache_hits", out.noi_cache_hits);
    }
    return cluster_out;
}

}  // namespace floretsim::serve
