#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/serve/simulator.h"

namespace floretsim::serve {

/// Multi-fabric serving cluster: K independent fabrics behind a
/// load-balancing frontend. Each arrival is routed once, at arrival time,
/// to a fabric; from there the per-fabric scheduler (queue + residency +
/// batching + eviction, see simulator.h) owns it. The whole cluster runs
/// as ONE discrete-event simulation over a shared virtual clock, so the
/// aggregate statistics are accumulated in global event order and a
/// cluster of one fabric is bit-identical to serve_requests() by
/// construction.

enum class BalancePolicy {
    kLeastLoaded,    ///< Fewest queued + resident members; ties lowest index.
    kModelAffinity,  ///< Prefer fabrics already holding (or queueing) the
                     ///< model — keeps residencies warm — then least-loaded.
};

[[nodiscard]] const char* balance_policy_name(BalancePolicy p);

/// Cluster-level outcome: the cluster-wide ServeStats plus frontend
/// routing accounting.
struct ClusterStats {
    ServeStats serve;  ///< Accumulated across fabrics in event order.
    /// Requests routed to each fabric (size == fabric count).
    std::vector<std::int64_t> fabric_arrivals;
    std::vector<std::int64_t> fabric_completed;
    /// Arrivals the frontend routed onto a fabric that already had the
    /// request's model resident or queued (always 0 under kLeastLoaded
    /// unless the least-loaded fabric happened to hold it — counted either
    /// way, it measures residency warmth, not policy).
    std::int64_t affinity_hits = 0;
};

/// Runs the cluster simulation to completion. `fabrics` must be non-empty;
/// each BuiltArch is reset and owned exclusively for the duration of the
/// call (same re-entrancy contract as serve_requests).
[[nodiscard]] ClusterStats serve_cluster(
    std::span<core::experiment::BuiltArch> fabrics, const ServeConfig& cfg,
    BalancePolicy balance);

}  // namespace floretsim::serve
