#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/sweep.h"
#include "src/serve/simulator.h"

namespace floretsim::serve {

/// One serving scenario replicated across seeds: an architecture at a
/// grid size plus a ServeConfig, run `replications` times with seeds
/// base_seed, base_seed + 1, ... Replications fan out on the
/// core::SweepEngine; every replication builds its own mapper over the
/// engine's shared fabric cache, so results are bit-identical across
/// thread counts (enforced by tests/test_serve.cpp).
struct ServeSpec {
    core::experiment::Arch arch = core::experiment::Arch::kFloret;
    std::int32_t width = 10;
    std::int32_t height = 10;
    std::uint64_t swap_seed = 13;
    std::int32_t greedy_max_gap = -1;
    ServeConfig config;
    std::int32_t replications = 1;
    std::uint64_t base_seed = 1;  ///< Replication r runs with base_seed + r.

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const ServeSpec&) const = default;
};

/// Runs the spec's replications on the engine; results in replication
/// order (seed base_seed + index).
[[nodiscard]] std::vector<ServeStats> run_replications(core::SweepEngine& engine,
                                                       const ServeSpec& spec);

/// Cross-replication aggregate for reporting: request-weighted rates,
/// replication-averaged latency percentiles.
struct ServeAggregate {
    std::int64_t arrived = 0;
    std::int64_t completed = 0;
    std::int64_t rejected = 0;
    std::int64_t sla_violations = 0;
    double mean_throughput_per_mcycle = 0.0;
    double mean_utilization = 0.0;
    double mean_queue_depth = 0.0;
    double mean_latency_cycles = 0.0;
    double p50_latency_cycles = 0.0;  ///< Mean of per-replication p50s.
    double p95_latency_cycles = 0.0;
    double p99_latency_cycles = 0.0;
    /// Batching/preemption accounting, summed over replications.
    std::int64_t batched_requests = 0;
    std::int64_t preemptions = 0;
    std::int64_t evictions = 0;
    /// NoI / simulator-engine economy, summed over replications.
    std::int64_t noi_rounds = 0;
    std::int64_t noi_cache_hits = 0;
    std::int64_t sim_cycles_stepped = 0;
    std::int64_t sim_cycles_skipped = 0;
    std::int64_t sim_horizon_jumps = 0;
    std::int64_t sim_region_cycles_stepped = 0;
    std::int64_t sim_region_cycles_skipped = 0;
    std::int64_t sim_region_horizon_jumps = 0;
    std::int64_t sim_region_stepped_max = 0;
    std::int64_t sim_region_stepped_min = 0;

    [[nodiscard]] double sla_violation_rate() const noexcept {
        return arrived == 0 ? 0.0
                            : static_cast<double>(sla_violations) /
                                  static_cast<double>(arrived);
    }
};

[[nodiscard]] ServeAggregate aggregate(std::span<const ServeStats> runs);

}  // namespace floretsim::serve
