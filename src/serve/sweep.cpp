#include "src/serve/sweep.h"

#include <algorithm>

namespace floretsim::serve {

std::vector<ServeStats> run_replications(core::SweepEngine& engine,
                                         const ServeSpec& spec) {
    const auto n = static_cast<std::size_t>(std::max(spec.replications, 0));
    return engine.map(n, [&](std::size_t r) {
        auto arch = core::experiment::build_arch(engine.cache(), spec.arch,
                                                 spec.width, spec.height,
                                                 spec.swap_seed,
                                                 spec.greedy_max_gap);
        ServeConfig cfg = spec.config;
        cfg.seed = spec.base_seed + r;
        return serve_requests(arch, cfg);
    });
}

ServeAggregate aggregate(std::span<const ServeStats> runs) {
    ServeAggregate agg;
    if (runs.empty()) return agg;
    for (const auto& s : runs) {
        agg.arrived += s.arrived;
        agg.completed += s.completed;
        agg.rejected += s.rejected;
        agg.sla_violations += s.sla_violations;
        agg.mean_throughput_per_mcycle += s.throughput_per_mcycle;
        agg.mean_utilization += s.mean_utilization;
        agg.mean_queue_depth += s.mean_queue_depth;
        agg.mean_latency_cycles += s.mean_latency_cycles;
        agg.p50_latency_cycles += s.p50_latency_cycles;
        agg.p95_latency_cycles += s.p95_latency_cycles;
        agg.p99_latency_cycles += s.p99_latency_cycles;
        agg.batched_requests += s.batched_requests;
        agg.preemptions += s.preemptions;
        agg.evictions += s.evictions;
        agg.noi_rounds += s.noi_rounds;
        agg.noi_cache_hits += s.noi_cache_hits;
        agg.sim_cycles_stepped += s.sim_cycles_stepped;
        agg.sim_cycles_skipped += s.sim_cycles_skipped;
        agg.sim_horizon_jumps += s.sim_horizon_jumps;
        agg.sim_region_cycles_stepped += s.sim_region_cycles_stepped;
        agg.sim_region_cycles_skipped += s.sim_region_cycles_skipped;
        agg.sim_region_horizon_jumps += s.sim_region_horizon_jumps;
        agg.sim_region_stepped_max += s.sim_region_stepped_max;
        agg.sim_region_stepped_min += s.sim_region_stepped_min;
    }
    const auto n = static_cast<double>(runs.size());
    agg.mean_throughput_per_mcycle /= n;
    agg.mean_utilization /= n;
    agg.mean_queue_depth /= n;
    agg.mean_latency_cycles /= n;
    agg.p50_latency_cycles /= n;
    agg.p95_latency_cycles /= n;
    agg.p99_latency_cycles /= n;
    return agg;
}

}  // namespace floretsim::serve
