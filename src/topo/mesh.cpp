#include "src/topo/mesh.h"

namespace floretsim::topo {

Topology make_mesh(std::int32_t width, std::int32_t height, double pitch_mm) {
    Topology t("Mesh" + std::to_string(width) + "x" + std::to_string(height), pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
    auto id = [width](std::int32_t x, std::int32_t y) { return y * width + x; };
    for (std::int32_t y = 0; y < height; ++y) {
        for (std::int32_t x = 0; x < width; ++x) {
            if (x + 1 < width) t.add_link(id(x, y), id(x + 1, y));
            if (y + 1 < height) t.add_link(id(x, y), id(x, y + 1));
        }
    }
    return t;
}

Topology make_torus(std::int32_t width, std::int32_t height, double pitch_mm) {
    Topology t("Torus" + std::to_string(width) + "x" + std::to_string(height), pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
    auto id = [width](std::int32_t x, std::int32_t y) { return y * width + x; };
    for (std::int32_t y = 0; y < height; ++y) {
        for (std::int32_t x = 0; x < width; ++x) {
            if (x + 1 < width)
                t.add_link(id(x, y), id(x + 1, y));
            else if (width > 2)
                // Folded-torus wrap: physical length ~2 pitches.
                t.add_link(id(x, y), id(0, y), 2.0 * pitch_mm);
            if (y + 1 < height)
                t.add_link(id(x, y), id(x, y + 1));
            else if (height > 2)
                t.add_link(id(x, y), id(x, 0), 2.0 * pitch_mm);
        }
    }
    return t;
}

Topology make_mesh3d(std::int32_t width, std::int32_t height, std::int32_t depth,
                     double pitch_mm, double tier_pitch_mm) {
    Topology t("Mesh3D" + std::to_string(width) + "x" + std::to_string(height) + "x" +
                   std::to_string(depth),
               pitch_mm);
    for (std::int32_t z = 0; z < depth; ++z)
        for (std::int32_t y = 0; y < height; ++y)
            for (std::int32_t x = 0; x < width; ++x)
                t.add_node(util::Point2{x, y}, z);
    auto id = [width, height](std::int32_t x, std::int32_t y, std::int32_t z) {
        return (z * height + y) * width + x;
    };
    for (std::int32_t z = 0; z < depth; ++z) {
        for (std::int32_t y = 0; y < height; ++y) {
            for (std::int32_t x = 0; x < width; ++x) {
                if (x + 1 < width) t.add_link(id(x, y, z), id(x + 1, y, z));
                if (y + 1 < height) t.add_link(id(x, y, z), id(x, y + 1, z));
                if (z + 1 < depth)
                    t.add_link(id(x, y, z), id(x, y, z + 1), tier_pitch_mm);
            }
        }
    }
    return t;
}

}  // namespace floretsim::topo
