#include "src/topo/swap.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace floretsim::topo {
namespace {

/// Serpentine (boustrophedon) order over the grid: consecutive ids are
/// grid neighbors, so the backbone links are all single-hop.
std::vector<NodeId> serpentine_order(std::int32_t width, std::int32_t height) {
    std::vector<NodeId> order;
    order.reserve(static_cast<std::size_t>(width) * height);
    for (std::int32_t y = 0; y < height; ++y) {
        if (y % 2 == 0)
            for (std::int32_t x = 0; x < width; ++x) order.push_back(y * width + x);
        else
            for (std::int32_t x = width - 1; x >= 0; --x) order.push_back(y * width + x);
    }
    return order;
}

/// Mean hop distance between serpentine-consecutive nodes (pipeline
/// traffic proxy) plus a small all-pairs term; the SA objective.
double comm_cost(const Topology& t, const std::vector<NodeId>& order) {
    double pipeline = 0.0;
    double all_pairs = 0.0;
    std::int64_t pair_count = 0;
    for (NodeId n = 0; n < t.node_count(); ++n) {
        const auto dist = t.hop_distances(n);
        for (std::int32_t d : dist) {
            if (d > 0) {
                all_pairs += d;
                ++pair_count;
            }
        }
        (void)order;
    }
    for (std::size_t i = 1; i < order.size(); ++i) {
        const auto dist = t.hop_distances(order[i - 1]);
        pipeline += dist[static_cast<std::size_t>(order[i])];
    }
    const double mean_all =
        pair_count > 0 ? all_pairs / static_cast<double>(pair_count) : 0.0;
    return pipeline / static_cast<double>(order.size() - 1) + 0.2 * mean_all;
}

struct Shortcut {
    NodeId a;
    NodeId b;
};

/// Samples a shortcut respecting the degree budget; length ~ l^-alpha.
bool sample_shortcut(const Topology& t, util::Rng& rng, const SwapConfig& cfg,
                     const std::vector<std::int32_t>& degree, Shortcut& out) {
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(t.node_count())));
        if (degree[static_cast<std::size_t>(a)] >= cfg.max_degree) continue;
        // Sample a target length from the truncated power law, then a node
        // at (approximately) that Manhattan radius.
        const double u = rng.uniform();
        const double lmax = static_cast<double>(t.node_count());
        const double length =
            std::pow((std::pow(lmax, 1.0 - cfg.alpha) - 1.0) * u + 1.0,
                     1.0 / (1.0 - cfg.alpha));
        const auto radius = std::max<std::int32_t>(2, static_cast<std::int32_t>(length));
        std::vector<NodeId> candidates;
        for (NodeId b = 0; b < t.node_count(); ++b) {
            if (b == a || t.has_link(a, b)) continue;
            if (degree[static_cast<std::size_t>(b)] >= cfg.max_degree) continue;
            const auto span = util::manhattan(t.node(a).pos, t.node(b).pos);
            if (span == radius || span == radius + 1) candidates.push_back(b);
        }
        if (candidates.empty()) continue;
        out = Shortcut{a, candidates[rng.below(candidates.size())]};
        return true;
    }
    return false;
}

}  // namespace

Topology make_swap(std::int32_t width, std::int32_t height, util::Rng& rng,
                   const SwapConfig& cfg, double pitch_mm) {
    const auto order = serpentine_order(width, height);

    auto build = [&](const std::vector<Shortcut>& shortcuts) {
        Topology t("SWAP" + std::to_string(width) + "x" + std::to_string(height),
                   pitch_mm);
        for (std::int32_t y = 0; y < height; ++y)
            for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
        for (std::size_t i = 1; i < order.size(); ++i)
            t.add_link(order[i - 1], order[i]);
        for (const auto& s : shortcuts)
            if (!t.has_link(s.a, s.b)) t.add_link(s.a, s.b);
        return t;
    };

    // Seed shortcut set.
    const auto n_extra = static_cast<std::size_t>(
        std::max(1.0, cfg.extra_link_frac * width * height));
    std::vector<Shortcut> shortcuts;
    {
        Topology backbone = build({});
        std::vector<std::int32_t> degree(static_cast<std::size_t>(backbone.node_count()));
        for (NodeId n = 0; n < backbone.node_count(); ++n)
            degree[static_cast<std::size_t>(n)] = backbone.ports(n);
        while (shortcuts.size() < n_extra) {
            Shortcut s{};
            Topology cur = build(shortcuts);
            for (NodeId n = 0; n < cur.node_count(); ++n)
                degree[static_cast<std::size_t>(n)] = cur.ports(n);
            if (!sample_shortcut(cur, rng, cfg, degree, s)) break;
            shortcuts.push_back(s);
        }
    }

    // Simulated-annealing refinement: swap one shortcut for a re-sampled
    // one; accept improvements (and occasional regressions, cooling).
    Topology best = build(shortcuts);
    double best_cost = comm_cost(best, order);
    double temperature = 0.3 * best_cost;
    for (std::int32_t it = 0; it < cfg.sa_iters && !shortcuts.empty(); ++it) {
        auto proposal = shortcuts;
        const std::size_t victim = rng.below(proposal.size());
        proposal.erase(proposal.begin() + static_cast<std::ptrdiff_t>(victim));
        Topology base = build(proposal);
        std::vector<std::int32_t> degree(static_cast<std::size_t>(base.node_count()));
        for (NodeId n = 0; n < base.node_count(); ++n)
            degree[static_cast<std::size_t>(n)] = base.ports(n);
        Shortcut s{};
        if (!sample_shortcut(base, rng, cfg, degree, s)) continue;
        proposal.push_back(s);
        Topology cand = build(proposal);
        const double cost = comm_cost(cand, order);
        const double delta = cost - best_cost;
        if (delta < 0.0 || rng.chance(std::exp(-delta / std::max(1e-9, temperature)))) {
            shortcuts = std::move(proposal);
            if (cost < best_cost) {
                best_cost = cost;
                best = std::move(cand);
            }
        }
        temperature *= 0.995;
    }
    return best;
}

}  // namespace floretsim::topo
