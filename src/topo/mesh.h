#pragma once

#include "src/topo/topology.h"

namespace floretsim::topo {

/// SIAM-class 2D mesh NoI: every chiplet links to its 4-neighborhood.
/// Interior routers have 4 ports, edges 3, corners 2 — the port profile the
/// paper reports for SIAM in Fig. 2(a).
[[nodiscard]] Topology make_mesh(std::int32_t width, std::int32_t height,
                                 double pitch_mm = 4.0);

/// 2D folded torus: mesh plus wrap-around links. Folding keeps wrap link
/// length at ~2 pitches instead of the full row span.
[[nodiscard]] Topology make_torus(std::int32_t width, std::int32_t height,
                                  double pitch_mm = 4.0);

/// 3D mesh NoC for the 3D-integration study: `depth` stacked tiers of
/// width x height PEs with vertical (TSV/MIV) links of `tier_pitch_mm`.
[[nodiscard]] Topology make_mesh3d(std::int32_t width, std::int32_t height,
                                   std::int32_t depth, double pitch_mm = 1.0,
                                   double tier_pitch_mm = 0.05);

}  // namespace floretsim::topo
