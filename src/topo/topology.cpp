#include "src/topo/topology.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <stdexcept>

namespace floretsim::topo {

NodeId Topology::add_node(util::Point2 pos, std::int32_t tier) {
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.pos = pos;
    n.tier = tier;
    nodes_.push_back(n);
    adj_.emplace_back();
    return n.id;
}

LinkId Topology::add_link(NodeId a, NodeId b) {
    const auto span = util::manhattan(node(a).pos, node(b).pos) +
                      std::abs(node(a).tier - node(b).tier);
    return add_link(a, b, span * pitch_mm_);
}

LinkId Topology::add_link(NodeId a, NodeId b, double length_mm) {
    if (a == b) throw std::invalid_argument("self-loop link on node " + std::to_string(a));
    if (a < 0 || b < 0 || a >= node_count() || b >= node_count())
        throw std::out_of_range("link endpoint out of range");
    if (has_link(a, b))
        throw std::invalid_argument("duplicate link " + std::to_string(a) + "-" +
                                    std::to_string(b));
    Link l;
    l.id = static_cast<LinkId>(links_.size());
    l.a = a;
    l.b = b;
    l.length_mm = length_mm;
    l.hop_span = util::manhattan(node(a).pos, node(b).pos) +
                 std::abs(node(a).tier - node(b).tier);
    links_.push_back(l);
    adj_[static_cast<std::size_t>(a)].emplace_back(b, l.id);
    adj_[static_cast<std::size_t>(b)].emplace_back(a, l.id);
    return l.id;
}

bool Topology::has_link(NodeId a, NodeId b) const noexcept {
    if (a < 0 || a >= node_count()) return false;
    for (const auto& [nbr, lid] : adj_[static_cast<std::size_t>(a)])
        if (nbr == b) return true;
    return false;
}

util::Histogram Topology::port_histogram() const {
    util::Histogram h;
    for (const Node& n : nodes_) h.add(static_cast<std::size_t>(ports(n.id)));
    return h;
}

util::Histogram Topology::link_span_histogram() const {
    util::Histogram h;
    for (const Link& l : links_) h.add(static_cast<std::size_t>(l.hop_span));
    return h;
}

bool Topology::connected() const {
    if (nodes_.empty()) return true;
    const auto dist = hop_distances(0);
    for (const auto d : dist)
        if (d < 0) return false;
    return true;
}

std::vector<std::int32_t> Topology::hop_distances(NodeId src) const {
    std::vector<std::int32_t> dist(nodes_.size(), -1);
    std::queue<NodeId> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
        const NodeId cur = q.front();
        q.pop();
        for (const auto& [nbr, lid] : adj_[static_cast<std::size_t>(cur)]) {
            if (dist[static_cast<std::size_t>(nbr)] < 0) {
                dist[static_cast<std::size_t>(nbr)] =
                    dist[static_cast<std::size_t>(cur)] + 1;
                q.push(nbr);
            }
        }
    }
    return dist;
}

void Topology::set_region_hint(std::vector<std::int32_t> hint) {
    if (static_cast<std::int32_t>(hint.size()) != node_count())
        throw std::invalid_argument("region hint size " +
                                    std::to_string(hint.size()) + " != node count " +
                                    std::to_string(node_count()));
    for (const auto r : hint)
        if (r < 0) throw std::invalid_argument("negative region hint id");
    region_hint_ = std::move(hint);
}

RegionMap make_region_map(const Topology& t, std::int32_t target_regions) {
    RegionMap m;
    const auto n = t.node_count();
    if (n == 0) return m;
    m.region_of.assign(static_cast<std::size_t>(n), 0);

    std::vector<std::int32_t> raw;
    if (target_regions <= 0 && !t.region_hint().empty()) {
        raw = t.region_hint();
    } else {
        // Spatial tiling: rx x ry rectangle tiles over the position
        // bounding box, shaped to the box's aspect ratio. Tiers fold into
        // the same tile (a 3D stack's column is one locality unit).
        std::int32_t min_x = t.node(0).pos.x, max_x = min_x;
        std::int32_t min_y = t.node(0).pos.y, max_y = min_y;
        for (const Node& nd : t.nodes()) {
            min_x = std::min(min_x, nd.pos.x);
            max_x = std::max(max_x, nd.pos.x);
            min_y = std::min(min_y, nd.pos.y);
            max_y = std::max(max_y, nd.pos.y);
        }
        const std::int32_t w = max_x - min_x + 1;
        const std::int32_t h = max_y - min_y + 1;
        const std::int32_t target =
            target_regions > 0 ? target_regions
                               : std::clamp<std::int32_t>(n / 8, 1, 64);
        std::int32_t rx = std::clamp<std::int32_t>(
            static_cast<std::int32_t>(std::lround(
                std::sqrt(static_cast<double>(target) * w / h))),
            1, w);
        const std::int32_t ry =
            std::clamp<std::int32_t>((target + rx - 1) / rx, 1, h);
        rx = std::clamp<std::int32_t>((target + ry - 1) / ry, 1, w);
        const std::int32_t tile_w = (w + rx - 1) / rx;
        const std::int32_t tile_h = (h + ry - 1) / ry;
        raw.resize(static_cast<std::size_t>(n));
        for (const Node& nd : t.nodes())
            raw[static_cast<std::size_t>(nd.id)] =
                ((nd.pos.y - min_y) / tile_h) * rx + (nd.pos.x - min_x) / tile_w;
    }

    // Densify ids in first-seen node order so downstream indexing is [0, count).
    std::map<std::int32_t, std::int32_t> dense;
    for (NodeId i = 0; i < n; ++i) {
        const auto [it, fresh] =
            dense.emplace(raw[static_cast<std::size_t>(i)], m.count);
        if (fresh) ++m.count;
        m.region_of[static_cast<std::size_t>(i)] = it->second;
    }

    for (const Link& l : t.links())
        if (m.region_of[static_cast<std::size_t>(l.a)] !=
            m.region_of[static_cast<std::size_t>(l.b)])
            m.cut_links.push_back(l.id);
    return m;
}

Topology make_path_topology(const std::string& name, std::int32_t width,
                            std::int32_t height,
                            const std::vector<std::vector<NodeId>>& paths,
                            const std::vector<std::pair<NodeId, NodeId>>& express,
                            double pitch_mm) {
    Topology t(name, pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});

    for (const auto& path : paths) {
        for (std::size_t i = 1; i < path.size(); ++i) {
            if (!t.has_link(path[i - 1], path[i])) t.add_link(path[i - 1], path[i]);
        }
    }
    for (const auto& [a, b] : express) {
        if (!t.has_link(a, b)) t.add_link(a, b);
    }
    return t;
}

}  // namespace floretsim::topo
