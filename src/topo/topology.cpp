#include "src/topo/topology.h"

#include <queue>
#include <stdexcept>

namespace floretsim::topo {

NodeId Topology::add_node(util::Point2 pos, std::int32_t tier) {
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.pos = pos;
    n.tier = tier;
    nodes_.push_back(n);
    adj_.emplace_back();
    return n.id;
}

LinkId Topology::add_link(NodeId a, NodeId b) {
    const auto span = util::manhattan(node(a).pos, node(b).pos) +
                      std::abs(node(a).tier - node(b).tier);
    return add_link(a, b, span * pitch_mm_);
}

LinkId Topology::add_link(NodeId a, NodeId b, double length_mm) {
    if (a == b) throw std::invalid_argument("self-loop link on node " + std::to_string(a));
    if (a < 0 || b < 0 || a >= node_count() || b >= node_count())
        throw std::out_of_range("link endpoint out of range");
    if (has_link(a, b))
        throw std::invalid_argument("duplicate link " + std::to_string(a) + "-" +
                                    std::to_string(b));
    Link l;
    l.id = static_cast<LinkId>(links_.size());
    l.a = a;
    l.b = b;
    l.length_mm = length_mm;
    l.hop_span = util::manhattan(node(a).pos, node(b).pos) +
                 std::abs(node(a).tier - node(b).tier);
    links_.push_back(l);
    adj_[static_cast<std::size_t>(a)].emplace_back(b, l.id);
    adj_[static_cast<std::size_t>(b)].emplace_back(a, l.id);
    return l.id;
}

bool Topology::has_link(NodeId a, NodeId b) const noexcept {
    if (a < 0 || a >= node_count()) return false;
    for (const auto& [nbr, lid] : adj_[static_cast<std::size_t>(a)])
        if (nbr == b) return true;
    return false;
}

util::Histogram Topology::port_histogram() const {
    util::Histogram h;
    for (const Node& n : nodes_) h.add(static_cast<std::size_t>(ports(n.id)));
    return h;
}

util::Histogram Topology::link_span_histogram() const {
    util::Histogram h;
    for (const Link& l : links_) h.add(static_cast<std::size_t>(l.hop_span));
    return h;
}

bool Topology::connected() const {
    if (nodes_.empty()) return true;
    const auto dist = hop_distances(0);
    for (const auto d : dist)
        if (d < 0) return false;
    return true;
}

std::vector<std::int32_t> Topology::hop_distances(NodeId src) const {
    std::vector<std::int32_t> dist(nodes_.size(), -1);
    std::queue<NodeId> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
        const NodeId cur = q.front();
        q.pop();
        for (const auto& [nbr, lid] : adj_[static_cast<std::size_t>(cur)]) {
            if (dist[static_cast<std::size_t>(nbr)] < 0) {
                dist[static_cast<std::size_t>(nbr)] =
                    dist[static_cast<std::size_t>(cur)] + 1;
                q.push(nbr);
            }
        }
    }
    return dist;
}

Topology make_path_topology(const std::string& name, std::int32_t width,
                            std::int32_t height,
                            const std::vector<std::vector<NodeId>>& paths,
                            const std::vector<std::pair<NodeId, NodeId>>& express,
                            double pitch_mm) {
    Topology t(name, pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});

    for (const auto& path : paths) {
        for (std::size_t i = 1; i < path.size(); ++i) {
            if (!t.has_link(path[i - 1], path[i])) t.add_link(path[i - 1], path[i]);
        }
    }
    for (const auto& [a, b] : express) {
        if (!t.has_link(a, b)) t.add_link(a, b);
    }
    return t;
}

}  // namespace floretsim::topo
