#pragma once

#include "src/topo/topology.h"

namespace floretsim::topo {

/// Kite-family NoI (Bharadwaj et al., DAC'20): torus-class connectivity
/// built predominantly from two-hop express links, giving mostly 4-port
/// routers and "mainly two-hop links" (the paper's Fig. 2 characterization).
///
/// Construction: every row and column carries two interleaved stride-2
/// chains (even- and odd-offset), so interior routers see two row links and
/// two column links; single-hop bridge links at the grid border join the
/// two parity classes and keep the graph connected.
[[nodiscard]] Topology make_kite(std::int32_t width, std::int32_t height,
                                 double pitch_mm = 4.0);

}  // namespace floretsim::topo
