#pragma once

#include "src/topo/topology.h"

namespace floretsim::topo {

/// Butter Donut (Kannan et al., MICRO'15 interposer family): a torus-like
/// NoI whose rows carry distance-2 express links and whose columns wrap,
/// trading slightly longer wires for a smaller diameter. The paper lists
/// it (with Double Butterfly) among the symmetric topologies the Floret
/// methodology generalizes to.
[[nodiscard]] Topology make_butter_donut(std::int32_t width, std::int32_t height,
                                         double pitch_mm = 4.0);

/// Double Butterfly: each row hosts two interleaved butterfly stages —
/// every node links to the nodes 1 and width/2 columns away in its row,
/// plus single-hop column links. Low diameter, high-radix rows.
[[nodiscard]] Topology make_double_butterfly(std::int32_t width, std::int32_t height,
                                             double pitch_mm = 4.0);

}  // namespace floretsim::topo
