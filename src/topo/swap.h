#pragma once

#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace floretsim::topo {

/// Knobs for the SWAP-style small-world NoI synthesis.
struct SwapConfig {
    /// Extra shortcut links beyond the connected backbone, as a fraction of
    /// the node count (SWAP uses markedly fewer links than a mesh).
    double extra_link_frac = 0.35;
    /// Router port budget (SWAP routers are 2-3 ported).
    std::int32_t max_degree = 3;
    /// Power-law exponent for shortcut length sampling P(l) ~ l^-alpha
    /// (small-world construction a la Watts-Strogatz/Kleinberg; the paper
    /// notes SWAP carries several 4-5 hop links).
    double alpha = 1.9;
    /// Simulated-annealing refinement iterations (0 disables refinement).
    std::int32_t sa_iters = 400;
};

/// SWAP (Sharma et al., TCAD'22): an application-specific, irregular,
/// small-world NoI synthesized at design time for pipelined DNN traffic.
/// We reproduce it as: a serpentine backbone (degree <= 2) plus power-law
/// sampled shortcut links under a 3-port budget, refined with simulated
/// annealing that minimizes hop cost for consecutive-chiplet (pipeline)
/// traffic. Produces the paper's Fig. 2 profile: 2-3 port routers, fewer
/// links than mesh, a few 4-5 hop long links.
[[nodiscard]] Topology make_swap(std::int32_t width, std::int32_t height,
                                 util::Rng& rng, const SwapConfig& cfg = {},
                                 double pitch_mm = 4.0);

}  // namespace floretsim::topo
