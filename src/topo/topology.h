#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/geometry.h"
#include "src/util/stats.h"

namespace floretsim::topo {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

/// One chiplet/PE site with its router. `pos` is the grid coordinate on
/// the interposer (or within a tier for 3D; `tier` disambiguates).
struct Node {
    NodeId id = -1;
    util::Point2 pos;
    std::int32_t tier = 0;  ///< 0 for 2.5D; tier index for 3D stacks.
};

/// Bidirectional inter-router link. `length_mm` drives link delay, energy,
/// and area; `hop_span` is the Manhattan span in grid pitches (the paper's
/// "one-hop/two-hop link" classification in Fig. 2b).
struct Link {
    LinkId id = -1;
    NodeId a = -1;
    NodeId b = -1;
    double length_mm = 0.0;
    std::int32_t hop_span = 1;
};

/// An interconnect graph with physical placement. This is the common
/// substrate for every NoI/NoC in the paper (SIAM mesh, Kite, SWAP,
/// Floret, 3D mesh): generators differ only in which links they create.
class Topology {
public:
    /// `pitch_mm` is the center-to-center chiplet spacing used to convert
    /// grid spans to physical link lengths.
    Topology(std::string name, double pitch_mm = 4.0)
        : name_(std::move(name)), pitch_mm_(pitch_mm) {}

    /// Adds a node at the given grid position (and tier). Returns its id.
    NodeId add_node(util::Point2 pos, std::int32_t tier = 0);

    /// Adds an undirected link; length defaults to Manhattan span x pitch.
    /// Self-loops and duplicate links are rejected (std::invalid_argument).
    LinkId add_link(NodeId a, NodeId b);
    LinkId add_link(NodeId a, NodeId b, double length_mm);

    [[nodiscard]] bool has_link(NodeId a, NodeId b) const noexcept;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double pitch_mm() const noexcept { return pitch_mm_; }
    [[nodiscard]] std::int32_t node_count() const noexcept {
        return static_cast<std::int32_t>(nodes_.size());
    }
    [[nodiscard]] std::int32_t link_count() const noexcept {
        return static_cast<std::int32_t>(links_.size());
    }
    [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
    [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

    /// Neighbors of `n` as (node, link) pairs.
    [[nodiscard]] const std::vector<std::pair<NodeId, LinkId>>& adjacency(NodeId n) const {
        return adj_.at(static_cast<std::size_t>(n));
    }

    /// Router network-port count of `n` (degree; the local NI port is not
    /// counted, matching the paper's Fig. 2a convention).
    [[nodiscard]] std::int32_t ports(NodeId n) const {
        return static_cast<std::int32_t>(adj_.at(static_cast<std::size_t>(n)).size());
    }

    /// Histogram of router port counts across all nodes (Fig. 2a).
    [[nodiscard]] util::Histogram port_histogram() const;

    /// Histogram of link hop spans (Fig. 2b's one-hop/two-hop breakdown).
    [[nodiscard]] util::Histogram link_span_histogram() const;

    /// True when every node can reach every other node.
    [[nodiscard]] bool connected() const;

    /// BFS hop distances from `src` to all nodes (-1 if unreachable).
    [[nodiscard]] std::vector<std::int32_t> hop_distances(NodeId src) const;

    /// Generator-provided region annotation: one region id per node (ids
    /// need not be dense — make_region_map densifies). The Floret
    /// generator labels each node with its petal (SFC index), which is the
    /// natural locality unit for the regional simulator core; generators
    /// without an obvious unit leave this empty and make_region_map falls
    /// back to spatial tiling. Throws std::invalid_argument on a size
    /// mismatch or a negative id.
    void set_region_hint(std::vector<std::int32_t> hint);
    [[nodiscard]] const std::vector<std::int32_t>& region_hint() const noexcept {
        return region_hint_;
    }

private:
    std::string name_;
    double pitch_mm_;
    std::vector<Node> nodes_;
    std::vector<Link> links_;
    std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_;
    std::vector<std::int32_t> region_hint_;
};

/// A partition of the node set into spatially compact regions plus the
/// links whose endpoints fall in different regions (the cross-region
/// "pipe cut"). This is the locality unit the regional simulator core
/// (noc::SimCore::kRegional) schedules: each region advances its own
/// local clock and synchronizes with neighbors only where a cut link
/// connects them.
struct RegionMap {
    std::int32_t count = 0;               ///< Regions (>= 1 when nodes exist).
    std::vector<std::int32_t> region_of;  ///< node -> dense region id [0, count).
    std::vector<LinkId> cut_links;        ///< Links crossing a region boundary.
};

/// Derives the region partition of a topology, deterministically.
/// Preference order: with `target_regions` > 0, a spatial tiling of the
/// node positions into about that many rectangle tiles (region-shape
/// ablations and tests); else the generator's region_hint() when present
/// (Floret petals); else spatial tiling sized at roughly 8 nodes per
/// region, capped at 64 regions. Empty tiles are dropped and ids are
/// densified in first-seen node order, so ids are always [0, count).
[[nodiscard]] RegionMap make_region_map(const Topology& t,
                                        std::int32_t target_regions = 0);

/// Builds a topology from explicit node paths: nodes are laid out on a
/// `width` x `height` grid (row-major ids); each path contributes chain
/// links; `express` adds long-range links (e.g. SFC tail-to-head
/// connections). This is the generic builder the Floret generator uses.
[[nodiscard]] Topology make_path_topology(
    const std::string& name, std::int32_t width, std::int32_t height,
    const std::vector<std::vector<NodeId>>& paths,
    const std::vector<std::pair<NodeId, NodeId>>& express, double pitch_mm = 4.0);

}  // namespace floretsim::topo
