#include "src/topo/butterfly.h"

namespace floretsim::topo {

Topology make_butter_donut(std::int32_t width, std::int32_t height, double pitch_mm) {
    Topology t("ButterDonut" + std::to_string(width) + "x" + std::to_string(height),
               pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
    auto id = [width](std::int32_t x, std::int32_t y) { return y * width + x; };

    // Rows: single-hop chain plus distance-2 express links.
    for (std::int32_t y = 0; y < height; ++y) {
        for (std::int32_t x = 0; x + 1 < width; ++x) t.add_link(id(x, y), id(x + 1, y));
        for (std::int32_t x = 0; x + 2 < width; x += 2)
            t.add_link(id(x, y), id(x + 2, y));
    }
    // Columns: folded wrap (the "donut" dimension).
    for (std::int32_t x = 0; x < width; ++x) {
        for (std::int32_t y = 0; y + 1 < height; ++y) t.add_link(id(x, y), id(x, y + 1));
        if (height > 2) t.add_link(id(x, height - 1), id(x, 0), 2.0 * pitch_mm);
    }
    return t;
}

Topology make_double_butterfly(std::int32_t width, std::int32_t height, double pitch_mm) {
    Topology t("DoubleButterfly" + std::to_string(width) + "x" + std::to_string(height),
               pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
    auto id = [width](std::int32_t x, std::int32_t y) { return y * width + x; };

    const std::int32_t half = std::max<std::int32_t>(1, width / 2);
    for (std::int32_t y = 0; y < height; ++y) {
        for (std::int32_t x = 0; x + 1 < width; ++x) t.add_link(id(x, y), id(x + 1, y));
        // Butterfly stage: jump half the row (skip when it would duplicate
        // the single-hop link on narrow grids).
        for (std::int32_t x = 0; x + half < width; ++x) {
            if (half > 1 && !t.has_link(id(x, y), id(x + half, y)))
                t.add_link(id(x, y), id(x + half, y));
        }
    }
    for (std::int32_t x = 0; x < width; ++x)
        for (std::int32_t y = 0; y + 1 < height; ++y) t.add_link(id(x, y), id(x, y + 1));
    return t;
}

}  // namespace floretsim::topo
