#include "src/topo/kite.h"

namespace floretsim::topo {

Topology make_kite(std::int32_t width, std::int32_t height, double pitch_mm) {
    Topology t("Kite" + std::to_string(width) + "x" + std::to_string(height), pitch_mm);
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x < width; ++x) t.add_node(util::Point2{x, y});
    auto id = [width](std::int32_t x, std::int32_t y) { return y * width + x; };

    // Stride-2 express chains along rows and columns.
    for (std::int32_t y = 0; y < height; ++y)
        for (std::int32_t x = 0; x + 2 < width; ++x) t.add_link(id(x, y), id(x + 2, y));
    for (std::int32_t x = 0; x < width; ++x)
        for (std::int32_t y = 0; y + 2 < height; ++y) t.add_link(id(x, y), id(x, y + 2));

    // Parity bridges: single-hop links along the left column and top row
    // join the even/odd stride-2 classes.
    for (std::int32_t y = 0; y < height; ++y)
        if (width > 1 && !t.has_link(id(0, y), id(1, y))) t.add_link(id(0, y), id(1, y));
    for (std::int32_t x = 0; x < width; ++x)
        if (height > 1 && !t.has_link(id(x, 0), id(x, 1))) t.add_link(id(x, 0), id(x, 1));

    return t;
}

}  // namespace floretsim::topo
