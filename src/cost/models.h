#pragma once

#include <cstdint>
#include <span>

#include "src/noc/simulator.h"
#include "src/topo/topology.h"

namespace floretsim::cost {

/// Area, energy, and yield constants (32 nm ORION/SIAM-class; see
/// DESIGN.md §5 — these drive the *relative* comparisons of Figs. 2/5 and
/// the Eq. 2-5 cost ratios, which depend on port/link structure rather
/// than absolute calibration).
struct CostParams {
    // Router area in mm²: base + per-port + crossbar (quadratic in ports).
    double router_area_base_mm2 = 0.5;
    double router_area_per_port_mm2 = 0.2;
    double router_area_per_port2_mm2 = 0.35;
    /// NoI routing-track area per mm of link (wide parallel bus, repeaters,
    /// micro-bump fields).
    double link_area_per_mm_mm2 = 0.8;

    // Per-flit traversal energy in pJ: router (grows with radix) + wire.
    double router_energy_base_pj = 0.6;
    double router_energy_per_port_pj = 0.22;
    double link_energy_per_mm_pj = 0.45;

    // NoI static (leakage) power: buffers and crossbar grow quadratically
    // with the radix (local NI port included), link repeaters with length.
    // At inference duty cycles the NoI is idle most of the time, so
    // leakage dominates total NoI energy — the main reason small-radix
    // Floret routers win Fig. 5.
    double router_leakage_base_mw = 0.3;
    double router_leakage_per_port2_mw = 0.1;
    double link_leakage_per_mm_mw = 0.05;

    /// Wafer defect density D0 (per mm²; 0.10 /cm² default) for the
    /// Poisson yield model of Eqs. 2-5.
    double defect_density_per_mm2 = 0.0010;

    /// Reference 2.5D system (the paper's AMD 864 mm² / 64-chiplet anchor).
    double ref_noi_area_mm2 = 800.0;
    std::int32_t ref_chiplets = 64;

    /// Field-wise equality for the scenario layer's JSON round-trip contract.
    [[nodiscard]] bool operator==(const CostParams&) const = default;
};

/// Total router area of a topology (sum over nodes of the radix model).
[[nodiscard]] double router_area_mm2(const topo::Topology& t, const CostParams& p);

/// Total link area of a topology.
[[nodiscard]] double link_area_mm2(const topo::Topology& t, const CostParams& p);

/// NoI area = routers + links (the quantity entering Eqs. 3-5).
[[nodiscard]] double noi_area_mm2(const topo::Topology& t, const CostParams& p);

/// Poisson wafer yield for a NoI of the given area: Y = exp(-D0 * A).
[[nodiscard]] double yield(double area_mm2, const CostParams& p);

/// Eq. 2: normalized fabrication cost of a NoI,
///   C = (N_ref / N) * exp(D0 * (A - A_ref)),
/// i.e. inverse-yield relative to the reference system scaled by chiplet
/// count. Ratios between two NoIs reduce to exp(D0 * (A1 - A2)) — Eq. 5.
[[nodiscard]] double fabrication_cost(const topo::Topology& t, const CostParams& p);

/// Eq. 5 directly: relative cost of NoI `a` with respect to NoI `b`.
[[nodiscard]] double relative_cost(const topo::Topology& a, const topo::Topology& b,
                                   const CostParams& p);

/// NoI energy (pJ) of a finished simulation: every flit traversal charges
/// the router's radix-dependent energy, every link traversal the
/// length-dependent wire energy. Static energy is not included — combine
/// with noi_leakage_mw() over the runtime for total NoI energy.
[[nodiscard]] double noi_energy_pj(const topo::Topology& t, const noc::SimResult& sim,
                                   const CostParams& p);

/// Total NoI static power in mW (router radix-dependent leakage plus link
/// repeater leakage). Multiply by nanoseconds for picojoules.
[[nodiscard]] double noi_leakage_mw(const topo::Topology& t, const CostParams& p);

}  // namespace floretsim::cost
