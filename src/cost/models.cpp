#include "src/cost/models.h"

#include <cmath>
#include <stdexcept>

namespace floretsim::cost {

double router_area_mm2(const topo::Topology& t, const CostParams& p) {
    double area = 0.0;
    for (const auto& n : t.nodes()) {
        // +1: the crossbar also serves the local NI port (Fig. 2a counts
        // network ports only, but silicon pays for the injection port too).
        const double ports = t.ports(n.id) + 1;
        area += p.router_area_base_mm2 + p.router_area_per_port_mm2 * ports +
                p.router_area_per_port2_mm2 * ports * ports;
    }
    return area;
}

double link_area_mm2(const topo::Topology& t, const CostParams& p) {
    double area = 0.0;
    for (const auto& l : t.links()) area += p.link_area_per_mm_mm2 * l.length_mm;
    return area;
}

double noi_area_mm2(const topo::Topology& t, const CostParams& p) {
    return router_area_mm2(t, p) + link_area_mm2(t, p);
}

double yield(double area_mm2, const CostParams& p) {
    return std::exp(-p.defect_density_per_mm2 * area_mm2);
}

double fabrication_cost(const topo::Topology& t, const CostParams& p) {
    const double area = noi_area_mm2(t, p);
    const double chiplet_scale =
        static_cast<double>(p.ref_chiplets) / static_cast<double>(t.node_count());
    return chiplet_scale * std::exp(p.defect_density_per_mm2 * (area - p.ref_noi_area_mm2));
}

double relative_cost(const topo::Topology& a, const topo::Topology& b,
                     const CostParams& p) {
    return std::exp(p.defect_density_per_mm2 * (noi_area_mm2(a, p) - noi_area_mm2(b, p)));
}

double noi_energy_pj(const topo::Topology& t, const noc::SimResult& sim,
                     const CostParams& p) {
    if (sim.router_flits.size() != static_cast<std::size_t>(t.node_count()) ||
        sim.link_flits.size() != static_cast<std::size_t>(t.link_count()))
        throw std::invalid_argument("simulation result does not match topology");
    double energy = 0.0;
    for (const auto& n : t.nodes()) {
        const double per_flit = p.router_energy_base_pj +
                                p.router_energy_per_port_pj * t.ports(n.id);
        energy += per_flit *
                  static_cast<double>(sim.router_flits[static_cast<std::size_t>(n.id)]);
    }
    for (const auto& l : t.links()) {
        energy += p.link_energy_per_mm_pj * l.length_mm *
                  static_cast<double>(sim.link_flits[static_cast<std::size_t>(l.id)]);
    }
    return energy;
}

double noi_leakage_mw(const topo::Topology& t, const CostParams& p) {
    double mw = 0.0;
    for (const auto& n : t.nodes()) {
        const double ports = t.ports(n.id) + 1;  // + local NI port
        mw += p.router_leakage_base_mw + p.router_leakage_per_port2_mw * ports * ports;
    }
    for (const auto& l : t.links()) mw += p.link_leakage_per_mm_mw * l.length_mm;
    return mw;
}

}  // namespace floretsim::cost
