#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sweep.h"
#include "src/fleet/pool.h"
#include "src/util/json.h"

namespace floretsim::fleet {

/// Tuning for the fleet coordinator.
struct FleetOptions {
    /// Worker executable (normally scenario::self_exe_path(argv[0])).
    std::string worker_exe;
    /// Arguments after argv[0], e.g. {"--worker", "--serve", "--threads",
    /// "1"}. The coordinator appends per-worker --trace-out/--metrics-out
    /// when the process obs sinks are enabled.
    std::vector<std::string> worker_args;
    std::int32_t n_workers = 2;
    /// Live progress + death diagnostics stream (null = silent).
    std::ostream* progress = nullptr;
    double progress_interval_s = 0.5;
    /// A worker silent for longer than this (and longer than ~3x the
    /// sweep's estimated per-point time — slow points are not stragglers)
    /// may have its outstanding work stolen. <= 0 disables stealing.
    /// Overridden by the FLORETSIM_FLEET_STEAL_AFTER env var (seconds)
    /// when set — and the env value is used as the *exact* threshold
    /// (the mean-point heuristic is bypassed), the deterministic knob
    /// the fleet tests use.
    double steal_after_s = 0.25;
    std::int32_t max_restarts_per_worker = 3;
    /// A point evaluated this many times without an ack fails the sweep —
    /// the bounded-retry guarantee (a poison point cannot restart workers
    /// forever).
    std::int32_t max_attempts_per_point = 3;
    std::size_t max_lease_points = 32;
    /// Lease sizing aims for about this many leases per worker over the
    /// sweep, so the tail of the sweep stays steal-able.
    std::size_t leases_per_worker_hint = 4;
    std::size_t stderr_tail_lines = 20;
    double shutdown_grace_s = 2.0;
};

/// Cumulative coordinator statistics, across every sweep since startup.
struct FleetStats {
    std::int64_t sweeps = 0;
    std::int64_t points = 0;
    std::int64_t rows = 0;
    std::int64_t duplicate_rows = 0;  ///< Same index acked twice (steals).
    std::int64_t stale_rows = 0;      ///< Rows from a superseded sweep.
    std::int64_t leases_issued = 0;
    std::int64_t leases_stolen = 0;
    std::int64_t points_reassigned = 0;  ///< Requeued after a worker death.
    std::int64_t worker_deaths = 0;
    std::int64_t worker_restarts = 0;
    std::int64_t affinity_hits = 0;    ///< Lease drawn from an affine fabric.
    std::int64_t affinity_misses = 0;  ///< Worker had to adopt a new fabric.
    std::int64_t fleet_fabric_hits = 0;    ///< Sum of worker ArchCache hits.
    std::int64_t fleet_fabric_misses = 0;  ///< Sum of worker ArchCache misses.
};

/// The persistent-fleet coordinator: spawns opt.n_workers long-lived
/// `--worker --serve` processes once (lazily, on the first sweep) and
/// dispatches every subsequent sweep to them over the fleet protocol.
/// Replaces PR 5's static shard slices with small leases handed out as
/// workers drain them, steals outstanding leases from stragglers, and
/// survives worker deaths by restarting the process and reassigning its
/// un-acked points (bounded per-point retry). Workers keep their
/// ArchCache across sweeps, and the coordinator keeps per-worker fabric
/// *affinity* — a lease prefers points whose fabric its worker has
/// already built — so the second scenario over the same arch grid
/// evaluates with zero fabric-cache misses anywhere in the fleet.
///
/// Rows are re-serialized (first ack per index wins; stale and duplicate
/// rows from stolen leases are dropped and counted) into one NDJSON file
/// merged by scenario::MergedRowFileStream, so reports see exactly the
/// rows a local SweepEngine::run would have produced — bit-identical, as
/// pinned by the fleet_parity ctest.
///
/// Single-threaded and not reentrant: one run_sweep at a time, from one
/// thread. Scratch state is RAII-owned — destruction (or shutdown())
/// terminates and reaps every worker and removes the scratch directory,
/// and workers arm PDEATHSIG so even a SIGKILLed coordinator leaves no
/// orphans.
class Coordinator {
public:
    explicit Coordinator(FleetOptions opt);
    ~Coordinator();
    Coordinator(const Coordinator&) = delete;
    Coordinator& operator=(const Coordinator&) = delete;

    /// Evaluates `points` across the fleet; returns rows in point order.
    /// Throws std::runtime_error when a point fails (perr frame), a point
    /// exhausts its retry budget, or every worker has exhausted its
    /// restart budget.
    [[nodiscard]] std::unique_ptr<core::RowStream> run_sweep(
        const std::vector<core::SweepPoint>& points);

    [[nodiscard]] const FleetStats& stats() const { return stats_; }
    [[nodiscard]] util::Json stats_json() const;
    /// One-line "[fleet] ..." summary (the end-of-run stderr line).
    void print_summary(std::ostream& out) const;

    /// Orderly shutdown: quit frames, pool teardown, per-worker obs
    /// absorb, scratch removal. Idempotent; the destructor calls it.
    void shutdown();

    [[nodiscard]] std::int32_t n_workers() const { return opt_.n_workers; }
    /// Current pid of worker `w` (-1 before the fleet has started).
    [[nodiscard]] pid_t worker_pid(std::size_t w) const;
    /// Scratch directory path (empty before the fleet has started).
    [[nodiscard]] const std::string& scratch_dir() const { return scratch_; }

private:
    struct WorkerState;
    struct SweepRun;

    void ensure_started();
    void send_init(std::size_t w);
    void handle_death(std::size_t w, SweepRun* run);
    void top_up(std::size_t w, SweepRun& run);
    bool try_steal_for(std::size_t w, SweepRun& run);
    void send_lease(std::size_t w, SweepRun& run, std::vector<std::size_t> idx,
                    bool stolen);
    void handle_stdout_line(std::size_t w, std::string_view line,
                            SweepRun& run);
    void drain_stderr(std::size_t w);
    void absorb_worker_files(std::size_t w);

    FleetOptions opt_;
    double steal_after_s_ = 0.25;  ///< opt_.steal_after_s after env override.
    bool steal_after_forced_ = false;  ///< Env override: exact threshold.
    std::unique_ptr<WorkerPool> pool_;
    std::vector<WorkerState> workers_;
    std::string scratch_;
    std::int64_t sweep_counter_ = 0;
    std::int64_t next_lease_id_ = 0;
    FleetStats stats_;
    bool shut_down_ = false;
};

/// Installs the coordinator as `engine`'s stream executor (label
/// "fleet"): every SweepEngine::run / run_stream dispatches to the
/// persistent workers, and — because the engine partitions result-cache
/// hits out first — a warm cache sends nothing over the wire.
void install_fleet_executor(core::SweepEngine& engine,
                            std::shared_ptr<Coordinator> coordinator);

}  // namespace floretsim::fleet
