#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace floretsim::fleet {

/// How to launch one persistent worker process.
struct PoolOptions {
    /// Executable to spawn (normally scenario::self_exe_path(argv[0])).
    std::string exe;
    /// Arguments common to every worker (e.g. {"--worker", "--serve",
    /// "--threads", "1"}). argv[0] is always `exe`.
    std::vector<std::string> args;
    /// Extra per-worker arguments (size n_workers or empty) — the seam
    /// for per-worker --trace-out/--metrics-out paths.
    std::vector<std::vector<std::string>> per_worker_args;
    std::size_t n_workers = 2;
    /// Seconds to wait for a worker to exit on its own before escalating
    /// during reap/shutdown.
    double shutdown_grace_s = 2.0;
};

/// Owns N long-lived worker subprocesses and their pipes. Pure process
/// plumbing — fork/exec, fd bookkeeping, reaping, escalating shutdown —
/// with no knowledge of the protocol spoken over the pipes (that is the
/// Coordinator's job). RAII is the orphan-prevention contract: the
/// destructor terminates and reaps every child, and each child arms
/// PR_SET_PDEATHSIG so even a SIGKILLed coordinator leaves no orphan
/// workers behind.
class WorkerPool {
public:
    explicit WorkerPool(PoolOptions opt);
    ~WorkerPool();
    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// (Re)spawns worker `w`. Each spawn increments the worker's
    /// generation — the coordinator stamps it into the init frame so
    /// output from a dead incarnation is attributable. Throws
    /// std::runtime_error when the process cannot be created (fork or
    /// pipe failure; a failed exec surfaces as an immediate exit 127).
    void start(std::size_t w);

    /// Writes `line` plus '\n' to the worker's stdin. Returns false when
    /// the write fails (EPIPE from a dead worker, closed fd) — the
    /// caller decides whether that is a death to handle.
    [[nodiscard]] bool send(std::size_t w, std::string_view line);

    [[nodiscard]] bool alive(std::size_t w) const;
    [[nodiscard]] pid_t pid(std::size_t w) const;
    [[nodiscard]] std::int32_t gen(std::size_t w) const;
    [[nodiscard]] int stdout_fd(std::size_t w) const;
    [[nodiscard]] int stderr_fd(std::size_t w) const;

    /// Closes the worker's pipes and reaps it: waits up to
    /// shutdown_grace_s for a voluntary exit, then SIGKILLs and waits for
    /// real. Returns the wait status (0 if the worker was already
    /// reaped). Idempotent.
    int reap(std::size_t w);

    /// Orderly pool shutdown: closes every stdin (a serving worker sees
    /// EOF and exits cleanly), waits the grace period, escalates to
    /// SIGTERM then SIGKILL, and reaps everything. Idempotent; called by
    /// the destructor.
    void terminate_all();

private:
    struct Worker {
        pid_t pid = -1;
        int stdin_fd = -1;
        int stdout_fd = -1;
        int stderr_fd = -1;
        std::int32_t gen = -1;  ///< Incremented by each start().
        bool alive = false;
        int exit_status = 0;
    };

    void close_fds(Worker& w);

    PoolOptions opt_;
    std::vector<Worker> workers_;
};

}  // namespace floretsim::fleet
