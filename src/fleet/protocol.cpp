#include "src/fleet/protocol.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/obs/trace.h"
#include "src/scenario/spec_json.h"
#include "src/util/json.h"

namespace floretsim::fleet {
namespace {

[[noreturn]] void bad(const std::string& what) {
    throw std::invalid_argument("fleet frame: " + what);
}

/// Strict object access: the member must exist; unknown keys are checked
/// separately by key_count (strict parses reject frames with extras).
const util::Json& need(const util::Json& obj, const char* key,
                       const char* frame) {
    const util::Json* v = obj.find(key);
    if (!v) bad(std::string(frame) + " frame is missing \"" + key + "\"");
    return *v;
}

void expect_keys(const util::Json& obj, std::size_t n, const char* frame) {
    if (obj.as_object().size() != n)
        bad(std::string(frame) + " frame has unknown keys");
}

std::int32_t need_i32(const util::Json& obj, const char* key,
                      const char* frame) {
    const std::int64_t v = need(obj, key, frame).as_int();
    if (v < INT32_MIN || v > INT32_MAX)
        bad(std::string(frame) + "." + key + " out of range");
    return static_cast<std::int32_t>(v);
}

std::int64_t need_nonneg_i64(const util::Json& obj, const char* key,
                             const char* frame) {
    const std::int64_t v = need(obj, key, frame).as_int();
    if (v < 0) bad(std::string(frame) + "." + key + " must be >= 0");
    return v;
}

std::size_t need_size(const util::Json& obj, const char* key,
                      const char* frame) {
    return static_cast<std::size_t>(
        need(obj, key, frame).as_uint());
}

util::Json obj1(const char* key, util::Json inner) {
    util::Json j = util::Json::object();
    j.set(key, std::move(inner));
    return j;
}

}  // namespace

// ---- Coordinator -> worker --------------------------------------------------

std::string init_line(const InitFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("worker", f.worker);
    inner.set("n_workers", f.n_workers);
    inner.set("gen", f.gen);
    return util::json_serialize_compact(obj1("init", std::move(inner)));
}

std::string sweep_line(const SweepFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("id", f.id);
    inner.set("points_file", f.points_file);
    inner.set("n_points", static_cast<std::uint64_t>(f.n_points));
    return util::json_serialize_compact(obj1("sweep", std::move(inner)));
}

std::string lease_line(const LeaseFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("id", f.id);
    inner.set("sweep", f.sweep);
    util::Json idx = util::Json::array();
    for (const std::size_t i : f.indices)
        idx.push_back(static_cast<std::uint64_t>(i));
    inner.set("indices", std::move(idx));
    return util::json_serialize_compact(obj1("lease", std::move(inner)));
}

std::string quit_line() {
    return util::json_serialize_compact(obj1("quit", util::Json::object()));
}

WorkerBound worker_bound_from_line(std::string_view line) {
    util::Json j;
    try {
        j = util::json_parse(line);
    } catch (const std::exception& e) {
        bad(std::string("unparseable line: ") + e.what());
    }
    if (j.kind() != util::Json::Kind::kObject) bad("frame is not an object");
    if (j.as_object().size() != 1) bad("frame needs exactly one envelope key");
    WorkerBound out;
    if (const util::Json* v = j.find("init")) {
        expect_keys(*v, 3, "init");
        InitFrame f;
        f.worker = need_i32(*v, "worker", "init");
        f.n_workers = need_i32(*v, "n_workers", "init");
        f.gen = need_i32(*v, "gen", "init");
        if (f.n_workers < 1) bad("init.n_workers must be >= 1");
        if (f.worker < 0 || f.worker >= f.n_workers)
            bad("init.worker out of range");
        if (f.gen < 0) bad("init.gen must be >= 0");
        out.init = f;
    } else if (const util::Json* v2 = j.find("sweep")) {
        expect_keys(*v2, 3, "sweep");
        SweepFrame f;
        f.id = need_nonneg_i64(*v2, "id", "sweep");
        f.points_file = need(*v2, "points_file", "sweep").as_string();
        f.n_points = need_size(*v2, "n_points", "sweep");
        if (f.points_file.empty()) bad("sweep.points_file is empty");
        if (f.n_points == 0) bad("sweep.n_points must be >= 1");
        out.sweep = std::move(f);
    } else if (const util::Json* v3 = j.find("lease")) {
        expect_keys(*v3, 3, "lease");
        LeaseFrame f;
        f.id = need_nonneg_i64(*v3, "id", "lease");
        f.sweep = need_nonneg_i64(*v3, "sweep", "lease");
        const util::Json& idx = need(*v3, "indices", "lease");
        for (const auto& e : idx.as_array())
            f.indices.push_back(static_cast<std::size_t>(e.as_uint()));
        if (f.indices.empty()) bad("lease.indices is empty");
        out.lease = std::move(f);
    } else if (const util::Json* v4 = j.find("quit")) {
        expect_keys(*v4, 0, "quit");
        out.quit = true;
    } else {
        bad("unknown frame \"" + j.as_object().front().first + "\"");
    }
    return out;
}

// ---- Worker -> coordinator --------------------------------------------------

std::string ready_line(const ReadyFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("worker", f.worker);
    inner.set("gen", f.gen);
    inner.set("pid", f.pid);
    return util::json_serialize_compact(obj1("ready", std::move(inner)));
}

std::string loaded_line(const LoadedFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("sweep", f.sweep);
    inner.set("n_points", static_cast<std::uint64_t>(f.n_points));
    return util::json_serialize_compact(obj1("loaded", std::move(inner)));
}

std::string done_line(const DoneFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("lease", f.lease);
    inner.set("fabric_hits", f.fabric_hits);
    inner.set("fabric_misses", f.fabric_misses);
    return util::json_serialize_compact(obj1("done", std::move(inner)));
}

std::string perr_line(const PointErrorFrame& f) {
    util::Json inner = util::Json::object();
    inner.set("sweep", f.sweep);
    inner.set("index", static_cast<std::uint64_t>(f.index));
    inner.set("what", f.what);
    return util::json_serialize_compact(obj1("perr", std::move(inner)));
}

std::string fleet_row_line(const FleetRow& r) {
    util::Json j = util::Json::object();
    j.set("sweep", r.sweep);
    j.set("index", static_cast<std::uint64_t>(r.index));
    j.set("row", scenario::to_json(r.row));
    return util::json_serialize_compact(j);
}

CoordinatorBound coordinator_bound_from_line(std::string_view line) {
    util::Json j;
    try {
        j = util::json_parse(line);
    } catch (const std::exception& e) {
        bad(std::string("unparseable line: ") + e.what());
    }
    if (j.kind() != util::Json::Kind::kObject) bad("frame is not an object");
    CoordinatorBound out;
    // The row envelope is the only three-key frame; everything else is a
    // single envelope key.
    if (j.find("row")) {
        if (j.as_object().size() != 3 || !j.find("sweep") || !j.find("index"))
            bad("row frame needs exactly sweep/index/row");
        FleetRow r;
        r.sweep = j.find("sweep")->as_int();
        if (r.sweep < 0) bad("row.sweep must be >= 0");
        r.index = static_cast<std::size_t>(j.find("index")->as_uint());
        r.row = scenario::sweep_row_from_json(*j.find("row"));
        out.row = std::move(r);
        return out;
    }
    if (j.as_object().size() != 1) bad("frame needs exactly one envelope key");
    if (const util::Json* v = j.find("ready")) {
        expect_keys(*v, 3, "ready");
        ReadyFrame f;
        f.worker = need_i32(*v, "worker", "ready");
        f.gen = need_i32(*v, "gen", "ready");
        f.pid = need_nonneg_i64(*v, "pid", "ready");
        if (f.worker < 0) bad("ready.worker must be >= 0");
        if (f.gen < 0) bad("ready.gen must be >= 0");
        out.ready = f;
    } else if (const util::Json* v2 = j.find("loaded")) {
        expect_keys(*v2, 2, "loaded");
        LoadedFrame f;
        f.sweep = need_nonneg_i64(*v2, "sweep", "loaded");
        f.n_points = need_size(*v2, "n_points", "loaded");
        out.loaded = f;
    } else if (const util::Json* v3 = j.find("done")) {
        expect_keys(*v3, 3, "done");
        DoneFrame f;
        f.lease = need_nonneg_i64(*v3, "lease", "done");
        f.fabric_hits = need_nonneg_i64(*v3, "fabric_hits", "done");
        f.fabric_misses = need_nonneg_i64(*v3, "fabric_misses", "done");
        out.done = f;
    } else if (const util::Json* v4 = j.find("perr")) {
        expect_keys(*v4, 3, "perr");
        PointErrorFrame f;
        f.sweep = need_nonneg_i64(*v4, "sweep", "perr");
        f.index = need_size(*v4, "index", "perr");
        f.what = need(*v4, "what", "perr").as_string();
        out.perr = std::move(f);
    } else if (j.find("hb")) {
        // Delegate to the PR 7 heartbeat parser for its strict field
        // validation; it accepts exactly the {"hb": {...}} envelope.
        const scenario::StreamLine line_parsed = scenario::stream_line_from(
            util::json_serialize_compact(j));
        out.hb = line_parsed.hb;
    } else {
        bad("unknown frame \"" + j.as_object().front().first + "\"");
    }
    return out;
}

// ---- The worker loop --------------------------------------------------------

namespace {

/// Parsed FLORETSIM_FLEET_KILL / FLORETSIM_FLEET_STALL injection specs.
struct FaultSpec {
    bool armed = false;
    std::int32_t worker = -1;
    std::int32_t gen = -1;  ///< -1 matches any generation.
    std::uint64_t after_rows = 0;
    std::int64_t stall_ms = 0;
};

FaultSpec parse_fault(const char* env, int n_fields) {
    FaultSpec spec;
    const char* text = std::getenv(env);
    if (!text || !*text) return spec;
    std::istringstream ss{std::string(text)};
    std::string field;
    std::vector<std::int64_t> vals;
    while (std::getline(ss, field, ':')) {
        try {
            vals.push_back(std::stoll(field));
        } catch (const std::exception&) {
            return spec;  // malformed injection spec: ignore, never crash
        }
    }
    if (static_cast<int>(vals.size()) != n_fields) return spec;
    spec.armed = true;
    spec.worker = static_cast<std::int32_t>(vals[0]);
    spec.gen = static_cast<std::int32_t>(vals[1]);
    spec.after_rows = static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, vals[2]));
    if (n_fields > 3) spec.stall_ms = vals[3];
    return spec;
}

bool fault_matches(const FaultSpec& s, const InitFrame& init) {
    return s.armed && s.worker == init.worker &&
           (s.gen < 0 || s.gen == init.gen);
}

}  // namespace

int serve_worker(std::istream& in, std::ostream& out, std::ostream& err,
                 core::SweepEngine& engine) {
    std::optional<InitFrame> init;
    std::vector<core::SweepPoint> points;
    std::int64_t sweep_id = -1;
    std::uint64_t done_this_sweep = 0;
    std::uint64_t leased_this_sweep = 0;
    std::uint64_t rows_lifetime = 0;
    std::atomic<std::uint64_t> attempts_lifetime{0};
    auto sweep_t0 = std::chrono::steady_clock::now();
    FaultSpec kill_spec, stall_spec, perr_spec;
    std::mutex out_mu;  // serializes row/hb/perr lines from the pool

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        WorkerBound frame;
        try {
            frame = worker_bound_from_line(line);
        } catch (const std::exception& e) {
            err << "fleet worker: " << e.what() << "\n";
            return 3;
        }
        if (frame.quit) return 0;
        if (frame.init) {
            init = *frame.init;
            kill_spec = parse_fault("FLORETSIM_FLEET_KILL", 3);
            stall_spec = parse_fault("FLORETSIM_FLEET_STALL", 4);
            perr_spec = parse_fault("FLORETSIM_FLEET_PERR", 3);
            obs::Tracer::global().set_process_label(
                "fleet worker " + std::to_string(init->worker) + "/" +
                std::to_string(init->n_workers) + " gen " +
                std::to_string(init->gen));
            ReadyFrame ready;
            ready.worker = init->worker;
            ready.gen = init->gen;
            ready.pid = static_cast<std::int64_t>(getpid());
            out << ready_line(ready) << "\n" << std::flush;
            continue;
        }
        if (!init) {
            err << "fleet worker: frame before init\n";
            return 3;
        }
        if (frame.sweep) {
            std::ifstream f(frame.sweep->points_file);
            std::ostringstream text;
            text << f.rdbuf();
            if (!f) {
                err << "fleet worker: cannot read points file "
                    << frame.sweep->points_file << "\n";
                return 3;
            }
            try {
                points = scenario::points_from_text(text.str(),
                                                    frame.sweep->points_file);
            } catch (const std::exception& e) {
                err << "fleet worker: " << e.what() << "\n";
                return 3;
            }
            if (points.size() != frame.sweep->n_points) {
                err << "fleet worker: sweep " << frame.sweep->id << " expects "
                    << frame.sweep->n_points << " points, file has "
                    << points.size() << "\n";
                return 3;
            }
            sweep_id = frame.sweep->id;
            done_this_sweep = 0;
            leased_this_sweep = 0;
            sweep_t0 = std::chrono::steady_clock::now();
            LoadedFrame loaded;
            loaded.sweep = sweep_id;
            loaded.n_points = points.size();
            out << loaded_line(loaded) << "\n" << std::flush;
            continue;
        }
        if (frame.lease) {
            const LeaseFrame& lease = *frame.lease;
            if (lease.sweep != sweep_id) {
                err << "fleet worker: lease " << lease.id << " targets sweep "
                    << lease.sweep << " but current sweep is " << sweep_id
                    << "\n";
                return 3;
            }
            for (const std::size_t i : lease.indices) {
                if (i >= points.size()) {
                    err << "fleet worker: lease index " << i
                        << " out of range for " << points.size()
                        << " points\n";
                    return 3;
                }
            }
            leased_this_sweep += lease.indices.size();
            const obs::Span lease_span("fleet_lease", "fleet");
            const auto emit_hb = [&] {
                scenario::Heartbeat hb;
                hb.shard = init->worker;
                hb.n_shards = init->n_workers;
                hb.done = done_this_sweep;
                hb.total = leased_this_sweep;
                hb.seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - sweep_t0)
                                 .count();
                out << scenario::heartbeat_line(hb) << "\n";
            };
            (void)engine.map(lease.indices.size(), [&](std::size_t k) {
                const std::size_t index = lease.indices[k];
                try {
                    if (fault_matches(perr_spec, *init) &&
                        ++attempts_lifetime == perr_spec.after_rows)
                        throw std::runtime_error(
                            "injected fleet fault: point failure");
                    FleetRow r;
                    r.sweep = sweep_id;
                    r.index = index;
                    r.row = core::evaluate_point(engine.cache(), points[index]);
                    const std::lock_guard<std::mutex> lock(out_mu);
                    ++rows_lifetime;
                    if (fault_matches(stall_spec, *init) &&
                        rows_lifetime == stall_spec.after_rows)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(stall_spec.stall_ms));
                    out << fleet_row_line(r) << "\n";
                    ++done_this_sweep;
                    emit_hb();
                    out << std::flush;
                    if (fault_matches(kill_spec, *init) &&
                        rows_lifetime == kill_spec.after_rows) {
                        out << std::flush;
                        (void)raise(SIGKILL);
                    }
                } catch (const std::exception& e) {
                    PointErrorFrame perr;
                    perr.sweep = sweep_id;
                    perr.index = index;
                    perr.what = e.what();
                    const std::lock_guard<std::mutex> lock(out_mu);
                    ++done_this_sweep;
                    out << perr_line(perr) << "\n";
                    emit_hb();
                    out << std::flush;
                }
                return 0;
            });
            DoneFrame done;
            done.lease = lease.id;
            done.fabric_hits = engine.cache().hits();
            done.fabric_misses = engine.cache().misses();
            const std::lock_guard<std::mutex> lock(out_mu);
            out << done_line(done) << "\n" << std::flush;
            continue;
        }
    }
    // EOF without a quit frame: the coordinator closed our stdin (its
    // orderly shutdown path) or died — either way, stop serving cleanly.
    return 0;
}

}  // namespace floretsim::fleet
