#include "src/fleet/coordinator.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <system_error>
#include <tuple>

#include "src/fleet/protocol.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/shard.h"
#include "src/scenario/spec_json.h"
#include "src/util/json.h"

namespace floretsim::fleet {
namespace {

using Clock = std::chrono::steady_clock;

/// The fabric identity of a point — exactly experiment::ArchCache's key.
/// Points sharing a FabricKey share one expensive topology build, so
/// leases are drawn fabric-group-at-a-time and each worker remembers
/// which fabrics it has built (its affinity): the second scenario over
/// the same arch grid re-lands every group on the worker that already
/// holds it warm.
using FabricKey = std::tuple<std::int32_t, std::int32_t, std::int32_t,
                             std::uint64_t>;

FabricKey key_of(const core::SweepPoint& p) {
    return {static_cast<std::int32_t>(p.arch), p.width, p.height, p.swap_seed};
}

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

struct Coordinator::WorkerState {
    bool ready = false;
    bool retired = false;
    bool sweep_sent = false;
    bool loaded = false;
    std::int32_t restarts = 0;
    std::int32_t leases_in_flight = 0;
    std::set<std::size_t> outstanding;  ///< Leased, not yet acked.
    std::set<FabricKey> affinity;       ///< Fabrics this worker has built.
    std::string out_buf, err_buf;
    std::deque<std::string> stderr_tail;
    Clock::time_point last_activity = Clock::now();
    /// ArchCache counters: cumulative within the current process
    /// generation (from done frames), plus the folded totals of dead
    /// generations.
    std::int64_t gen_fabric_hits = 0, gen_fabric_misses = 0;
    std::int64_t prev_fabric_hits = 0, prev_fabric_misses = 0;
    scenario::Heartbeat last_hb;
    bool saw_hb = false, printed = false;
    Clock::time_point last_print = Clock::now();
    std::string trace_path, metrics_path;
};

struct Coordinator::SweepRun {
    std::int64_t id = 0;
    const std::vector<core::SweepPoint>* points = nullptr;
    std::string points_path, rows_path;
    std::ofstream rows_out;
    std::vector<bool> acked;
    std::vector<std::int32_t> attempts;
    std::size_t n_acked = 0;
    std::map<FabricKey, std::deque<std::size_t>> groups;
    std::size_t lease_size = 1;
    Clock::time_point t0 = Clock::now();
};

Coordinator::Coordinator(FleetOptions opt) : opt_(std::move(opt)) {
    if (opt_.n_workers < 1)
        throw std::invalid_argument("fleet: n_workers must be >= 1");
    if (opt_.worker_exe.empty())
        throw std::invalid_argument("fleet: worker_exe is empty");
    steal_after_s_ = opt_.steal_after_s;
    if (const char* env = std::getenv("FLORETSIM_FLEET_STEAL_AFTER")) {
        if (*env) {
            steal_after_s_ = std::atof(env);
            steal_after_forced_ = true;
        }
    }
}

Coordinator::~Coordinator() {
    try {
        shutdown();
    } catch (...) {
        // Destructor: teardown best-effort; the pool's own destructor
        // still reaps the children.
    }
}

pid_t Coordinator::worker_pid(std::size_t w) const {
    return pool_ ? pool_->pid(w) : -1;
}

void Coordinator::ensure_started() {
    if (pool_) return;
    if (shut_down_)
        throw std::logic_error("fleet: coordinator already shut down");
    scenario::ensure_sigpipe_ignored();
    std::string templ =
        (std::filesystem::temp_directory_path() / "floretsim-fleet-XXXXXX")
            .string();
    if (!mkdtemp(templ.data()))
        throw std::runtime_error("fleet: mkdtemp failed for " + templ);
    scratch_ = templ;

    workers_.assign(static_cast<std::size_t>(opt_.n_workers), WorkerState{});
    PoolOptions popt;
    popt.exe = opt_.worker_exe;
    popt.args = opt_.worker_args;
    popt.n_workers = static_cast<std::size_t>(opt_.n_workers);
    popt.shutdown_grace_s = opt_.shutdown_grace_s;
    const bool trace_on = obs::Tracer::global().enabled();
    const bool metrics_on = obs::MetricsRegistry::global().enabled();
    if (trace_on || metrics_on) {
        popt.per_worker_args.resize(popt.n_workers);
        for (std::size_t w = 0; w < popt.n_workers; ++w) {
            if (trace_on) {
                workers_[w].trace_path =
                    scratch_ + "/trace." + std::to_string(w) + ".json";
                popt.per_worker_args[w].push_back("--trace-out");
                popt.per_worker_args[w].push_back(workers_[w].trace_path);
            }
            if (metrics_on) {
                workers_[w].metrics_path =
                    scratch_ + "/metrics." + std::to_string(w) + ".json";
                popt.per_worker_args[w].push_back("--metrics-out");
                popt.per_worker_args[w].push_back(workers_[w].metrics_path);
            }
        }
    }
    pool_ = std::make_unique<WorkerPool>(std::move(popt));
    for (std::size_t w = 0; w < pool_->size(); ++w) {
        pool_->start(w);
        send_init(w);
    }
    obs::MetricsRegistry::global().add(
        "fleet.workers_spawned", static_cast<std::int64_t>(pool_->size()));
}

void Coordinator::send_init(std::size_t w) {
    InitFrame init;
    init.worker = static_cast<std::int32_t>(w);
    init.n_workers = opt_.n_workers;
    init.gen = pool_->gen(w);
    // A failed send means the worker is already dead; the poll loop sees
    // the EOF and handles it through the normal death path.
    (void)pool_->send(w, init_line(init));
}

void Coordinator::drain_stderr(std::size_t w) {
    WorkerState& ws = workers_[w];
    const int fd = pool_->stderr_fd(w);
    if (fd < 0) return;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            ws.err_buf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF or EAGAIN: everything currently available is read
    }
    std::size_t nl;
    while ((nl = ws.err_buf.find('\n')) != std::string::npos) {
        std::string line = ws.err_buf.substr(0, nl);
        ws.err_buf.erase(0, nl + 1);
        if (line.empty()) continue;
        ws.stderr_tail.push_back(std::move(line));
        while (ws.stderr_tail.size() > opt_.stderr_tail_lines)
            ws.stderr_tail.pop_front();
    }
}

void Coordinator::absorb_worker_files(std::size_t w) {
    WorkerState& ws = workers_[w];
    scenario::absorb_worker_obs(
        std::filesystem::exists(ws.trace_path) ? ws.trace_path : "",
        std::filesystem::exists(ws.metrics_path) ? ws.metrics_path : "",
        static_cast<std::int32_t>(w), opt_.progress);
    std::error_code ec;
    if (!ws.trace_path.empty()) std::filesystem::remove(ws.trace_path, ec);
    if (!ws.metrics_path.empty()) std::filesystem::remove(ws.metrics_path, ec);
}

void Coordinator::handle_death(std::size_t w, SweepRun* run) {
    WorkerState& ws = workers_[w];
    drain_stderr(w);
    const int status = pool_->reap(w);
    ++stats_.worker_deaths;
    obs::MetricsRegistry::global().add("fleet.worker_deaths");
    obs::Tracer::global().record_instant("fleet_worker_death", "fleet",
                                         obs::Tracer::now_us());
    if (opt_.progress) {
        *opt_.progress << "[fleet] worker " << w << " "
                       << scenario::describe_wait_status(status);
        if (ws.stderr_tail.empty()) {
            *opt_.progress << "; its stderr was empty\n";
        } else {
            *opt_.progress << "; last stderr lines:\n";
            for (const auto& line : ws.stderr_tail)
                *opt_.progress << "    " << line << "\n";
        }
        *opt_.progress << std::flush;
    }
    absorb_worker_files(w);
    // The dead generation's ArchCache is gone; fold its counters so the
    // fleet totals survive the restart (the fresh process restarts at 0).
    ws.prev_fabric_hits += ws.gen_fabric_hits;
    ws.prev_fabric_misses += ws.gen_fabric_misses;
    ws.gen_fabric_hits = ws.gen_fabric_misses = 0;

    if (run) {
        // Requeue every un-acked point this worker held, unless a steal
        // already placed it with another live worker. Bounded retry: a
        // point that has been leased max_attempts times and still has no
        // row fails the sweep — a poison point must not restart workers
        // forever.
        for (const std::size_t i : ws.outstanding) {
            if (run->acked[i]) continue;
            bool held_elsewhere = false;
            for (std::size_t v = 0; v < workers_.size(); ++v) {
                if (v == w || workers_[v].retired || !pool_->alive(v)) continue;
                if (workers_[v].outstanding.count(i)) {
                    held_elsewhere = true;
                    break;
                }
            }
            if (held_elsewhere) continue;
            if (run->attempts[i] >= opt_.max_attempts_per_point)
                throw std::runtime_error(
                    "fleet: point " + std::to_string(i) + " lost " +
                    std::to_string(run->attempts[i]) +
                    " times to worker deaths; giving up");
            run->groups[key_of((*run->points)[i])].push_front(i);
            ++stats_.points_reassigned;
            obs::MetricsRegistry::global().add("fleet.points_reassigned");
        }
    }
    ws.outstanding.clear();
    ws.leases_in_flight = 0;
    ws.ready = ws.loaded = ws.sweep_sent = false;
    ws.out_buf.clear();

    if (ws.restarts < opt_.max_restarts_per_worker) {
        pool_->start(w);
        send_init(w);
        ++ws.restarts;
        ++stats_.worker_restarts;
        ws.last_activity = Clock::now();
        obs::MetricsRegistry::global().add("fleet.worker_restarts");
        obs::Tracer::global().record_instant("fleet_worker_restart", "fleet",
                                             obs::Tracer::now_us());
        if (opt_.progress)
            *opt_.progress << "[fleet] worker " << w << " restarted (gen "
                           << pool_->gen(w) << ")\n"
                           << std::flush;
    } else {
        ws.retired = true;
        bool any_live = false;
        for (std::size_t v = 0; v < workers_.size(); ++v)
            if (!workers_[v].retired && pool_->alive(v)) any_live = true;
        if (!any_live)
            throw std::runtime_error(
                "fleet: every worker exhausted its restart budget (" +
                std::to_string(opt_.max_restarts_per_worker) +
                " restarts each)");
    }
}

void Coordinator::send_lease(std::size_t w, SweepRun& run,
                             std::vector<std::size_t> idx, bool stolen) {
    WorkerState& ws = workers_[w];
    LeaseFrame lease;
    lease.id = next_lease_id_++;
    lease.sweep = run.id;
    lease.indices = std::move(idx);
    for (const std::size_t i : lease.indices) {
        ++run.attempts[i];
        ws.outstanding.insert(i);
        if (stolen) ws.affinity.insert(key_of((*run.points)[i]));
    }
    ++ws.leases_in_flight;
    ++stats_.leases_issued;
    obs::MetricsRegistry::global().add("fleet.leases_issued");
    if (stolen) {
        ++stats_.leases_stolen;
        obs::MetricsRegistry::global().add("fleet.leases_stolen");
        obs::Tracer::global().record_instant("fleet_steal", "fleet",
                                             obs::Tracer::now_us());
    }
    if (!pool_->send(w, lease_line(lease))) handle_death(w, &run);
}

bool Coordinator::try_steal_for(std::size_t w, SweepRun& run) {
    if (steal_after_s_ <= 0.0) return false;
    // Straggler threshold: silence longer than steal_after_s AND longer
    // than ~3x the sweep's observed mean point time — a uniformly slow
    // sweep has slow points everywhere, not stragglers.
    std::size_t n_live = 0;
    for (std::size_t v = 0; v < workers_.size(); ++v)
        if (!workers_[v].retired && pool_->alive(v)) ++n_live;
    double threshold = steal_after_s_;
    if (!steal_after_forced_ && run.n_acked > 0) {
        const double mean_point_s = seconds_since(run.t0) *
                                    static_cast<double>(n_live) /
                                    static_cast<double>(run.n_acked);
        threshold = std::max(threshold, 3.0 * mean_point_s);
    }
    std::size_t victim = workers_.size();
    std::size_t victim_outstanding = 0;
    for (std::size_t v = 0; v < workers_.size(); ++v) {
        if (v == w || workers_[v].retired || !pool_->alive(v)) continue;
        if (workers_[v].outstanding.empty()) continue;
        if (seconds_since(workers_[v].last_activity) <= threshold) continue;
        if (workers_[v].outstanding.size() > victim_outstanding) {
            victim = v;
            victim_outstanding = workers_[v].outstanding.size();
        }
    }
    if (victim == workers_.size()) return false;
    // Take from the back of the victim's outstanding set: the victim
    // works its lease front to back, so the highest indices are the ones
    // it is least likely to be about to finish. The victim keeps its
    // claim — whichever copy finishes first wins the ack, the other is
    // counted a duplicate.
    std::vector<std::size_t> idx;
    const auto& out = workers_[victim].outstanding;
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
        if (idx.size() >= run.lease_size) break;
        if (run.acked[*it]) continue;
        if (run.attempts[*it] >= opt_.max_attempts_per_point) continue;
        if (workers_[w].outstanding.count(*it)) continue;
        idx.push_back(*it);
    }
    if (idx.empty()) return false;
    if (opt_.progress)
        *opt_.progress << "[fleet] worker " << w << " stealing " << idx.size()
                       << " points from straggler " << victim << "\n"
                       << std::flush;
    send_lease(w, run, std::move(idx), /*stolen=*/true);
    return true;
}

void Coordinator::top_up(std::size_t w, SweepRun& run) {
    WorkerState& ws = workers_[w];
    while (!ws.retired && pool_->alive(w) && ws.loaded &&
           ws.leases_in_flight < 2) {
        // Pick a fabric group for this worker: affine first (the fabric
        // is warm in its ArchCache), then an unclaimed group (adopt it),
        // then any remaining work (shared fabric; someone must do it).
        std::vector<std::size_t> idx;
        const auto take = [&](std::deque<std::size_t>& dq) {
            while (!dq.empty() && idx.size() < run.lease_size) {
                idx.push_back(dq.front());
                dq.pop_front();
            }
        };
        bool hit = false, found = false;
        for (auto& [key, dq] : run.groups) {
            if (dq.empty() || !ws.affinity.count(key)) continue;
            hit = found = true;
            take(dq);
            break;
        }
        if (!found) {
            for (auto& [key, dq] : run.groups) {
                if (dq.empty()) continue;
                bool claimed = false;
                for (std::size_t v = 0; v < workers_.size() && !claimed; ++v)
                    if (v != w && !workers_[v].retired && pool_->alive(v) &&
                        workers_[v].affinity.count(key))
                        claimed = true;
                if (claimed) continue;
                ws.affinity.insert(key);
                found = true;
                take(dq);
                break;
            }
        }
        if (!found) {
            for (auto& [key, dq] : run.groups) {
                if (dq.empty()) continue;
                ws.affinity.insert(key);
                found = true;
                take(dq);
                break;
            }
        }
        if (!found) {
            // No unassigned work left. An idle worker may still help by
            // stealing a straggler's outstanding lease.
            if (ws.outstanding.empty() && ws.leases_in_flight == 0)
                (void)try_steal_for(w, run);
            return;
        }
        if (hit) {
            ++stats_.affinity_hits;
            obs::MetricsRegistry::global().add("fleet.affinity_hits");
        } else {
            ++stats_.affinity_misses;
            obs::MetricsRegistry::global().add("fleet.affinity_misses");
        }
        send_lease(w, run, std::move(idx), /*stolen=*/false);
    }
}

void Coordinator::handle_stdout_line(std::size_t w, std::string_view line,
                                     SweepRun& run) {
    while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) return;
    WorkerState& ws = workers_[w];
    ws.last_activity = Clock::now();
    CoordinatorBound frame;
    try {
        frame = coordinator_bound_from_line(line);
    } catch (const std::exception& e) {
        // A persistent worker emitting garbage on the row channel is a
        // protocol violation — unlike the one-shot shard path, tolerating
        // it would desynchronize every later sweep. Kill and restart.
        if (opt_.progress)
            *opt_.progress << "[fleet] worker " << w
                           << " protocol violation: " << e.what() << "\n"
                           << std::flush;
        handle_death(w, &run);
        return;
    }
    if (frame.ready) {
        if (frame.ready->worker != static_cast<std::int32_t>(w)) {
            handle_death(w, &run);
            return;
        }
        ws.ready = true;
        if (!ws.sweep_sent && run.points) {
            SweepFrame sf;
            sf.id = run.id;
            sf.points_file = run.points_path;
            sf.n_points = run.points->size();
            ws.sweep_sent = pool_->send(w, sweep_line(sf));
        }
        return;
    }
    if (frame.loaded) {
        if (frame.loaded->sweep != run.id ||
            frame.loaded->n_points != run.points->size())
            return;  // ack for a superseded sweep; the current one follows
        ws.loaded = true;
        top_up(w, run);
        return;
    }
    if (frame.row) {
        if (frame.row->sweep != run.id) {
            ++stats_.stale_rows;
            obs::MetricsRegistry::global().add("fleet.stale_rows");
            return;
        }
        const std::size_t i = frame.row->index;
        if (i >= run.acked.size()) {
            handle_death(w, &run);
            return;
        }
        if (run.acked[i]) {
            ++stats_.duplicate_rows;
            obs::MetricsRegistry::global().add("fleet.duplicate_rows");
            ws.outstanding.erase(i);
            return;
        }
        run.acked[i] = true;
        ++run.n_acked;
        ++stats_.rows;
        obs::MetricsRegistry::global().add("fleet.rows");
        // Re-serialize as the canonical shard row line: the merge layer
        // (MergedRowFileStream) then treats fleet output exactly like a
        // shard worker file — one row per point, any order.
        run.rows_out << scenario::worker_row_line(i, frame.row->row) << "\n";
        for (auto& other : workers_) other.outstanding.erase(i);
        return;
    }
    if (frame.hb) {
        ws.last_hb = *frame.hb;
        const bool first = !ws.saw_hb;
        ws.saw_hb = true;
        if (opt_.progress) {
            const bool final_hb = run.n_acked + 1 >= run.acked.size();
            const double since =
                std::chrono::duration<double>(Clock::now() - ws.last_print)
                    .count();
            if (!ws.printed || first || final_hb ||
                since >= opt_.progress_interval_s) {
                char sec_buf[32];
                std::snprintf(sec_buf, sizeof sec_buf, "%.1f",
                              ws.last_hb.seconds);
                *opt_.progress << "[fleet " << w << "/" << opt_.n_workers
                               << "] " << ws.last_hb.done << "/"
                               << ws.last_hb.total << " leased points "
                               << sec_buf << "s\n"
                               << std::flush;
                ws.printed = true;
                ws.last_print = Clock::now();
            }
        }
        return;
    }
    if (frame.done) {
        if (ws.leases_in_flight > 0) --ws.leases_in_flight;
        ws.gen_fabric_hits = frame.done->fabric_hits;
        ws.gen_fabric_misses = frame.done->fabric_misses;
        std::int64_t hits = 0, misses = 0;
        for (const auto& v : workers_) {
            hits += v.prev_fabric_hits + v.gen_fabric_hits;
            misses += v.prev_fabric_misses + v.gen_fabric_misses;
        }
        stats_.fleet_fabric_hits = hits;
        stats_.fleet_fabric_misses = misses;
        top_up(w, run);
        return;
    }
    if (frame.perr)
        throw std::runtime_error("fleet: point " +
                                 std::to_string(frame.perr->index) +
                                 " failed: " + frame.perr->what);
}

std::unique_ptr<core::RowStream> Coordinator::run_sweep(
    const std::vector<core::SweepPoint>& points) {
    if (points.empty())
        return std::make_unique<core::VectorRowStream>(
            std::vector<core::SweepRow>{});
    ensure_started();
    const obs::Span sweep_span("fleet_sweep", "fleet");
    obs::MetricsRegistry::global().add("fleet.sweeps");

    SweepRun run;
    run.id = ++sweep_counter_;
    run.points = &points;
    run.points_path =
        scratch_ + "/points." + std::to_string(run.id) + ".json";
    run.rows_path = scratch_ + "/rows." + std::to_string(run.id) + ".ndjson";
    {
        std::ofstream f(run.points_path);
        f << util::json_serialize(scenario::to_json(points));
        if (!f)
            throw std::runtime_error("fleet: cannot write points file " +
                                     run.points_path);
    }
    run.rows_out.open(run.rows_path);
    if (!run.rows_out)
        throw std::runtime_error("fleet: cannot open rows file " +
                                 run.rows_path);
    run.acked.assign(points.size(), false);
    run.attempts.assign(points.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i)
        run.groups[key_of(points[i])].push_back(i);

    std::size_t n_live = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        WorkerState& ws = workers_[w];
        ws.outstanding.clear();
        ws.leases_in_flight = 0;
        ws.loaded = ws.sweep_sent = false;
        ws.saw_hb = ws.printed = false;
        if (!ws.retired && pool_->alive(w)) ++n_live;
    }
    if (n_live == 0)
        throw std::runtime_error("fleet: no live workers left");
    const std::size_t denom = std::max<std::size_t>(
        1, n_live * std::max<std::size_t>(1, opt_.leases_per_worker_hint));
    run.lease_size =
        std::clamp<std::size_t>((points.size() + denom - 1) / denom, 1,
                                std::max<std::size_t>(1, opt_.max_lease_points));

    // Announce the sweep to every worker that is already ready; workers
    // mid-(re)spawn get it when their ready frame arrives.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        WorkerState& ws = workers_[w];
        if (ws.retired || !pool_->alive(w) || !ws.ready) continue;
        SweepFrame sf;
        sf.id = run.id;
        sf.points_file = run.points_path;
        sf.n_points = points.size();
        ws.sweep_sent = pool_->send(w, sweep_line(sf));
    }

    // The coordinator's whole job from here is this drain loop: keep
    // every worker topped up with leases, fold rows into the rows file,
    // and react to heartbeat lag (steal) and EOF (restart + reassign).
    while (run.n_acked < points.size()) {
        bool any_live = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (workers_[w].retired || !pool_->alive(w)) continue;
            any_live = true;
            if (workers_[w].loaded) top_up(w, run);
        }
        if (run.n_acked >= points.size()) break;  // top_up drained via steals
        if (!any_live) throw std::runtime_error("fleet: no live workers left");

        std::vector<pollfd> fds;
        std::vector<std::pair<std::size_t, bool>> owner;  // (worker, stderr?)
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (workers_[w].retired || !pool_->alive(w)) continue;
            fds.push_back(pollfd{pool_->stdout_fd(w), POLLIN, 0});
            owner.emplace_back(w, false);
            fds.push_back(pollfd{pool_->stderr_fd(w), POLLIN, 0});
            owner.emplace_back(w, true);
        }
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
        if (rc < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("fleet: poll failed");
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
            const std::size_t w = owner[k].first;
            if (workers_[w].retired || !pool_->alive(w)) continue;
            if (owner[k].second) {
                drain_stderr(w);
                continue;
            }
            char chunk[4096];
            const ssize_t n = ::read(pool_->stdout_fd(w), chunk, sizeof chunk);
            if (n > 0) {
                WorkerState& ws = workers_[w];
                ws.out_buf.append(chunk, static_cast<std::size_t>(n));
                std::size_t nl;
                while (pool_->alive(w) && !workers_[w].retired &&
                       (nl = workers_[w].out_buf.find('\n')) !=
                           std::string::npos) {
                    std::string line = workers_[w].out_buf.substr(0, nl);
                    workers_[w].out_buf.erase(0, nl + 1);
                    handle_stdout_line(w, line, run);
                }
            } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
                handle_death(w, &run);
            }
        }
    }

    run.rows_out.flush();
    if (!run.rows_out)
        throw std::runtime_error("fleet: cannot write rows file " +
                                 run.rows_path);
    run.rows_out.close();

    ++stats_.sweeps;
    stats_.points += static_cast<std::int64_t>(points.size());
    if (obs::MetricsRegistry::global().enabled())
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            const WorkerState& ws = workers_[w];
            obs::MetricsRegistry::global().set_gauge(
                "fleet.worker" + std::to_string(w) + ".fabric_hits",
                static_cast<double>(ws.prev_fabric_hits + ws.gen_fabric_hits));
            obs::MetricsRegistry::global().set_gauge(
                "fleet.worker" + std::to_string(w) + ".fabric_misses",
                static_cast<double>(ws.prev_fabric_misses +
                                    ws.gen_fabric_misses));
        }

    const std::string rows_path = run.rows_path;
    const std::string points_path = run.points_path;
    return std::make_unique<scenario::MergedRowFileStream>(
        std::vector<std::string>{rows_path}, points.size(),
        [rows_path, points_path] {
            (void)std::remove(rows_path.c_str());
            (void)std::remove(points_path.c_str());
        });
}

util::Json Coordinator::stats_json() const {
    util::Json j = util::Json::object();
    j.set("workers", static_cast<std::int64_t>(opt_.n_workers));
    j.set("sweeps", stats_.sweeps);
    j.set("points", stats_.points);
    j.set("rows", stats_.rows);
    j.set("duplicate_rows", stats_.duplicate_rows);
    j.set("stale_rows", stats_.stale_rows);
    j.set("leases_issued", stats_.leases_issued);
    j.set("leases_stolen", stats_.leases_stolen);
    j.set("points_reassigned", stats_.points_reassigned);
    j.set("worker_deaths", stats_.worker_deaths);
    j.set("worker_restarts", stats_.worker_restarts);
    j.set("affinity_hits", stats_.affinity_hits);
    j.set("affinity_misses", stats_.affinity_misses);
    j.set("fabric_hits", stats_.fleet_fabric_hits);
    j.set("fabric_misses", stats_.fleet_fabric_misses);
    return j;
}

void Coordinator::print_summary(std::ostream& out) const {
    out << "[fleet] " << opt_.n_workers << " workers, " << stats_.sweeps
        << " sweeps, " << stats_.rows << " rows; leases " << stats_.leases_issued
        << " issued / " << stats_.leases_stolen << " stolen, "
        << stats_.points_reassigned << " points reassigned; deaths "
        << stats_.worker_deaths << ", restarts " << stats_.worker_restarts
        << "; fabric hits/misses " << stats_.fleet_fabric_hits << "/"
        << stats_.fleet_fabric_misses << "; affinity hits/misses "
        << stats_.affinity_hits << "/" << stats_.affinity_misses << "\n"
        << std::flush;
}

void Coordinator::shutdown() {
    if (shut_down_) return;
    shut_down_ = true;
    if (pool_) {
        for (std::size_t w = 0; w < pool_->size(); ++w)
            if (pool_->alive(w)) (void)pool_->send(w, quit_line());
        // terminate_all closes stdins and waits: a serving worker exits
        // on quit/EOF, writing its --trace-out/--metrics-out files on the
        // way out — absorb them into the process-global sinks after.
        pool_->terminate_all();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            drain_stderr(w);
            absorb_worker_files(w);
        }
        pool_.reset();
    }
    if (!scratch_.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(scratch_, ec);
        scratch_.clear();
    }
}

void install_fleet_executor(core::SweepEngine& engine,
                            std::shared_ptr<Coordinator> coordinator) {
    engine.set_executor_label("fleet");
    engine.set_stream_executor(
        [coordinator](const std::vector<core::SweepPoint>& points) {
            return coordinator->run_sweep(points);
        });
}

}  // namespace floretsim::fleet
