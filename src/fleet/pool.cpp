#include "src/fleet/pool.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace floretsim::fleet {
namespace {

void close_if_open(int& fd) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/// waitpid with a deadline: polls WNOHANG until the child exits or
/// `grace_s` elapses. Returns true (and the status) on exit.
bool wait_with_grace(pid_t pid, double grace_s, int& status) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(grace_s);
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) return true;
        if (r < 0 && errno != EINTR) return false;  // already reaped / gone
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

}  // namespace

WorkerPool::WorkerPool(PoolOptions opt) : opt_(std::move(opt)) {
    if (opt_.n_workers < 1)
        throw std::invalid_argument("fleet pool: n_workers must be >= 1");
    if (opt_.exe.empty())
        throw std::invalid_argument("fleet pool: exe is empty");
    if (!opt_.per_worker_args.empty() &&
        opt_.per_worker_args.size() != opt_.n_workers)
        throw std::invalid_argument(
            "fleet pool: per_worker_args must be empty or one per worker");
    workers_.resize(opt_.n_workers);
}

WorkerPool::~WorkerPool() { terminate_all(); }

void WorkerPool::start(std::size_t w) {
    Worker& worker = workers_.at(w);
    if (worker.alive)
        throw std::logic_error("fleet pool: worker " + std::to_string(w) +
                               " is already running");
    // O_CLOEXEC on every parent-side end: a sibling worker forked later
    // must not inherit (and hold open) this worker's pipes, or EOF
    // detection on a dead worker would hang until every sibling exits.
    int in_pipe[2], out_pipe[2], err_pipe[2];
    if (::pipe2(in_pipe, O_CLOEXEC) != 0)
        throw std::runtime_error("fleet pool: pipe2 failed: " +
                                 std::string(strerror(errno)));
    if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        throw std::runtime_error("fleet pool: pipe2 failed: " +
                                 std::string(strerror(errno)));
    }
    if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        throw std::runtime_error("fleet pool: pipe2 failed: " +
                                 std::string(strerror(errno)));
    }

    std::vector<std::string> argv_store;
    argv_store.push_back(opt_.exe);
    for (const auto& a : opt_.args) argv_store.push_back(a);
    if (!opt_.per_worker_args.empty())
        for (const auto& a : opt_.per_worker_args[w]) argv_store.push_back(a);
    std::vector<char*> argv;
    argv.reserve(argv_store.size() + 1);
    for (auto& a : argv_store) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t parent = ::getpid();
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        throw std::runtime_error("fleet pool: fork failed: " +
                                 std::string(strerror(errno)));
    }
    if (pid == 0) {
        // Child. Async-signal-safe calls only between fork and exec.
        // PDEATHSIG: if the coordinator is SIGKILLed (no destructor runs),
        // the kernel kills this worker too — the no-orphans guarantee the
        // RAII shutdown path cannot provide on its own.
        (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() != parent) _exit(127);  // parent died before prctl
        if (::dup2(in_pipe[0], STDIN_FILENO) < 0 ||
            ::dup2(out_pipe[1], STDOUT_FILENO) < 0 ||
            ::dup2(err_pipe[1], STDERR_FILENO) < 0)
            _exit(127);
        ::execv(opt_.exe.c_str(), argv.data());
        ::dprintf(STDERR_FILENO, "fleet worker: cannot exec %s: %s\n",
                  opt_.exe.c_str(), strerror(errno));
        _exit(127);
    }
    // Parent. Read ends are nonblocking: the coordinator's poll loop
    // reads exactly what is available, and draining a dying worker's
    // stderr must never block on a still-open pipe.
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[1]);
    (void)::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
    (void)::fcntl(err_pipe[0], F_SETFL, O_NONBLOCK);
    worker.pid = pid;
    worker.stdin_fd = in_pipe[1];
    worker.stdout_fd = out_pipe[0];
    worker.stderr_fd = err_pipe[0];
    worker.gen += 1;
    worker.alive = true;
    worker.exit_status = 0;
}

bool WorkerPool::send(std::size_t w, std::string_view line) {
    Worker& worker = workers_.at(w);
    if (!worker.alive || worker.stdin_fd < 0) return false;
    std::string buf(line);
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(worker.stdin_fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;  // EPIPE et al: the caller handles the death
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool WorkerPool::alive(std::size_t w) const { return workers_.at(w).alive; }
pid_t WorkerPool::pid(std::size_t w) const { return workers_.at(w).pid; }
std::int32_t WorkerPool::gen(std::size_t w) const { return workers_.at(w).gen; }
int WorkerPool::stdout_fd(std::size_t w) const {
    return workers_.at(w).stdout_fd;
}
int WorkerPool::stderr_fd(std::size_t w) const {
    return workers_.at(w).stderr_fd;
}

void WorkerPool::close_fds(Worker& w) {
    close_if_open(w.stdin_fd);
    close_if_open(w.stdout_fd);
    close_if_open(w.stderr_fd);
}

int WorkerPool::reap(std::size_t w) {
    Worker& worker = workers_.at(w);
    if (!worker.alive) return worker.exit_status;
    close_fds(worker);
    int status = 0;
    if (!wait_with_grace(worker.pid, opt_.shutdown_grace_s, status)) {
        (void)::kill(worker.pid, SIGKILL);
        while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
        }
    }
    worker.exit_status = status;
    worker.alive = false;
    return status;
}

void WorkerPool::terminate_all() {
    // Phase 1: close every stdin at once — serving workers see EOF and
    // exit on their own, concurrently.
    for (auto& w : workers_)
        if (w.alive) close_if_open(w.stdin_fd);
    // Phase 2: grace, then escalate per straggler.
    bool all_done = true;
    for (auto& w : workers_) {
        if (!w.alive) continue;
        int status = 0;
        if (wait_with_grace(w.pid, opt_.shutdown_grace_s, status)) {
            close_fds(w);
            w.exit_status = status;
            w.alive = false;
        } else {
            all_done = false;
        }
    }
    if (all_done) return;
    for (auto& w : workers_)
        if (w.alive) (void)::kill(w.pid, SIGTERM);
    for (auto& w : workers_) {
        if (!w.alive) continue;
        int status = 0;
        if (!wait_with_grace(w.pid, opt_.shutdown_grace_s, status)) {
            (void)::kill(w.pid, SIGKILL);
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        close_fds(w);
        w.exit_status = status;
        w.alive = false;
    }
}

}  // namespace floretsim::fleet
