#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/sweep.h"
#include "src/scenario/shard.h"

namespace floretsim::fleet {

/// The fleet wire protocol: the PR 5 points-file/NDJSON worker contract
/// extended with a small framed request/response layer for *persistent*
/// workers. One `floretsim_run --worker --serve` process handles many
/// sweeps over its lifetime, keeping its ArchCache warm across them —
/// the coordinator streams lease frames down the worker's stdin and reads
/// rows, heartbeats, and acks back from its stdout.
///
/// Every frame is one compact JSON object per line (NDJSON), dispatched
/// on its single distinguishing top-level key. Parsing is strict in both
/// directions: unknown keys, missing keys, wrong kinds, and out-of-range
/// values all throw std::invalid_argument — a malformed frame is a bug or
/// a corrupted pipe, never something to guess around.
///
/// Coordinator -> worker (stdin):
///   {"init":  {"worker": i, "n_workers": N, "gen": g}}
///   {"sweep": {"id": S, "points_file": PATH, "n_points": n}}
///   {"lease": {"id": L, "sweep": S, "indices": [..]}}
///   {"quit":  {}}
///
/// Worker -> coordinator (stdout):
///   {"ready":  {"worker": i, "gen": g, "pid": p}}
///   {"loaded": {"sweep": S, "n_points": n}}
///   {"sweep": S, "index": i, "row": {..}}          (one per finished point)
///   {"hb":     {..}}                               (PR 7 heartbeat, reused)
///   {"done":   {"lease": L, "fabric_hits": H, "fabric_misses": M}}
///   {"perr":   {"sweep": S, "index": i, "what": ".."}}
///
/// Points still travel by file (the sweep frame names a points file on
/// shared disk), not through the stdin pipe: a pipe holds ~64KB, and a
/// coordinator blocked writing a million points to one worker while
/// another worker's stdout fills is a deadlock. Lease frames are small
/// and bounded-in-flight, so stdin never backs up; rows flow up the
/// stdout pipe because the coordinator's poll loop drains it continuously.

// ---- Coordinator -> worker frames ------------------------------------------

/// Identity handed to a worker at spawn (and re-spawn: `gen` increments
/// so stale output from a previous incarnation is attributable).
struct InitFrame {
    std::int32_t worker = 0;
    std::int32_t n_workers = 1;
    std::int32_t gen = 0;

    friend bool operator==(const InitFrame&, const InitFrame&) = default;
};

/// Announces a sweep: the worker loads `points_file` (validating the
/// point count) and keeps the points resident until the next sweep frame.
struct SweepFrame {
    std::int64_t id = 0;
    std::string points_file;
    std::size_t n_points = 0;

    friend bool operator==(const SweepFrame&, const SweepFrame&) = default;
};

/// A small batch of global point indices to evaluate from the current
/// sweep. Leases replace PR 5's static shard slices: the coordinator
/// hands them out incrementally, so a straggler holds a few points, not
/// 1/N of the sweep.
struct LeaseFrame {
    std::int64_t id = 0;
    std::int64_t sweep = 0;
    std::vector<std::size_t> indices;

    friend bool operator==(const LeaseFrame&, const LeaseFrame&) = default;
};

/// The parse result for a worker's stdin: exactly one member is set
/// (quit is a bool because the frame carries no payload).
struct WorkerBound {
    std::optional<InitFrame> init;
    std::optional<SweepFrame> sweep;
    std::optional<LeaseFrame> lease;
    bool quit = false;
};

[[nodiscard]] std::string init_line(const InitFrame& f);
[[nodiscard]] std::string sweep_line(const SweepFrame& f);
[[nodiscard]] std::string lease_line(const LeaseFrame& f);
[[nodiscard]] std::string quit_line();

/// Parses one coordinator->worker line. Throws std::invalid_argument on
/// malformed JSON, unknown frames/keys, or out-of-range values
/// (negative ids, empty lease index lists, n_workers < 1, ...).
[[nodiscard]] WorkerBound worker_bound_from_line(std::string_view line);

// ---- Worker -> coordinator frames ------------------------------------------

/// First frame a (re)spawned worker emits: proof of life plus the
/// identity it was initialized with, so the coordinator can match output
/// to the right incarnation.
struct ReadyFrame {
    std::int32_t worker = 0;
    std::int32_t gen = 0;
    std::int64_t pid = 0;

    friend bool operator==(const ReadyFrame&, const ReadyFrame&) = default;
};

/// Ack of a sweep frame: the points file parsed and the count matched.
struct LoadedFrame {
    std::int64_t sweep = 0;
    std::size_t n_points = 0;

    friend bool operator==(const LoadedFrame&, const LoadedFrame&) = default;
};

/// Ack of a finished lease, carrying the worker's cumulative ArchCache
/// counters — the warm-across-scenarios signal the fleet stats surface.
struct DoneFrame {
    std::int64_t lease = 0;
    std::int64_t fabric_hits = 0;
    std::int64_t fabric_misses = 0;

    friend bool operator==(const DoneFrame&, const DoneFrame&) = default;
};

/// A point that threw: the coordinator fails the sweep with the point's
/// index and message instead of a bare nonzero exit.
struct PointErrorFrame {
    std::int64_t sweep = 0;
    std::size_t index = 0;
    std::string what;

    friend bool operator==(const PointErrorFrame&,
                           const PointErrorFrame&) = default;
};

/// One finished row, tagged with the sweep it belongs to so a stale row
/// from a superseded lease (stolen work finishing late, a worker that
/// missed a sweep transition) is identifiable and droppable.
struct FleetRow {
    std::int64_t sweep = 0;
    std::size_t index = 0;
    core::SweepRow row;
};

/// The parse result for a worker's stdout: exactly one member is set.
struct CoordinatorBound {
    std::optional<ReadyFrame> ready;
    std::optional<LoadedFrame> loaded;
    std::optional<DoneFrame> done;
    std::optional<PointErrorFrame> perr;
    std::optional<FleetRow> row;
    std::optional<scenario::Heartbeat> hb;
};

[[nodiscard]] std::string ready_line(const ReadyFrame& f);
[[nodiscard]] std::string loaded_line(const LoadedFrame& f);
[[nodiscard]] std::string done_line(const DoneFrame& f);
[[nodiscard]] std::string perr_line(const PointErrorFrame& f);
[[nodiscard]] std::string fleet_row_line(const FleetRow& r);

/// Parses one worker->coordinator line. Heartbeats reuse the PR 7
/// {"hb": {...}} envelope verbatim (shard = worker index, n_shards =
/// pool size). Throws std::invalid_argument on anything malformed.
[[nodiscard]] CoordinatorBound coordinator_bound_from_line(
    std::string_view line);

// ---- The worker loop --------------------------------------------------------

/// Runs the persistent worker side of the protocol over (in, out): init
/// -> ready, sweep -> loaded, lease -> rows + heartbeats + done, quit (or
/// orderly EOF) -> return 0. Lease points are evaluated on the engine's
/// pool via core::evaluate_point, so the engine's ArchCache stays warm
/// for every later lease and sweep — the whole reason the process
/// persists. A point that throws emits a perr frame (the coordinator
/// decides; the worker keeps serving). A malformed frame prints to `err`
/// and returns 3: the coordinator treats that exit as a protocol bug.
///
/// Fault injection for the fleet tests, read from the environment at
/// init time (production runs never set these):
///   FLORETSIM_FLEET_KILL="w:g:k"      raise(SIGKILL) when worker w at
///                                     gen g (g = -1 matches any gen) has
///                                     emitted k rows over its lifetime;
///   FLORETSIM_FLEET_STALL="w:g:k:ms"  sleep ms before emitting row k —
///                                     a deterministic straggler;
///   FLORETSIM_FLEET_PERR="w:g:k"      throw (-> perr frame) instead of
///                                     evaluating the k-th point this
///                                     process attempts.
[[nodiscard]] int serve_worker(std::istream& in, std::ostream& out,
                               std::ostream& err, core::SweepEngine& engine);

}  // namespace floretsim::fleet
