#include "src/scenario/spec_json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>
#include <stdexcept>

namespace floretsim::scenario {
namespace {

using util::Json;

[[noreturn]] void bad(const std::string& context, const std::string& msg) {
    throw std::invalid_argument("spec " + context + ": " + msg);
}

/// Checked narrowing for spec fields: a 64-bit value that does not fit
/// int32 must fail loudly, never wrap into a silently-different sweep.
std::int32_t to_int32(std::int64_t v, const char* what) {
    if (v < INT32_MIN || v > INT32_MAX)
        throw std::invalid_argument(std::string(what) + " out of int32 range");
    return static_cast<std::int32_t>(v);
}

/// Strict object reader: typed field extraction with
/// keep-the-default-when-absent semantics, and unknown-key rejection via
/// finish() — every from_json function below must consume (or at least
/// probe) all keys it understands, then call finish().
class ObjectReader {
public:
    ObjectReader(const Json& j, std::string context) : context_(std::move(context)) {
        if (j.kind() != Json::Kind::kObject)
            bad(context_, std::string("expected an object, got ") + j.kind_name());
        json_ = &j;
    }

    /// Marks `key` consumed; nullptr when absent.
    const Json* find(const std::string& key) {
        consumed_.insert(key);
        return json_->find(key);
    }

    template <typename T, typename Fn>
    void read_with(const std::string& key, T& out, Fn&& convert) {
        if (const Json* v = find(key)) {
            try {
                out = convert(*v);
            } catch (const std::invalid_argument& e) {
                bad(context_ + "." + key, e.what());
            }
        }
    }

    void read(const std::string& key, bool& out) {
        read_with(key, out, [](const Json& v) { return v.as_bool(); });
    }
    void read(const std::string& key, std::int32_t& out) {
        read_with(key, out, [](const Json& v) {
            const std::int64_t i = v.as_int();
            if (i < INT32_MIN || i > INT32_MAX)
                throw std::invalid_argument("value out of int32 range");
            return static_cast<std::int32_t>(i);
        });
    }
    void read(const std::string& key, std::int64_t& out) {
        read_with(key, out, [](const Json& v) { return v.as_int(); });
    }
    void read(const std::string& key, std::uint64_t& out) {
        read_with(key, out, [](const Json& v) { return v.as_uint(); });
    }
    void read(const std::string& key, double& out) {
        read_with(key, out, [](const Json& v) { return v.as_double(); });
    }
    void read(const std::string& key, std::string& out) {
        read_with(key, out, [](const Json& v) { return v.as_string(); });
    }

    /// Rejects any key the caller never probed.
    void finish() {
        for (const auto& [key, value] : json_->as_object()) {
            (void)value;
            if (!consumed_.contains(key))
                bad(context_, "unknown key \"" + key + "\"");
        }
    }

private:
    const Json* json_ = nullptr;
    std::string context_;
    std::set<std::string, std::less<>> consumed_;
};

}  // namespace

std::string ascii_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

// ---- Enums ------------------------------------------------------------------

Json to_json(core::experiment::Arch a) {
    return Json(ascii_lower(core::experiment::arch_name(a)));
}

core::experiment::Arch arch_from_string(const std::string& s) {
    const std::string v = ascii_lower(s);
    using core::experiment::Arch;
    if (v == "kite") return Arch::kKite;
    if (v == "siam" || v == "siam-mesh" || v == "mesh") return Arch::kSiamMesh;
    if (v == "swap") return Arch::kSwap;
    if (v == "floret") return Arch::kFloret;
    throw std::invalid_argument("unknown architecture \"" + s +
                                "\" (expected kite|siam|swap|floret)");
}

core::experiment::Arch arch_from_json(const Json& j) {
    return arch_from_string(j.as_string());
}

Json to_json(noc::SimCore c) { return Json(noc::sim_core_name(c)); }

noc::SimCore sim_core_from_json(const Json& j) {
    const std::string v = ascii_lower(j.as_string());
    if (const auto core = noc::sim_core_from_name(v)) return *core;
    throw std::invalid_argument("unknown sim core \"" + j.as_string() +
                                "\" (expected reference|event-horizon|regional)");
}

Json to_json(serve::AdmissionPolicy p) {
    switch (p) {
        case serve::AdmissionPolicy::kFifo: return Json("fifo");
        case serve::AdmissionPolicy::kEarliestDeadline: return Json("edf");
        case serve::AdmissionPolicy::kRejectOnFull: return Json("reject-on-full");
        case serve::AdmissionPolicy::kEdfEvict: return Json("edf-evict");
    }
    return Json("fifo");
}

serve::AdmissionPolicy admission_policy_from_json(const Json& j) {
    const std::string v = ascii_lower(j.as_string());
    if (v == "fifo") return serve::AdmissionPolicy::kFifo;
    if (v == "edf" || v == "earliest-deadline")
        return serve::AdmissionPolicy::kEarliestDeadline;
    if (v == "reject-on-full") return serve::AdmissionPolicy::kRejectOnFull;
    if (v == "edf-evict") return serve::AdmissionPolicy::kEdfEvict;
    throw std::invalid_argument("unknown admission policy \"" + j.as_string() +
                                "\" (expected fifo|edf|reject-on-full|edf-evict)");
}

Json to_json(serve::BalancePolicy p) {
    return Json(serve::balance_policy_name(p));
}

serve::BalancePolicy balance_policy_from_json(const Json& j) {
    const std::string v = ascii_lower(j.as_string());
    if (v == "least-loaded") return serve::BalancePolicy::kLeastLoaded;
    if (v == "model-affinity" || v == "affinity")
        return serve::BalancePolicy::kModelAffinity;
    throw std::invalid_argument("unknown balance policy \"" + j.as_string() +
                                "\" (expected least-loaded|model-affinity)");
}

Json to_json(serve::ArrivalProcess p) {
    return Json(ascii_lower(serve::arrival_process_name(p)));
}

serve::ArrivalProcess arrival_process_from_json(const Json& j) {
    const std::string v = ascii_lower(j.as_string());
    if (v == "poisson") return serve::ArrivalProcess::kPoisson;
    if (v == "mmpp") return serve::ArrivalProcess::kMmpp;
    if (v == "trace") return serve::ArrivalProcess::kTrace;
    throw std::invalid_argument("unknown arrival process \"" + j.as_string() +
                                "\" (expected poisson|mmpp|trace)");
}

// ---- Simulator / evaluation knobs ------------------------------------------

Json to_json(const noc::SimConfig& c) {
    Json j = Json::object();
    j.set("flit_bytes", c.flit_bytes);
    j.set("max_packet_flits", c.max_packet_flits);
    j.set("input_buffer_flits", c.input_buffer_flits);
    j.set("router_delay_cycles", c.router_delay_cycles);
    j.set("mm_per_cycle", c.mm_per_cycle);
    j.set("max_cycles", c.max_cycles);
    j.set("injection_rate", c.injection_rate);
    j.set("core", to_json(c.core));
    j.set("regions", c.regions);
    return j;
}

noc::SimConfig sim_config_from_json(const Json& j) {
    noc::SimConfig c;
    ObjectReader r(j, "sim");
    r.read("flit_bytes", c.flit_bytes);
    r.read("max_packet_flits", c.max_packet_flits);
    r.read("input_buffer_flits", c.input_buffer_flits);
    r.read("router_delay_cycles", c.router_delay_cycles);
    r.read("mm_per_cycle", c.mm_per_cycle);
    r.read("max_cycles", c.max_cycles);
    r.read("injection_rate", c.injection_rate);
    r.read_with("core", c.core, sim_core_from_json);
    r.read("regions", c.regions);
    r.finish();
    return c;
}

Json to_json(const cost::CostParams& c) {
    Json j = Json::object();
    j.set("router_area_base_mm2", c.router_area_base_mm2);
    j.set("router_area_per_port_mm2", c.router_area_per_port_mm2);
    j.set("router_area_per_port2_mm2", c.router_area_per_port2_mm2);
    j.set("link_area_per_mm_mm2", c.link_area_per_mm_mm2);
    j.set("router_energy_base_pj", c.router_energy_base_pj);
    j.set("router_energy_per_port_pj", c.router_energy_per_port_pj);
    j.set("link_energy_per_mm_pj", c.link_energy_per_mm_pj);
    j.set("router_leakage_base_mw", c.router_leakage_base_mw);
    j.set("router_leakage_per_port2_mw", c.router_leakage_per_port2_mw);
    j.set("link_leakage_per_mm_mw", c.link_leakage_per_mm_mw);
    j.set("defect_density_per_mm2", c.defect_density_per_mm2);
    j.set("ref_noi_area_mm2", c.ref_noi_area_mm2);
    j.set("ref_chiplets", c.ref_chiplets);
    return j;
}

cost::CostParams cost_params_from_json(const Json& j) {
    cost::CostParams c;
    ObjectReader r(j, "cost");
    r.read("router_area_base_mm2", c.router_area_base_mm2);
    r.read("router_area_per_port_mm2", c.router_area_per_port_mm2);
    r.read("router_area_per_port2_mm2", c.router_area_per_port2_mm2);
    r.read("link_area_per_mm_mm2", c.link_area_per_mm_mm2);
    r.read("router_energy_base_pj", c.router_energy_base_pj);
    r.read("router_energy_per_port_pj", c.router_energy_per_port_pj);
    r.read("link_energy_per_mm_pj", c.link_energy_per_mm_pj);
    r.read("router_leakage_base_mw", c.router_leakage_base_mw);
    r.read("router_leakage_per_port2_mw", c.router_leakage_per_port2_mw);
    r.read("link_leakage_per_mm_mw", c.link_leakage_per_mm_mw);
    r.read("defect_density_per_mm2", c.defect_density_per_mm2);
    r.read("ref_noi_area_mm2", c.ref_noi_area_mm2);
    r.read("ref_chiplets", c.ref_chiplets);
    r.finish();
    return c;
}

Json to_json(const core::EvalConfig& c) {
    Json j = Json::object();
    j.set("sim", to_json(c.sim));
    j.set("cost", to_json(c.cost));
    j.set("bytes_per_elem", c.bytes_per_elem);
    j.set("traffic_scale", c.traffic_scale);
    j.set("include_weight_load", c.include_weight_load);
    j.set("io_node", c.io_node);
    j.set("round_epoch_cache", c.round_epoch_cache);
    return j;
}

core::EvalConfig eval_config_from_json(const Json& j) {
    core::EvalConfig c;
    ObjectReader r(j, "eval");
    r.read_with("sim", c.sim, sim_config_from_json);
    r.read_with("cost", c.cost, cost_params_from_json);
    r.read("bytes_per_elem", c.bytes_per_elem);
    r.read("traffic_scale", c.traffic_scale);
    r.read("include_weight_load", c.include_weight_load);
    r.read("io_node", c.io_node);
    r.read("round_epoch_cache", c.round_epoch_cache);
    r.finish();
    return c;
}

// ---- Workload mixes ---------------------------------------------------------

Json to_json(const workload::ConcurrentMix& m) {
    for (const auto& canonical : workload::table2())
        if (canonical.name == m.name && canonical == m) return Json(m.name);
    Json j = Json::object();
    j.set("name", m.name);
    Json entries = Json::array();
    for (const auto& [id, count] : m.entries) {
        Json e = Json::array();
        e.push_back(id);
        e.push_back(count);
        entries.push_back(std::move(e));
    }
    j.set("entries", std::move(entries));
    j.set("paper_total_params_b", m.paper_total_params_b);
    return j;
}

workload::ConcurrentMix mix_from_json(const Json& j) {
    if (j.kind() == Json::Kind::kString) {
        const std::string& name = j.as_string();
        for (const auto& m : workload::table2())
            if (m.name == name) return m;
        throw std::invalid_argument("unknown Table II mix \"" + name + "\"");
    }
    workload::ConcurrentMix m;
    ObjectReader r(j, "mix");
    r.read("name", m.name);
    if (const Json* entries = r.find("entries")) {
        for (const Json& e : entries->as_array()) {
            const auto& pair = e.as_array();
            if (pair.size() != 2)
                bad("mix.entries", "each entry must be [workload_id, count]");
            const std::string& id = pair[0].as_string();
            (void)workload::workload_by_id(id);  // throws on an unknown id
            const std::int32_t count =
                to_int32(pair[1].as_int(), "mix instance count");
            if (count <= 0) bad("mix.entries", "instance count must be positive");
            m.entries.emplace_back(id, count);
        }
    }
    r.read("paper_total_params_b", m.paper_total_params_b);
    r.finish();
    if (m.name.empty()) bad("mix", "custom mixes need a \"name\"");
    if (m.entries.empty()) bad("mix", "custom mixes need \"entries\"");
    return m;
}

// ---- Sweep specs ------------------------------------------------------------

namespace {

std::pair<std::int32_t, std::int32_t> grid_from_json(const Json& j) {
    if (j.kind() == Json::Kind::kString) return grid_from_string(j.as_string());
    const auto& pair = j.as_array();
    if (pair.size() != 2)
        throw std::invalid_argument("grid array must be [width, height]");
    const std::int32_t w = to_int32(pair[0].as_int(), "grid width");
    const std::int32_t h = to_int32(pair[1].as_int(), "grid height");
    if (w <= 0 || h <= 0) throw std::invalid_argument("grid sides must be positive");
    return {w, h};
}

Json grid_to_json(std::pair<std::int32_t, std::int32_t> g) {
    return Json(std::to_string(g.first) + "x" + std::to_string(g.second));
}

}  // namespace

std::pair<std::int32_t, std::int32_t> grid_from_string(const std::string& s) {
    const std::size_t x = s.find('x');
    if (x != std::string::npos && x > 0 && x + 1 < s.size()) {
        const auto side = [&](std::size_t from, std::size_t to) {
            std::int32_t v = -1;
            const auto [p, ec] = std::from_chars(s.data() + from, s.data() + to, v);
            return (ec == std::errc() && p == s.data() + to) ? v : -1;
        };
        const std::int32_t w = side(0, x);
        const std::int32_t h = side(x + 1, s.size());
        if (w > 0 && h > 0) return {w, h};
    }
    throw std::invalid_argument("grid \"" + s + "\" is not \"WxH\"");
}

Json to_json(const core::SweepSpec& s) {
    Json j = Json::object();
    Json archs = Json::array();
    for (const auto a : s.archs) archs.push_back(to_json(a));
    j.set("archs", std::move(archs));
    Json grids = Json::array();
    for (const auto& g : s.grids) grids.push_back(grid_to_json(g));
    j.set("grids", std::move(grids));
    Json mixes = Json::array();
    for (const auto& m : s.mixes) mixes.push_back(to_json(m));
    j.set("mixes", std::move(mixes));
    Json evals = Json::array();
    for (const auto& e : s.evals) evals.push_back(to_json(e));
    j.set("evals", std::move(evals));
    j.set("swap_seed", s.swap_seed);
    j.set("greedy_max_gap", s.greedy_max_gap);
    j.set("run_seed", s.run_seed);
    return j;
}

core::SweepSpec sweep_spec_from_json(const Json& j) {
    core::SweepSpec s;
    ObjectReader r(j, "sweep");
    if (const Json* archs = r.find("archs")) {
        s.archs.clear();
        for (const Json& a : archs->as_array()) s.archs.push_back(arch_from_json(a));
    }
    if (const Json* grids = r.find("grids")) {
        s.grids.clear();
        for (const Json& g : grids->as_array()) s.grids.push_back(grid_from_json(g));
    }
    if (const Json* mixes = r.find("mixes")) {
        s.mixes.clear();
        for (const Json& m : mixes->as_array()) s.mixes.push_back(mix_from_json(m));
    }
    if (const Json* evals = r.find("evals")) {
        s.evals.clear();
        for (const Json& e : evals->as_array())
            s.evals.push_back(eval_config_from_json(e));
    }
    r.read("swap_seed", s.swap_seed);
    r.read("greedy_max_gap", s.greedy_max_gap);
    r.read("run_seed", s.run_seed);
    r.finish();
    return s;
}

Json to_json(const core::SweepPoint& p) {
    Json j = Json::object();
    j.set("arch", to_json(p.arch));
    j.set("grid", grid_to_json({p.width, p.height}));
    j.set("mix", to_json(p.mix));
    j.set("eval", to_json(p.eval));
    j.set("swap_seed", p.swap_seed);
    j.set("greedy_max_gap", p.greedy_max_gap);
    j.set("run_seed", p.run_seed);
    return j;
}

core::SweepPoint sweep_point_from_json(const Json& j) {
    core::SweepPoint p;
    ObjectReader r(j, "point");
    r.read_with("arch", p.arch, arch_from_json);
    if (const Json* g = r.find("grid")) {
        const auto [w, h] = grid_from_json(*g);
        p.width = w;
        p.height = h;
    }
    r.read_with("mix", p.mix, mix_from_json);
    r.read_with("eval", p.eval, eval_config_from_json);
    r.read("swap_seed", p.swap_seed);
    r.read("greedy_max_gap", p.greedy_max_gap);
    r.read("run_seed", p.run_seed);
    r.finish();
    return p;
}

Json to_json(const std::vector<core::SweepPoint>& pts) {
    Json j = Json::array();
    for (const auto& p : pts) j.push_back(to_json(p));
    return j;
}

std::vector<core::SweepPoint> sweep_points_from_json(const Json& j) {
    std::vector<core::SweepPoint> pts;
    for (const Json& p : j.as_array()) pts.push_back(sweep_point_from_json(p));
    return pts;
}

// ---- Sweep rows (the return wire format) ------------------------------------

Json to_json(const core::experiment::DynamicResult& r) {
    Json j = Json::object();
    j.set("total_cycles", r.total_cycles);
    j.set("total_energy_pj", r.total_energy_pj);
    j.set("flit_hops", r.flit_hops);
    j.set("rounds", r.rounds);
    j.set("task_rounds", r.task_rounds);
    j.set("all_completed", r.all_completed);
    j.set("noi_evals", r.noi_evals);
    j.set("round_epoch_hits", r.round_epoch_hits);
    j.set("sim_cycles_stepped", r.sim_cycles_stepped);
    j.set("sim_cycles_skipped", r.sim_cycles_skipped);
    j.set("sim_horizon_jumps", r.sim_horizon_jumps);
    j.set("sim_region_cycles_stepped", r.sim_region_cycles_stepped);
    j.set("sim_region_cycles_skipped", r.sim_region_cycles_skipped);
    j.set("sim_region_horizon_jumps", r.sim_region_horizon_jumps);
    j.set("sim_region_stepped_max", r.sim_region_stepped_max);
    j.set("sim_region_stepped_min", r.sim_region_stepped_min);
    return j;
}

core::experiment::DynamicResult dynamic_result_from_json(const Json& j) {
    core::experiment::DynamicResult r;
    ObjectReader rd(j, "result");
    rd.read("total_cycles", r.total_cycles);
    rd.read("total_energy_pj", r.total_energy_pj);
    rd.read("flit_hops", r.flit_hops);
    rd.read("rounds", r.rounds);
    rd.read("task_rounds", r.task_rounds);
    rd.read("all_completed", r.all_completed);
    rd.read("noi_evals", r.noi_evals);
    rd.read("round_epoch_hits", r.round_epoch_hits);
    rd.read("sim_cycles_stepped", r.sim_cycles_stepped);
    rd.read("sim_cycles_skipped", r.sim_cycles_skipped);
    rd.read("sim_horizon_jumps", r.sim_horizon_jumps);
    rd.read("sim_region_cycles_stepped", r.sim_region_cycles_stepped);
    rd.read("sim_region_cycles_skipped", r.sim_region_cycles_skipped);
    rd.read("sim_region_horizon_jumps", r.sim_region_horizon_jumps);
    rd.read("sim_region_stepped_max", r.sim_region_stepped_max);
    rd.read("sim_region_stepped_min", r.sim_region_stepped_min);
    rd.finish();
    return r;
}

Json to_json(const core::SweepRow& r) {
    Json j = Json::object();
    j.set("point", to_json(r.point));
    j.set("result", to_json(r.result));
    j.set("seconds", r.seconds);
    return j;
}

core::SweepRow sweep_row_from_json(const Json& j) {
    core::SweepRow r;
    ObjectReader rd(j, "row");
    rd.read_with("point", r.point, sweep_point_from_json);
    rd.read_with("result", r.result, dynamic_result_from_json);
    rd.read("seconds", r.seconds);
    rd.finish();
    return r;
}

Json to_json(const std::vector<core::SweepRow>& rows) {
    Json j = Json::array();
    for (const auto& r : rows) j.push_back(to_json(r));
    return j;
}

std::vector<core::SweepRow> sweep_rows_from_json(const Json& j) {
    std::vector<core::SweepRow> rows;
    for (const Json& r : j.as_array()) rows.push_back(sweep_row_from_json(r));
    return rows;
}

// ---- Serving specs ----------------------------------------------------------

Json to_json(const serve::RequestClass& c) {
    Json j = Json::object();
    j.set("name", c.name);
    Json ids = Json::array();
    for (const auto& id : c.workload_ids) ids.push_back(id);
    j.set("workload_ids", std::move(ids));
    j.set("weight", c.weight);
    j.set("slo_cycles", c.slo_cycles);
    return j;
}

serve::RequestClass request_class_from_json(const Json& j) {
    serve::RequestClass c;
    ObjectReader r(j, "class");
    r.read("name", c.name);
    if (const Json* ids = r.find("workload_ids")) {
        for (const Json& id : ids->as_array()) {
            (void)workload::workload_by_id(id.as_string());  // validate
            c.workload_ids.push_back(id.as_string());
        }
    }
    r.read("weight", c.weight);
    r.read("slo_cycles", c.slo_cycles);
    r.finish();
    if (c.name.empty()) bad("class", "request classes need a \"name\"");
    if (c.workload_ids.empty()) bad("class", "request classes need \"workload_ids\"");
    return c;
}

Json to_json(const serve::ArrivalConfig& c) {
    Json j = Json::object();
    j.set("process", to_json(c.process));
    j.set("rate_per_mcycle", c.rate_per_mcycle);
    j.set("burst_rate_multiplier", c.burst_rate_multiplier);
    j.set("normal_dwell_cycles", c.normal_dwell_cycles);
    j.set("burst_dwell_cycles", c.burst_dwell_cycles);
    Json trace = Json::array();
    for (const double t : c.trace_cycles) trace.push_back(t);
    j.set("trace_cycles", std::move(trace));
    j.set("max_requests", c.max_requests);
    j.set("min_rounds", c.min_rounds);
    j.set("max_rounds", c.max_rounds);
    return j;
}

serve::ArrivalConfig arrival_config_from_json(const Json& j) {
    serve::ArrivalConfig c;
    ObjectReader r(j, "arrivals");
    r.read_with("process", c.process, arrival_process_from_json);
    r.read("rate_per_mcycle", c.rate_per_mcycle);
    r.read("burst_rate_multiplier", c.burst_rate_multiplier);
    r.read("normal_dwell_cycles", c.normal_dwell_cycles);
    r.read("burst_dwell_cycles", c.burst_dwell_cycles);
    if (const Json* trace = r.find("trace_cycles")) {
        for (const Json& t : trace->as_array()) c.trace_cycles.push_back(t.as_double());
    }
    r.read("max_requests", c.max_requests);
    r.read("min_rounds", c.min_rounds);
    r.read("max_rounds", c.max_rounds);
    r.finish();
    return c;
}

Json to_json(const serve::ServeConfig& c) {
    Json j = Json::object();
    j.set("arrivals", to_json(c.arrivals));
    Json classes = Json::array();
    for (const auto& cls : c.classes) classes.push_back(to_json(cls));
    j.set("classes", std::move(classes));
    j.set("admission", to_json(c.admission));
    j.set("max_queue", static_cast<std::uint64_t>(c.max_queue));
    j.set("max_batch", c.max_batch);
    j.set("batch_traffic_alpha", c.batch_traffic_alpha);
    j.set("eval", to_json(c.eval));
    j.set("params_per_chiplet_m", c.params_per_chiplet_m);
    j.set("seed", c.seed);
    return j;
}

serve::ServeConfig serve_config_from_json(const Json& j) {
    // Defaults start at default_serve_config(), not a bare ServeConfig{}:
    // a user spec that omits "eval" must measure on the same scale (1/64
    // traffic sampling etc.) as every documented serving number.
    serve::ServeConfig c = serve::default_serve_config();
    ObjectReader r(j, "serve");
    r.read_with("arrivals", c.arrivals, arrival_config_from_json);
    if (const Json* classes = r.find("classes")) {
        for (const Json& cls : classes->as_array())
            c.classes.push_back(request_class_from_json(cls));
    }
    r.read_with("admission", c.admission, admission_policy_from_json);
    r.read("max_queue", c.max_queue);
    r.read("max_batch", c.max_batch);
    r.read("batch_traffic_alpha", c.batch_traffic_alpha);
    r.read_with("eval", c.eval, eval_config_from_json);
    r.read("params_per_chiplet_m", c.params_per_chiplet_m);
    r.read("seed", c.seed);
    r.finish();
    if (c.max_batch < 1)
        bad("serve", "\"max_batch\" must be >= 1");
    if (c.batch_traffic_alpha < 0.0)
        bad("serve", "\"batch_traffic_alpha\" must be >= 0");
    // Tenant class names key the per-class report rows; duplicates would
    // silently merge two tenants' SLO accounting.
    for (std::size_t a = 0; a < c.classes.size(); ++a)
        for (std::size_t b = a + 1; b < c.classes.size(); ++b)
            if (c.classes[a].name == c.classes[b].name)
                bad("serve", "duplicate class name \"" + c.classes[a].name +
                                 "\"");
    return c;
}

Json to_json(const serve::ServeSpec& s) {
    Json j = Json::object();
    j.set("arch", to_json(s.arch));
    j.set("grid", grid_to_json({s.width, s.height}));
    j.set("swap_seed", s.swap_seed);
    j.set("greedy_max_gap", s.greedy_max_gap);
    j.set("config", to_json(s.config));
    j.set("replications", s.replications);
    j.set("base_seed", s.base_seed);
    return j;
}

serve::ServeSpec serve_spec_from_json(const Json& j) {
    serve::ServeSpec s;
    s.config = serve::default_serve_config();  // see serve_config_from_json
    ObjectReader r(j, "serve_spec");
    r.read_with("arch", s.arch, arch_from_json);
    if (const Json* g = r.find("grid")) {
        const auto [w, h] = grid_from_json(*g);
        s.width = w;
        s.height = h;
    }
    r.read("swap_seed", s.swap_seed);
    r.read("greedy_max_gap", s.greedy_max_gap);
    r.read_with("config", s.config, serve_config_from_json);
    r.read("replications", s.replications);
    r.read("base_seed", s.base_seed);
    r.finish();
    return s;
}

Json to_json(const ServeGridSpec& s) {
    Json j = Json::object();
    j.set("base", to_json(s.base));
    Json archs = Json::array();
    for (const auto a : s.archs) archs.push_back(to_json(a));
    j.set("archs", std::move(archs));
    Json loads = Json::array();
    for (const double l : s.loads_per_mcycle) loads.push_back(l);
    j.set("loads_per_mcycle", std::move(loads));
    return j;
}

serve::ServeSpec ServeGridSpec::default_base() {
    serve::ServeSpec base;
    base.config = serve::default_serve_config();
    return base;
}

ServeGridSpec serve_grid_spec_from_json(const Json& j) {
    ServeGridSpec s;
    ObjectReader r(j, "serve_grid");
    r.read_with("base", s.base, serve_spec_from_json);
    if (const Json* archs = r.find("archs")) {
        s.archs.clear();
        for (const Json& a : archs->as_array()) s.archs.push_back(arch_from_json(a));
    }
    if (const Json* loads = r.find("loads_per_mcycle")) {
        s.loads_per_mcycle.clear();
        for (const Json& l : loads->as_array())
            s.loads_per_mcycle.push_back(l.as_double());
    }
    r.finish();
    return s;
}

Json to_json(const ClusterSpec& s) {
    Json j = Json::object();
    j.set("base", to_json(s.base));
    Json sizes = Json::array();
    for (const auto k : s.cluster_sizes) sizes.push_back(k);
    j.set("cluster_sizes", std::move(sizes));
    Json caps = Json::array();
    for (const auto b : s.batch_caps) caps.push_back(b);
    j.set("batch_caps", std::move(caps));
    Json loads = Json::array();
    for (const double l : s.loads_per_mcycle) loads.push_back(l);
    j.set("loads_per_mcycle", std::move(loads));
    j.set("balance", to_json(s.balance));
    return j;
}

ClusterSpec cluster_spec_from_json(const Json& j) {
    ClusterSpec s;
    ObjectReader r(j, "cluster");
    r.read_with("base", s.base, serve_spec_from_json);
    if (const Json* sizes = r.find("cluster_sizes")) {
        s.cluster_sizes.clear();
        for (const Json& k : sizes->as_array())
            s.cluster_sizes.push_back(static_cast<std::int32_t>(k.as_int()));
    }
    if (const Json* caps = r.find("batch_caps")) {
        s.batch_caps.clear();
        for (const Json& b : caps->as_array())
            s.batch_caps.push_back(static_cast<std::int32_t>(b.as_int()));
    }
    if (const Json* loads = r.find("loads_per_mcycle")) {
        s.loads_per_mcycle.clear();
        for (const Json& l : loads->as_array())
            s.loads_per_mcycle.push_back(l.as_double());
    }
    r.read_with("balance", s.balance, balance_policy_from_json);
    r.finish();
    if (s.cluster_sizes.empty())
        bad("cluster", "\"cluster_sizes\" must not be empty");
    for (const auto k : s.cluster_sizes)
        if (k < 1) bad("cluster", "cluster sizes must be >= 1 fabrics");
    if (s.batch_caps.empty())
        bad("cluster", "\"batch_caps\" must not be empty");
    for (const auto b : s.batch_caps)
        if (b < 1) bad("cluster", "batch caps must be >= 1");
    if (s.loads_per_mcycle.empty())
        bad("cluster", "\"loads_per_mcycle\" must not be empty");
    for (const double l : s.loads_per_mcycle)
        if (!(l > 0.0)) bad("cluster", "offered loads must be > 0");
    return s;
}

// ---- 3D MOO specs (Figs. 6-7, M3D-vs-TSV) -----------------------------------

Json to_json(noc::RoutingPolicy p) {
    switch (p) {
        case noc::RoutingPolicy::kShortestPath: return Json("shortest_path");
        case noc::RoutingPolicy::kUpDown: return Json("updown");
        case noc::RoutingPolicy::kXY: return Json("xy");
    }
    return Json("shortest_path");
}

noc::RoutingPolicy routing_policy_from_json(const Json& j) {
    const std::string v = ascii_lower(j.as_string());
    if (v == "shortest_path" || v == "shortest-path")
        return noc::RoutingPolicy::kShortestPath;
    if (v == "updown" || v == "up-down") return noc::RoutingPolicy::kUpDown;
    if (v == "xy") return noc::RoutingPolicy::kXY;
    throw std::invalid_argument("unknown routing policy \"" + j.as_string() +
                                "\" (expected shortest_path|updown|xy)");
}

namespace {

Json to_json(const Moo3dVariant& v) {
    Json j = Json::object();
    j.set("name", v.name);
    j.set("tier_pitch_mm", v.tier_pitch_mm);
    j.set("g_vertical_w_per_k", v.g_vertical_w_per_k);
    return j;
}

Moo3dVariant moo3d_variant_from_json(const Json& j) {
    Moo3dVariant v;
    ObjectReader r(j, "variant");
    r.read("name", v.name);
    r.read("tier_pitch_mm", v.tier_pitch_mm);
    r.read("g_vertical_w_per_k", v.g_vertical_w_per_k);
    r.finish();
    if (v.name.empty()) bad("variant", "variants need a \"name\"");
    return v;
}

}  // namespace

Json to_json(const Moo3dSpec& s) {
    Json j = Json::object();
    Json workloads = Json::array();
    for (const auto& w : s.workloads) workloads.push_back(w);
    j.set("workloads", std::move(workloads));
    j.set("grid", grid_to_json({s.width, s.height}));
    j.set("depth", s.depth);
    j.set("routing", to_json(s.routing));
    j.set("iterations", s.iterations);
    j.set("w_perf", s.w_perf);
    j.set("w_thermal", s.w_thermal);
    j.set("t_target_k", s.t_target_k);
    j.set("seed", s.seed);
    Json variants = Json::array();
    for (const auto& v : s.variants) variants.push_back(to_json(v));
    j.set("variants", std::move(variants));
    return j;
}

Moo3dSpec moo3d_spec_from_json(const Json& j) {
    Moo3dSpec s;
    ObjectReader r(j, "moo3d");
    if (const Json* workloads = r.find("workloads")) {
        for (const Json& w : workloads->as_array()) {
            (void)workload::workload_by_id(w.as_string());  // throws on unknown id
            s.workloads.push_back(w.as_string());
        }
    }
    if (const Json* g = r.find("grid")) {
        const auto [w, h] = grid_from_json(*g);
        s.width = w;
        s.height = h;
    }
    r.read("depth", s.depth);
    r.read_with("routing", s.routing, routing_policy_from_json);
    r.read("iterations", s.iterations);
    r.read("w_perf", s.w_perf);
    r.read("w_thermal", s.w_thermal);
    r.read("t_target_k", s.t_target_k);
    r.read("seed", s.seed);
    if (const Json* variants = r.find("variants")) {
        for (const Json& v : variants->as_array())
            s.variants.push_back(moo3d_variant_from_json(v));
    }
    r.finish();
    if (s.workloads.empty()) bad("moo3d", "specs need \"workloads\"");
    if (s.depth <= 0) bad("moo3d", "depth must be positive");
    if (s.iterations < 0) bad("moo3d", "iterations must be non-negative");
    return s;
}

// ---- Transformer specs (Section IV) -----------------------------------------

dnn::TransformerConfig transformer_model_from_name(const std::string& name) {
    const std::string v = ascii_lower(name);
    if (v == "bert_tiny" || v == "bert-tiny") return dnn::bert_tiny();
    if (v == "bert_base" || v == "bert-base") return dnn::bert_base();
    throw std::invalid_argument("unknown transformer model \"" + name +
                                "\" (expected bert_tiny|bert_base)");
}

Json to_json(const core::HeteroConfig& c) {
    Json j = Json::object();
    j.set("macro_width", c.macro_width);
    j.set("macro_height", c.macro_height);
    j.set("lambda", c.lambda);
    j.set("attention_modules", c.attention_modules);
    j.set("params_per_chiplet_m", c.params_per_chiplet_m);
    j.set("pitch_mm", c.pitch_mm);
    j.set("sram_speedup", c.sram_speedup);
    j.set("reram_write_ns_per_elem", c.reram_write_ns_per_elem);
    return j;
}

core::HeteroConfig hetero_config_from_json(const Json& j) {
    core::HeteroConfig c;
    ObjectReader r(j, "hetero");
    r.read("macro_width", c.macro_width);
    r.read("macro_height", c.macro_height);
    r.read("lambda", c.lambda);
    r.read("attention_modules", c.attention_modules);
    r.read("params_per_chiplet_m", c.params_per_chiplet_m);
    r.read("pitch_mm", c.pitch_mm);
    r.read("sram_speedup", c.sram_speedup);
    r.read("reram_write_ns_per_elem", c.reram_write_ns_per_elem);
    r.finish();
    return c;
}

Json to_json(const TransformerSpec& s) {
    Json j = Json::object();
    Json models = Json::array();
    for (const auto& m : s.models) models.push_back(m);
    j.set("models", std::move(models));
    Json batches = Json::array();
    for (const auto b : s.batches) batches.push_back(b);
    j.set("batches", std::move(batches));
    j.set("hetero", to_json(s.hetero));
    return j;
}

TransformerSpec transformer_spec_from_json(const Json& j) {
    TransformerSpec s;
    ObjectReader r(j, "transformer");
    if (const Json* models = r.find("models")) {
        s.models.clear();
        for (const Json& m : models->as_array()) {
            (void)transformer_model_from_name(m.as_string());  // validate
            s.models.push_back(ascii_lower(m.as_string()));
        }
    }
    if (const Json* batches = r.find("batches")) {
        s.batches.clear();
        for (const Json& b : batches->as_array()) {
            const std::int32_t batch = to_int32(b.as_int(), "batch");
            if (batch <= 0) bad("transformer.batches", "batches must be positive");
            s.batches.push_back(batch);
        }
    }
    r.read_with("hetero", s.hetero, hetero_config_from_json);
    r.finish();
    if (s.models.empty()) bad("transformer", "specs need \"models\"");
    if (s.batches.empty()) bad("transformer", "specs need \"batches\"");
    return s;
}

// ---- Scaling specs (the ablation study) -------------------------------------

Json to_json(const ScalingSpec& s) {
    Json j = Json::object();
    Json sides = Json::array();
    for (const auto side : s.sides) sides.push_back(side);
    j.set("sides", std::move(sides));
    Json archs = Json::array();
    for (const auto a : s.archs) archs.push_back(to_json(a));
    j.set("archs", std::move(archs));
    Json lambdas = Json::array();
    for (const auto l : s.lambdas) lambdas.push_back(l);
    j.set("lambdas", std::move(lambdas));
    j.set("eval", to_json(s.eval));
    j.set("mix_seed", s.mix_seed);
    j.set("swap_seed", s.swap_seed);
    j.set("greedy_max_gap", s.greedy_max_gap);
    j.set("run_seed", s.run_seed);
    return j;
}

ScalingSpec scaling_spec_from_json(const Json& j) {
    ScalingSpec s;
    ObjectReader r(j, "scaling");
    if (const Json* sides = r.find("sides")) {
        s.sides.clear();
        for (const Json& side : sides->as_array()) {
            const std::int32_t v = to_int32(side.as_int(), "side");
            if (v <= 0) bad("scaling.sides", "sides must be positive");
            s.sides.push_back(v);
        }
    }
    if (const Json* archs = r.find("archs")) {
        s.archs.clear();
        for (const Json& a : archs->as_array()) s.archs.push_back(arch_from_json(a));
    }
    if (const Json* lambdas = r.find("lambdas")) {
        s.lambdas.clear();
        for (const Json& l : lambdas->as_array()) {
            const std::int32_t v = to_int32(l.as_int(), "lambda");
            if (v <= 0) bad("scaling.lambdas", "lambdas must be positive");
            s.lambdas.push_back(v);
        }
    }
    r.read_with("eval", s.eval, eval_config_from_json);
    r.read("mix_seed", s.mix_seed);
    r.read("swap_seed", s.swap_seed);
    r.read("greedy_max_gap", s.greedy_max_gap);
    r.read("run_seed", s.run_seed);
    r.finish();
    if (s.sides.empty()) bad("scaling", "specs need \"sides\"");
    if (s.archs.empty()) bad("scaling", "specs need \"archs\"");
    return s;
}

}  // namespace floretsim::scenario
